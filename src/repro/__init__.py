"""repro — a reproduction of "Graph Pattern Matching in GQL and SQL/PGQ".

The package implements GPML (the graph pattern matching language shared by
the ISO GQL and SQL/PGQ standards) end to end on an in-memory property
graph substrate, together with both host-language surfaces, baselines and
the paper's worked examples.

Quickstart::

    from repro import figure1_graph, match

    graph = figure1_graph()
    result = match(graph, "MATCH (x:Account WHERE x.isBlocked='no')")
    for row in result:
        print(row["x"])
"""

from repro.datasets import figure1_graph
from repro.graph import GraphBuilder, Path, PropertyGraph
from repro.gpml import (
    MatchResult,
    PipelineStats,
    PreparedQuery,
    RowBudget,
    exists,
    first,
    match,
    match_iter,
    prepare,
)
from repro.sql import Database
from repro.values import NULL, TruthValue

__version__ = "1.2.0"

__all__ = [
    "Database",
    "GraphBuilder",
    "MatchResult",
    "NULL",
    "Path",
    "PipelineStats",
    "PreparedQuery",
    "PropertyGraph",
    "RowBudget",
    "TruthValue",
    "exists",
    "figure1_graph",
    "first",
    "match",
    "match_iter",
    "prepare",
    "__version__",
]
