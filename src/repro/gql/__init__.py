"""GQL host layer (Figure 9, right path).

GQL consumes GPML bindings directly: results can carry graph elements and
whole paths as first-class values (unlike SQL/PGQ, which projects to
scalar columns).  This package provides the read-query surface of GQL
that the paper's examples exercise:

``[USE <graph>] MATCH ... [WHERE ...] RETURN [DISTINCT] items
[ORDER BY ...] [LIMIT n] [OFFSET n]``
"""

from repro.gql.graph_output import (
    binding_subgraph,
    execute_match_as_graph,
    result_graph,
)
from repro.gql.query import (
    GqlQuery,
    GqlResult,
    execute_gql,
    execute_gql_iter,
    parse_gql_query,
)
from repro.gql.session import GqlSession

__all__ = [
    "GqlQuery",
    "GqlResult",
    "GqlSession",
    "binding_subgraph",
    "execute_gql",
    "execute_gql_iter",
    "execute_match_as_graph",
    "parse_gql_query",
    "result_graph",
]
