"""GQL host layer (Figure 9, right path).

GQL consumes GPML bindings directly: results can carry graph elements and
whole paths as first-class values (unlike SQL/PGQ, which projects to
scalar columns).  This package provides the read-query surface of GQL
that the paper's examples exercise — a *linear composition* of
statements over a working table of binding rows, ending in RETURN:

``[USE <graph>] { MATCH ... | OPTIONAL MATCH ... | LET x = expr |
FILTER cond }+ RETURN [DISTINCT] items [ORDER BY ...] [LIMIT n]
[OFFSET n]``

See :mod:`repro.gql.pipeline` for the statement transformers and the
seeded / hash-join execution of chained MATCH.
"""

from repro.gql.graph_output import (
    binding_subgraph,
    execute_match_as_graph,
    result_graph,
)
from repro.gql.pipeline import (
    FilterStatement,
    LetStatement,
    MatchStatement,
    compile_pipeline,
)
from repro.gql.query import (
    GqlQuery,
    GqlResult,
    execute_gql,
    execute_gql_iter,
    explain_gql,
    parse_gql_query,
)
from repro.gql.session import GqlSession

__all__ = [
    "FilterStatement",
    "GqlQuery",
    "GqlResult",
    "GqlSession",
    "LetStatement",
    "MatchStatement",
    "binding_subgraph",
    "compile_pipeline",
    "execute_gql",
    "execute_gql_iter",
    "execute_match_as_graph",
    "explain_gql",
    "parse_gql_query",
    "result_graph",
]
