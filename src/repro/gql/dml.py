"""GQL write statements: INSERT, SET, DELETE in the linear pipeline.

PR 4 made GQL statements composable transformers over the working table
of binding rows; a write statement is just another stage.  ``INSERT``
creates a path's worth of elements per incoming row (binding fresh
variables), ``SET`` updates properties/labels of bound elements,
``DELETE`` removes them.  All three are **pipeline breakers**: each
materializes its incoming rows before mutating, so upstream pattern
searches finish against the pre-statement graph and never observe their
own writes (the classic Halloween problem).

Grammar (see docs/dml.md for the full table)::

    INSERT <insert path> [, <insert path>]*
      insert path  :=  node ( edge node )*
      node         :=  "(" [var] [":" label ("&" label)*] [props] ")"
      edge         :=  "-[" [var] [":" label ("&" label)*] [props] "]->"
                    |  "<-[" [var] [":" label ("&" label)*] [props] "]-"
      props        :=  "{" name ":" expr ("," name ":" expr)* "}"

    SET <item> [, <item>]*
      item         :=  var "." name "=" expr     (NULL value removes)
                    |  var ":" label ("&" label)*  (labels are added)

    [DETACH] DELETE var [, var]*

Semantics follow Cypher/GQL practice where the paper is silent:

* An INSERT node referencing an already-bound variable attaches the new
  edges to that element; giving it labels or properties is a compile
  error.  Unbound node/edge variables bind the created element into the
  row.  Properties evaluating to NULL are omitted.
* ``SET x.p = expr`` on a NULL-bound ``x`` (e.g. from OPTIONAL MATCH) is
  a no-op for that row; on a non-element it is an error.
* ``DELETE`` removes edges before nodes and skips elements already
  removed by an earlier row; deleting a node that still has incident
  edges is an error unless ``DETACH`` is given.

Transactionality lives one level up (:func:`repro.gql.query` wraps the
whole query in :meth:`PropertyGraph.begin_mutation`): any error — here
or in a later statement — rolls the graph back to its pre-query state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.errors import GqlError
from repro.gpml.expr import EvalContext, Expr
from repro.gpml.lexer import IDENT
from repro.gpml.parser import GpmlParser
from repro.gpml.streaming import BLOCKING, PipelineStats, RowBudget
from repro.gpml.matcher import MatcherConfig
from repro.graph.model import Edge, Node, PropertyGraph
from repro.obs.trace import Span
from repro.values import NULL, is_null

#: variable-kind names shared with repro.gql.pipeline (string constants
#: here to keep the import DAG acyclic: pipeline imports this module)
_SINGLETON = "singleton"
_VALUE = "value"


# ----------------------------------------------------------------------
# Statement AST
# ----------------------------------------------------------------------
@dataclass
class InsertNode:
    var: Optional[str]
    labels: list[str]
    props: list[tuple[str, Expr]]


@dataclass
class InsertEdge:
    var: Optional[str]
    labels: list[str]
    props: list[tuple[str, Expr]]
    right: bool  # -[..]-> when True, <-[..]- when False


@dataclass
class InsertPath:
    nodes: list[InsertNode]
    edges: list[InsertEdge]  # len(nodes) - 1


@dataclass
class InsertStatement:
    paths: list[InsertPath]
    text: str


@dataclass
class SetItem:
    var: str
    prop: Optional[str] = None
    value: Optional[Expr] = None
    labels: Optional[list[str]] = None  # SET x:Label form


@dataclass
class SetStatement:
    items: list[SetItem]
    text: str


@dataclass
class DeleteStatement:
    variables: list[str]
    detach: bool
    text: str


WRITE_STATEMENTS = (InsertStatement, SetStatement, DeleteStatement)


# ----------------------------------------------------------------------
# Parsing (driven by repro.gql.query.parse_gql_query)
# ----------------------------------------------------------------------
def _word(parser: GpmlParser) -> Optional[str]:
    token = parser.peek()
    if token.type == IDENT:
        return str(token.value).upper()
    return None


def parse_insert_statement(parser: GpmlParser, text: str) -> InsertStatement:
    start = parser.peek().position
    parser.advance()  # INSERT
    paths = [_parse_insert_path(parser)]
    while parser.accept_punct(","):
        paths.append(_parse_insert_path(parser))
    end = parser.peek().position
    return InsertStatement(paths=paths, text=" ".join(text[start:end].split()))


def _parse_insert_path(parser: GpmlParser) -> InsertPath:
    nodes = [_parse_insert_node(parser)]
    edges: list[InsertEdge] = []
    while True:
        edge = _maybe_parse_insert_edge(parser)
        if edge is None:
            break
        edges.append(edge)
        nodes.append(_parse_insert_node(parser))
    return InsertPath(nodes=nodes, edges=edges)


def _parse_insert_node(parser: GpmlParser) -> InsertNode:
    parser.expect_punct("(")
    var = None
    if parser.peek().type == IDENT:
        var = parser.expect_ident()
    labels = _parse_label_list(parser)
    props = _parse_property_map(parser)
    parser.expect_punct(")")
    return InsertNode(var=var, labels=labels, props=props)


def _maybe_parse_insert_edge(parser: GpmlParser) -> Optional[InsertEdge]:
    if parser.at_punct("-"):
        parser.advance()
        var, labels, props = _parse_insert_edge_spec(parser)
        parser.expect_punct("-")
        parser.expect_punct(">")
        return InsertEdge(var=var, labels=labels, props=props, right=True)
    if parser.at_punct("<"):
        parser.advance()
        parser.expect_punct("-")
        var, labels, props = _parse_insert_edge_spec(parser)
        parser.expect_punct("-")
        return InsertEdge(var=var, labels=labels, props=props, right=False)
    return None


def _parse_insert_edge_spec(parser: GpmlParser):
    parser.expect_punct("[")
    var = None
    if parser.peek().type == IDENT:
        var = parser.expect_ident()
    labels = _parse_label_list(parser)
    props = _parse_property_map(parser)
    parser.expect_punct("]")
    return var, labels, props


def _parse_label_list(parser: GpmlParser) -> list[str]:
    if not parser.accept_punct(":"):
        return []
    labels = [parser.expect_name()]
    while parser.accept_punct("&"):
        labels.append(parser.expect_name())
    return labels


def _parse_property_map(parser: GpmlParser) -> list[tuple[str, Expr]]:
    if not parser.at_punct("{"):
        return []
    parser.advance()
    props: list[tuple[str, Expr]] = []
    if not parser.at_punct("}"):
        while True:
            name = parser.expect_name()
            parser.expect_punct(":")
            props.append((name, parser.parse_expression()))
            if not parser.accept_punct(","):
                break
    parser.expect_punct("}")
    return props


def parse_set_statement(parser: GpmlParser, text: str) -> SetStatement:
    start = parser.peek().position
    parser.advance()  # SET
    items: list[SetItem] = []
    while True:
        var = parser.expect_ident()
        if parser.accept_punct("."):
            prop = parser.expect_name()
            parser.expect_punct("=")
            items.append(SetItem(var=var, prop=prop, value=parser.parse_expression()))
        elif parser.at_punct(":"):
            items.append(SetItem(var=var, labels=_parse_label_list(parser)))
        else:
            parser.error("expected '.' (property) or ':' (label) after SET variable")
        if not parser.accept_punct(","):
            break
    end = parser.peek().position
    return SetStatement(items=items, text=" ".join(text[start:end].split()))


def parse_delete_statement(parser: GpmlParser, text: str) -> DeleteStatement:
    start = parser.peek().position
    detach = False
    if _word(parser) == "DETACH":
        parser.advance()
        detach = True
    if _word(parser) != "DELETE":
        parser.error("expected DELETE")
    parser.advance()
    variables = [parser.expect_ident()]
    while parser.accept_punct(","):
        variables.append(parser.expect_ident())
    end = parser.peek().position
    return DeleteStatement(
        variables=variables, detach=detach, text=" ".join(text[start:end].split())
    )


# ----------------------------------------------------------------------
# Compilation (driven by repro.gql.pipeline.compile_pipeline)
# ----------------------------------------------------------------------
def _check_expr(expr: Expr, known: dict[str, str], text: str) -> None:
    unknown = expr.variables() - set(known)
    if unknown:
        raise GqlError(
            f"unknown variable(s) {', '.join(sorted(unknown))} in {text!r}"
        )


def _require_element_var(var: str, bound: dict[str, str], text: str) -> None:
    if var not in bound:
        raise GqlError(f"unknown variable {var!r} in {text!r}")
    if bound[var] not in (_SINGLETON, _VALUE):
        raise GqlError(
            f"variable {var!r} is a {bound[var]} and cannot be mutated "
            f"in {text!r}; only singleton element variables can"
        )


def compile_insert(
    statement: InsertStatement, bound: dict[str, str]
) -> tuple["CompiledInsert", list[str]]:
    """Static checks; returns the compiled stage + newly bound variables.

    ``bound`` is read-only here; the caller records the new variables.
    Checks follow creation order (nodes left to right, each edge right
    after its second endpoint), so a property expression may reference
    any element created earlier in the same INSERT.
    """
    known = dict(bound)
    new_vars: list[str] = []

    def bind(var: str) -> None:
        known[var] = _SINGLETON
        new_vars.append(var)

    for path in statement.paths:
        for index, node in enumerate(path.nodes):
            if node.var is not None and node.var in known:
                if node.labels or node.props:
                    raise GqlError(
                        f"variable {node.var!r} is already bound; INSERT "
                        f"cannot attach labels or properties to it "
                        f"(in {statement.text!r})"
                    )
                _require_element_var(node.var, known, statement.text)
            else:
                for _, expr in node.props:
                    _check_expr(expr, known, statement.text)
                if node.var is not None:
                    bind(node.var)
            if index > 0:
                edge = path.edges[index - 1]
                if edge.var is not None and edge.var in known:
                    raise GqlError(
                        f"edge variable {edge.var!r} is already bound; INSERT "
                        f"edge variables must be fresh (in {statement.text!r})"
                    )
                for _, expr in edge.props:
                    _check_expr(expr, known, statement.text)
                if edge.var is not None:
                    bind(edge.var)
    return CompiledInsert(statement), new_vars


def compile_set(statement: SetStatement, bound: dict[str, str]) -> "CompiledSet":
    for item in statement.items:
        _require_element_var(item.var, bound, statement.text)
        if item.value is not None:
            _check_expr(item.value, bound, statement.text)
    return CompiledSet(statement)


def compile_delete(
    statement: DeleteStatement, bound: dict[str, str]
) -> "CompiledDelete":
    for var in statement.variables:
        _require_element_var(var, bound, statement.text)
    return CompiledDelete(statement)


# ----------------------------------------------------------------------
# Compiled stages (apply() signature shared with the read statements)
# ----------------------------------------------------------------------
def _eval_props(
    graph: PropertyGraph, row: dict[str, Any], props: list[tuple[str, Expr]]
) -> dict[str, Any]:
    out: dict[str, Any] = {}
    ctx = EvalContext(bindings=row, graph=graph)
    for name, expr in props:
        value = expr.evaluate(ctx)
        if not is_null(value):  # NULL-valued properties are omitted
            out[name] = value
    return out


@dataclass
class CompiledInsert:
    statement: InsertStatement

    def mode_lines(self) -> list[str]:
        created = sum(
            len(path.nodes) + len(path.edges) for path in self.statement.paths
        )
        return [
            f"[{BLOCKING}] materialize incoming rows, then create up to "
            f"{created} element(s) per row"
        ]

    def apply(
        self,
        graph: PropertyGraph,
        incoming: Iterator[dict[str, Any]],
        config: MatcherConfig,
        budget: Optional[RowBudget],
        stats: Optional[PipelineStats],
        span: Optional[Span] = None,
    ) -> Iterator[dict[str, Any]]:
        out = []
        for row in list(incoming):  # pipeline breaker: upstream reads finish
            row = dict(row)
            for path in self.statement.paths:
                previous: Optional[str] = None
                for index, node in enumerate(path.nodes):
                    current = self._resolve_node(graph, row, node)
                    if index > 0:
                        edge = path.edges[index - 1]
                        first, second = (
                            (previous, current) if edge.right else (current, previous)
                        )
                        handle = graph.add_edge(
                            None,
                            first,
                            second,
                            labels=edge.labels,
                            properties=_eval_props(graph, row, edge.props),
                        )
                        if edge.var is not None:
                            row[edge.var] = handle
                    previous = current
            out.append(row)
        return iter(out)

    def _resolve_node(
        self, graph: PropertyGraph, row: dict[str, Any], node: InsertNode
    ) -> str:
        if node.var is not None and node.var in row:
            value = row[node.var]
            if is_null(value):
                raise GqlError(
                    f"INSERT cannot attach an edge to NULL-bound variable "
                    f"{node.var!r} (in {self.statement.text!r})"
                )
            if not isinstance(value, Node):
                raise GqlError(
                    f"variable {node.var!r} is not a node "
                    f"(in {self.statement.text!r})"
                )
            if not graph.has_node(value.id):
                raise GqlError(
                    f"node {value.id!r} bound to {node.var!r} was deleted "
                    f"(in {self.statement.text!r})"
                )
            return value.id
        handle = graph.add_node(
            None, labels=node.labels, properties=_eval_props(graph, row, node.props)
        )
        if node.var is not None:
            row[node.var] = handle
        return handle.id


@dataclass
class CompiledSet:
    statement: SetStatement

    def mode_lines(self) -> list[str]:
        return [
            f"[{BLOCKING}] materialize incoming rows, then apply "
            f"{len(self.statement.items)} update(s) per row"
        ]

    def apply(
        self,
        graph: PropertyGraph,
        incoming: Iterator[dict[str, Any]],
        config: MatcherConfig,
        budget: Optional[RowBudget],
        stats: Optional[PipelineStats],
        span: Optional[Span] = None,
    ) -> Iterator[dict[str, Any]]:
        rows = list(incoming)  # pipeline breaker: upstream reads finish
        for row in rows:
            for item in self.statement.items:
                target = row.get(item.var, NULL)
                if is_null(target):  # OPTIONAL MATCH miss: skip, like Cypher
                    continue
                if not isinstance(target, (Node, Edge)):
                    raise GqlError(
                        f"SET target {item.var!r} is not an element "
                        f"(in {self.statement.text!r})"
                    )
                if target.id not in graph:
                    continue  # deleted by an earlier row/statement
                if item.labels is not None:
                    graph.set_labels(
                        target.id, graph.labels_of(target.id) | frozenset(item.labels)
                    )
                else:
                    value = item.value.evaluate(
                        EvalContext(bindings=row, graph=graph)
                    )
                    if is_null(value):
                        graph.remove_property(target.id, item.prop)
                    else:
                        graph.set_property(target.id, item.prop, value)
        return iter(rows)


@dataclass
class CompiledDelete:
    statement: DeleteStatement

    def mode_lines(self) -> list[str]:
        mode = "DETACH DELETE" if self.statement.detach else "DELETE"
        return [
            f"[{BLOCKING}] materialize incoming rows, then {mode} "
            f"{', '.join(self.statement.variables)} per row (edges first)"
        ]

    def apply(
        self,
        graph: PropertyGraph,
        incoming: Iterator[dict[str, Any]],
        config: MatcherConfig,
        budget: Optional[RowBudget],
        stats: Optional[PipelineStats],
        span: Optional[Span] = None,
    ) -> Iterator[dict[str, Any]]:
        rows = list(incoming)  # pipeline breaker: upstream reads finish
        for row in rows:
            targets: list[Any] = []
            for name in self.statement.variables:
                value = row.get(name, NULL)
                if is_null(value):
                    continue
                if not isinstance(value, (Node, Edge)):
                    raise GqlError(
                        f"DELETE target {name!r} is not an element "
                        f"(in {self.statement.text!r})"
                    )
                targets.append(value)
            # Edges first, so DELETE n, t never trips over n's incidences;
            # elements already removed by an earlier row are skipped.
            for target in targets:
                if isinstance(target, Edge) and graph.has_edge(target.id):
                    graph.remove_edge(target.id)
            for target in targets:
                if isinstance(target, Node) and graph.has_node(target.id):
                    if not self.statement.detach and graph.incidences(target.id):
                        raise GqlError(
                            f"cannot DELETE node {target.id!r}: it still has "
                            f"incident edges (use DETACH DELETE)"
                        )
                    graph.remove_node(target.id)
        return iter(rows)
