"""GQL sessions: a catalog of graphs plus query execution.

A session holds named property graphs (GQL's catalog capability, reduced
to what the paper's GPML scope needs) and executes read queries against
them.  The graph is chosen by ``USE <name>`` in the query text, by the
``graph`` argument, or by the session default.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import GqlError
from repro.gpml.matcher import MatcherConfig
from repro.gql.query import GqlResult, execute_gql, parse_gql_query
from repro.graph.model import PropertyGraph


class GqlSession:
    """Executes GQL read queries against registered property graphs."""

    def __init__(self, default_graph: PropertyGraph | None = None):
        self._graphs: dict[str, PropertyGraph] = {}
        self._default = default_graph
        if default_graph is not None:
            self._graphs[default_graph.name] = default_graph

    def register_graph(self, name: str, graph: PropertyGraph, default: bool = False) -> None:
        if name in self._graphs:
            raise GqlError(f"graph {name!r} already registered")
        self._graphs[name] = graph
        if default or self._default is None:
            self._default = graph

    def graph(self, name: str) -> PropertyGraph:
        if name not in self._graphs:
            raise GqlError(f"unknown graph {name!r}")
        return self._graphs[name]

    def execute(
        self,
        query: str,
        graph: PropertyGraph | None = None,
        config: MatcherConfig | None = None,
    ) -> GqlResult:
        parsed = parse_gql_query(query)
        target: Optional[PropertyGraph]
        if parsed.graph_name is not None:
            target = self.graph(parsed.graph_name)
        elif graph is not None:
            target = graph
        else:
            target = self._default
        if target is None:
            raise GqlError("no graph selected: USE <name>, pass graph=, or set a default")
        return execute_gql(target, parsed, config)
