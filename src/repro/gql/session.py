"""GQL sessions: a catalog of graphs plus query execution.

A session holds named property graphs (GQL's catalog capability, reduced
to what the paper's GPML scope needs) and executes read queries against
them.  The graph is chosen by ``USE <name>`` in the query text, by the
``graph`` argument, or by the session default.

:meth:`GqlSession.execute` materializes; :meth:`GqlSession.execute_iter`
streams records as the search finds matches; :meth:`GqlSession.exists`
and :meth:`GqlSession.first` push a one-row budget down into the NFA
search, so probing a huge graph for *any* match costs a handful of steps.

Pass a :class:`~repro.obs.worklog.Telemetry` to record every query the
session runs into a workload metrics registry and bounded query log
(fingerprint, wall time, rows, steps, plan anchors; slow queries keep
their full trace).  The default ``telemetry=None`` costs one ``is None``
check per execution and leaves the untraced paths byte-identical.
"""

from __future__ import annotations

import dataclasses
from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.worklog import Telemetry

from repro.errors import GqlError
from repro.gpml.matcher import MatcherConfig
from repro.gpml.streaming import PipelineStats
from repro.gql.query import (
    GqlQuery,
    GqlResult,
    execute_gql,
    execute_gql_iter,
    explain_gql,
    parse_gql_query,
)
from repro.graph.model import PropertyGraph


class GqlSession:
    """Executes GQL read queries against registered property graphs."""

    def __init__(
        self,
        default_graph: PropertyGraph | None = None,
        telemetry: "Telemetry | None" = None,
    ):
        self._graphs: dict[str, PropertyGraph] = {}
        self._default = default_graph
        self.telemetry = telemetry
        if default_graph is not None:
            self._graphs[default_graph.name] = default_graph

    def register_graph(self, name: str, graph: PropertyGraph, default: bool = False) -> None:
        if name in self._graphs:
            raise GqlError(f"graph {name!r} already registered")
        self._graphs[name] = graph
        if default or self._default is None:
            self._default = graph

    def graph(self, name: str) -> PropertyGraph:
        if name not in self._graphs:
            raise GqlError(f"unknown graph {name!r}")
        return self._graphs[name]

    def _resolve(self, parsed, graph: PropertyGraph | None) -> PropertyGraph:
        if parsed.graph_name is not None:
            return self.graph(parsed.graph_name)
        if graph is not None:
            return graph
        if self._default is None:
            raise GqlError("no graph selected: USE <name>, pass graph=, or set a default")
        return self._default

    def _iter_records(
        self,
        query_text: str,
        parsed: GqlQuery,
        graph: PropertyGraph | None,
        config: MatcherConfig | None,
        stats: PipelineStats | None,
    ) -> Iterator[dict[str, Any]]:
        """The one execution path: telemetry wraps it when configured."""
        resolved = self._resolve(parsed, graph)
        if self.telemetry is None:
            return execute_gql_iter(resolved, parsed, config, stats)
        if stats is None:
            stats = self.telemetry.stats_for(query=query_text, engine="gql")
        start = perf_counter()
        try:
            rows = execute_gql_iter(resolved, parsed, config, stats)
        except Exception:
            # Write pipelines execute eagerly, so a failed statement
            # raises here — after its rollback but before the delivery
            # iterator exists.  Record the rolled-back transaction; the
            # mutation counters stay untouched (stats.mutations is only
            # set on commit).
            if stats.transaction is not None:
                self.telemetry.record_query(
                    "gql", query_text, perf_counter() - start, stats
                )
            raise
        return self.telemetry.instrument(rows, "gql", query_text, stats)

    def execute(
        self,
        query: str,
        graph: PropertyGraph | None = None,
        config: MatcherConfig | None = None,
    ) -> GqlResult:
        parsed = parse_gql_query(query)
        if self.telemetry is None:
            return execute_gql(self._resolve(parsed, graph), parsed, config)
        stats = self.telemetry.stats_for(query=query, engine="gql")
        records = list(self._iter_records(query, parsed, graph, config, stats))
        return GqlResult(
            columns=[item.alias for item in parsed.items],
            records=records,
            mutations=stats.mutations,
        )

    def execute_iter(
        self,
        query: str,
        graph: PropertyGraph | None = None,
        config: MatcherConfig | None = None,
        stats: PipelineStats | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Execute a read query as a lazy stream of projected records."""
        parsed = parse_gql_query(query)
        return self._iter_records(query, parsed, graph, config, stats)

    def first(
        self,
        query: str,
        graph: PropertyGraph | None = None,
        config: MatcherConfig | None = None,
    ) -> Optional[dict[str, Any]]:
        """The first result record, or None — terminating the search early.

        Equivalent to tightening the query's LIMIT to 1 (honouring any
        OFFSET): the row budget stops the underlying NFA search as soon
        as one record has been delivered.
        """
        parsed = parse_gql_query(query)
        limit = 1 if parsed.limit is None else min(parsed.limit, 1)
        limited = dataclasses.replace(parsed, limit=limit)
        return next(
            iter(self._iter_records(query, limited, graph, config, None)),
            None,
        )

    def exists(
        self,
        query: str,
        graph: PropertyGraph | None = None,
        config: MatcherConfig | None = None,
    ) -> bool:
        """Whether the query yields at least one record (early-terminating)."""
        return self.first(query, graph, config) is not None

    def register_standing(
        self,
        query: str,
        graph: PropertyGraph | None = None,
        config: MatcherConfig | None = None,
        limit: Optional[int] = None,
    ):
        """Register *query* as a standing query against the resolved graph.

        Returns a :class:`~repro.gql.standing.StandingQuery` already
        filled with the current result; call its ``refresh()`` after
        mutations to receive the delta, ``rows()`` for the maintained
        view, and ``close()`` to unsubscribe.  The session's telemetry
        (when configured) records every refresh.
        """
        # Imported lazily: standing pulls in the planner index layer.
        from repro.gql.standing import StandingQuery

        parsed = parse_gql_query(query)
        return StandingQuery(
            self._resolve(parsed, graph),
            parsed,
            config=config,
            limit=limit,
            telemetry=self.telemetry,
            query_text=query,
        )

    def explain_analyze(
        self,
        query: str,
        graph: PropertyGraph | None = None,
        config: MatcherConfig | None = None,
        stats: PipelineStats | None = None,
    ) -> str:
        """Execute the query and render its pipeline with actuals.

        Each statement (and every engine stage below it) is annotated
        with observed rows in/out, matcher steps, inclusive wall time,
        and estimated-vs-actual cardinality for anchored searches.  Pass
        a traced ``stats`` to keep the underlying span tree for JSON
        export (see :mod:`repro.obs`).
        """
        # Imported lazily: repro.obs.analyze pulls in both hosts.
        from repro.obs.analyze import explain_analyze_gql

        parsed = parse_gql_query(query)
        return explain_analyze_gql(
            self._resolve(parsed, graph), parsed, config, stats
        )

    def explain(self, query: str, config: MatcherConfig | None = None) -> str:
        """Render the query's statement pipeline (see :func:`explain_gql`).

        Graph-independent: shows per-statement execution modes (seeded /
        direct / hash-join chained MATCH, LET/FILTER row transforms) and
        the [streaming]/[blocking] classification of every stage.  Pass
        the ``config`` you execute with so the modes match.
        """
        return explain_gql(query, config)
