"""GQL graph outputs (Figure 9, right output; Section 6.6).

The paper: "each path binding defines a subgraph of the input graph given
by its nodes and edges, together with annotations, given by variables
assigned to them in the path binding.  This opens up more possibilities
for structuring query outputs."

This module implements that forward-looking output shape:

* :func:`binding_subgraph` — the subgraph of one binding row, with a
  ``_bound_to`` annotation property listing the variables naming each
  element,
* :func:`result_graph` — the union subgraph over all rows of a
  :class:`~repro.gpml.engine.MatchResult` (a *graph view* of the match),
* :func:`GqlSession.execute_graph <execute_match_as_graph>` — run a
  MATCH and return the view as a new :class:`PropertyGraph`.
"""

from __future__ import annotations

from repro.gpml.engine import BindingRow, MatchResult, match
from repro.gpml.matcher import MatcherConfig
from repro.graph.model import Edge, Node, PropertyGraph


def _collect_elements(row: BindingRow) -> tuple[set[str], set[str], dict[str, set[str]]]:
    """Node ids, edge ids, and element -> variable annotations of a row."""
    node_ids: set[str] = set()
    edge_ids: set[str] = set()
    annotations: dict[str, set[str]] = {}
    for path in row.paths:
        node_ids.update(path.node_ids)
        edge_ids.update(path.edge_ids)
    for name, value in row.values.items():
        values = value if isinstance(value, list) else [value]
        for item in values:
            if isinstance(item, Node):
                node_ids.add(item.id)
                annotations.setdefault(item.id, set()).add(name)
            elif isinstance(item, Edge):
                edge_ids.add(item.id)
                annotations.setdefault(item.id, set()).add(name)
    return node_ids, edge_ids, annotations


def _build_subgraph(
    source: PropertyGraph,
    node_ids: set[str],
    edge_ids: set[str],
    annotations: dict[str, set[str]],
    name: str,
) -> PropertyGraph:
    out = PropertyGraph(name=name)
    for node_id in sorted(node_ids):
        node = source.node(node_id)
        properties = dict(node.properties)
        if node_id in annotations:
            properties["_bound_to"] = ",".join(sorted(annotations[node_id]))
        out.add_node(node_id, labels=node.labels, properties=properties)
    for edge_id in sorted(edge_ids):
        edge = source.edge(edge_id)
        first, second = edge.endpoint_ids
        properties = dict(edge.properties)
        if edge_id in annotations:
            properties["_bound_to"] = ",".join(sorted(annotations[edge_id]))
        out.add_edge(
            edge_id, first, second,
            labels=edge.labels, properties=properties, directed=edge.is_directed,
        )
    return out


def binding_subgraph(
    graph: PropertyGraph, row: BindingRow, name: str = "binding"
) -> PropertyGraph:
    """The subgraph defined by one path binding (Section 6.6)."""
    node_ids, edge_ids, annotations = _collect_elements(row)
    return _build_subgraph(graph, node_ids, edge_ids, annotations, name)


def result_graph(
    graph: PropertyGraph, result: MatchResult, name: str = "match_view"
) -> PropertyGraph:
    """The union subgraph over all binding rows — a graph view of a match."""
    node_ids: set[str] = set()
    edge_ids: set[str] = set()
    annotations: dict[str, set[str]] = {}
    for row in result.rows:
        row_nodes, row_edges, row_ann = _collect_elements(row)
        node_ids |= row_nodes
        edge_ids |= row_edges
        for element_id, names in row_ann.items():
            annotations.setdefault(element_id, set()).update(names)
    return _build_subgraph(graph, node_ids, edge_ids, annotations, name)


def execute_match_as_graph(
    graph: PropertyGraph,
    query: str,
    name: str = "match_view",
    config: MatcherConfig | None = None,
) -> PropertyGraph:
    """Run a MATCH statement and return its graph view as a new graph."""
    return result_graph(graph, match(graph, query, config), name=name)
