"""GQL read queries: MATCH ... RETURN with ordering, limits, aggregation.

Execution is streaming end to end when the query allows it:
:func:`execute_gql_iter` yields projected records as the underlying
pattern search discovers matches, and — when no ORDER BY and no vertical
aggregate intervenes — pushes a :class:`~repro.gpml.streaming.RowBudget`
of ``OFFSET + LIMIT`` rows down into the NFA search, so ``LIMIT 1`` on a
large graph stops after the first match instead of enumerating them all.
DISTINCT streams too (the budget counts *distinct* delivered records, so
the search keeps running exactly until enough survive).  ORDER BY and
vertical aggregation are pipeline breakers: the full result is
materialized first, then sliced.  :func:`execute_gql` is a thin
materializing wrapper — ``list()`` of the iterator, same rows, same
order.

Aggregation semantics (documented refinement, matching Cypher/PGQL
practice and the paper's Section 3 discussion):

* an aggregate over a **group variable** (one declared under a
  quantifier) is *horizontal*: it folds over the iterations within one
  binding row, like PGQL's group variables — ``SUM(e.amount)`` per path;
* an aggregate over a **singleton** (or path) variable is *vertical*: it
  folds over binding rows, with implicit grouping by the non-aggregate
  RETURN items, like Cypher's ``count(x)``.

Paths are first-class: ``RETURN p`` yields :class:`~repro.graph.path.Path`
values, and ``length(p)`` / ``nodes(p)`` / ``edges(p)`` work on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.errors import GqlError
from repro.gpml.engine import BindingRow, MatchResult, match_iter, prepare
from repro.gpml.expr import EvalContext, Expr
from repro.gpml.matcher import MatcherConfig
from repro.gpml.streaming import PipelineStats, RowBudget
from repro.gpml.parser import GpmlParser
from repro.graph.model import Edge, Node, PropertyGraph
from repro.graph.path import Path
from repro.values import NULL, is_null


@dataclass
class ReturnItem:
    expr: Expr
    alias: str
    vertical_aggregate: bool = False


@dataclass
class OrderItem:
    expr: Expr
    descending: bool


@dataclass
class GqlQuery:
    """A parsed GQL read query."""

    graph_name: Optional[str]
    pattern_text: str
    items: list[ReturnItem]
    distinct: bool
    order_by: list[OrderItem]
    limit: Optional[int]
    offset: Optional[int]


class GqlResult:
    """Rows of projected values; elements and paths stay first-class."""

    def __init__(self, columns: list[str], records: list[dict[str, Any]]):
        self.columns = columns
        self.records = records

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.records)

    def column(self, name: str) -> list[Any]:
        if name not in self.columns:
            raise GqlError(f"unknown result column {name!r}")
        return [record[name] for record in self.records]

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if len(self.records) != 1 or len(self.columns) != 1:
            raise GqlError(
                f"scalar() requires a 1x1 result, got "
                f"{len(self.records)}x{len(self.columns)}"
            )
        return self.records[0][self.columns[0]]

    def to_table(self):
        """Project into a relational table (ids for elements/paths)."""
        from repro.pgq.graph_table import _to_sql_value
        from repro.pgq.table import Table

        rows = [
            tuple(_to_sql_value(record[c]) for c in self.columns)
            for record in self.records
        ]
        return Table(self.columns, rows, name="gql_result")

    def __repr__(self) -> str:
        return f"GqlResult({len(self.records)} rows, columns={self.columns})"


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def parse_gql_query(text: str) -> GqlQuery:
    parser = GpmlParser(text)
    graph_name = None
    token = parser.peek()
    if token.type == "IDENT" and str(token.value).upper() == "USE":
        parser.advance()
        graph_name = parser.expect_ident()
    pattern_start = parser.peek().position
    parser.expect_keyword("MATCH")
    parser.parse_graph_pattern_body()
    if not parser.at_keyword("RETURN"):
        parser.error("GQL query requires a RETURN clause")
    pattern_text = text[pattern_start : parser.peek().position]
    parser.advance()  # RETURN
    distinct = bool(parser.accept_keyword("DISTINCT"))
    items: list[ReturnItem] = []
    while True:
        expr = parser.parse_expression()
        if parser.accept_keyword("AS"):
            alias = parser.expect_name()
        else:
            alias = _default_alias(expr, len(items))
        items.append(ReturnItem(expr=expr, alias=alias))
        if not parser.accept_punct(","):
            break
    order_by: list[OrderItem] = []
    if parser.accept_keyword("ORDER"):
        parser.expect_keyword("BY")
        while True:
            expr = parser.parse_expression()
            descending = False
            if parser.accept_keyword("DESC"):
                descending = True
            else:
                parser.accept_keyword("ASC")
            order_by.append(OrderItem(expr=expr, descending=descending))
            if not parser.accept_punct(","):
                break
    limit = offset = None
    # LIMIT and OFFSET may come in either order.
    for _ in range(2):
        if parser.accept_keyword("LIMIT"):
            limit = parser.expect_number()
        elif parser.accept_keyword("OFFSET"):
            offset = parser.expect_number()
    parser.expect_eof()
    return GqlQuery(
        graph_name=graph_name,
        pattern_text=pattern_text,
        items=items,
        distinct=distinct,
        order_by=order_by,
        limit=limit,
        offset=offset,
    )


def _default_alias(expr: Expr, index: int) -> str:
    text = str(expr)
    if text.isidentifier():
        return text
    head, dot, tail = text.partition(".")
    if dot and head.isidentifier() and tail.isidentifier():
        return text
    return f"col{index + 1}"


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute_gql(
    graph: PropertyGraph, query: "str | GqlQuery", config: MatcherConfig | None = None
) -> GqlResult:
    """Materializing wrapper: ``list()`` of :func:`execute_gql_iter`."""
    parsed = parse_gql_query(query) if isinstance(query, str) else query
    records = list(execute_gql_iter(graph, parsed, config))
    return GqlResult(columns=[item.alias for item in parsed.items], records=records)


def execute_gql_iter(
    graph: PropertyGraph,
    query: "str | GqlQuery",
    config: MatcherConfig | None = None,
    stats: Optional[PipelineStats] = None,
) -> Iterator[dict[str, Any]]:
    """Execute a GQL read query as a lazy stream of projected records.

    Streams whenever the query has no ORDER BY and no vertical aggregate
    (the two record-level pipeline breakers), pushing an ``OFFSET+LIMIT``
    row budget down into the pattern search; otherwise materializes the
    breaker's input and yields the sliced records.  Either way the
    records equal :func:`execute_gql`'s, in the same order.
    """
    parsed = parse_gql_query(query) if isinstance(query, str) else query
    prepared = prepare(parsed.pattern_text)
    has_vertical = _mark_vertical_aggregates(parsed, prepared)

    if has_vertical or parsed.order_by:
        # Pipeline breakers: the full match result is needed before the
        # first record can be emitted; LIMIT/OFFSET slice afterwards.
        result = MatchResult(
            rows=list(match_iter(graph, prepared, config, stats=stats)),
            variables=prepared.visible_variables(),
        )
        if has_vertical:
            records = _grouped_records(graph, parsed, result)
        else:
            records = _plain_records(graph, parsed, result)
        if parsed.distinct:
            records = _distinct_records(records, parsed)
        if parsed.order_by:
            records = _order_records(graph, records, parsed)
        if parsed.offset is not None:
            records = records[parsed.offset :]
        if parsed.limit is not None:
            records = records[: parsed.limit]
        yield from records
        return

    # Streaming path: project row by row, count delivered (post-DISTINCT)
    # records against an OFFSET+LIMIT budget that stops the search itself.
    offset = parsed.offset or 0
    limit = parsed.limit
    if limit == 0:
        return
    budget = RowBudget(None if limit is None else offset + limit)
    seen: Optional[set] = set() if parsed.distinct else None
    for row in match_iter(graph, prepared, config, budget=budget, stats=stats):
        ctx = EvalContext(bindings=row.values, graph=graph)
        record = {item.alias: item.expr.evaluate(ctx) for item in parsed.items}
        if seen is not None:
            key = tuple(_group_key(record[item.alias]) for item in parsed.items)
            if key in seen:
                continue
            seen.add(key)
        budget.take()
        if budget.taken <= offset:
            continue
        yield record
        if budget.satisfied:
            return


def _mark_vertical_aggregates(parsed: GqlQuery, prepared) -> bool:
    """Tag RETURN items that fold over rows; True when any item does."""
    group_vars: set[str] = set()
    for path_analysis in prepared.analysis.paths:
        group_vars |= set(path_analysis.group_vars)
    has_vertical = False
    for item in parsed.items:
        item.vertical_aggregate = any(
            agg.var not in group_vars for agg in item.expr.aggregates()
        )
        has_vertical = has_vertical or item.vertical_aggregate
    return has_vertical


def _plain_records(
    graph: PropertyGraph, parsed: GqlQuery, result: MatchResult
) -> list[dict[str, Any]]:
    records = []
    for row in result.rows:
        ctx = EvalContext(bindings=row.values, graph=graph)
        records.append({item.alias: item.expr.evaluate(ctx) for item in parsed.items})
    return records


class _GroupContext(EvalContext):
    """Aggregation context: singleton lookups see the representative row,
    group_items folds over all rows of the group."""

    def __init__(self, rows: list[BindingRow], graph: PropertyGraph):
        super().__init__(bindings=rows[0].values if rows else {}, graph=graph)
        self._rows = rows

    def group_items(self, name: str) -> list[Any]:
        items = []
        for row in self._rows:
            value = row.values.get(name, NULL)
            if isinstance(value, (list, tuple)):
                items.extend(value)
            elif not is_null(value):
                items.append(value)
        return items


def _grouped_records(
    graph: PropertyGraph, parsed: GqlQuery, result: MatchResult
) -> list[dict[str, Any]]:
    key_items = [item for item in parsed.items if not item.vertical_aggregate]
    groups: dict[tuple, list[BindingRow]] = {}
    order: list[tuple] = []
    key_values: dict[tuple, dict[str, Any]] = {}
    for row in result.rows:
        ctx = EvalContext(bindings=row.values, graph=graph)
        values = {item.alias: item.expr.evaluate(ctx) for item in key_items}
        key = tuple(_group_key(values[item.alias]) for item in key_items)
        if key not in groups:
            order.append(key)
            key_values[key] = values
        groups.setdefault(key, []).append(row)
    records = []
    for key in order:
        rows = groups[key]
        record = dict(key_values[key])
        group_ctx = _GroupContext(rows, graph)
        for item in parsed.items:
            if item.vertical_aggregate:
                record[item.alias] = item.expr.evaluate(group_ctx)
        # preserve RETURN item order
        records.append({item.alias: record[item.alias] for item in parsed.items})
    return records


def _group_key(value: Any) -> Any:
    if isinstance(value, (Node, Edge)):
        return ("element", value.id)
    if isinstance(value, Path):
        return ("path", value.element_ids)
    if isinstance(value, list):
        return tuple(_group_key(v) for v in value)
    if is_null(value):
        return ("null",)
    return value


def _distinct_records(records: list[dict[str, Any]], parsed: GqlQuery) -> list[dict[str, Any]]:
    seen: set[tuple] = set()
    out = []
    for record in records:
        key = tuple(_group_key(record[item.alias]) for item in parsed.items)
        if key not in seen:
            seen.add(key)
            out.append(record)
    return out


def _order_records(
    graph: PropertyGraph, records: list[dict[str, Any]], parsed: GqlQuery
) -> list[dict[str, Any]]:
    # Per-item direction via stable sorts composed right-to-left.
    ordered = list(records)
    for index in range(len(parsed.order_by) - 1, -1, -1):
        order = parsed.order_by[index]

        def single_key(record: dict[str, Any], order=order) -> tuple:
            ctx = EvalContext(bindings=record, graph=graph)
            value = order.expr.evaluate(ctx)
            if is_null(value):
                return (1, "", "") if not order.descending else (-1, "", "")
            return (0, type(value).__name__, value)

        ordered = sorted(ordered, key=single_key, reverse=order.descending)
    return ordered
