"""GQL read queries: linear statement composition ending in RETURN.

A query is a *linear composition* of statements — ``MATCH``, ``OPTIONAL
MATCH``, ``LET`` and ``FILTER``, in any order and number — followed by a
final ``RETURN ... [ORDER BY] [LIMIT/OFFSET]`` (PAPER.md §2, §6).  Each
statement is a streaming transformer over the working table of binding
rows (see :mod:`repro.gql.pipeline`); RETURN projects the final table.

Execution is streaming end to end when the query allows it:
:func:`execute_gql_iter` yields projected records as the underlying
pattern searches discover matches, and — when no ORDER BY and no vertical
aggregate intervenes — pushes a :class:`~repro.gpml.streaming.RowBudget`
of ``OFFSET + LIMIT`` rows down *through the whole chain*, so ``LIMIT 1``
on a multi-statement pipeline stops the first statement's NFA search
after one delivered record.  DISTINCT streams too (the budget counts
*distinct* delivered records).  ORDER BY and vertical aggregation are
pipeline breakers: the full result is materialized first, then sliced.
:func:`execute_gql` is a thin materializing wrapper — ``list()`` of the
iterator, same rows, same order.

A chained ``MATCH`` joins on the variables already bound upstream.  When
the pattern pins an end element to such a variable, the matcher is
*seeded* with the bound node per incoming row (reusing the planner's
anchor machinery); otherwise it falls back to hash-join semantics.
``OPTIONAL MATCH`` NULL-pads rows without join partners.  ``EXPLAIN``
(:func:`explain_gql`) renders the statement pipeline with a
[streaming]/[blocking] classification per stage.

Aggregation semantics (documented refinement, matching Cypher/PGQL
practice and the paper's Section 3 discussion):

* an aggregate over a **group variable** (one declared under a
  quantifier) is *horizontal*: it folds over the iterations within one
  binding row, like PGQL's group variables — ``SUM(e.amount)`` per path;
* an aggregate over a **singleton** (or path, or LET-defined) variable
  is *vertical*: it folds over binding rows, with implicit grouping by
  the non-aggregate RETURN items, like Cypher's ``count(x)``.

Paths are first-class: ``RETURN p`` yields :class:`~repro.graph.path.Path`
values, and ``length(p)`` / ``nodes(p)`` / ``edges(p)`` work on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Iterator, Optional

from repro.errors import GqlError
from repro.gpml.expr import EvalContext, Expr
from repro.gpml.lexer import IDENT
from repro.gpml.matcher import MatcherConfig
from repro.gpml.parser import GpmlParser
from repro.gpml.streaming import BLOCKING, STREAMING, PipelineStats, RowBudget
from repro.gql.dml import (
    parse_delete_statement,
    parse_insert_statement,
    parse_set_statement,
)
from repro.gql.pipeline import (
    CompiledPipeline,
    FilterStatement,
    LetStatement,
    MatchStatement,
    compile_pipeline,
)
from repro.graph.model import Edge, Node, PropertyGraph
from repro.graph.path import Path
from repro.values import NULL, is_null


@dataclass
class ReturnItem:
    expr: Expr
    alias: str
    vertical_aggregate: bool = False


@dataclass
class OrderItem:
    expr: Expr
    descending: bool


@dataclass
class GqlQuery:
    """A parsed GQL read query: a statement list plus the RETURN clause."""

    graph_name: Optional[str]
    statements: list
    items: list[ReturnItem]
    distinct: bool
    order_by: list[OrderItem]
    limit: Optional[int]
    offset: Optional[int]

    @property
    def pattern_text(self) -> str:
        """The first MATCH statement's pattern text (convenience/compat)."""
        for statement in self.statements:
            if isinstance(statement, MatchStatement):
                return statement.pattern_text
        raise GqlError("query has no MATCH statement")


class GqlResult:
    """Rows of projected values; elements and paths stay first-class.

    For write queries, :attr:`mutations` carries the committed
    transaction's summary counts (``{"nodes_created": 1, ...}``); it is
    None for read queries.
    """

    def __init__(
        self,
        columns: list[str],
        records: list[dict[str, Any]],
        mutations: Optional[dict] = None,
    ):
        self.columns = columns
        self.records = records
        self.mutations = mutations

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.records)

    def column(self, name: str) -> list[Any]:
        if name not in self.columns:
            raise GqlError(f"unknown result column {name!r}")
        return [record[name] for record in self.records]

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if len(self.records) != 1 or len(self.columns) != 1:
            raise GqlError(
                f"scalar() requires a 1x1 result, got "
                f"{len(self.records)}x{len(self.columns)}"
            )
        return self.records[0][self.columns[0]]

    def to_table(self):
        """Project into a relational table (ids for elements/paths)."""
        from repro.pgq.graph_table import _to_sql_value
        from repro.pgq.table import Table

        rows = [
            tuple(_to_sql_value(record[c]) for c in self.columns)
            for record in self.records
        ]
        return Table(self.columns, rows, name="gql_result")

    def __repr__(self) -> str:
        return f"GqlResult({len(self.records)} rows, columns={self.columns})"


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def _at_word(parser: GpmlParser, word: str) -> bool:
    """Statement words (OPTIONAL/LET/FILTER/USE) are identifiers to the
    shared lexer — matched textually, like the SQL host's keywords."""
    token = parser.peek()
    return token.type == IDENT and str(token.value).upper() == word


def parse_gql_query(text: str) -> GqlQuery:
    parser = GpmlParser(text)
    graph_name = None
    if _at_word(parser, "USE"):
        parser.advance()
        graph_name = parser.expect_ident()
    statements: list = []
    has_writes = False
    while True:
        if parser.at_keyword("MATCH"):
            statements.append(_parse_match_statement(parser, text, optional=False))
        elif _at_word(parser, "OPTIONAL"):
            start = parser.peek().position
            parser.advance()
            if not parser.at_keyword("MATCH"):
                parser.error("expected MATCH after OPTIONAL")
            statements.append(
                _parse_match_statement(parser, text, optional=True, start=start)
            )
        elif _at_word(parser, "LET"):
            statements.append(_parse_let_statement(parser, text))
        elif _at_word(parser, "FILTER"):
            statements.append(_parse_filter_statement(parser, text))
        elif _at_word(parser, "INSERT"):
            statements.append(parse_insert_statement(parser, text))
            has_writes = True
        elif _at_word(parser, "SET"):
            statements.append(parse_set_statement(parser, text))
            has_writes = True
        elif _at_word(parser, "DELETE") or _at_word(parser, "DETACH"):
            statements.append(parse_delete_statement(parser, text))
            has_writes = True
        else:
            break
    if not statements:
        parser.error(
            "GQL query must start with MATCH, OPTIONAL MATCH, LET, FILTER, "
            "INSERT, SET or DELETE"
        )
    items: list[ReturnItem] = []
    distinct = False
    order_by: list[OrderItem] = []
    limit = offset = None
    if not parser.at_keyword("RETURN"):
        # Write-only queries may omit RETURN; read queries may not.
        if not has_writes:
            parser.error("GQL query requires a RETURN clause")
        parser.expect_eof()
        return GqlQuery(
            graph_name=graph_name,
            statements=statements,
            items=items,
            distinct=distinct,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )
    parser.advance()  # RETURN
    distinct = bool(parser.accept_keyword("DISTINCT"))
    while True:
        expr = parser.parse_expression()
        if parser.accept_keyword("AS"):
            alias = parser.expect_name()
        else:
            alias = _default_alias(expr, len(items))
        items.append(ReturnItem(expr=expr, alias=alias))
        if not parser.accept_punct(","):
            break
    if parser.accept_keyword("ORDER"):
        parser.expect_keyword("BY")
        while True:
            expr = parser.parse_expression()
            descending = False
            if parser.accept_keyword("DESC"):
                descending = True
            else:
                parser.accept_keyword("ASC")
            order_by.append(OrderItem(expr=expr, descending=descending))
            if not parser.accept_punct(","):
                break
    # LIMIT and OFFSET may come in either order.
    for _ in range(2):
        if parser.accept_keyword("LIMIT"):
            limit = parser.expect_number()
        elif parser.accept_keyword("OFFSET"):
            offset = parser.expect_number()
    parser.expect_eof()
    return GqlQuery(
        graph_name=graph_name,
        statements=statements,
        items=items,
        distinct=distinct,
        order_by=order_by,
        limit=limit,
        offset=offset,
    )


def _parse_match_statement(
    parser: GpmlParser, text: str, optional: bool, start: Optional[int] = None
) -> MatchStatement:
    if start is None:
        start = parser.peek().position
    parser.expect_keyword("MATCH")
    body_start = parser.peek().position
    pattern = parser.parse_graph_pattern_body()
    end = parser.peek().position
    return MatchStatement(
        pattern=pattern,
        text=" ".join(text[start:end].split()),
        pattern_text=text[body_start:end],
        optional=optional,
    )


def _parse_let_statement(parser: GpmlParser, text: str) -> LetStatement:
    start = parser.peek().position
    parser.advance()  # LET
    assignments: list[tuple[str, Expr]] = []
    while True:
        name = parser.expect_ident()
        parser.expect_punct("=")
        assignments.append((name, parser.parse_expression()))
        if not parser.accept_punct(","):
            break
    end = parser.peek().position
    return LetStatement(
        assignments=assignments, text=" ".join(text[start:end].split())
    )


def _parse_filter_statement(parser: GpmlParser, text: str) -> FilterStatement:
    start = parser.peek().position
    parser.advance()  # FILTER
    parser.accept_keyword("WHERE")  # GQL allows FILTER [WHERE] <cond>
    condition = parser.parse_expression()
    end = parser.peek().position
    return FilterStatement(
        condition=condition, text=" ".join(text[start:end].split())
    )


def _default_alias(expr: Expr, index: int) -> str:
    text = str(expr)
    if text.isidentifier():
        return text
    head, dot, tail = text.partition(".")
    if dot and head.isidentifier() and tail.isidentifier():
        return text
    return f"col{index + 1}"


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute_gql(
    graph: PropertyGraph, query: "str | GqlQuery", config: MatcherConfig | None = None
) -> GqlResult:
    """Materializing wrapper: ``list()`` of :func:`execute_gql_iter`.

    Write queries additionally surface the transaction summary on
    :attr:`GqlResult.mutations`.
    """
    parsed = parse_gql_query(query) if isinstance(query, str) else query
    compiled = compile_pipeline(parsed.statements, config)
    columns = [item.alias for item in parsed.items]
    if compiled.has_writes:
        records, summary = _execute_write_query(graph, parsed, compiled, config, None)
        return GqlResult(columns=columns, records=records, mutations=summary)
    records = list(_read_query_iter(graph, parsed, compiled, config, None))
    return GqlResult(columns=columns, records=records)


def execute_gql_iter(
    graph: PropertyGraph,
    query: "str | GqlQuery",
    config: MatcherConfig | None = None,
    stats: Optional[PipelineStats] = None,
) -> Iterator[dict[str, Any]]:
    """Execute a GQL query as a stream of projected records.

    Read queries stream whenever they have no ORDER BY and no vertical
    aggregate (the two record-level pipeline breakers), pushing an
    ``OFFSET+LIMIT`` row budget down through every statement's pattern
    search; otherwise the breaker's input is materialized and the sliced
    records are yielded.  Either way the records equal
    :func:`execute_gql`'s, in the same order.

    Write queries (any INSERT/SET/DELETE statement) execute **eagerly at
    call time** inside a graph transaction — commit on success, rollback
    to the bit-identical pre-query state on any error — and the returned
    iterator replays the already-projected records.  Eager execution is
    deliberate: mutations must not depend on whether the caller drains
    the iterator.  With ``stats`` given, ``stats.mutations`` and
    ``stats.transaction`` record the outcome.
    """
    parsed = parse_gql_query(query) if isinstance(query, str) else query
    compiled = compile_pipeline(parsed.statements, config)
    if compiled.has_writes:
        records, _ = _execute_write_query(graph, parsed, compiled, config, stats)
        return iter(records)
    return _read_query_iter(graph, parsed, compiled, config, stats)


def _execute_write_query(
    graph: PropertyGraph,
    parsed: GqlQuery,
    compiled: CompiledPipeline,
    config: MatcherConfig | None,
    stats: Optional[PipelineStats],
) -> tuple[list[dict[str, Any]], dict[str, int]]:
    """Run a write query inside an apply-or-rollback transaction.

    The whole pipeline — pattern searches, mutations, and the RETURN
    projection — runs under one :class:`GraphTransaction`; any error
    restores the pre-query graph (elements, indexes, stats caches, and
    ``version``) before re-raising.  Write queries never push a row
    budget down the chain (a budget would truncate mutations); LIMIT and
    OFFSET slice the *returned records* only.
    """
    has_vertical = _mark_vertical_aggregates(parsed, compiled.group_vars)
    txn = graph.begin_mutation()
    try:
        rows = list(compiled.run(graph, config, stats=stats))
        if parsed.items:
            if has_vertical:
                records = _grouped_records(graph, parsed, rows)
            else:
                records = _plain_records(graph, parsed, rows)
            if parsed.distinct:
                records = _distinct_records(records, parsed)
            if parsed.order_by:
                records = _order_records(graph, records, parsed)
            if parsed.offset is not None:
                records = records[parsed.offset :]
            if parsed.limit is not None:
                records = records[: parsed.limit]
        else:
            records = []
    except BaseException:
        txn.rollback()
        if stats is not None:
            # Rolled-back mutations never happened; only the outcome counts.
            stats.transaction = "rollback"
        raise
    summary = txn.counts()
    txn.commit()
    if stats is not None:
        stats.transaction = "commit"
        stats.mutations = summary
        stats.rows += len(records)
    return records, summary


def _read_query_iter(
    graph: PropertyGraph,
    parsed: GqlQuery,
    compiled: CompiledPipeline,
    config: MatcherConfig | None,
    stats: Optional[PipelineStats],
) -> Iterator[dict[str, Any]]:
    has_vertical = _mark_vertical_aggregates(parsed, compiled.group_vars)
    trace = stats.trace if stats is not None else None

    if has_vertical or parsed.order_by:
        # Pipeline breakers: the full binding table is needed before the
        # first record can be emitted; LIMIT/OFFSET slice afterwards.
        row_stream = compiled.run(graph, config, stats=stats)
        # Created after compiled.run so the trace lists statements in
        # pipeline order; the drain below is still on this span's clock.
        return_span = None
        if trace is not None:
            return_span = trace.root.child(
                "RETURN (vertical aggregation / ORDER BY)",
                kind="statement",
                mode="blocking",
            )
            start = perf_counter()
        rows = list(row_stream)
        if has_vertical:
            records = _grouped_records(graph, parsed, rows)
        else:
            records = _plain_records(graph, parsed, rows)
        if parsed.distinct:
            records = _distinct_records(records, parsed)
        if parsed.order_by:
            records = _order_records(graph, records, parsed)
        if parsed.offset is not None:
            records = records[parsed.offset :]
        if parsed.limit is not None:
            records = records[: parsed.limit]
        if return_span is not None:
            return_span.rows_in = return_span.peak_rows = len(rows)
            return_span.rows_out = len(records)
            return_span.elapsed += perf_counter() - start
        if stats is not None:
            stats.rows += len(records)
        yield from records
        return

    # Streaming path: project row by row, count delivered (post-DISTINCT)
    # records against an OFFSET+LIMIT budget that stops the searches
    # themselves — including the first statement's, through the chain.
    offset = parsed.offset or 0
    limit = parsed.limit
    if limit == 0:
        return
    budget = RowBudget(None if limit is None else offset + limit)
    seen: Optional[set] = set() if parsed.distinct else None
    row_stream = compiled.run(graph, config, budget=budget, stats=stats)
    return_span = None
    if trace is not None:
        return_span = trace.root.child(
            "RETURN projection", kind="statement", mode="streaming"
        )
    for row in row_stream:
        if return_span is not None:
            return_span.rows_in += 1
        ctx = EvalContext(bindings=row, graph=graph)
        record = {item.alias: item.expr.evaluate(ctx) for item in parsed.items}
        if seen is not None:
            key = tuple(_group_key(record[item.alias]) for item in parsed.items)
            if key in seen:
                if return_span is not None:
                    return_span.bump("distinct_dropped")
                continue
            seen.add(key)
        budget.take()
        if budget.taken <= offset:
            if return_span is not None:
                return_span.bump("offset_skipped")
            continue
        if stats is not None:
            stats.rows += 1
        if return_span is not None:
            return_span.rows_out += 1
        yield record
        if budget.satisfied:
            if return_span is not None:
                return_span.event("budget_satisfied", taken=budget.taken)
            return


def explain_gql(
    query: "str | GqlQuery", config: MatcherConfig | None = None
) -> str:
    """Render the statement pipeline of a GQL query as text.

    One block per statement with its execution mode (seeded / direct /
    hash join, LET/FILTER row transforms) classified [streaming] or
    [blocking], the internal GPML pipeline of each MATCH, and the RETURN
    stage's classification (whether LIMIT/OFFSET push a row budget down
    the chain).  Pass the same ``config`` execution will use so the
    rendered modes match (``seed_chained_match=False`` shows the
    hash-join fallback, not the seeded search).
    """
    parsed = parse_gql_query(query) if isinstance(query, str) else query
    compiled = compile_pipeline(parsed.statements, config)
    has_vertical = _mark_vertical_aggregates(parsed, compiled.group_vars)
    tail = "RETURN" if parsed.items else "no RETURN"
    lines = [f"GQL pipeline: {len(parsed.statements)} statement(s) + {tail}"]
    lines.extend(compiled.describe())
    items = ", ".join(item.alias for item in parsed.items)
    lines.append(f"RETURN: {items or '(none — write-only query)'}")
    if compiled.has_writes:
        lines.append(
            f"  [{BLOCKING}] DML transaction: statements run eagerly, "
            f"commit on success or rollback to the pre-query graph; "
            f"LIMIT/OFFSET slice the returned records"
        )
    elif has_vertical or parsed.order_by:
        breakers = []
        if has_vertical:
            breakers.append("vertical aggregation")
        if parsed.order_by:
            breakers.append("ORDER BY")
        lines.append(
            f"  [{BLOCKING}] {' + '.join(breakers)} materializes all records; "
            f"LIMIT/OFFSET slice afterwards"
        )
    else:
        # An OFFSET without LIMIT gives an unlimited budget — the chain
        # still runs to exhaustion, so only a LIMIT earns the budget line.
        budget = (
            "row budget = OFFSET+LIMIT stops the chain's searches"
            if parsed.limit is not None
            else "no LIMIT: runs to exhaustion"
        )
        distinct = "DISTINCT streams (counts distinct records); " if parsed.distinct else ""
        lines.append(f"  [{STREAMING}] projection — {distinct}{budget}")
    return "\n".join(lines)


def _mark_vertical_aggregates(parsed: GqlQuery, group_vars: frozenset[str]) -> bool:
    """Tag RETURN items that fold over rows; True when any item does.

    ``group_vars`` is the union of the group variables of every MATCH
    statement (quantified declarations); aggregates over anything else —
    singletons, paths, LET values — are vertical.
    """
    has_vertical = False
    for item in parsed.items:
        item.vertical_aggregate = any(
            agg.var not in group_vars for agg in item.expr.aggregates()
        )
        has_vertical = has_vertical or item.vertical_aggregate
    return has_vertical


def _plain_records(
    graph: PropertyGraph, parsed: GqlQuery, rows: list[dict[str, Any]]
) -> list[dict[str, Any]]:
    records = []
    for row in rows:
        ctx = EvalContext(bindings=row, graph=graph)
        records.append({item.alias: item.expr.evaluate(ctx) for item in parsed.items})
    return records


class _GroupContext(EvalContext):
    """Aggregation context: singleton lookups see the representative row,
    group_items folds over all rows of the group."""

    def __init__(self, rows: list[dict[str, Any]], graph: PropertyGraph):
        super().__init__(bindings=rows[0] if rows else {}, graph=graph)
        self._rows = rows

    def group_items(self, name: str) -> list[Any]:
        items = []
        for row in self._rows:
            value = row.get(name, NULL)
            if isinstance(value, (list, tuple)):
                items.extend(value)
            elif not is_null(value):
                items.append(value)
        return items


def _grouped_records(
    graph: PropertyGraph, parsed: GqlQuery, rows: list[dict[str, Any]]
) -> list[dict[str, Any]]:
    key_items = [item for item in parsed.items if not item.vertical_aggregate]
    groups: dict[tuple, list[dict[str, Any]]] = {}
    order: list[tuple] = []
    key_values: dict[tuple, dict[str, Any]] = {}
    for row in rows:
        ctx = EvalContext(bindings=row, graph=graph)
        values = {item.alias: item.expr.evaluate(ctx) for item in key_items}
        key = tuple(_group_key(values[item.alias]) for item in key_items)
        if key not in groups:
            order.append(key)
            key_values[key] = values
        groups.setdefault(key, []).append(row)
    records = []
    for key in order:
        group_rows = groups[key]
        record = dict(key_values[key])
        group_ctx = _GroupContext(group_rows, graph)
        for item in parsed.items:
            if item.vertical_aggregate:
                record[item.alias] = item.expr.evaluate(group_ctx)
        # preserve RETURN item order
        records.append({item.alias: record[item.alias] for item in parsed.items})
    return records


def _group_key(value: Any) -> Any:
    if isinstance(value, (Node, Edge)):
        return ("element", value.id)
    if isinstance(value, Path):
        return ("path", value.element_ids)
    if isinstance(value, list):
        return tuple(_group_key(v) for v in value)
    if is_null(value):
        return ("null",)
    return value


def _distinct_records(records: list[dict[str, Any]], parsed: GqlQuery) -> list[dict[str, Any]]:
    seen: set[tuple] = set()
    out = []
    for record in records:
        key = tuple(_group_key(record[item.alias]) for item in parsed.items)
        if key not in seen:
            seen.add(key)
            out.append(record)
    return out


def _order_records(
    graph: PropertyGraph, records: list[dict[str, Any]], parsed: GqlQuery
) -> list[dict[str, Any]]:
    # Per-item direction via stable sorts composed right-to-left.
    ordered = list(records)
    for index in range(len(parsed.order_by) - 1, -1, -1):
        order = parsed.order_by[index]

        def single_key(record: dict[str, Any], order=order) -> tuple:
            ctx = EvalContext(bindings=record, graph=graph)
            value = order.expr.evaluate(ctx)
            if is_null(value):
                return (1, "", "") if not order.descending else (-1, "", "")
            return (0, type(value).__name__, value)

        ordered = sorted(ordered, key=single_key, reverse=order.descending)
    return ordered
