"""GQL linear composition: the statement pipeline behind a read query.

A GQL read query is not a single pattern match but a *linear
composition* of statements (PAPER.md §2, §6): each statement consumes an
incoming table of binding rows and produces a new one, and the final
RETURN projects the last table.  This module holds the statement AST the
parser produces, the compiler that turns a statement list into an
executable pipeline, and the per-statement transformers:

* ``MATCH`` — natural-joins the incoming table with the pattern's match
  table on the variables they share; new variables extend each row.
* ``OPTIONAL MATCH`` — the same, but an incoming row with no join
  partners survives once, its new variables padded with NULL.
* ``LET x = expr`` — extends every row with computed values.
* ``FILTER expr`` — keeps the rows whose condition is TRUE (three-valued:
  UNKNOWN drops the row, like WHERE).

Every transformer is a streaming generator (rows in, rows out), and all
pattern searches of a chain share one
:class:`~repro.gpml.streaming.RowBudget`: a satisfied ``LIMIT 1`` stops
the *first* statement's NFA search, not just the last stage.

How a chained MATCH executes — three modes, chosen at compile time and
rendered by ``EXPLAIN``:

* **seeded** (streaming): when the pattern pins an end element to a
  variable bound upstream (an unconditional singleton), each incoming
  row seeds one anchored search from exactly that node, reusing the
  planner's pattern-reversal machinery for right ends
  (:class:`repro.gpml.engine.SeededSearch`, shared with the SQL
  planner's join-through-GRAPH_TABLE rewrite).  This is the
  cross-model-efficiency move: bound variables flow *into* the pattern
  search instead of being joined after a full enumeration.
* **direct** (streaming): while the incoming table is still the unit
  table (at most one row — before any MATCH), the pattern streams
  straight out of :func:`~repro.gpml.engine.match_iter`.
* **hash join** (build blocks, probe streams): otherwise the pattern's
  match table is enumerated once into buckets keyed on the shared
  variables, and each incoming row probes its bucket.

Semantics notes (documented refinements, see docs/gql.md):

* Join keys follow Cypher/SQL practice: a NULL value (e.g. from an
  earlier OPTIONAL MATCH) never joins, so a chained MATCH drops the row
  and OPTIONAL MATCH pads it.
* A pattern WHERE that references upstream variables is *correlated*:
  it is evaluated per merged row (upstream bindings visible), after the
  pattern's own selector, exactly where the engine's final WHERE sits.
  A correlated WHERE together with KEEP applies KEEP per incoming row,
  after the WHERE, among that row's join partners.
* Re-declaring an upstream variable as a group or path variable (or
  vice versa) is an error; singleton re-declaration means equi-join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.errors import GqlError
from repro.gpml import ast
from repro.gpml.engine import (
    BindingRow,
    PreparedQuery,
    SeededSearch,
    _apply_keep,
    _join_key,
    match_iter,
    prepare,
)
from repro.gpml.expr import EvalContext, Expr
from repro.gpml.matcher import MatcherConfig
from repro.gpml.streaming import (
    BLOCKING,
    STREAMING,
    PipelineStats,
    RowBudget,
    classify_pipeline,
    render_pipeline,
)
from repro.graph.model import PropertyGraph
from repro.obs.trace import Span, counted_in, timed_rows
from repro.planner.anchor import SeedSpec, plan_seed
from repro.values import NULL, is_null

#: variable kinds tracked across statements (for re-declaration checks)
SINGLETON = "singleton"
GROUP = "group"
PATH = "path"
VALUE = "value"  # LET-defined


# ----------------------------------------------------------------------
# Statement AST (produced by repro.gql.query.parse_gql_query)
# ----------------------------------------------------------------------
@dataclass
class MatchStatement:
    """One ``[OPTIONAL] MATCH <graph pattern> [WHERE ...] [KEEP ...]``."""

    pattern: ast.GraphPattern
    text: str  # source slice including the MATCH keyword(s)
    pattern_text: str  # source slice after MATCH (incl. WHERE/KEEP)
    optional: bool = False


@dataclass
class LetStatement:
    """``LET x = expr [, y = expr ...]`` — extend rows with values."""

    assignments: list[tuple[str, Expr]]
    text: str


@dataclass
class FilterStatement:
    """``FILTER [WHERE] condition`` — keep rows whose condition is TRUE."""

    condition: Expr
    text: str


# ----------------------------------------------------------------------
# Compiled statements
# ----------------------------------------------------------------------
@dataclass
class CompiledMatch:
    """A MATCH statement compiled against the upstream variable set."""

    statement: MatchStatement
    prepared: PreparedQuery
    #: pattern WHERE referencing upstream variables, applied per merged row
    residual_where: Optional[Expr]
    #: pattern KEEP extracted alongside a correlated WHERE
    residual_keep: Any
    shared_vars: list[str]
    new_vars: list[str]
    seed: Optional[SeedSpec]
    direct: bool  # incoming is the unit table: stream match_iter per row

    @property
    def optional(self) -> bool:
        return self.statement.optional

    def mode_lines(self) -> list[str]:
        """[streaming]/[blocking] classification for EXPLAIN."""
        if self.seed is not None:
            lines = [f"[{STREAMING}] {self.seed.describe()}"]
        elif self.direct:
            lines = [
                f"[{STREAMING}] direct pattern search (unit incoming table; "
                f"drives the shared row budget)"
            ]
        else:
            keyed = (
                f"keyed on {', '.join(self.shared_vars)}"
                if self.shared_vars
                else "cross product"
            )
            lines = [
                f"[{BLOCKING}] hash-join build of the full match table ({keyed})",
                f"[{STREAMING}] probe per incoming row",
            ]
        if self.residual_where is not None:
            lines.append(
                f"[{STREAMING}] correlated WHERE per merged row: "
                f"{self.residual_where}"
            )
        if self.residual_keep is not None:
            lines.append(
                f"[{BLOCKING}] KEEP {self.residual_keep.kind} per incoming row"
            )
        if self.optional:
            lines.append(
                f"[{STREAMING}] NULL-pad rows without join partners "
                f"({', '.join(self.new_vars) or 'no new variables'})"
            )
        return lines

    # -- execution -----------------------------------------------------
    def apply(
        self,
        graph: PropertyGraph,
        incoming: Iterator[dict[str, Any]],
        config: MatcherConfig,
        budget: Optional[RowBudget],
        stats: Optional[PipelineStats],
        span: Optional[Span] = None,
    ) -> Iterator[dict[str, Any]]:
        build: Optional[dict[tuple, list[tuple[dict, list]]]] = None
        # Shared seeded entry point: one anchored run per distinct seed,
        # hub-skew memoization included (see engine.SeededSearch).
        search: Optional[SeededSearch] = None

        def candidates(row: dict[str, Any]) -> Iterator[tuple[dict, list]]:
            nonlocal build, search
            if self.seed is not None:
                if self._any_null(row):
                    return iter(())
                seed_key = _join_key(row.get(self.seed.var))
                if not isinstance(seed_key, str) or not graph.has_node(seed_key):
                    return iter(())
                if search is None:
                    search = SeededSearch(
                        graph, self.prepared, config,
                        reversed_run=self.seed.reversed_run,
                        budget=budget, stats=stats, span=span,
                    )
                return (
                    item for item in search.run(seed_key)
                    if self._agrees(item[0], row)
                )
            if self.direct:
                matched = match_iter(
                    graph, self.prepared, config, budget=budget, stats=stats,
                    span=span, count_rows=False,
                )
                return (
                    (m.values, m.paths)
                    for m in matched
                    if self._agrees(m.values, row)
                )
            key = self._probe_key(row)
            if key is None:  # a NULL or non-element value never joins
                return iter(())
            if build is None:
                # Pipeline breaker: the pattern's match table is
                # enumerated once, without the shared budget (a build
                # side must be complete).  Only reached once some probe
                # row actually has joinable keys.
                build_span = None
                if span is not None:
                    keyed = ", ".join(self.shared_vars) or "cross product"
                    build_span = span.child(
                        f"hash-join build of the match table ({keyed})",
                        mode=BLOCKING,
                    )
                build = {}
                for m in match_iter(
                    graph, self.prepared, config, stats=stats,
                    span=build_span, count_rows=False,
                ):
                    build_key = tuple(
                        _join_key(m.values.get(name)) for name in self.shared_vars
                    )
                    build.setdefault(build_key, []).append((m.values, m.paths))
                if build_span is not None:
                    build_span.peak_rows = sum(
                        len(entries) for entries in build.values()
                    )
            return iter(build.get(key, ()))

        def expansions(row: dict[str, Any]) -> Iterator[dict[str, Any]]:
            merged_rows = (
                merged
                for values, paths in candidates(row)
                for merged in self._merge(graph, row, values, paths)
            )
            if self.residual_keep is None:
                for merged, _ in merged_rows:
                    yield merged
                return
            survivors = [
                BindingRow(merged, paths) for merged, paths in merged_rows
            ]
            for kept in _apply_keep(graph, survivors, self.residual_keep):
                yield kept.values

        for row in incoming:
            produced = False
            for merged in expansions(row):
                produced = True
                yield merged
            if not produced and self.optional:
                padded = dict(row)
                padded.update({name: NULL for name in self.new_vars})
                yield padded

    def _merge(
        self, graph: PropertyGraph, row: dict, values: dict, paths: list
    ) -> Iterator[tuple[dict, list]]:
        merged = dict(row)
        merged.update(values)
        if self.residual_where is not None and not self.residual_where.truth(
            EvalContext(bindings=merged, graph=graph)
        ):
            return
        yield merged, paths

    def _any_null(self, row: dict[str, Any]) -> bool:
        return any(is_null(row.get(name, NULL)) for name in self.shared_vars)

    def _probe_key(self, row: dict[str, Any]) -> Optional[tuple]:
        """The row's hash-join key, or None when it cannot join.

        NULL never joins; neither does a value with no hashable join key
        (e.g. a LET-bound list) — the pattern side only ever produces
        element/scalar keys, so such a row has no partners by definition.
        """
        keys = []
        for name in self.shared_vars:
            value = row.get(name, NULL)
            if is_null(value):
                return None
            key = _join_key(value)
            try:
                hash(key)
            except TypeError:
                return None
            keys.append(key)
        return tuple(keys)

    def _agrees(self, values: dict[str, Any], row: dict[str, Any]) -> bool:
        """Equi-join check on the shared variables (NULL never joins)."""
        for name in self.shared_vars:
            mine = values.get(name, NULL)
            theirs = row.get(name, NULL)
            if is_null(mine) or is_null(theirs):
                return False
            if _join_key(mine) != _join_key(theirs):
                return False
        return True


@dataclass
class CompiledLet:
    statement: LetStatement

    def mode_lines(self) -> list[str]:
        names = ", ".join(name for name, _ in self.statement.assignments)
        return [f"[{STREAMING}] extend each row with {names}"]

    def apply(self, graph, incoming, config, budget, stats, span=None):
        for row in incoming:
            out = dict(row)
            for name, expr in self.statement.assignments:
                out[name] = expr.evaluate(EvalContext(bindings=out, graph=graph))
            yield out


@dataclass
class CompiledFilter:
    statement: FilterStatement

    def mode_lines(self) -> list[str]:
        return [f"[{STREAMING}] per-row predicate"]

    def apply(self, graph, incoming, config, budget, stats, span=None):
        for row in incoming:
            if self.statement.condition.truth(
                EvalContext(bindings=row, graph=graph)
            ):
                yield row


@dataclass
class CompiledPipeline:
    """An executable statement chain plus cross-statement variable facts."""

    statements: list
    #: group variables of every MATCH statement (horizontal-aggregate set)
    group_vars: frozenset[str]
    #: visible variables in binding order, across all statements
    variables: list[str]
    #: True when the chain contains INSERT/SET/DELETE — the executor then
    #: wraps the run in a graph transaction and never pushes a row budget
    has_writes: bool = False

    def run(
        self,
        graph: PropertyGraph,
        config: MatcherConfig | None = None,
        budget: Optional[RowBudget] = None,
        stats: Optional[PipelineStats] = None,
    ) -> Iterator[dict[str, Any]]:
        """Stream the final binding table as plain value dicts.

        The pipeline starts from the unit table (one empty row); each
        statement transforms the stream lazily.  ``budget`` — owned by
        the caller, who takes per delivered record — is threaded into
        every seeded/direct pattern search so a satisfied consumer stops
        the earliest statement's NFA search.

        With ``stats.trace`` set, each statement gets one span (rows
        in/out, inclusive time); pattern-search stage spans nest under
        their statement's span.  Seeded chained MATCH aggregates its
        per-seed runs into the statement span rather than exploding into
        one span per incoming row.
        """
        config = config or MatcherConfig()
        trace = stats.trace if stats is not None else None
        rows: Iterator[dict[str, Any]] = iter(({},))
        for index, statement in enumerate(self.statements):
            span = None
            if trace is not None:
                span = trace.root.child(
                    f"statement #{index + 1}: {statement.statement.text}",
                    kind="statement",
                )
                rows = counted_in(span, rows)
            rows = statement.apply(graph, rows, config, budget, stats, span=span)
            if span is not None:
                rows = timed_rows(span, rows)
        return rows

    def describe(self) -> list[str]:
        """EXPLAIN lines: per statement, its mode and internal pipeline."""
        lines: list[str] = []
        for index, compiled in enumerate(self.statements):
            lines.append(f"statement #{index + 1}: {compiled.statement.text}")
            for mode_line in compiled.mode_lines():
                lines.append(f"  {mode_line}")
            if isinstance(compiled, CompiledMatch):
                if compiled.shared_vars:
                    lines.append(
                        f"  join variables: {', '.join(compiled.shared_vars)}"
                    )
                for sub in render_pipeline(
                    classify_pipeline(compiled.prepared), indent="    "
                ):
                    lines.append(f"  {sub}")
        return lines


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def compile_pipeline(
    statements: list, config: MatcherConfig | None = None
) -> CompiledPipeline:
    """Compile a parsed statement list into an executable pipeline.

    Performs the cross-statement variable checks (re-declaration rules),
    splits correlated WHERE/KEEP out of chained patterns, and decides per
    MATCH how it will execute (seeded / direct / hash join).
    """
    # Local import: dml imports this module's constants, so the write
    # statements resolve lazily to keep the import DAG acyclic.
    from repro.gql import dml

    seed_enabled = config.seed_chained_match if config is not None else True
    compiled: list = []
    bound: dict[str, str] = {}  # name -> kind
    order: list[str] = []
    group_vars: set[str] = set()
    unit_input = True  # incoming table guaranteed at most one row
    has_writes = False
    for statement in statements:
        if isinstance(statement, MatchStatement):
            match = _compile_match(statement, bound, unit_input, seed_enabled)
            compiled.append(match)
            for analysis in match.prepared.analysis.paths:
                group_vars |= set(analysis.group_vars)
            for name in match.new_vars:
                order.append(name)
            unit_input = False
        elif isinstance(statement, LetStatement):
            for name, expr in statement.assignments:
                if name in bound:
                    raise GqlError(
                        f"LET cannot re-define variable {name!r} "
                        f"(bound upstream as a {bound[name]})"
                    )
                _check_known_variables(expr, bound, statement.text)
                bound[name] = VALUE
                order.append(name)
            compiled.append(CompiledLet(statement))
        elif isinstance(statement, FilterStatement):
            _check_known_variables(statement.condition, bound, statement.text)
            compiled.append(CompiledFilter(statement))
        elif isinstance(statement, dml.InsertStatement):
            stage, new_names = dml.compile_insert(statement, bound)
            for name in new_names:
                bound[name] = SINGLETON
                order.append(name)
            compiled.append(stage)
            has_writes = True
            unit_input = False  # conservatively: writes break streaming anyway
        elif isinstance(statement, dml.SetStatement):
            compiled.append(dml.compile_set(statement, bound))
            has_writes = True
        elif isinstance(statement, dml.DeleteStatement):
            compiled.append(dml.compile_delete(statement, bound))
            has_writes = True
        else:  # pragma: no cover - parser produces only these kinds
            raise GqlError(f"unknown statement {statement!r}")
        if isinstance(statement, MatchStatement):
            for name, kind in _match_var_kinds(compiled[-1].prepared).items():
                bound.setdefault(name, kind)
    return CompiledPipeline(
        statements=compiled,
        group_vars=frozenset(group_vars),
        variables=order,
        has_writes=has_writes,
    )


def _check_known_variables(
    expr: Expr, bound: dict[str, str], statement_text: str
) -> None:
    """LET/FILTER expressions may only reference upstream variables.

    A typo would otherwise evaluate to NULL and silently empty the
    result — the same strictness chained MATCH applies to its WHERE.
    """
    unknown = expr.variables() - set(bound)
    if unknown:
        raise GqlError(
            f"unknown variable(s) {', '.join(sorted(unknown))} "
            f"in {statement_text!r}"
        )


def _match_var_kinds(prepared: PreparedQuery) -> dict[str, str]:
    kinds: dict[str, str] = {}
    for analysis in prepared.analysis.paths:
        for name, info in analysis.vars.items():
            if info.anonymous:
                continue
            kinds[name] = GROUP if info.group else SINGLETON
    for name in prepared.analysis.path_vars:
        kinds[name] = PATH
    return kinds


def _pattern_variables(pattern: ast.GraphPattern) -> set[str]:
    """Variable names declared anywhere in the pattern (syntactic walk)."""
    names: set[str] = set()
    for path in pattern.paths:
        if path.path_var is not None:
            names.add(path.path_var)
        for node in path.pattern.walk():
            var = getattr(node, "var", None)
            if var is not None:
                names.add(var)
    return names


def _compile_match(
    statement: MatchStatement,
    bound: dict[str, str],
    unit_input: bool,
    seed_enabled: bool,
) -> CompiledMatch:
    pattern = statement.pattern

    # Correlated WHERE: references variables bound upstream but not by
    # this pattern — split it (and, with it, KEEP) out *before* the
    # engine's variable-scope analysis, so it evaluates against the
    # merged row.  Uncorrelated WHERE/KEEP stay inside the engine, which
    # applies them in exactly the same order (selector, WHERE, KEEP).
    # Only the statement's *final* WHERE may be correlated: element and
    # paren prefilters run inside the NFA search, which cannot see
    # upstream bindings — rejected here with a pointer, not deep in the
    # engine's scope analysis.
    own_names = _pattern_variables(pattern)
    for path in pattern.paths:
        for node in path.pattern.walk():
            prefilter = getattr(node, "where", None)
            if prefilter is None:
                continue
            upstream = (prefilter.variables() - own_names) & set(bound)
            if upstream:
                raise GqlError(
                    f"element WHERE in {statement.text!r} references upstream "
                    f"variable(s) {', '.join(sorted(upstream))}; only the "
                    f"statement's final WHERE (or a FILTER) may see variables "
                    f"bound by earlier statements"
                )
    residual_where = residual_keep = None
    where = pattern.where
    if where is not None:
        outside = where.variables() - own_names
        unknown = outside - set(bound)
        if unknown:
            raise GqlError(
                f"unknown variable(s) {', '.join(sorted(unknown))} in the "
                f"WHERE clause of {statement.text!r}"
            )
        if outside:
            residual_where = where
            residual_keep = pattern.keep
            pattern = ast.GraphPattern(paths=pattern.paths, where=None, keep=None)
    prepared = prepare(pattern)
    own_kinds = _match_var_kinds(prepared)

    shared_vars: list[str] = []
    for name, kind in own_kinds.items():
        if name not in bound:
            continue
        upstream = bound[name]
        if kind in (GROUP, PATH) or upstream in (GROUP, PATH):
            raise GqlError(
                f"variable {name!r} is a {upstream} upstream and a {kind} "
                f"in {statement.text!r}; only singleton variables join "
                f"across statements"
            )
        shared_vars.append(name)
    shared_vars.sort()
    new_vars = [
        name for name in prepared.visible_variables() if name not in bound
    ]

    seed = None
    if seed_enabled and shared_vars:
        seed = plan_seed(prepared, shared_vars)
    direct = seed is None and unit_input
    return CompiledMatch(
        statement=statement,
        prepared=prepared,
        residual_where=residual_where,
        residual_keep=residual_keep,
        shared_vars=shared_vars,
        new_vars=new_vars,
        seed=seed,
        direct=direct,
    )
