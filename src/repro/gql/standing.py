"""Standing queries: register a MATCH, receive deltas as mutations land.

This is the paper's fraud scenario run *continuously*: instead of
re-running ``MATCH (a:Account WHERE ...)-[:Transfer]->(b ...)`` after
every mutation, a :class:`StandingQuery` subscribes to the graph's
change feed (:meth:`PropertyGraph.add_watcher`) and maintains its result
incrementally, re-matching **only around touched nodes** via the seeded
per-row search (:func:`repro.gpml.engine.iter_seeded_rows`) — never a
full re-run.

How incremental maintenance works
---------------------------------

The result is partitioned by *start node* — the leftmost node of the
first MATCH's (single) path pattern.  ``iter_seeded_rows`` restricted to
one start ``s`` produces exactly the query rows whose first pattern
begins at ``s`` (the NFA's entry node test validates the seed, so
seeding arbitrary node ids is sound), and the union over all nodes is
the full result.  The standing query keeps one *bucket* of result keys
per start, plus a support count per key; the visible result is a **bag**
— each key appears with its total multiplicity.  Bag semantics matter:
the engine deduplicates on the full walk (elements + singletons +
groups), so two different walks may project to identical visible
records, and a from-scratch run reports both.

On :meth:`refresh`, the buffered change records are turned into a
re-match **region**: a breadth-first ball of radius ``D`` around every
touched element, where ``D`` is the query's maximum total path length in
edges (summed over chained MATCHes; unbounded quantifiers make the ball
a connected component).  Soundness: a result row is a join of matches
whose paths chain through shared variables, so every element of the row
— including its start — lies within ``D`` *match edges* of any element
the row touches.  Removed edges still contribute adjacency (their
endpoints arrive on the change records), so old rows through deleted
elements are reachable too.  Every bucket whose start falls inside the
region is retracted and, if the start is still alive, recomputed by a
fresh seeded run; starts outside the region are untouched — that is the
incremental claim the benchmark quantifies (<5% of from-scratch matcher
steps per mutation batch).

A per-refresh :class:`StandingDelta` reports the *net* added/retracted
record instances (a row retracted and immediately re-derived in the same
refresh cancels out; a multiplicity change from 3 to 1 retracts two
instances).  Record dicts are projected when a key first appears, so
retractions can still ship the full record after its elements are gone.

Registration restrictions (checked eagerly, ``GqlError`` otherwise):
write statements, ORDER BY / DISTINCT / OFFSET, vertical aggregates, and
multiset alternation (``|+|``) are rejected; each MATCH must carry a
single path pattern; the first MATCH must not be OPTIONAL; and every
chained MATCH must join on at least one MATCH-bound singleton variable
(a LET-value join could anchor arbitrarily far from the region ball).
OPTIONAL chained MATCH, restrictors and selectors are supported.  A
query LIMIT (or the ``limit`` argument) truncates the *canonically
ordered view* (:meth:`rows`) — internally the result stays complete, so
the view is a deterministic prefix, independent of mutation order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.errors import GqlError
from repro.gpml import ast
from repro.gpml.engine import iter_seeded_rows
from repro.gpml.expr import EvalContext
from repro.gpml.matcher import MatcherConfig
from repro.gpml.streaming import PipelineStats
from repro.graph.changelog import ChangeRecord
from repro.graph.model import PropertyGraph
from repro.gql.pipeline import (
    SINGLETON,
    CompiledMatch,
    CompiledPipeline,
    MatchStatement,
    compile_pipeline,
    _match_var_kinds,
)
from repro.gql.query import GqlQuery, _group_key, _mark_vertical_aggregates, parse_gql_query
from repro.planner.indexes import initial_node_candidates

#: reserved row key carrying the start node through the statement chain
#: (plain dict keys flow untouched through joins, LET, FILTER and
#: OPTIONAL padding — no visible variable is harmed)
START_TAG = "__standing_start"


@dataclass
class StandingDelta:
    """Net result change of one :meth:`StandingQuery.refresh`."""

    added: list[dict[str, Any]]
    retracted: list[dict[str, Any]]
    #: change records consumed by this refresh
    changes: int
    #: starts re-matched (the region ∩ alive nodes) + retracted-only starts
    region_size: int
    #: matcher steps spent re-matching (the benchmark's currency)
    steps: int
    graph_version: int

    @property
    def empty(self) -> bool:
        return not self.added and not self.retracted


def _max_edges(pattern: ast.Pattern) -> Optional[int]:
    """Maximum path length of a pattern in edges; None when unbounded."""
    if isinstance(pattern, ast.EdgePattern):
        return 1
    if isinstance(pattern, ast.NodePattern):
        return 0
    if isinstance(pattern, ast.Concatenation):
        total = 0
        for item in pattern.items:
            inner = _max_edges(item)
            if inner is None:
                return None
            total += inner
        return total
    if isinstance(pattern, ast.Quantified):
        inner = _max_edges(pattern.inner)
        if inner is None or pattern.upper is None:
            return None
        return inner * pattern.upper
    if isinstance(pattern, (ast.OptionalPattern, ast.ParenPattern)):
        return _max_edges(pattern.inner)
    if isinstance(pattern, ast.PathPattern):
        return _max_edges(pattern.pattern)
    if isinstance(pattern, ast.Alternation):
        worst = 0
        for branch in pattern.branches:
            inner = _max_edges(branch)
            if inner is None:
                return None
            worst = max(worst, inner)
        return worst
    raise GqlError(f"unsupported pattern node {type(pattern).__name__}")


class StandingQuery:
    """One registered query, maintained incrementally against a graph.

    Create via :meth:`repro.gql.session.GqlSession.register_standing` (or
    directly); call :meth:`refresh` after mutations to pull the next
    :class:`StandingDelta`; :meth:`rows` is the current materialized
    view; :meth:`close` unsubscribes from the graph.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        query: "str | GqlQuery",
        config: MatcherConfig | None = None,
        limit: Optional[int] = None,
        telemetry=None,
        query_text: Optional[str] = None,
    ):
        self.graph = graph
        parsed = parse_gql_query(query) if isinstance(query, str) else query
        self.parsed = parsed
        if query_text is None:
            query_text = query if isinstance(query, str) else "<parsed query>"
        self.query_text = query_text
        self.config = config or MatcherConfig()
        self.limit = limit if limit is not None else parsed.limit
        self.telemetry = telemetry
        self.compiled = compile_pipeline(parsed.statements, config)
        self._validate()
        self.depth = self._total_depth()
        #: start node id -> result keys produced from that start
        self._store: dict[str, list[tuple]] = {}
        #: result key -> number of starts supporting it
        self._support: dict[tuple, int] = {}
        #: result key -> projected record (captured while elements live)
        self._records: dict[tuple, dict[str, Any]] = {}
        self._pending: list[ChangeRecord] = []
        self._closed = False
        self.refreshes = 0
        self.total_steps = 0
        graph.add_watcher(self._on_changes)
        self._initial_fill()

    # -- registration checks -------------------------------------------
    def _validate(self) -> None:
        parsed, compiled = self.parsed, self.compiled
        if compiled.has_writes:
            raise GqlError("standing queries must be read-only (no INSERT/SET/DELETE)")
        if parsed.order_by:
            raise GqlError("standing queries do not support ORDER BY")
        if parsed.distinct:
            raise GqlError("standing queries do not support DISTINCT")
        if parsed.offset is not None:
            raise GqlError("standing queries do not support OFFSET")
        if _mark_vertical_aggregates(parsed, compiled.group_vars):
            raise GqlError(
                "standing queries do not support vertical aggregates; "
                "aggregate over the delta stream instead"
            )
        matches = [s for s in compiled.statements if isinstance(s, CompiledMatch)]
        if not matches or not isinstance(compiled.statements[0], CompiledMatch):
            raise GqlError("a standing query must start with MATCH")
        if compiled.statements[0].optional:
            raise GqlError("the first statement of a standing query cannot be OPTIONAL")
        match_singletons = set()
        for index, stage in enumerate(matches):
            statement = stage.statement
            if len(statement.pattern.paths) != 1:
                raise GqlError(
                    "standing queries support one path pattern per MATCH "
                    "(split comma-joined patterns into chained MATCH statements)"
                )
            for node in statement.pattern.walk():
                if isinstance(node, ast.Alternation) and node.has_multiset():
                    raise GqlError(
                        "standing queries do not support multiset alternation (|+|)"
                    )
            if index > 0:
                if not stage.shared_vars:
                    raise GqlError(
                        f"chained MATCH {statement.text!r} shares no variable "
                        f"with earlier statements; standing queries cannot "
                        f"maintain cross products incrementally"
                    )
                loose = [v for v in stage.shared_vars if v not in match_singletons]
                if loose:
                    raise GqlError(
                        f"chained MATCH {statement.text!r} joins on "
                        f"{', '.join(loose)}, not bound by an earlier MATCH; "
                        f"standing queries require element joins (a LET value "
                        f"could anchor outside the re-match region)"
                    )
            for name, kind in _match_var_kinds(stage.prepared).items():
                if kind == SINGLETON:
                    match_singletons.add(name)

    def _total_depth(self) -> Optional[int]:
        total = 0
        for stage in self.compiled.statements:
            if not isinstance(stage, CompiledMatch):
                continue
            edges = _max_edges(stage.statement.pattern.paths[0].pattern)
            if edges is None:
                return None  # unbounded: region = connected component
            total += edges
        return total

    # -- change feed ---------------------------------------------------
    def _on_changes(self, changes: list[ChangeRecord]) -> None:
        self._pending.extend(changes)

    @property
    def pending(self) -> int:
        """Buffered change records not yet folded in (the query's lag)."""
        return len(self._pending)

    def close(self) -> None:
        if not self._closed:
            self.graph.remove_watcher(self._on_changes)
            self._closed = True

    # -- matching ------------------------------------------------------
    def _first_match(self) -> CompiledMatch:
        return self.compiled.statements[0]

    def _initial_candidates(self) -> list[str]:
        first = self._first_match()
        pattern = first.prepared.normalized.paths[0].pattern
        candidates = initial_node_candidates(self.graph, pattern)
        if candidates is None:
            return sorted(self.graph.node_ids())
        return candidates

    def _rows_for_starts(
        self, starts: list[str], stats: PipelineStats
    ) -> Iterator[dict[str, Any]]:
        """The query's final binding rows, tagged with their start node.

        One seeded run *per start* for the first statement — per-start
        deduplication then matches what any later refresh of that start
        produces, keeping buckets comparable across time — then a single
        pass through the remaining statements (their per-row processing
        is independent row to row, so batching only shares hash-join
        builds and seed memos, never changes the result).
        """
        first = self._first_match()

        def tagged() -> Iterator[dict[str, Any]]:
            for start in starts:
                for match in iter_seeded_rows(
                    self.graph, first.prepared, self.config, [start], stats=stats
                ):
                    row = dict(match.values)
                    row[START_TAG] = start
                    yield row

        rows: Iterator[dict[str, Any]] = tagged()
        for stage in self.compiled.statements[1:]:
            rows = stage.apply(self.graph, rows, self.config, None, stats)
        return rows

    def _key_of(self, record: dict[str, Any]) -> tuple:
        """Canonical key of a *projected* record.

        Keying on the projection (not the matched elements) makes a
        property flip that changes a record's content look like retract
        old + add new, even though the same walk re-derives it.  The
        ``repr`` component keeps hash-equal but distinct scalars (``1``
        vs ``True`` vs ``1.0``) apart, matching how from-scratch results
        are compared.
        """
        return tuple(
            (item.alias, _group_key(record[item.alias]), repr(record[item.alias]))
            for item in self.parsed.items
        )

    def _project(self, row: dict[str, Any]) -> dict[str, Any]:
        ctx = EvalContext(bindings=row, graph=self.graph)
        return {item.alias: item.expr.evaluate(ctx) for item in self.parsed.items}

    def _fill_starts(
        self, starts: list[str], stats: PipelineStats
    ) -> dict[tuple, int]:
        """(Re)compute the buckets of *starts*.

        Returns the number of row instances the fill produced per key
        (the fill's contribution to each key's multiplicity).
        """
        buckets: dict[str, list[tuple]] = {start: [] for start in starts}
        produced: dict[tuple, int] = {}
        for row in self._rows_for_starts(starts, stats):
            record = self._project(row)
            key = self._key_of(record)
            buckets[row[START_TAG]].append(key)
            produced[key] = produced.get(key, 0) + 1
            self._support[key] = self._support.get(key, 0) + 1
            if key not in self._records:
                self._records[key] = record
        for start, keys in buckets.items():
            if keys:
                self._store[start] = keys
        return produced

    def _initial_fill(self) -> None:
        stats = PipelineStats()
        self._fill_starts(self._initial_candidates(), stats)
        self.total_steps += stats.steps

    # -- incremental refresh -------------------------------------------
    def _region(self, changes: list[ChangeRecord]) -> set[str]:
        """Node ids (alive or removed) whose buckets a batch may affect.

        Breadth-first ball of radius :attr:`depth` around every touched
        element, over the *union* adjacency: the current graph plus one
        edge per change record (so removed edges — including the cascade
        of a removed node — still connect their endpoints).
        """
        extra_adj: dict[str, set[str]] = {}
        seeds: set[str] = set()
        for change in changes:
            if change.kind == "node":
                seeds.add(change.element_id)
            else:
                seeds.update((change.first, change.second))
                extra_adj.setdefault(change.first, set()).add(change.second)
                extra_adj.setdefault(change.second, set()).add(change.first)
        region: set[str] = set(seeds)
        frontier = seeds
        hops = 0
        while frontier and (self.depth is None or hops < self.depth):
            hops += 1
            next_frontier: set[str] = set()
            for node in frontier:
                neighbours: set[str] = set(extra_adj.get(node, ()))
                if self.graph.has_node(node):
                    neighbours.update(
                        inc.other for inc in self.graph.incidences(node)
                    )
                next_frontier |= neighbours - region
            region |= next_frontier
            frontier = next_frontier
        return region

    def refresh(self) -> StandingDelta:
        """Fold the buffered changes in; returns the net result delta."""
        if self._closed:
            raise GqlError("standing query is closed")
        changes, self._pending = self._pending, []
        if not changes:
            return StandingDelta(
                added=[], retracted=[], changes=0, region_size=0, steps=0,
                graph_version=self.graph.version,
            )
        region = self._region(changes)
        # Retract every bucket whose start lies in the region (including
        # buckets of since-removed start nodes), counting the removed
        # instances per key.
        removed: dict[tuple, int] = {}
        for start in region:
            keys = self._store.pop(start, None)
            if not keys:
                continue
            for key in keys:
                removed[key] = removed.get(key, 0) + 1
                self._support[key] -= 1
        # Re-match the alive part of the region, one seeded run per start.
        starts = sorted(node for node in region if self.graph.has_node(node))
        stats = PipelineStats()
        produced = self._fill_starts(starts, stats)
        # Net multiset delta per affected key: instances re-derived minus
        # instances retracted.  A row that merely moved buckets nets to
        # zero; a multiplicity change emits |net| instances.
        added: list[dict[str, Any]] = []
        retracted: list[dict[str, Any]] = []
        for key in sorted(set(removed) | set(produced), key=repr):
            net = produced.get(key, 0) - removed.get(key, 0)
            if net > 0:
                added.extend([self._records[key]] * net)
            elif net < 0:
                retracted.extend([self._records[key]] * -net)
            if self._support.get(key, 0) <= 0:
                self._support.pop(key, None)
                self._records.pop(key, None)
        self.refreshes += 1
        self.total_steps += stats.steps
        delta = StandingDelta(
            added=added,
            retracted=retracted,
            changes=len(changes),
            region_size=len(region),
            steps=stats.steps,
            graph_version=self.graph.version,
        )
        if self.telemetry is not None:
            self.telemetry.record_standing_refresh(
                self.query_text,
                changes=delta.changes,
                added=len(added),
                retracted=len(retracted),
                steps=delta.steps,
                lag=self.pending,
            )
        return delta

    # -- views ---------------------------------------------------------
    def rows(self) -> list[dict[str, Any]]:
        """The current result view, canonically ordered.

        Canonical order is by result key (stable under any mutation
        order); with a LIMIT the view is the first ``limit`` records of
        that order — a deterministic truncation of the complete result,
        so replayed histories always agree.  Call :meth:`refresh` first
        to fold in pending changes; this accessor never does.
        """
        out: list[dict[str, Any]] = []
        for key in sorted(
            (key for key, count in self._support.items() if count > 0), key=repr
        ):
            out.extend([self._records[key]] * self._support[key])
        if self.limit is not None:
            out = out[: self.limit]
        return out

    def __repr__(self) -> str:
        live = sum(count for count in self._support.values() if count > 0)
        return (
            f"StandingQuery({self.query_text!r}, rows={live}, "
            f"pending={self.pending}, refreshes={self.refreshes})"
        )
