"""Cheapest-path helpers (Section 7.1 Language Opportunity).

The selector syntax is wired into the core language:

    MATCH ANY CHEAPEST COST weight p = (a)-[e]->*(b)
    MATCH TOP 3 CHEAPEST COST toll p = (a)-[e]->*(b)

These helpers wrap the common "single source/target pair" use and answer
the paper's motivating question ("What is the most scenic route to the
airport in at most 2 hours?") by combining a cost selector with a bounded
quantifier or restrictor.
"""

from __future__ import annotations

from typing import Optional

from repro.gpml.engine import match
from repro.gpml.matcher import MatcherConfig
from repro.graph.model import PropertyGraph
from repro.graph.path import Path


def any_cheapest_path(
    graph: PropertyGraph,
    pattern: str,
    cost_property: str = "cost",
    config: MatcherConfig | None = None,
) -> Optional[Path]:
    """Cheapest path matching a bare pattern, or None.

    ``pattern`` is a path pattern without selector, e.g.
    ``"(a WHERE a.name='x')-[e]->*(b WHERE b.name='y')"``.
    """
    query = f"MATCH ANY CHEAPEST COST {cost_property} p = {pattern}"
    result = match(graph, query, config)
    if not result.rows:
        return None
    paths = sorted(
        result.paths(0), key=lambda p: (p.cost(cost_property), p.element_ids)
    )
    return paths[0]


def top_k_cheapest_paths(
    graph: PropertyGraph,
    pattern: str,
    k: int,
    cost_property: str = "cost",
    config: MatcherConfig | None = None,
) -> list[Path]:
    """Up to k cheapest paths per endpoint pair, cheapest first."""
    query = f"MATCH TOP {k} CHEAPEST COST {cost_property} p = {pattern}"
    result = match(graph, query, config)
    return sorted(
        result.paths(0), key=lambda p: (p.cost(cost_property), p.element_ids)
    )
