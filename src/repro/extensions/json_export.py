"""Exporting bindings and paths to JSON (Section 7.1 Language Opportunity).

"Exporting a graph element or path binding to JSON" — elements export as
``{"id", "labels", "properties"}`` objects (edges add endpoints and
directedness), paths as an object with the element sequence, group
variables as arrays, NULL as JSON null.
"""

from __future__ import annotations

import json
from typing import Any

from repro.gpml.engine import MatchResult
from repro.graph.model import Edge, Node
from repro.graph.path import Path
from repro.values import is_null


def element_to_jsonable(element: "Node | Edge") -> dict[str, Any]:
    data: dict[str, Any] = {
        "id": element.id,
        "labels": sorted(element.labels),
        "properties": dict(element.properties),
    }
    if isinstance(element, Edge):
        first, second = element.endpoint_ids
        data["from"] = first
        data["to"] = second
        data["directed"] = element.is_directed
    return data


def path_to_jsonable(path: Path) -> dict[str, Any]:
    return {
        "length": path.length,
        "nodes": list(path.node_ids),
        "edges": list(path.edge_ids),
        "elements": list(path.element_ids),
    }


def value_to_jsonable(value: Any) -> Any:
    if is_null(value):
        return None
    if isinstance(value, (Node, Edge)):
        return element_to_jsonable(value)
    if isinstance(value, Path):
        return path_to_jsonable(value)
    if isinstance(value, (list, tuple)):
        return [value_to_jsonable(v) for v in value]
    return value


def result_to_jsonable(result: MatchResult) -> list[dict[str, Any]]:
    return [
        {name: value_to_jsonable(row[name]) for name in result.variables}
        for row in result.rows
    ]


def result_to_json(result: MatchResult, indent: int | None = 2) -> str:
    return json.dumps(result_to_jsonable(result), indent=indent)
