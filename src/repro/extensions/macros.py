"""Path macros (Section 7.1 Language Opportunity).

"Path macros for multiple use in a query" — named pattern fragments that
can be referenced several times.  The standard has not fixed a syntax;
this prototype uses ``$name$`` references expanded textually before
parsing, with expansion-time cycle detection:

>>> macros = MacroRegistry()
>>> macros.define("hop", "-[:Transfer]->")
>>> macros.define("two_hops", "$hop$ () $hop$")
>>> macros.expand("MATCH (a) $two_hops$ (b)")
'MATCH (a) -[:Transfer]-> () -[:Transfer]-> (b)'

Because expansion happens on query text, macros compose with every
language feature (quantifiers on parenthesized macros, restrictors,
selectors) and the expanded query goes through the ordinary static
analysis.
"""

from __future__ import annotations

import re

from repro.errors import GpmlSyntaxError
from repro.gpml.engine import MatchResult, match
from repro.gpml.matcher import MatcherConfig
from repro.graph.model import PropertyGraph

_REFERENCE = re.compile(r"\$([A-Za-z_][A-Za-z0-9_]*)\$")
_NAME = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class MacroRegistry:
    """Named pattern fragments with recursive (acyclic) expansion."""

    def __init__(self) -> None:
        self._macros: dict[str, str] = {}

    def define(self, name: str, pattern_text: str) -> None:
        if not _NAME.match(name):
            raise GpmlSyntaxError(f"invalid macro name {name!r}")
        if name in self._macros:
            raise GpmlSyntaxError(f"macro {name!r} already defined")
        self._macros[name] = pattern_text

    def names(self) -> list[str]:
        return sorted(self._macros)

    def expand(self, query: str) -> str:
        """Expand every ``$name$`` reference, detecting cycles."""
        return self._expand(query, active=())

    def _expand(self, text: str, active: tuple[str, ...]) -> str:
        def replace(match_obj: "re.Match[str]") -> str:
            name = match_obj.group(1)
            if name in active:
                chain = " -> ".join(active + (name,))
                raise GpmlSyntaxError(f"cyclic macro expansion: {chain}")
            if name not in self._macros:
                raise GpmlSyntaxError(f"unknown macro {name!r}")
            return self._expand(self._macros[name], active + (name,))

        return _REFERENCE.sub(replace, text)

    def match(
        self,
        graph: PropertyGraph,
        query: str,
        config: MatcherConfig | None = None,
    ) -> MatchResult:
        """Expand macros in *query* and evaluate it."""
        return match(graph, self.expand(query), config)
