"""Isomorphic match modes (Section 7.1 Language Opportunity).

The paper: "Constraining a graph pattern through the introduction of
isomorphic match modes: for example, an edge-isomorphic match requires
all edges matched across all constituent path patterns in the graph
pattern to differ from each other."

These filters post-process a :class:`~repro.gpml.engine.MatchResult`:

* **edge-isomorphic** — all edge occurrences across all matched paths of
  a row are pairwise distinct (Cypher's relationship isomorphism),
* **node-isomorphic** — all node occurrences pairwise distinct (the
  strictest classical subgraph-isomorphism reading).
"""

from __future__ import annotations

from repro.gpml.engine import MatchResult


def filter_edge_isomorphic(result: MatchResult) -> MatchResult:
    """Keep rows whose paths never repeat an edge, across path patterns."""
    rows = [row for row in result.rows if _distinct_across(row, edges=True)]
    return MatchResult(rows=rows, variables=result.variables)


def filter_node_isomorphic(result: MatchResult) -> MatchResult:
    """Keep rows whose paths never repeat a node, across path patterns."""
    rows = [row for row in result.rows if _distinct_across(row, edges=False)]
    return MatchResult(rows=rows, variables=result.variables)


def _distinct_across(row, edges: bool) -> bool:
    seen: set[str] = set()
    for path in row.paths:
        ids = path.edge_ids if edges else path.node_ids
        for element_id in ids:
            if element_id in seen:
                return False
            seen.add(element_id)
    return True
