"""Isomorphic match modes (Section 7.1 Language Opportunity).

The paper: "Constraining a graph pattern through the introduction of
isomorphic match modes: for example, an edge-isomorphic match requires
all edges matched across all constituent path patterns in the graph
pattern to differ from each other."

These are per-row predicates, so they compose with the streaming
pipeline: :func:`iter_edge_isomorphic` / :func:`iter_node_isomorphic`
filter any iterable of binding rows lazily (e.g. the output of
:func:`~repro.gpml.engine.match_iter`), and the materializing
``filter_*`` wrappers post-process a whole
:class:`~repro.gpml.engine.MatchResult`:

* **edge-isomorphic** — all edge occurrences across all matched paths of
  a row are pairwise distinct (Cypher's relationship isomorphism),
* **node-isomorphic** — all node occurrences pairwise distinct (the
  strictest classical subgraph-isomorphism reading).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.gpml.engine import BindingRow, MatchResult


def iter_edge_isomorphic(rows: Iterable[BindingRow]) -> Iterator[BindingRow]:
    """Lazily keep rows whose paths never repeat an edge (streaming)."""
    return (row for row in rows if _distinct_across(row, edges=True))


def iter_node_isomorphic(rows: Iterable[BindingRow]) -> Iterator[BindingRow]:
    """Lazily keep rows whose paths never repeat a node (streaming)."""
    return (row for row in rows if _distinct_across(row, edges=False))


def filter_edge_isomorphic(result: MatchResult) -> MatchResult:
    """Keep rows whose paths never repeat an edge, across path patterns."""
    return MatchResult(
        rows=list(iter_edge_isomorphic(result.rows)), variables=result.variables
    )


def filter_node_isomorphic(result: MatchResult) -> MatchResult:
    """Keep rows whose paths never repeat a node, across path patterns."""
    return MatchResult(
        rows=list(iter_node_isomorphic(result.rows)), variables=result.variables
    )


def _distinct_across(row, edges: bool) -> bool:
    seen: set[str] = set()
    for path in row.paths:
        ids = path.edge_ids if edges else path.node_ids
        for element_id in ids:
            if element_id in seen:
                return False
            seen.add(element_id)
    return True
