"""Extensions: Section 7.1 Language Opportunities, implemented.

* cheapest-path search over weighted edges (``ANY CHEAPEST [COST p]``,
  ``TOP k CHEAPEST [COST p]`` — wired into the main parser and engine;
  helpers live in :mod:`~repro.extensions.cheapest`),
* isomorphic match modes across a whole graph pattern
  (:mod:`~repro.extensions.match_modes`),
* exporting bindings and paths to JSON
  (:mod:`~repro.extensions.json_export`).
"""

from repro.extensions.cheapest import any_cheapest_path, top_k_cheapest_paths
from repro.extensions.macros import MacroRegistry
from repro.extensions.json_export import result_to_json, result_to_jsonable
from repro.extensions.match_modes import (
    filter_edge_isomorphic,
    filter_node_isomorphic,
)

__all__ = [
    "MacroRegistry",
    "any_cheapest_path",
    "filter_edge_isomorphic",
    "filter_node_isomorphic",
    "result_to_json",
    "result_to_jsonable",
    "top_k_cheapest_paths",
]
