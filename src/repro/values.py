"""Value domain and SQL-style three-valued logic.

GPML inherits its expression semantics from SQL: property accesses on
elements that lack the property yield NULL, comparisons involving NULL
yield UNKNOWN, and a WHERE clause keeps a row only when its condition
evaluates to TRUE (Section 4.6 of the paper relies on this behaviour for
conditional singletons).

The module defines:

* :data:`NULL` — the singleton null marker,
* :class:`TruthValue` — the three logic values with Kleene connectives,
* comparison helpers that map Python values into this logic,
* numeric-literal helpers for the paper's ``5M``-style shorthands.
"""

from __future__ import annotations

import enum
from typing import Any


class _NullType:
    """Singleton marker for the SQL NULL value."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self


NULL = _NullType()


def is_null(value: Any) -> bool:
    """Return True when *value* is the SQL NULL marker (or Python None)."""
    return value is NULL or value is None


class TruthValue(enum.Enum):
    """Three-valued logic: TRUE, FALSE, UNKNOWN (Kleene K3)."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        """Python truthiness collapses to "is definitely true".

        This is exactly the filter semantics of WHERE: rows are kept only
        when the condition is TRUE, so both FALSE and UNKNOWN drop the row.
        """
        return self is TruthValue.TRUE

    def and_(self, other: "TruthValue") -> "TruthValue":
        if self is TruthValue.FALSE or other is TruthValue.FALSE:
            return TruthValue.FALSE
        if self is TruthValue.TRUE and other is TruthValue.TRUE:
            return TruthValue.TRUE
        return TruthValue.UNKNOWN

    def or_(self, other: "TruthValue") -> "TruthValue":
        if self is TruthValue.TRUE or other is TruthValue.TRUE:
            return TruthValue.TRUE
        if self is TruthValue.FALSE and other is TruthValue.FALSE:
            return TruthValue.FALSE
        return TruthValue.UNKNOWN

    def not_(self) -> "TruthValue":
        if self is TruthValue.TRUE:
            return TruthValue.FALSE
        if self is TruthValue.FALSE:
            return TruthValue.TRUE
        return TruthValue.UNKNOWN


TRUE = TruthValue.TRUE
FALSE = TruthValue.FALSE
UNKNOWN = TruthValue.UNKNOWN


def truth_of(value: Any) -> TruthValue:
    """Coerce a Python value (or NULL) into a TruthValue."""
    if is_null(value):
        return UNKNOWN
    if isinstance(value, TruthValue):
        return value
    if isinstance(value, bool):
        return TRUE if value else FALSE
    raise TypeError(f"cannot interpret {value!r} as a truth value")


_NUMERIC_TYPES = (int, float)


def _comparable(left: Any, right: Any) -> bool:
    if isinstance(left, _NUMERIC_TYPES) and isinstance(right, _NUMERIC_TYPES):
        # bool is an int subclass; do not silently compare bools to numbers.
        if isinstance(left, bool) != isinstance(right, bool):
            return False
        return True
    return type(left) is type(right)


def compare(op: str, left: Any, right: Any) -> TruthValue:
    """Three-valued comparison of two values.

    ``op`` is one of ``= <> < <= > >=``.  NULL operands give UNKNOWN, as do
    operands of incomparable types (a deliberate, documented softening of
    SQL's type errors that keeps heterogeneous property data queryable).
    """
    if is_null(left) or is_null(right):
        return UNKNOWN
    if not _comparable(left, right):
        if op == "=":
            return FALSE
        if op == "<>":
            return TRUE
        return UNKNOWN
    if op == "=":
        return truth_of(left == right)
    if op == "<>":
        return truth_of(left != right)
    if op == "<":
        return truth_of(left < right)
    if op == "<=":
        return truth_of(left <= right)
    if op == ">":
        return truth_of(left > right)
    if op == ">=":
        return truth_of(left >= right)
    raise ValueError(f"unknown comparison operator {op!r}")


_MAGNITUDE_SUFFIXES = {"K": 1_000, "M": 1_000_000, "B": 1_000_000_000}


def parse_number(text: str) -> int | float:
    """Parse a numeric literal, honouring the paper's K/M/B shorthands.

    ``8M`` → 8_000_000, ``1.5K`` → 1500.0, plain ints and floats pass
    through.  Raises ValueError for malformed input.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty numeric literal")
    suffix = text[-1].upper()
    if suffix in _MAGNITUDE_SUFFIXES:
        base = text[:-1]
        factor = _MAGNITUDE_SUFFIXES[suffix]
        if "." in base or "e" in base.lower():
            return float(base) * factor
        return int(base) * factor
    if "." in text or "e" in text.lower():
        return float(text)
    return int(text)


def format_amount(value: Any) -> str:
    """Format a number using the paper's M/K shorthand when exact."""
    if isinstance(value, int):
        for suffix, factor in (("B", 1_000_000_000), ("M", 1_000_000), ("K", 1_000)):
            if value and value % factor == 0:
                return f"{value // factor}{suffix}"
    return str(value)
