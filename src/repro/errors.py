"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the query
pipeline: lexing/parsing, static analysis, evaluation, and the host
languages (SQL/PGQ and GQL).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Invalid operation on a property graph (unknown id, duplicate id, ...)."""


class PathError(GraphError):
    """Invalid path construction (non-alternating sequence, disconnected step)."""


class GpmlError(ReproError):
    """Base class for errors in the GPML sub-language."""


class GpmlSyntaxError(GpmlError):
    """Lexical or grammatical error in a GPML query string."""

    def __init__(self, message: str, position: int = -1, text: str = ""):
        self.position = position
        self.text = text
        if position >= 0 and text:
            line = text.count("\n", 0, position) + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = f"{message} (line {line}, column {col})"
        super().__init__(message)


class GpmlAnalysisError(GpmlError):
    """Static-analysis error: the query is syntactically valid but illegal."""


class NonTerminationError(GpmlAnalysisError):
    """The query violates the termination rules of Section 5.

    Raised when an unbounded quantifier is not in the scope of a restrictor
    or a selector, or when a prefilter aggregates an effectively unbounded
    group variable (Section 5.3).
    """


class ConditionalJoinError(GpmlAnalysisError):
    """An implicit equi-join on a conditional singleton variable (Section 4.6)."""


class VariableScopeError(GpmlAnalysisError):
    """A variable is used inconsistently (e.g. as node and edge, or at
    conflicting quantification depths)."""


class GpmlEvaluationError(GpmlError):
    """Runtime error while evaluating a pattern against a graph."""


class ExpressionError(GpmlEvaluationError):
    """Type or reference error while evaluating a value expression."""


class BudgetExceededError(GpmlEvaluationError):
    """An engine safety budget (max path length / max matches) was hit.

    This signals a configuration problem rather than non-termination: the
    static analyzer proves termination, and the budget exists only to bound
    pathological-but-finite searches.
    """


class PgqError(ReproError):
    """Base class for errors raised by the SQL/PGQ host layer."""


class TableError(PgqError):
    """Invalid relational operation (unknown column, arity mismatch, ...)."""


class DdlError(PgqError):
    """Invalid CREATE PROPERTY GRAPH statement."""


class SqlError(PgqError):
    """Base class for errors raised by the SQL host engine (:mod:`repro.sql`)."""


class SqlSyntaxError(SqlError):
    """Lexical or grammatical error in a SQL statement."""

    def __init__(self, message: str, position: int = -1, text: str = ""):
        self.position = position
        self.text = text
        if position >= 0 and text:
            line = text.count("\n", 0, position) + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = f"{message} (line {line}, column {col})"
        super().__init__(message)


class GqlError(ReproError):
    """Base class for errors raised by the GQL host layer."""
