"""Paths over property graphs.

Following the paper (Section 2, footnote 1), a *path* is what graph theory
calls a walk: an alternating sequence of nodes and edges that starts and
ends with a node, where each edge connects its two neighbouring nodes.
Edges may be traversed against their direction (the paper's first example,
``path(c1,li1,a1,t1,a3,hp3,p2)``, traverses ``li1`` in reverse), so a walk
is valid as long as each edge *connects* the adjacent nodes.

Walks may repeat nodes and edges; the restrictors of Section 5 (TRAIL,
ACYCLIC, SIMPLE) are exposed here as predicates.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import PathError
from repro.graph.model import Edge, Node, PropertyGraph


class Path:
    """An immutable walk through a property graph.

    ``nodes`` has exactly one more entry than ``edges``.  A zero-length
    path (single node, no edges) is valid and is produced by node-only
    patterns such as ``MATCH (x)``.
    """

    __slots__ = ("_graph", "_nodes", "_edges")

    def __init__(self, graph: PropertyGraph, nodes: Sequence[str], edges: Sequence[str]):
        nodes = tuple(nodes)
        edges = tuple(edges)
        if not nodes:
            raise PathError("a path must contain at least one node")
        if len(nodes) != len(edges) + 1:
            raise PathError(
                f"a path with {len(edges)} edges needs {len(edges) + 1} nodes, "
                f"got {len(nodes)}"
            )
        for node_id in nodes:
            if not graph.has_node(node_id):
                raise PathError(f"unknown node {node_id!r}")
        for i, edge_id in enumerate(edges):
            if not graph.has_edge(edge_id):
                raise PathError(f"unknown edge {edge_id!r}")
            if not graph.edge(edge_id).connects(nodes[i], nodes[i + 1]):
                raise PathError(
                    f"edge {edge_id!r} does not connect {nodes[i]!r} and {nodes[i + 1]!r}"
                )
        self._graph = graph
        self._nodes = nodes
        self._edges = edges

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> PropertyGraph:
        return self._graph

    @property
    def node_ids(self) -> tuple[str, ...]:
        return self._nodes

    @property
    def edge_ids(self) -> tuple[str, ...]:
        return self._edges

    @property
    def nodes(self) -> list[Node]:
        return [self._graph.node(n) for n in self._nodes]

    @property
    def edges(self) -> list[Edge]:
        return [self._graph.edge(e) for e in self._edges]

    @property
    def length(self) -> int:
        """Number of edges (the paper's path length)."""
        return len(self._edges)

    @property
    def source_id(self) -> str:
        return self._nodes[0]

    @property
    def target_id(self) -> str:
        return self._nodes[-1]

    @property
    def source(self) -> Node:
        return self._graph.node(self._nodes[0])

    @property
    def target(self) -> Node:
        return self._graph.node(self._nodes[-1])

    @property
    def element_ids(self) -> tuple[str, ...]:
        """The alternating node/edge id sequence n0, e0, n1, e1, ..., nk."""
        out: list[str] = [self._nodes[0]]
        for edge_id, node_id in zip(self._edges, self._nodes[1:]):
            out.append(edge_id)
            out.append(node_id)
        return tuple(out)

    # ------------------------------------------------------------------
    # Restrictor predicates (Figure 7)
    # ------------------------------------------------------------------
    def is_trail(self) -> bool:
        """TRAIL: no repeated edges."""
        return len(set(self._edges)) == len(self._edges)

    def is_acyclic(self) -> bool:
        """ACYCLIC: no repeated nodes."""
        return len(set(self._nodes)) == len(self._nodes)

    def is_simple(self) -> bool:
        """SIMPLE: no repeated nodes, except first == last is allowed."""
        interior = self._nodes[1:] if self._nodes[0] == self._nodes[-1] else self._nodes
        return len(set(interior)) == len(interior)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def concat(self, other: "Path") -> "Path":
        """Join two walks sharing an endpoint: self.target == other.source."""
        if self._graph is not other._graph:
            raise PathError("cannot concatenate paths over different graphs")
        if self.target_id != other.source_id:
            raise PathError(
                f"cannot concatenate: {self.target_id!r} != {other.source_id!r}"
            )
        return Path(
            self._graph,
            self._nodes + other._nodes[1:],
            self._edges + other._edges,
        )

    def reverse(self) -> "Path":
        """The same walk traversed backwards (always a valid walk)."""
        return Path(self._graph, tuple(reversed(self._nodes)), tuple(reversed(self._edges)))

    def prefix(self, num_edges: int) -> "Path":
        if not 0 <= num_edges <= self.length:
            raise PathError(f"prefix length {num_edges} out of range 0..{self.length}")
        return Path(self._graph, self._nodes[: num_edges + 1], self._edges[:num_edges])

    def cost(self, weight_property: str, default: float = 1.0) -> float:
        """Sum of a numeric edge property (used by the cheapest-path extension)."""
        total = 0.0
        for edge in self.edges:
            value = edge.get(weight_property, None)
            total += default if value is None else float(value)
        return total

    @classmethod
    def single_node(cls, graph: PropertyGraph, node_id: str) -> "Path":
        return cls(graph, (node_id,), ())

    @classmethod
    def from_element_ids(cls, graph: PropertyGraph, elements: Sequence[str]) -> "Path":
        """Build from the alternating sequence n0, e0, n1, ..., nk."""
        if len(elements) % 2 == 0:
            raise PathError("alternating element sequence must have odd length")
        return cls(graph, tuple(elements[0::2]), tuple(elements[1::2]))

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[str]:
        return iter(self.element_ids)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Path)
            and self._graph is other._graph
            and self._nodes == other._nodes
            and self._edges == other._edges
        )

    def __hash__(self) -> int:
        return hash((id(self._graph), self._nodes, self._edges))

    def __lt__(self, other: "Path") -> bool:
        """Deterministic order: by length, then element-id sequence."""
        return (self.length, self.element_ids) < (other.length, other.element_ids)

    def __repr__(self) -> str:
        return f"path({','.join(self.element_ids)})"
