"""Columnar snapshot of a property graph: CSR adjacency + property columns.

The object model (:mod:`repro.graph.model`) stores the graph as dicts of
objects — ideal for mutation, slow to traverse: every matcher step chases
pointers and rebuilds ``Incidence`` lists.  This module compiles a
read-only **columnar snapshot** of a graph on demand:

* nodes and edges get dense integer codes (insertion order, so code order
  reproduces the object model's deterministic iteration order),
* adjacency is CSR (compressed sparse row): one ``indptr`` array over
  node codes plus parallel ``local``/``other``/``dir`` arrays, built
  **per edge label** (the traversal fast path) and once for all edges,
* label membership is a bitset (one big int per label; bit = node code),
* property values are columns — one array per (kind, property), with a
  value dictionary for all-string columns so equality tests compare ints.

Snapshots are immutable and cached on the graph, keyed on
:attr:`PropertyGraph.version`: any mutation bumps the version and the
next query rebuilds.  Everything inside a snapshot is *lazy* — per-label
CSR blocks, bitsets and columns are built on first use, so a query pays
only for the labels and properties it touches.

The per-node entry order of every CSR block equals
``PropertyGraph.incidences(node)`` order exactly (edge-insertion order;
directed self-loops contribute their OUT slot before their IN slot;
undirected self-loops appear once) — the frontier matcher relies on this
to reproduce the object engine's emission order bit for bit.
"""

from __future__ import annotations

from collections import Counter
from itertools import accumulate
from time import perf_counter
from typing import Any, Optional

from repro.gpml.label_expr import (
    LabelAnd,
    LabelAtom,
    LabelExpr,
    LabelNot,
    LabelOr,
    LabelWildcard,
)
from repro.graph.model import PropertyGraph

#: CSR direction codes (mirroring model.OUT / model.IN / model.UNDIRECTED)
DIR_OUT = 0
DIR_IN = 1
DIR_UNDIRECTED = 2

#: sentinel for "property absent" inside a column (NULL is a legal value)
MISSING = object()

_SNAPSHOT_ATTR = "_columnar_snapshot"
_STORAGE_ATTR = "_columnar_storage_stats"


class Column:
    """One property column over all elements of a kind, indexed by code.

    ``values[code]`` is the raw property value, or :data:`MISSING` when
    the element lacks the property.  ``codes``/``dictionary`` are set on
    all-string columns: ``codes[code]`` is an int id into ``dictionary``
    (−1 = missing), and ``code_of`` inverts it, so a string equality test
    becomes one list index + one int compare.
    """

    __slots__ = ("values", "codes", "dictionary", "code_of")

    def __init__(self, values: list):
        self.values = values
        self.codes: Optional[list[int]] = None
        self.dictionary: Optional[list[str]] = None
        self.code_of: Optional[dict[str, int]] = None
        self._try_encode()

    def _try_encode(self) -> None:
        code_of: dict[str, int] = {}
        codes: list[int] = []
        append = codes.append
        for value in self.values:
            if value is MISSING:
                append(-1)
                continue
            if type(value) is not str:
                return  # mixed/non-string column: no dictionary
            code = code_of.get(value)
            if code is None:
                code = len(code_of)
                code_of[value] = code
            append(code)
        self.codes = codes
        self.code_of = code_of
        self.dictionary = list(code_of)

    def get(self, code: int) -> Any:
        return self.values[code]


class CsrBlock:
    """CSR adjacency for one edge-label partition (or all edges).

    ``indptr[code] .. indptr[code+1]`` delimits the entries of one node;
    parallel arrays per entry: ``local`` (index into this block's
    ``edge_ids``), ``other`` (neighbour node code), ``dir`` (DIR_* code).
    ``edge_ids`` lists the member edges' string ids; per-edge property
    columns over the block live in ``columns`` (built lazily).
    """

    __slots__ = ("indptr", "local", "other", "dir", "edge_ids", "_columns", "_snapshot")

    def __init__(self, snapshot: "ColumnarGraph", indptr, local, other, dirs, edge_ids):
        self.indptr = indptr
        self.local = local
        self.other = other
        self.dir = dirs
        self.edge_ids = edge_ids
        self._columns: dict[str, Column] = {}
        self._snapshot = snapshot

    def column(self, prop: str) -> Column:
        """Property column over this block's edges, keyed by local index."""
        column = self._columns.get(prop)
        if column is None:
            edges = self._snapshot.graph._edges
            column = Column(
                [edges[eid].properties.get(prop, MISSING) for eid in self.edge_ids]
            )
            self._columns[prop] = column
        return column


class ColumnarGraph:
    """Immutable columnar view of one :class:`PropertyGraph` version."""

    def __init__(self, graph: PropertyGraph):
        self.graph = graph
        self.version = graph.version
        self.node_ids: list[str] = list(graph._nodes)
        self.node_code: dict[str, int] = {
            nid: code for code, nid in enumerate(self.node_ids)
        }
        self.num_nodes = len(self.node_ids)
        # lazy parts
        # keyed (edge_label_or_None, need); None label = all edges
        self._csr: dict[tuple[Optional[str], str], CsrBlock] = {}
        self._node_bitsets: dict[str, int] = {}
        self._edge_bitsets: dict[Optional[str], dict[str, bool]] = {}
        self._node_columns: dict[str, Column] = {}
        self._eq_scans: dict[tuple[Optional[str], str, Any], set[str]] = {}
        self._labeled_mask: Optional[int] = None
        self._label_members_sorted: dict[str, list[str]] = {}

    # -- adjacency -----------------------------------------------------
    def csr(self, edge_label: Optional[str], need: str = "any") -> CsrBlock:
        """The CSR block for *edge_label* (None = every edge).

        ``need`` specializes the block to the entries a traversal can
        admit: ``"out"`` keeps only OUT entries of directed edges,
        ``"in"`` only IN entries, ``"any"`` everything.  Orientation
        filtering happens *before* the matcher counts a step, so a
        specialized block changes neither results nor step counts — it
        just halves build and scan cost for one-directional hops (the
        common ``->`` case).
        """
        key = (edge_label, need)
        block = self._csr.get(key)
        if block is None and need != "any":
            # An existing full block is a superset — the scan's admit
            # check filters it — so never build a specialization twice.
            block = self._csr.get((edge_label, "any"))
        if block is None:
            block = self._build_csr(edge_label, need)
            self._csr[key] = block
        return block

    def _build_csr(self, edge_label: Optional[str], need: str) -> CsrBlock:
        node_code = self.node_code
        # One pass over the edge dict in insertion order: per node this
        # appends entries in exactly add_edge's incidence order.
        if edge_label is None:
            rows = [
                (eid, node_code[data.first], node_code[data.second], data.directed)
                for eid, data in self.graph._edges.items()
            ]
        else:
            rows = [
                (eid, node_code[data.first], node_code[data.second], data.directed)
                for eid, data in self.graph._edges.items()
                if edge_label in data.labels
            ]
        if not rows:
            return CsrBlock(self, [0] * (self.num_nodes + 1), [], [], [], [])
        edge_ids, srcs, dsts, directed_flags = map(list, zip(*rows))
        all_directed = all(directed_flags)

        if need != "any" and all_directed:
            # One entry per edge: at its source (out) or target (in).
            anchors = srcs if need == "out" else dsts
            others = dsts if need == "out" else srcs
            direction = DIR_OUT if need == "out" else DIR_IN
            degree = Counter(anchors)
            counts = [0] * (self.num_nodes + 1)
            for code, n in degree.items():
                counts[code + 1] = n
            indptr = list(accumulate(counts))
            local = [0] * indptr[-1]
            other = [0] * indptr[-1]
            cursor = indptr[:-1]
            for k, (a, o) in enumerate(zip(anchors, others)):
                pos = cursor[a]
                cursor[a] = pos + 1
                local[pos] = k
                other[pos] = o
            dirs = [direction] * indptr[-1]
            return CsrBlock(self, indptr, local, other, dirs, edge_ids)

        degree = Counter(srcs)
        if all_directed:
            degree.update(dsts)
        else:
            degree.update(
                d
                for d, s, flag in zip(dsts, srcs, directed_flags)
                if flag or d != s
            )
        counts = [0] * (self.num_nodes + 1)
        for code, n in degree.items():
            counts[code + 1] = n
        indptr = list(accumulate(counts))
        total = indptr[-1]
        local = [0] * total
        other = [0] * total
        dirs = [0] * total
        cursor = indptr[:-1]
        if all_directed:
            for k, (s, d) in enumerate(zip(srcs, dsts)):
                pos = cursor[s]
                cursor[s] = pos + 1
                local[pos] = k
                other[pos] = d
                dirs[pos] = DIR_OUT
                pos = cursor[d]
                cursor[d] = pos + 1
                local[pos] = k
                other[pos] = s
                dirs[pos] = DIR_IN
            return CsrBlock(self, indptr, local, other, dirs, edge_ids)
        for k, (s, d, flag) in enumerate(zip(srcs, dsts, directed_flags)):
            if flag:
                pos = cursor[s]
                cursor[s] = pos + 1
                local[pos] = k
                other[pos] = d
                dirs[pos] = DIR_OUT
                pos = cursor[d]
                cursor[d] = pos + 1
                local[pos] = k
                other[pos] = s
                dirs[pos] = DIR_IN
            else:
                pos = cursor[s]
                cursor[s] = pos + 1
                local[pos] = k
                other[pos] = d
                dirs[pos] = DIR_UNDIRECTED
                if d != s:
                    pos = cursor[d]
                    cursor[d] = pos + 1
                    local[pos] = k
                    other[pos] = s
                    dirs[pos] = DIR_UNDIRECTED
        return CsrBlock(self, indptr, local, other, dirs, edge_ids)

    # -- label bitsets -------------------------------------------------
    def node_label_bitset(self, label: str) -> int:
        """Big-int bitset over node codes of the label's members."""
        bitset = self._node_bitsets.get(label)
        if bitset is None:
            # Build through a bytearray: |= (1 << code) on a big int is
            # O(num_nodes) per member; byte writes keep the build linear.
            mask = bytearray((self.num_nodes + 7) // 8)
            node_code = self.node_code
            for nid in self.graph._node_label_index.get(label, ()):
                code = node_code[nid]
                mask[code >> 3] |= 1 << (code & 7)
            bitset = int.from_bytes(bytes(mask), "little")
            self._node_bitsets[label] = bitset
        return bitset

    def labeled_node_mask(self) -> int:
        """Bitset of nodes carrying at least one label (wildcard ``%``)."""
        if self._labeled_mask is None:
            mask = 0
            for label in self.graph._node_label_index:
                mask |= self.node_label_bitset(label)
            self._labeled_mask = mask
        return self._labeled_mask

    def compile_node_label_expr(self, expr: LabelExpr) -> Optional[int]:
        """Compile a label expression to a node bitset (None = unsupported).

        The bitset covers *all* nodes whose label set matches the
        expression, so the membership test is ``(bits >> code) & 1``.
        """
        if isinstance(expr, LabelAtom):
            return self.node_label_bitset(expr.name)
        if isinstance(expr, LabelWildcard):
            return self.labeled_node_mask()
        if isinstance(expr, LabelNot):
            inner = self.compile_node_label_expr(expr.inner)
            if inner is None:
                return None
            full = (1 << self.num_nodes) - 1
            return full & ~inner
        if isinstance(expr, LabelAnd):
            bits = (1 << self.num_nodes) - 1
            for item in expr.items:
                member = self.compile_node_label_expr(item)
                if member is None:
                    return None
                bits &= member
            return bits
        if isinstance(expr, LabelOr):
            bits = 0
            for item in expr.items:
                member = self.compile_node_label_expr(item)
                if member is None:
                    return None
                bits |= member
            return bits
        return None

    def label_members_sorted(self, label: str) -> list[str]:
        """Node ids carrying *label*, sorted (the label-scan anchor order)."""
        members = self._label_members_sorted.get(label)
        if members is None:
            members = sorted(self.graph._node_label_index.get(label, ()))
            self._label_members_sorted[label] = members
        return members

    # -- anchor scans --------------------------------------------------
    def equality_scan(self, label: Optional[str], prop: str, value: Any) -> set[str]:
        """Node ids with ``prop == value`` among *label*'s members.

        ``==`` here is Python equality over the raw stored value — the
        same relation ``PropertyGraph.index_lookup`` answers from its
        hash buckets, so the planner's property-index candidate sources
        can be served from a column scan (dictionary-code compare on
        all-string columns) with identical results.

        Results are memoized per ``(label, prop, value)`` — the bench
        suite probes the same anchor predicate from several queries —
        so callers must treat the returned set as read-only.
        """
        key = (label, prop, value)
        try:
            cached = self._eq_scans.get(key)
        except TypeError:  # unhashable value: scan without caching
            return self._equality_scan_uncached(label, prop, value)
        if cached is None:
            cached = self._equality_scan_uncached(label, prop, value)
            self._eq_scans[key] = cached
        return cached

    def _equality_scan_uncached(
        self, label: Optional[str], prop: str, value: Any
    ) -> set[str]:
        column = self.node_column(prop)
        node_ids = self.node_ids
        node_code = self.node_code
        if column.codes is not None and type(value) is str:
            target = column.code_of.get(value, -2)
            codes = column.codes
            if label is None:
                return {
                    node_ids[code]
                    for code, entry in enumerate(codes)
                    if entry == target
                }
            return {
                nid
                for nid in self.graph._node_label_index.get(label, ())
                if codes[node_code[nid]] == target
            }
        values = column.values
        if label is None:
            return {
                node_ids[code]
                for code, entry in enumerate(values)
                if entry is not MISSING and entry == value
            }
        out: set[str] = set()
        for nid in self.graph._node_label_index.get(label, ()):
            entry = values[node_code[nid]]
            if entry is not MISSING and entry == value:
                out.add(nid)
        return out

    # -- property columns ----------------------------------------------
    def node_column(self, prop: str) -> Column:
        """Property column over all nodes, keyed by node code."""
        column = self._node_columns.get(prop)
        if column is None:
            column = Column(
                [data.properties.get(prop, MISSING) for data in self.graph._nodes.values()]
            )
            self._node_columns[prop] = column
        return column


# ----------------------------------------------------------------------
# Per-graph snapshot cache + storage observability
# ----------------------------------------------------------------------
def snapshot_for(graph: PropertyGraph) -> ColumnarGraph:
    """The columnar snapshot of *graph*, rebuilt after any mutation.

    Cached on the graph object keyed on ``graph.version``; hit/miss and
    build-time counters feed the CLI's ``-- storage:`` stats line.
    """
    stats = storage_stats(graph)
    cached = getattr(graph, _SNAPSHOT_ATTR, None)
    if cached is not None and cached.version == graph.version:
        stats["hits"] += 1
        return cached
    start = perf_counter()
    snapshot = ColumnarGraph(graph)
    stats["misses"] += 1
    stats["build_ms"] += (perf_counter() - start) * 1000.0
    setattr(graph, _SNAPSHOT_ATTR, snapshot)
    return snapshot


def cached_snapshot(graph: PropertyGraph) -> Optional[ColumnarGraph]:
    """The current snapshot if one is already built — never builds.

    Lets optional fast paths (planner candidate scans) piggyback on a
    snapshot the frontier engine created without forcing columnar costs
    onto oracle-mode runs, where no snapshot ever exists.
    """
    cached = getattr(graph, _SNAPSHOT_ATTR, None)
    if cached is not None and cached.version == graph.version:
        return cached
    return None


def storage_stats(graph: PropertyGraph) -> dict:
    """Mutable snapshot-cache counters for *graph* (hits/misses/build_ms)."""
    stats = getattr(graph, _STORAGE_ATTR, None)
    if stats is None:
        stats = {"hits": 0, "misses": 0, "build_ms": 0.0}
        setattr(graph, _STORAGE_ATTR, stats)
    return stats
