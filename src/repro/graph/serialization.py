"""JSON (de)serialization of property graphs.

The paper lists "Exporting a graph element or path binding to JSON" as a
Language Opportunity (Section 7.1); this module provides the graph half,
and :mod:`repro.extensions.json_export` provides the binding half.

The format is a stable, human-readable dictionary:

.. code-block:: json

    {
      "name": "bank",
      "nodes": [{"id": "a1", "labels": ["Account"], "properties": {...}}],
      "edges": [{"id": "t1", "from": "a1", "to": "a3", "directed": true,
                 "labels": ["Transfer"], "properties": {...}}]
    }
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import GraphError
from repro.graph.model import PropertyGraph


def graph_to_dict(graph: PropertyGraph) -> dict[str, Any]:
    nodes = [
        {
            "id": node.id,
            "labels": sorted(node.labels),
            "properties": dict(node.properties),
        }
        for node in sorted(graph.nodes())
    ]
    edges = []
    for edge in sorted(graph.edges()):
        first, second = edge.endpoint_ids
        edges.append(
            {
                "id": edge.id,
                "from": first,
                "to": second,
                "directed": edge.is_directed,
                "labels": sorted(edge.labels),
                "properties": dict(edge.properties),
            }
        )
    return {"name": graph.name, "nodes": nodes, "edges": edges}


def graph_from_dict(data: dict[str, Any]) -> PropertyGraph:
    graph = PropertyGraph(name=data.get("name", "graph"))
    for node in data.get("nodes", ()):
        graph.add_node(
            node["id"],
            labels=node.get("labels", ()),
            properties=node.get("properties", {}),
        )
    for edge in data.get("edges", ()):
        graph.add_edge(
            edge["id"],
            edge["from"],
            edge["to"],
            labels=edge.get("labels", ()),
            properties=edge.get("properties", {}),
            directed=edge.get("directed", True),
        )
    return graph


def graph_to_json(graph: PropertyGraph, indent: int | None = 2) -> str:
    return json.dumps(graph_to_dict(graph), indent=indent, sort_keys=False)


def graph_from_json(text: str) -> PropertyGraph:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphError(f"invalid graph JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise GraphError("graph JSON must be an object")
    return graph_from_dict(data)
