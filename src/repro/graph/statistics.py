"""Summary statistics of a property graph (used by EXPLAIN and benchmarks)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.graph.model import OUT, PropertyGraph


@dataclass(frozen=True)
class GraphStatistics:
    """A structural summary of a property graph."""

    num_nodes: int
    num_edges: int
    num_directed_edges: int
    num_undirected_edges: int
    num_self_loops: int
    node_label_histogram: dict[str, int]
    edge_label_histogram: dict[str, int]
    max_out_degree: int
    mean_degree: float

    def __str__(self) -> str:
        return (
            f"{self.num_nodes} nodes, {self.num_edges} edges "
            f"({self.num_directed_edges} directed, "
            f"{self.num_undirected_edges} undirected, "
            f"{self.num_self_loops} self-loops); "
            f"mean degree {self.mean_degree:.2f}"
        )


def graph_statistics(graph: PropertyGraph) -> GraphStatistics:
    node_labels: Counter[str] = Counter()
    for node in graph.nodes():
        node_labels.update(node.labels)
    edge_labels: Counter[str] = Counter()
    directed = undirected = self_loops = 0
    for edge in graph.edges():
        edge_labels.update(edge.labels)
        if edge.is_directed:
            directed += 1
        else:
            undirected += 1
        if edge.is_self_loop:
            self_loops += 1
    max_out = 0
    total_inc = 0
    for node_id in graph.node_ids():
        incidences = graph.incidences(node_id)
        total_inc += len(incidences)
        out_degree = sum(1 for inc in incidences if inc.direction == OUT)
        max_out = max(max_out, out_degree)
    mean_degree = total_inc / graph.num_nodes if graph.num_nodes else 0.0
    return GraphStatistics(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_directed_edges=directed,
        num_undirected_edges=undirected,
        num_self_loops=self_loops,
        node_label_histogram=dict(node_labels),
        edge_label_histogram=dict(edge_labels),
        max_out_degree=max_out,
        mean_degree=mean_degree,
    )
