"""Summary statistics of a property graph.

Two layers:

* :func:`graph_statistics` — the structural summary used by EXPLAIN and
  benchmarks (node/edge counts, label histograms, degrees),
* :func:`cardinality_statistics` — the planner-facing catalog: per-label
  node/edge cardinalities, label-pair edge counts (join selectivities),
  and per-(label, property) distinct-value counts.  The cost-based
  planner (:mod:`repro.planner`) consumes these through a per-graph cache
  keyed on :attr:`PropertyGraph.version`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.graph.model import OUT, PropertyGraph


@dataclass(frozen=True)
class GraphStatistics:
    """A structural summary of a property graph."""

    num_nodes: int
    num_edges: int
    num_directed_edges: int
    num_undirected_edges: int
    num_self_loops: int
    node_label_histogram: dict[str, int]
    edge_label_histogram: dict[str, int]
    max_out_degree: int
    mean_degree: float

    def __str__(self) -> str:
        return (
            f"{self.num_nodes} nodes, {self.num_edges} edges "
            f"({self.num_directed_edges} directed, "
            f"{self.num_undirected_edges} undirected, "
            f"{self.num_self_loops} self-loops); "
            f"mean degree {self.mean_degree:.2f}"
        )


def graph_statistics(graph: PropertyGraph) -> GraphStatistics:
    node_labels: Counter[str] = Counter()
    for node in graph.nodes():
        node_labels.update(node.labels)
    edge_labels: Counter[str] = Counter()
    directed = undirected = self_loops = 0
    for edge in graph.edges():
        edge_labels.update(edge.labels)
        if edge.is_directed:
            directed += 1
        else:
            undirected += 1
        if edge.is_self_loop:
            self_loops += 1
    max_out = 0
    total_inc = 0
    for node_id in graph.node_ids():
        incidences = graph.incidences(node_id)
        total_inc += len(incidences)
        out_degree = sum(1 for inc in incidences if inc.direction == OUT)
        max_out = max(max_out, out_degree)
    mean_degree = total_inc / graph.num_nodes if graph.num_nodes else 0.0
    return GraphStatistics(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_directed_edges=directed,
        num_undirected_edges=undirected,
        num_self_loops=self_loops,
        node_label_histogram=dict(node_labels),
        edge_label_histogram=dict(edge_labels),
        max_out_degree=max_out,
        mean_degree=mean_degree,
    )


# ----------------------------------------------------------------------
# Planner-facing cardinality catalog
# ----------------------------------------------------------------------
#: histogram key for elements carrying no label at all
UNLABELED = None


@dataclass(frozen=True)
class CardinalityStatistics:
    """Cardinalities and selectivities backing cost-based planning.

    * ``node_label_counts`` / ``edge_label_counts`` — elements per label
      (an element with several labels counts once per label); the
      ``None`` key counts completely unlabeled elements.
    * ``edge_label_pairs`` — per edge label, how many edges connect a
      (source-label, target-label) pair; undirected edges count both
      orientations.  ``None`` in a pair slot stands for an unlabeled
      endpoint.  ``count / edge_label_counts[label]`` is the label-pair
      selectivity of the edge label.
    * ``distinct_values`` — per (kind, label-or-None, property), the
      number of distinct values the property takes on elements carrying
      the label.  Drives equality-predicate selectivity: a lookup of one
      value is estimated at ``label_count / distinct``.
    """

    version: int
    num_nodes: int
    num_edges: int
    node_label_counts: dict[Optional[str], int] = field(default_factory=dict)
    edge_label_counts: dict[Optional[str], int] = field(default_factory=dict)
    edge_label_pairs: dict[
        Optional[str], dict[tuple[Optional[str], Optional[str]], int]
    ] = field(default_factory=dict)
    distinct_values: dict[tuple[str, Optional[str], str], int] = field(
        default_factory=dict
    )

    def node_count(self, label: Optional[str]) -> int:
        if label is None:
            return self.num_nodes
        return self.node_label_counts.get(label, 0)

    def edge_count(self, label: Optional[str]) -> int:
        if label is None:
            return self.num_edges
        return self.edge_label_counts.get(label, 0)

    def distinct(self, kind: str, label: Optional[str], prop: str) -> int:
        """Distinct values of *prop*; 0 when no element carries it."""
        return self.distinct_values.get((kind, label, prop), 0)

    def pair_selectivity(
        self, edge_label: Optional[str], source_label: Optional[str], target_label: Optional[str]
    ) -> float:
        """Fraction of *edge_label* edges joining the given label pair."""
        pairs = self.edge_label_pairs.get(edge_label)
        total = self.edge_count(edge_label)
        if not pairs or not total:
            return 1.0
        count = pairs.get((source_label, target_label), 0)
        return count / total


class LazyCardinalityStatistics:
    """Pay-as-you-go twin of :class:`CardinalityStatistics`.

    The eager collector costs one full graph pass — on a 60k-node graph
    that is ~1s before the first matcher step runs.  This class exposes
    the same read API but computes each number on first use, from the
    graph's always-maintained label indexes:

    * label cardinalities are ``len()`` of an index set — O(1),
    * distinct-value counts scan only the requested label's members,
    * label-pair counters scan only the requested edge label's members.

    Every number is **identical** to the eager collector's (same repr
    fallback for unhashable values, same UNLABELED bookkeeping, same
    both-orientations rule for undirected edges), so planner decisions —
    anchor sides, candidate sources, join orders — cannot diverge.  The
    instance is valid for one graph version; the catalog cache discards
    it when :attr:`PropertyGraph.version` moves.
    """

    def __init__(self, graph: PropertyGraph):
        self._graph = graph
        self.version = graph.version
        self.num_nodes = graph.num_nodes
        self.num_edges = graph.num_edges
        self._distinct: dict[tuple[str, Optional[str], str], int] = {}
        self._pairs: dict[Optional[str], dict] = {}
        self._node_label_counts: Optional[dict[Optional[str], int]] = None
        self._edge_label_counts: Optional[dict[Optional[str], int]] = None

    # -- label cardinalities (O(1) from the live label indexes) --------
    def node_count(self, label: Optional[str]) -> int:
        if label is None:
            return self.num_nodes
        return len(self._graph._node_label_index.get(label, ()))

    def edge_count(self, label: Optional[str]) -> int:
        if label is None:
            return self.num_edges
        return len(self._graph._edge_label_index.get(label, ()))

    @property
    def node_label_counts(self) -> dict[Optional[str], int]:
        if self._node_label_counts is None:
            counts: dict[Optional[str], int] = {
                label: len(members)
                for label, members in self._graph._node_label_index.items()
                if members
            }
            labeled: set[str] = set()
            for members in self._graph._node_label_index.values():
                labeled.update(members)
            unlabeled = self.num_nodes - len(labeled)
            if unlabeled:
                counts[UNLABELED] = unlabeled
            self._node_label_counts = counts
        return self._node_label_counts

    @property
    def edge_label_counts(self) -> dict[Optional[str], int]:
        if self._edge_label_counts is None:
            counts: dict[Optional[str], int] = {
                label: len(members)
                for label, members in self._graph._edge_label_index.items()
                if members
            }
            labeled: set[str] = set()
            for members in self._graph._edge_label_index.values():
                labeled.update(members)
            unlabeled = self.num_edges - len(labeled)
            if unlabeled:
                counts[UNLABELED] = unlabeled
            self._edge_label_counts = counts
        return self._edge_label_counts

    # -- distinct-value counts (scan one label's members on demand) ----
    def distinct(self, kind: str, label: Optional[str], prop: str) -> int:
        key = (kind, label, prop)
        cached = self._distinct.get(key)
        if cached is not None:
            return cached
        graph = self._graph
        store = graph._nodes if kind == "node" else graph._edges
        if label is None:
            members = store
        else:
            index = (
                graph._node_label_index if kind == "node" else graph._edge_label_index
            )
            members = index.get(label, ())
        values = set()
        for element_id in members:
            properties = store[element_id].properties
            if prop in properties:
                value = properties[prop]
                try:
                    hash(value)
                except TypeError:
                    value = repr(value)
                values.add(value)
        count = len(values)
        self._distinct[key] = count
        return count

    # -- label-pair selectivity (scan one edge label on demand) --------
    def pair_selectivity(
        self,
        edge_label: Optional[str],
        source_label: Optional[str],
        target_label: Optional[str],
    ) -> float:
        pairs = self._pairs.get(edge_label)
        if pairs is None:
            pairs = self._collect_pairs(edge_label)
            self._pairs[edge_label] = pairs
        total = self.edge_count(edge_label)
        if not pairs or not total:
            return 1.0
        count = pairs.get((source_label, target_label), 0)
        return count / total

    def _collect_pairs(self, edge_label: Optional[str]) -> dict:
        graph = self._graph
        if edge_label is None:
            members = (
                eid for eid, data in graph._edges.items() if not data.labels
            )
        else:
            members = graph._edge_label_index.get(edge_label, ())
        pairs: Counter = Counter()
        labels_of = graph.labels_of
        edges = graph._edges
        for eid in members:
            data = edges[eid]
            source_labels = tuple(labels_of(data.first)) or (UNLABELED,)
            target_labels = tuple(labels_of(data.second)) or (UNLABELED,)
            orientations = [(source_labels, target_labels)]
            if not data.directed:
                orientations.append((target_labels, source_labels))
            for src_labels, dst_labels in orientations:
                for src in src_labels:
                    for dst in dst_labels:
                        pairs[(src, dst)] += 1
        return dict(pairs)


def cardinality_statistics(graph: PropertyGraph) -> CardinalityStatistics:
    """One full pass over the graph collecting the planner's catalog."""
    node_label_counts: Counter = Counter()
    edge_label_counts: Counter = Counter()
    edge_label_pairs: dict[Optional[str], Counter] = {}
    distinct_sets: dict[tuple[str, Optional[str], str], set] = {}

    def _record_properties(kind: str, labels: frozenset, properties: dict) -> None:
        label_keys: tuple = tuple(labels) if labels else (UNLABELED,)
        for prop, value in properties.items():
            try:
                hash(value)
            except TypeError:
                value = repr(value)
            for label in label_keys:
                distinct_sets.setdefault((kind, label, prop), set()).add(value)
            distinct_sets.setdefault((kind, None, prop), set()).add(value)

    for node in graph.nodes():
        labels = node.labels
        if labels:
            node_label_counts.update(labels)
        else:
            node_label_counts[UNLABELED] += 1
        _record_properties("node", labels, dict(node.properties))

    for edge in graph.edges():
        labels = edge.labels
        if labels:
            edge_label_counts.update(labels)
        else:
            edge_label_counts[UNLABELED] += 1
        _record_properties("edge", labels, dict(edge.properties))

        first, second = edge.endpoint_ids
        source_labels = tuple(graph.labels_of(first)) or (UNLABELED,)
        target_labels = tuple(graph.labels_of(second)) or (UNLABELED,)
        edge_keys: tuple = tuple(labels) if labels else (UNLABELED,)
        orientations = [(source_labels, target_labels)]
        if not edge.is_directed:
            orientations.append((target_labels, source_labels))
        for label in edge_keys:
            pairs = edge_label_pairs.setdefault(label, Counter())
            for src_labels, dst_labels in orientations:
                for src in src_labels:
                    for dst in dst_labels:
                        pairs[(src, dst)] += 1

    return CardinalityStatistics(
        version=graph.version,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        node_label_counts=dict(node_label_counts),
        edge_label_counts=dict(edge_label_counts),
        edge_label_pairs={k: dict(v) for k, v in edge_label_pairs.items()},
        distinct_values={k: len(v) for k, v in distinct_sets.items()},
    )
