"""Property-graph substrate: the data model of Definition 2.1.

Public classes:

* :class:`~repro.graph.model.PropertyGraph` — mixed attributed multigraph,
* :class:`~repro.graph.model.Node`, :class:`~repro.graph.model.Edge` —
  element handles,
* :class:`~repro.graph.path.Path` — a walk (the paper's "path"),
* :class:`~repro.graph.builder.GraphBuilder` — fluent construction API.
"""

from repro.graph.model import Edge, Incidence, Node, PropertyGraph
from repro.graph.path import Path
from repro.graph.builder import GraphBuilder
from repro.graph.serialization import graph_from_dict, graph_from_json, graph_to_dict, graph_to_json
from repro.graph.statistics import (
    CardinalityStatistics,
    GraphStatistics,
    cardinality_statistics,
    graph_statistics,
)

__all__ = [
    "CardinalityStatistics",
    "Edge",
    "GraphBuilder",
    "GraphStatistics",
    "cardinality_statistics",
    "Incidence",
    "Node",
    "Path",
    "PropertyGraph",
    "graph_from_dict",
    "graph_from_json",
    "graph_statistics",
    "graph_to_dict",
    "graph_to_json",
]
