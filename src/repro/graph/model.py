"""The property-graph data model (Definition 2.1 of the paper).

A property graph is a tuple G = (N, E, rho, lambda, pi) where

* N is a finite set of node identifiers,
* E is a finite set of edge identifiers, disjoint from N,
* rho maps each edge to an ordered pair of nodes (directed edge) or to an
  unordered pair {u, v} (undirected edge); u = v self-loops are allowed in
  both cases,
* lambda maps every element (node or edge) to a finite set of labels,
* pi partially maps (element, property name) to property values.

The implementation is an adjacency-indexed in-memory structure.  Elements
are exposed through lightweight :class:`Node` and :class:`Edge` handles
that compare by (graph, id), so handles can be used directly as dictionary
keys and in result bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.errors import GraphError
from repro.graph.changelog import ChangeRecord, GraphTransaction
from repro.values import NULL

# Directions in which an edge can be traversed relative to a node.
OUT = "out"
IN = "in"
UNDIRECTED = "undirected"


@dataclass(frozen=True)
class Incidence:
    """One way of leaving a node along an incident edge.

    ``direction`` is OUT (a directed edge leaving the node), IN (a directed
    edge entering the node, traversed against its direction), or UNDIRECTED.
    ``other`` is the node reached by the traversal.
    """

    edge: str
    other: str
    direction: str


@dataclass
class _ElementData:
    labels: frozenset[str]
    properties: dict[str, Any] = field(default_factory=dict)


#: sentinel for "property absent" (None is a legal property value)
_MISSING = object()

#: shared bucket key for unhashable property values; literals are always
#: hashable, so lookups can never match this bucket
_UNHASHABLE = object()


def _index_key(value: Any) -> Any:
    try:
        hash(value)
    except TypeError:
        return _UNHASHABLE
    return value


def _index_add(buckets: dict[Any, set[str]], value: Any, element_id: str) -> None:
    buckets.setdefault(_index_key(value), set()).add(element_id)


def _index_discard(buckets: dict[Any, set[str]], value: Any, element_id: str) -> None:
    bucket = buckets.get(_index_key(value))
    if bucket is not None:
        bucket.discard(element_id)


@dataclass
class _EdgeData(_ElementData):
    first: str = ""
    second: str = ""
    directed: bool = True


class _Element:
    """Shared behaviour of Node and Edge handles."""

    __slots__ = ("_graph", "_id")

    def __init__(self, graph: "PropertyGraph", element_id: str):
        self._graph = graph
        self._id = element_id

    @property
    def id(self) -> str:
        return self._id

    @property
    def graph(self) -> "PropertyGraph":
        return self._graph

    @property
    def labels(self) -> frozenset[str]:
        return self._data().labels

    @property
    def properties(self) -> Mapping[str, Any]:
        return dict(self._data().properties)

    def has_label(self, label: str) -> bool:
        return label in self._data().labels

    def get(self, key: str, default: Any = NULL) -> Any:
        """Property access; missing properties yield NULL (SQL semantics)."""
        return self._data().properties.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.get(key)

    def _data(self) -> _ElementData:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, type(self))
            and self._graph is other._graph
            and self._id == other._id
        )

    def __hash__(self) -> int:
        return hash((id(self._graph), self._id))

    def __lt__(self, other: "_Element") -> bool:
        return self._id < other._id


class Node(_Element):
    """Handle to a node of a property graph."""

    __slots__ = ()

    def _data(self) -> _ElementData:
        return self._graph._nodes[self._id]

    def incidences(self) -> list[Incidence]:
        return self._graph.incidences(self._id)

    def degree(self) -> int:
        return len(self._graph.incidences(self._id))

    def __repr__(self) -> str:
        labels = ":".join(sorted(self.labels))
        return f"({self._id}:{labels})" if labels else f"({self._id})"


class Edge(_Element):
    """Handle to an edge of a property graph."""

    __slots__ = ()

    def _data(self) -> _EdgeData:
        return self._graph._edges[self._id]

    @property
    def is_directed(self) -> bool:
        return self._data().directed

    @property
    def source(self) -> Node | None:
        """Source node of a directed edge; None for undirected edges."""
        data = self._data()
        return self._graph.node(data.first) if data.directed else None

    @property
    def target(self) -> Node | None:
        """Target node of a directed edge; None for undirected edges."""
        data = self._data()
        return self._graph.node(data.second) if data.directed else None

    @property
    def endpoint_ids(self) -> tuple[str, str]:
        """Both endpoints.  Ordered (source, target) when directed."""
        data = self._data()
        return (data.first, data.second)

    @property
    def endpoints(self) -> tuple[Node, Node]:
        first, second = self.endpoint_ids
        return (self._graph.node(first), self._graph.node(second))

    @property
    def is_self_loop(self) -> bool:
        data = self._data()
        return data.first == data.second

    def other_id(self, node_id: str) -> str:
        """The endpoint opposite *node_id*; for self-loops, the node itself."""
        data = self._data()
        if node_id == data.first:
            return data.second
        if node_id == data.second:
            return data.first
        raise GraphError(f"node {node_id!r} is not an endpoint of edge {self._id!r}")

    def connects(self, u: str, v: str) -> bool:
        """True when the edge links nodes u and v (in either role)."""
        data = self._data()
        return {data.first, data.second} == {u, v}

    def __repr__(self) -> str:
        data = self._data()
        labels = ":".join(sorted(self.labels))
        tag = f"{self._id}:{labels}" if labels else self._id
        if data.directed:
            return f"-[{tag}]->({data.first}->{data.second})"
        return f"~[{tag}]~({data.first}~{data.second})"


class PropertyGraph:
    """A mixed, attributed multigraph with handles, indexes and mutation.

    >>> g = PropertyGraph(name="demo")
    >>> a = g.add_node("a", labels=["Account"], properties={"owner": "Ada"})
    >>> b = g.add_node("b", labels=["Account"])
    >>> t = g.add_edge("t", "a", "b", labels=["Transfer"], properties={"amount": 5})
    >>> [inc.other for inc in g.incidences("a")]
    ['b']
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self._nodes: dict[str, _ElementData] = {}
        self._edges: dict[str, _EdgeData] = {}
        self._incidence: dict[str, list[Incidence]] = {}
        self._node_label_index: dict[str, set[str]] = {}
        self._edge_label_index: dict[str, set[str]] = {}
        self._incidence_label_cache: dict[str, dict[str, list[Incidence]]] = {}
        # Version-stamped memo of incidences() results: traversal loops
        # revisit the same nodes, so the per-call defensive copy is paid
        # once per node per graph version instead of once per visit.
        self._incidence_memo: dict[str, list[Incidence]] = {}
        self._incidence_memo_version = -1
        # Property-value hash indexes, keyed (kind, label-or-None, property).
        # Maintained incrementally by every mutation below; see create_index.
        self._property_indexes: dict[
            tuple[str, str | None, str], dict[Any, set[str]]
        ] = {}
        self._auto_counter = 0
        self._version = 0
        # Mutation journal consumers: at most one active transaction
        # (apply-or-rollback) plus any number of change watchers
        # (standing queries).  See repro.graph.changelog.
        self._txn: GraphTransaction | None = None
        self._watchers: list = []

    @property
    def version(self) -> int:
        """Mutation counter; bumped by every structural or property change.

        Consumers (statistics catalogs, cached query plans) key their
        caches on this value so graph mutation invalidates them.  A
        mutation that changes nothing (setting a property to its current
        value, replacing labels with the same set) does **not** bump.
        """
        return self._version

    # ------------------------------------------------------------------
    # Mutation journal: transactions and change watchers
    # ------------------------------------------------------------------
    def begin_mutation(self) -> GraphTransaction:
        """Start an apply-or-rollback transaction over this graph."""
        return GraphTransaction(self)

    def add_watcher(self, callback) -> None:
        """Subscribe *callback* to mutation batches.

        Called with a list of :class:`ChangeRecord` — per mutation when
        no transaction is active, once per commit otherwise.  Rolled
        back transactions publish nothing.
        """
        self._watchers.append(callback)

    def remove_watcher(self, callback) -> None:
        try:
            self._watchers.remove(callback)
        except ValueError:
            pass

    def _notify(self, changes: list[ChangeRecord]) -> None:
        for callback in list(self._watchers):
            callback(changes)

    def _journaling(self) -> bool:
        return self._txn is not None or bool(self._watchers)

    def _record_change(self, undo: tuple, change: ChangeRecord) -> None:
        if self._txn is not None:
            self._txn.record(undo, change)
        elif self._watchers:
            self._notify([change])

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _fresh_id(self, prefix: str) -> str:
        while True:
            self._auto_counter += 1
            candidate = f"{prefix}{self._auto_counter}"
            if candidate not in self._nodes and candidate not in self._edges:
                return candidate

    def add_node(
        self,
        node_id: str | None = None,
        labels: Iterable[str] = (),
        properties: Mapping[str, Any] | None = None,
    ) -> Node:
        if node_id is None:
            node_id = self._fresh_id("_n")
        if node_id in self._nodes or node_id in self._edges:
            raise GraphError(f"duplicate element id {node_id!r}")
        data = _ElementData(labels=frozenset(labels), properties=dict(properties or {}))
        self._nodes[node_id] = data
        self._incidence[node_id] = []
        for label in data.labels:
            self._node_label_index.setdefault(label, set()).add(node_id)
        self._index_element_added("node", node_id, data)
        if self._journaling():
            self._record_change(
                ("add_node", node_id), ChangeRecord("add_node", "node", node_id)
            )
        self._version += 1
        return Node(self, node_id)

    def add_edge(
        self,
        edge_id: str | None,
        first: str,
        second: str,
        labels: Iterable[str] = (),
        properties: Mapping[str, Any] | None = None,
        directed: bool = True,
    ) -> Edge:
        if edge_id is None:
            edge_id = self._fresh_id("_e")
        if edge_id in self._edges or edge_id in self._nodes:
            raise GraphError(f"duplicate element id {edge_id!r}")
        for endpoint in (first, second):
            if endpoint not in self._nodes:
                raise GraphError(f"unknown endpoint node {endpoint!r}")
        data = _EdgeData(
            labels=frozenset(labels),
            properties=dict(properties or {}),
            first=first,
            second=second,
            directed=directed,
        )
        self._edges[edge_id] = data
        if directed:
            self._incidence[first].append(Incidence(edge_id, second, OUT))
            self._incidence[second].append(Incidence(edge_id, first, IN))
        else:
            self._incidence[first].append(Incidence(edge_id, second, UNDIRECTED))
            if first != second:
                self._incidence[second].append(Incidence(edge_id, first, UNDIRECTED))
        for label in data.labels:
            self._edge_label_index.setdefault(label, set()).add(edge_id)
        self._incidence_label_cache.pop(first, None)
        self._incidence_label_cache.pop(second, None)
        self._index_element_added("edge", edge_id, data)
        if self._journaling():
            self._record_change(
                ("add_edge", edge_id),
                ChangeRecord("add_edge", "edge", edge_id, first, second),
            )
        self._version += 1
        return Edge(self, edge_id)

    def add_undirected_edge(
        self,
        edge_id: str | None,
        first: str,
        second: str,
        labels: Iterable[str] = (),
        properties: Mapping[str, Any] | None = None,
    ) -> Edge:
        return self.add_edge(edge_id, first, second, labels, properties, directed=False)

    def remove_edge(self, edge_id: str) -> None:
        data = self._edges.get(edge_id)
        if data is None:
            raise GraphError(f"unknown edge {edge_id!r}")
        undo: tuple = ()
        if self._txn is not None:
            # Bit-identical rollback: capture the dict insertion position
            # and each endpoint's exact incidence-list order.
            undo = (
                "remove_edge",
                edge_id,
                data,
                list(self._edges).index(edge_id),
                {
                    endpoint: list(self._incidence[endpoint])
                    for endpoint in {data.first, data.second}
                },
            )
        del self._edges[edge_id]
        for endpoint in {data.first, data.second}:
            self._incidence[endpoint] = [
                inc for inc in self._incidence[endpoint] if inc.edge != edge_id
            ]
            self._incidence_label_cache.pop(endpoint, None)
        for label in data.labels:
            self._edge_label_index[label].discard(edge_id)
        self._index_element_removed("edge", edge_id, data)
        if self._journaling():
            self._record_change(
                undo,
                ChangeRecord("remove_edge", "edge", edge_id, data.first, data.second),
            )
        self._version += 1

    def remove_node(self, node_id: str) -> None:
        """Remove a node and every incident edge."""
        if node_id not in self._nodes:
            raise GraphError(f"unknown node {node_id!r}")
        for inc in list(self._incidence[node_id]):
            if inc.edge in self._edges:
                self.remove_edge(inc.edge)
        position = list(self._nodes).index(node_id) if self._txn is not None else -1
        data = self._nodes.pop(node_id)
        del self._incidence[node_id]
        self._incidence_label_cache.pop(node_id, None)
        for label in data.labels:
            self._node_label_index[label].discard(node_id)
        self._index_element_removed("node", node_id, data)
        if self._journaling():
            self._record_change(
                ("remove_node", node_id, data, position),
                ChangeRecord("remove_node", "node", node_id),
            )
        self._version += 1

    def set_property(self, element_id: str, key: str, value: Any) -> None:
        data = self._element_data(element_id)
        kind = "node" if element_id in self._nodes else "edge"
        old = data.properties.get(key, _MISSING)
        if old is not _MISSING and type(old) is type(value) and old == value:
            return  # no logical change: no version bump, no journal entry
        self._set_property_impl(kind, data, element_id, key, value)
        self._journal_property(kind, data, element_id, key, old)
        self._version += 1

    def remove_property(self, element_id: str, key: str) -> None:
        """Delete a property; a no-op (no version bump) when absent."""
        data = self._element_data(element_id)
        kind = "node" if element_id in self._nodes else "edge"
        old = data.properties.get(key, _MISSING)
        if old is _MISSING:
            return
        self._set_property_impl(kind, data, element_id, key, _MISSING)
        self._journal_property(kind, data, element_id, key, old)
        self._version += 1

    def _set_property_impl(
        self, kind: str, data: _ElementData, element_id: str, key: str, value: Any
    ) -> None:
        """Write (or, for ``_MISSING``, drop) a property + maintain indexes."""
        old = data.properties.get(key, _MISSING)
        if value is _MISSING:
            data.properties.pop(key, None)
        else:
            data.properties[key] = value
        for (index_kind, label, prop), buckets in self._property_indexes.items():
            if index_kind != kind or prop != key:
                continue
            if label is not None and label not in data.labels:
                continue
            if old is not _MISSING:
                _index_discard(buckets, old, element_id)
            if value is not _MISSING:
                _index_add(buckets, value, element_id)

    def _journal_property(
        self, kind: str, data: _ElementData, element_id: str, key: str, old: Any
    ) -> None:
        if not self._journaling():
            return
        first = second = None
        if kind == "edge":
            first, second = data.first, data.second  # type: ignore[attr-defined]
        self._record_change(
            ("set_property", kind, element_id, key, old),
            ChangeRecord("set_property", kind, element_id, first, second),
        )

    def set_labels(self, element_id: str, labels: Iterable[str]) -> None:
        """Replace the label set of a node or edge, keeping indexes correct."""
        data = self._element_data(element_id)
        kind = "node" if element_id in self._nodes else "edge"
        old_labels = data.labels
        new_labels = frozenset(labels)
        if new_labels == old_labels:
            return  # no logical change: no version bump, no journal entry
        self._set_labels_impl(kind, data, element_id, new_labels)
        if self._journaling():
            first = second = None
            if kind == "edge":
                first, second = data.first, data.second  # type: ignore[attr-defined]
            self._record_change(
                ("set_labels", kind, element_id, old_labels),
                ChangeRecord("set_labels", kind, element_id, first, second),
            )
        self._version += 1

    def _set_labels_impl(
        self,
        kind: str,
        data: _ElementData,
        element_id: str,
        labels: frozenset[str],
    ) -> None:
        """Replace labels + maintain label and label-scoped property indexes."""
        old_labels = data.labels
        new_labels = frozenset(labels)
        data.labels = new_labels
        label_index = (
            self._node_label_index if kind == "node" else self._edge_label_index
        )
        for label in old_labels - new_labels:
            label_index[label].discard(element_id)
        for label in new_labels - old_labels:
            label_index.setdefault(label, set()).add(element_id)
        if kind == "edge":
            edge_data = self._edges[element_id]
            self._incidence_label_cache.pop(edge_data.first, None)
            self._incidence_label_cache.pop(edge_data.second, None)
        for (index_kind, label, prop), buckets in self._property_indexes.items():
            if index_kind != kind or label is None:
                continue
            if label in old_labels and label not in new_labels:
                if prop in data.properties:
                    _index_discard(buckets, data.properties[prop], element_id)
            elif label in new_labels and label not in old_labels:
                if prop in data.properties:
                    _index_add(buckets, data.properties[prop], element_id)

    # ------------------------------------------------------------------
    # Property-value hash indexes
    # ------------------------------------------------------------------
    def create_index(self, label: str | None, prop: str, kind: str = "node") -> None:
        """Build a hash index over *prop* values of elements carrying *label*.

        ``label=None`` indexes every element of the given kind.  Indexes
        are maintained incrementally by all mutation methods; building an
        existing index is a no-op.
        """
        if kind not in ("node", "edge"):
            raise GraphError(f"unknown index kind {kind!r}")
        key = (kind, label, prop)
        if key in self._property_indexes:
            return
        buckets: dict[Any, set[str]] = {}
        store = self._nodes if kind == "node" else self._edges
        if label is None:
            members: Iterable[str] = store
        else:
            index = (
                self._node_label_index if kind == "node" else self._edge_label_index
            )
            members = index.get(label, ())
        for element_id in members:
            properties = store[element_id].properties
            if prop in properties:
                _index_add(buckets, properties[prop], element_id)
        self._property_indexes[key] = buckets

    def drop_index(self, label: str | None, prop: str, kind: str = "node") -> None:
        self._property_indexes.pop((kind, label, prop), None)

    def has_index(self, label: str | None, prop: str, kind: str = "node") -> bool:
        return (kind, label, prop) in self._property_indexes

    def indexes(self) -> list[tuple[str, str | None, str]]:
        """The (kind, label, property) keys of all existing indexes."""
        return sorted(
            self._property_indexes, key=lambda k: (k[0], k[1] or "", k[2])
        )

    def index_lookup(
        self,
        label: str | None,
        prop: str,
        value: Any,
        kind: str = "node",
        create: bool = True,
    ) -> frozenset[str]:
        """Element ids with ``prop = value`` (and *label*, unless None).

        Creates the index lazily when *create* is true — the build is a
        single scan, no more than the lookup it replaces, and amortizes
        across repeated queries.
        """
        key = (kind, label, prop)
        if key not in self._property_indexes:
            if not create:
                return frozenset()
            self.create_index(label, prop, kind)
        value_key = _index_key(value)
        if value_key is _UNHASHABLE:
            return frozenset()
        bucket = self._property_indexes[key].get(value_key)
        return frozenset(bucket) if bucket else frozenset()

    def _index_element_added(self, kind: str, element_id: str, data: _ElementData) -> None:
        if not self._property_indexes:
            return
        for (index_kind, label, prop), buckets in self._property_indexes.items():
            if index_kind != kind:
                continue
            if label is not None and label not in data.labels:
                continue
            if prop in data.properties:
                _index_add(buckets, data.properties[prop], element_id)

    def _index_element_removed(self, kind: str, element_id: str, data: _ElementData) -> None:
        if not self._property_indexes:
            return
        for (index_kind, label, prop), buckets in self._property_indexes.items():
            if index_kind != kind:
                continue
            if label is not None and label not in data.labels:
                continue
            if prop in data.properties:
                _index_discard(buckets, data.properties[prop], element_id)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _element_data(self, element_id: str) -> _ElementData:
        if element_id in self._nodes:
            return self._nodes[element_id]
        if element_id in self._edges:
            return self._edges[element_id]
        raise GraphError(f"unknown element {element_id!r}")

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def has_edge(self, edge_id: str) -> bool:
        return edge_id in self._edges

    def node(self, node_id: str) -> Node:
        if node_id not in self._nodes:
            raise GraphError(f"unknown node {node_id!r}")
        return Node(self, node_id)

    def edge(self, edge_id: str) -> Edge:
        if edge_id not in self._edges:
            raise GraphError(f"unknown edge {edge_id!r}")
        return Edge(self, edge_id)

    def element(self, element_id: str) -> Node | Edge:
        if element_id in self._nodes:
            return Node(self, element_id)
        if element_id in self._edges:
            return Edge(self, element_id)
        raise GraphError(f"unknown element {element_id!r}")

    def is_node_id(self, element_id: str) -> bool:
        return element_id in self._nodes

    def nodes(self) -> Iterator[Node]:
        for node_id in self._nodes:
            yield Node(self, node_id)

    def edges(self) -> Iterator[Edge]:
        for edge_id in self._edges:
            yield Edge(self, edge_id)

    def node_ids(self) -> Iterator[str]:
        return iter(self._nodes)

    def edge_ids(self) -> Iterator[str]:
        return iter(self._edges)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def incidences(self, node_id: str) -> list[Incidence]:
        """All ways of leaving *node_id* along an incident edge.

        Memoized per graph version: repeat calls return the same list
        object until a mutation bumps :attr:`version`, so callers must
        treat the result as read-only.
        """
        if self._incidence_memo_version != self._version:
            self._incidence_memo.clear()
            self._incidence_memo_version = self._version
        cached = self._incidence_memo.get(node_id)
        if cached is None:
            if node_id not in self._incidence:
                raise GraphError(f"unknown node {node_id!r}")
            cached = list(self._incidence[node_id])
            self._incidence_memo[node_id] = cached
        return cached

    def incidences_with_label(self, node_id: str, label: str) -> list[Incidence]:
        """Incidences whose edge carries *label* (lazily cached per node).

        The traversal fast path for edge patterns with a single required
        label; the cache is invalidated by mutations touching the node.
        """
        if node_id not in self._incidence:
            raise GraphError(f"unknown node {node_id!r}")
        per_node = self._incidence_label_cache.get(node_id)
        if per_node is None:
            per_node = {}
            self._incidence_label_cache[node_id] = per_node
        cached = per_node.get(label)
        if cached is None:
            cached = [
                inc
                for inc in self._incidence[node_id]
                if label in self._edges[inc.edge].labels
            ]
            per_node[label] = cached
        return cached

    def labels_of(self, element_id: str) -> frozenset[str]:
        return self._element_data(element_id).labels

    def property_of(self, element_id: str, key: str, default: Any = NULL) -> Any:
        return self._element_data(element_id).properties.get(key, default)

    def nodes_with_label(self, label: str) -> list[Node]:
        return [Node(self, nid) for nid in sorted(self._node_label_index.get(label, ()))]

    def edges_with_label(self, label: str) -> list[Edge]:
        return [Edge(self, eid) for eid in sorted(self._edge_label_index.get(label, ()))]

    def all_labels(self) -> frozenset[str]:
        return frozenset(self._node_label_index) | frozenset(self._edge_label_index)

    def __contains__(self, element_id: object) -> bool:
        return element_id in self._nodes or element_id in self._edges

    def __repr__(self) -> str:
        return (
            f"PropertyGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
