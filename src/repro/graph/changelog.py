"""Graph change journal: mutation transactions, rollback, change feeds.

Every mutator on :class:`~repro.graph.model.PropertyGraph` can journal
what it did.  Two consumers share the journal hooks:

* :class:`GraphTransaction` — apply-or-rollback for the GQL DML
  statements.  While a transaction is active, every mutation appends an
  *undo entry* capturing enough state to restore the graph
  **bit-identically**: dictionary insertion positions, incidence-list
  order, property-index membership, the ``version`` counter and the
  auto-id counter all come back exactly as they were.  Bit-identical
  matters because downstream caches (the columnar snapshot, the
  statistics catalog) are keyed on ``graph.version``: a rollback restores
  the pre-transaction version, so the restored state must be
  indistinguishable from the state that version originally described.

* Watchers (see :meth:`PropertyGraph.add_watcher`) — standing queries
  subscribe to a stream of :class:`ChangeRecord` values.  Inside a
  transaction the records buffer and flush on *commit* only; a rolled
  back transaction publishes nothing.  Mutations outside any transaction
  publish immediately.

Versions are reused after a rollback (that is the contract: rollback
restores the prior version).  Caches populated *during* the rolled-back
window would otherwise match the reused version numbers while describing
discarded state, so rollback evicts every graph-attached cache whose
recorded version is newer than the transaction start.  The planner's
per-prepared-query plan cache needs no eviction: a plan's candidate
sources re-evaluate against the live graph at run time, so a stale hit
costs at most a suboptimal anchor choice, never a wrong result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import GraphError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.model import PropertyGraph

# Change operations (also the undo-entry tags).
ADD_NODE = "add_node"
ADD_EDGE = "add_edge"
REMOVE_NODE = "remove_node"
REMOVE_EDGE = "remove_edge"
SET_PROPERTY = "set_property"
SET_LABELS = "set_labels"

#: every mutation operation, in a stable order (metrics, summaries)
MUTATION_OPS = (
    ADD_NODE, ADD_EDGE, REMOVE_NODE, REMOVE_EDGE, SET_PROPERTY, SET_LABELS
)

#: op -> human-readable summary key (GqlResult.mutations, CLI output)
SUMMARY_KEYS = {
    ADD_NODE: "nodes_created",
    ADD_EDGE: "edges_created",
    REMOVE_NODE: "nodes_deleted",
    REMOVE_EDGE: "edges_deleted",
    SET_PROPERTY: "properties_set",
    SET_LABELS: "labels_set",
}


@dataclass(frozen=True)
class ChangeRecord:
    """One published mutation, as watchers see it.

    ``first``/``second`` are the endpoints of the touched edge (or of the
    edge whose property/labels changed) — the seeds an incremental
    standing-query refresh grows its re-match region from.  Node changes
    carry ``None`` for both.
    """

    op: str
    kind: str  # "node" | "edge"
    element_id: str
    first: Optional[str] = None
    second: Optional[str] = None


class GraphTransaction:
    """Apply-or-rollback scope over a :class:`PropertyGraph`.

    Usage (the GQL executor's pattern)::

        txn = graph.begin_mutation()
        try:
            ... mutate ...
        except BaseException:
            txn.rollback()
            raise
        else:
            txn.commit()   # publishes the change records to watchers

    Also usable as a context manager (commit on success, rollback on
    exception).  Transactions do not nest.
    """

    def __init__(self, graph: "PropertyGraph"):
        if graph._txn is not None:
            raise GraphError("a mutation transaction is already active")
        self.graph = graph
        self.active = True
        self._start_version = graph._version
        self._start_counter = graph._auto_counter
        self._undo: list[tuple] = []
        self._changes: list[ChangeRecord] = []
        graph._txn = self

    # -- journal hooks (called from the graph's mutators) ---------------
    def record(self, undo: tuple, change: ChangeRecord) -> None:
        self._undo.append(undo)
        self._changes.append(change)

    @property
    def changes(self) -> list[ChangeRecord]:
        return list(self._changes)

    def counts(self) -> dict[str, int]:
        """Mutation summary: ``{"nodes_created": 2, ...}`` (non-zero only)."""
        out: dict[str, int] = {}
        for change in self._changes:
            key = SUMMARY_KEYS[change.op]
            out[key] = out.get(key, 0) + 1
        return out

    # -- outcomes -------------------------------------------------------
    def commit(self) -> list[ChangeRecord]:
        """Finish the transaction, publishing its changes to watchers."""
        self._finish()
        if self._changes:
            self.graph._notify(self._changes)
        return self._changes

    def rollback(self) -> None:
        """Undo every journaled mutation (LIFO) and restore the version."""
        self._finish()
        graph = self.graph
        for entry in reversed(self._undo):
            _undo_entry(graph, entry)
        graph._version = self._start_version
        graph._auto_counter = self._start_counter
        _evict_stale_caches(graph, self._start_version)

    def _finish(self) -> None:
        if not self.active:
            raise GraphError("transaction already finished")
        self.active = False
        self.graph._txn = None

    def __enter__(self) -> "GraphTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.active:  # already resolved explicitly
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()


# ----------------------------------------------------------------------
# Undo replay
# ----------------------------------------------------------------------
def _reinsert(store: dict, key: str, value: Any, position: int) -> None:
    """Re-add ``key`` at its original insertion position.

    Rebuilding the dict is O(n), paid only when rolling back a removal —
    the price of keeping iteration order (and therefore columnar
    snapshot layouts and result emission order) bit-identical.
    """
    if position >= len(store):
        store[key] = value
        return
    items = list(store.items())
    items.insert(position, (key, value))
    store.clear()
    store.update(items)


def _undo_entry(graph: "PropertyGraph", entry: tuple) -> None:
    op = entry[0]
    if op == ADD_NODE:
        _, node_id = entry
        data = graph._nodes.pop(node_id)
        del graph._incidence[node_id]
        graph._incidence_label_cache.pop(node_id, None)
        for label in data.labels:
            graph._node_label_index[label].discard(node_id)
        graph._index_element_removed("node", node_id, data)
    elif op == ADD_EDGE:
        _, edge_id = entry
        data = graph._edges.pop(edge_id)
        for endpoint in {data.first, data.second}:
            graph._incidence[endpoint] = [
                inc for inc in graph._incidence[endpoint] if inc.edge != edge_id
            ]
            graph._incidence_label_cache.pop(endpoint, None)
        for label in data.labels:
            graph._edge_label_index[label].discard(edge_id)
        graph._index_element_removed("edge", edge_id, data)
    elif op == REMOVE_EDGE:
        _, edge_id, data, position, incidence = entry
        _reinsert(graph._edges, edge_id, data, position)
        for endpoint, entries in incidence.items():
            graph._incidence[endpoint] = list(entries)
            graph._incidence_label_cache.pop(endpoint, None)
        for label in data.labels:
            graph._edge_label_index.setdefault(label, set()).add(edge_id)
        graph._index_element_added("edge", edge_id, data)
    elif op == REMOVE_NODE:
        _, node_id, data, position = entry
        _reinsert(graph._nodes, node_id, data, position)
        # Incident edges come back via their own (later-undone) entries,
        # whose incidence snapshots overwrite this empty list.
        graph._incidence[node_id] = []
        for label in data.labels:
            graph._node_label_index.setdefault(label, set()).add(node_id)
        graph._index_element_added("node", node_id, data)
    elif op == SET_PROPERTY:
        _, kind, element_id, key, old = entry
        store = graph._nodes if kind == "node" else graph._edges
        graph._set_property_impl(kind, store[element_id], element_id, key, old)
    elif op == SET_LABELS:
        _, kind, element_id, old_labels = entry
        store = graph._nodes if kind == "node" else graph._edges
        graph._set_labels_impl(kind, store[element_id], element_id, old_labels)
    else:  # pragma: no cover - the mutators produce only the six kinds
        raise GraphError(f"unknown undo entry {op!r}")


def _evict_stale_caches(graph: "PropertyGraph", start_version: int) -> None:
    """Drop graph-attached caches built during the rolled-back window.

    Their version stamps would collide with post-rollback versions while
    describing the discarded state.  Caches from *before* the
    transaction stay: the restored state is bit-identical to what they
    describe.
    """
    from repro.graph.columnar import _SNAPSHOT_ATTR
    from repro.planner.stats import _CACHE_ATTR

    snapshot = getattr(graph, _SNAPSHOT_ATTR, None)
    if snapshot is not None and snapshot.version > start_version:
        setattr(graph, _SNAPSHOT_ATTR, None)
    catalog = getattr(graph, _CACHE_ATTR, None)
    if catalog is not None and catalog.stats.version > start_version:
        setattr(graph, _CACHE_ATTR, None)
    if graph._incidence_memo_version > start_version:
        graph._incidence_memo.clear()
        graph._incidence_memo_version = -1
