"""Fluent construction API for property graphs.

The builder keeps construction code close to how one reads a figure:

>>> g = (
...     GraphBuilder("demo")
...     .node("a1", "Account", owner="Scott", isBlocked="no")
...     .node("a2", "Account", owner="Aretha", isBlocked="no")
...     .directed("t1", "a1", "a2", "Transfer", amount=8_000_000)
...     .build()
... )
>>> g.num_nodes, g.num_edges
(2, 1)
"""

from __future__ import annotations

from typing import Any

from repro.graph.model import PropertyGraph


class GraphBuilder:
    """Accumulates nodes and edges, then produces a PropertyGraph.

    Labels are given as positional string arguments; properties as keyword
    arguments.  Multiple labels: ``.node("c2", "City", "Country", ...)``.
    """

    def __init__(self, name: str = "graph"):
        self._graph = PropertyGraph(name=name)
        self._built = False

    def node(self, node_id: str, *labels: str, **properties: Any) -> "GraphBuilder":
        self._check_open()
        self._graph.add_node(node_id, labels=labels, properties=properties)
        return self

    def directed(
        self, edge_id: str, source: str, target: str, *labels: str, **properties: Any
    ) -> "GraphBuilder":
        self._check_open()
        self._graph.add_edge(
            edge_id, source, target, labels=labels, properties=properties, directed=True
        )
        return self

    def undirected(
        self, edge_id: str, first: str, second: str, *labels: str, **properties: Any
    ) -> "GraphBuilder":
        self._check_open()
        self._graph.add_edge(
            edge_id, first, second, labels=labels, properties=properties, directed=False
        )
        return self

    def nodes(self, *node_ids: str, labels: tuple[str, ...] = ()) -> "GraphBuilder":
        """Bulk-add unlabelled (or uniformly labelled) nodes."""
        self._check_open()
        for node_id in node_ids:
            self._graph.add_node(node_id, labels=labels)
        return self

    def set_property(self, element_id: str, key: str, value: Any) -> "GraphBuilder":
        """Overwrite one property of an already-added node or edge."""
        self._check_open()
        self._graph.set_property(element_id, key, value)
        return self

    def set_labels(self, element_id: str, *labels: str) -> "GraphBuilder":
        """Replace the label set of an already-added node or edge."""
        self._check_open()
        self._graph.set_labels(element_id, labels)
        return self

    def remove_node(self, node_id: str) -> "GraphBuilder":
        """Drop a node (and its incident edges) added earlier by mistake."""
        self._check_open()
        self._graph.remove_node(node_id)
        return self

    def remove_edge(self, edge_id: str) -> "GraphBuilder":
        """Drop an edge added earlier by mistake."""
        self._check_open()
        self._graph.remove_edge(edge_id)
        return self

    def build(self) -> PropertyGraph:
        """Finalize and return the graph; the builder cannot be reused."""
        self._check_open()
        self._built = True
        return self._graph

    def _check_open(self) -> None:
        if self._built:
            raise RuntimeError("GraphBuilder already built; create a new builder")
