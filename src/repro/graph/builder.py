"""Fluent construction API for property graphs.

The builder keeps construction code close to how one reads a figure:

>>> g = (
...     GraphBuilder("demo")
...     .node("a1", "Account", owner="Scott", isBlocked="no")
...     .node("a2", "Account", owner="Aretha", isBlocked="no")
...     .directed("t1", "a1", "a2", "Transfer", amount=8_000_000)
...     .build()
... )
>>> g.num_nodes, g.num_edges
(2, 1)
"""

from __future__ import annotations

from typing import Any

from repro.graph.model import PropertyGraph


class GraphBuilder:
    """Accumulates nodes and edges, then produces a PropertyGraph.

    Labels are given as positional string arguments; properties as keyword
    arguments.  Multiple labels: ``.node("c2", "City", "Country", ...)``.
    """

    def __init__(self, name: str = "graph"):
        self._graph = PropertyGraph(name=name)
        self._built = False

    def node(self, node_id: str, *labels: str, **properties: Any) -> "GraphBuilder":
        self._check_open()
        self._graph.add_node(node_id, labels=labels, properties=properties)
        return self

    def directed(
        self, edge_id: str, source: str, target: str, *labels: str, **properties: Any
    ) -> "GraphBuilder":
        self._check_open()
        self._graph.add_edge(
            edge_id, source, target, labels=labels, properties=properties, directed=True
        )
        return self

    def undirected(
        self, edge_id: str, first: str, second: str, *labels: str, **properties: Any
    ) -> "GraphBuilder":
        self._check_open()
        self._graph.add_edge(
            edge_id, first, second, labels=labels, properties=properties, directed=False
        )
        return self

    def nodes(self, *node_ids: str, labels: tuple[str, ...] = ()) -> "GraphBuilder":
        """Bulk-add unlabelled (or uniformly labelled) nodes."""
        self._check_open()
        for node_id in node_ids:
            self._graph.add_node(node_id, labels=labels)
        return self

    def build(self) -> PropertyGraph:
        """Finalize and return the graph; the builder cannot be reused."""
        self._check_open()
        self._built = True
        return self._graph

    def _check_open(self) -> None:
        if self._built:
            raise RuntimeError("GraphBuilder already built; create a new builder")
