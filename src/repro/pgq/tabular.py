"""Tabular representation of a property graph (Figure 2, left-to-right).

The paper: "The tabular representation has a relation for every
combination of labels that appears on some node or edge in the graph" —
node c2 with labels {City, Country} lands in a relation named
``CityCountry``, not in ``City`` or ``Country``.

Column conventions: ``ID`` for the element id; directed edge endpoints in
``SRC``/``DST``; undirected endpoints in ``END1``/``END2``; property
columns follow, sorted by name, NULL where an element lacks the property.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.graph.model import PropertyGraph
from repro.pgq.table import Table
from repro.values import NULL


def label_combination_name(labels: frozenset[str]) -> str:
    """Relation name for a label combination: sorted concatenation."""
    if not labels:
        return "Unlabeled"
    return "".join(sorted(labels))


def tabular_representation(graph: PropertyGraph) -> dict[str, Table]:
    """One relation per label combination appearing in the graph.

    Node and edge relations with a colliding name get an ``_E`` suffix on
    the edge side (cannot happen for the paper's banking graph).
    """
    tables: "OrderedDict[str, Table]" = OrderedDict()

    node_groups: dict[frozenset, list] = {}
    for node in sorted(graph.nodes()):
        node_groups.setdefault(node.labels, []).append(node)
    for labels in sorted(node_groups, key=label_combination_name):
        nodes = node_groups[labels]
        prop_names = sorted({k for n in nodes for k in n.properties})
        columns = ["ID"] + prop_names
        rows = [
            [node.id] + [node.get(p, NULL) for p in prop_names] for node in nodes
        ]
        table_name = label_combination_name(labels)
        tables[table_name] = Table(columns, rows, name=table_name)

    edge_groups: dict[tuple, list] = {}
    for edge in sorted(graph.edges()):
        edge_groups.setdefault((edge.labels, edge.is_directed), []).append(edge)
    for labels, directed in sorted(
        edge_groups, key=lambda key: label_combination_name(key[0])
    ):
        edges = edge_groups[(labels, directed)]
        prop_names = sorted({k for e in edges for k in e.properties})
        endpoint_columns = ["SRC", "DST"] if directed else ["END1", "END2"]
        columns = ["ID"] + endpoint_columns + prop_names
        rows = []
        for edge in edges:
            first, second = edge.endpoint_ids
            rows.append([edge.id, first, second] + [edge.get(p, NULL) for p in prop_names])
        table_name = label_combination_name(labels)
        if table_name in tables:
            table_name = f"{table_name}_E"
        tables[table_name] = Table(columns, rows, name=table_name)
    return dict(tables)
