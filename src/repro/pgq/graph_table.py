"""The GRAPH_TABLE operator: GPML inside SQL/PGQ (Figure 9, left path).

``graph_table(graph, "MATCH ... COLUMNS (x.owner AS A, ...)")`` runs the
shared pattern-matching core and projects each binding row through the
COLUMNS expressions into an ordinary :class:`~repro.pgq.table.Table` —
the SQL host then composes freely (the paper's SELECT around
GRAPH_TABLE).  The :mod:`repro.sql` engine embeds the same machinery as a
first-class table operator in FROM: it parses the COLUMNS clause with
:func:`parse_columns_clause`, then drives :func:`iter_graph_table_rows`
directly so outer LIMIT/FETCH FIRST budgets and pushed-down WHERE
predicates reach the streaming NFA search.

COLUMNS expressions are regular GPML value expressions, so horizontal
aggregates over group variables work exactly as PGQL's group variables do
(``SUM(e.amount)``, ``COUNT(e)``, ``LISTAGG(e.ID, ', ')`` — Section 3).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import GpmlSyntaxError, PgqError
from repro.gpml import ast
from repro.gpml.engine import PreparedQuery, match_iter, prepare
from repro.gpml.expr import EvalContext, Expr
from repro.gpml.matcher import MatcherConfig
from repro.gpml.parser import GpmlParser
from repro.gpml.streaming import PipelineStats, RowBudget
from repro.graph.model import Edge, Node, PropertyGraph
from repro.graph.path import Path
from repro.pgq.table import Table


class GraphTableStatement:
    """A parsed GRAPH_TABLE body: the MATCH pattern plus COLUMNS exprs."""

    def __init__(
        self,
        pattern_text: str,
        columns: list[tuple[str, Expr]],
        pattern: Optional[ast.GraphPattern] = None,
    ):
        self.pattern_text = pattern_text
        self.columns = columns
        #: the pattern AST when the caller parsed it inline (the SQL host
        #: keeps it to conjoin pushed-down predicates before preparing)
        self.pattern = pattern

    @property
    def column_names(self) -> list[str]:
        return [name for name, _ in self.columns]


def graph_table(
    graph: PropertyGraph,
    query: str,
    config: MatcherConfig | None = None,
    name: str = "graph_table",
    limit: Optional[int] = None,
    stats: Optional[PipelineStats] = None,
) -> Table:
    """Evaluate ``MATCH ... [WHERE ...] COLUMNS (...)`` into a Table.

    ``limit`` keeps the first N binding rows — and, because the shared
    core streams, a satisfied row budget stops the underlying NFA search
    instead of enumerating every match and slicing afterwards (the SQL
    host's ``FETCH FIRST N ROWS ONLY`` pushed through GRAPH_TABLE).
    """
    statement = _parse_graph_table(query, name)
    rows = list(
        iter_graph_table_rows(
            graph, statement, prepare(statement.pattern), config,
            limit=limit, stats=stats,
        )
    )
    return Table(statement.column_names, rows, name=name)


def iter_graph_table_rows(
    graph: PropertyGraph,
    statement: GraphTableStatement,
    prepared: PreparedQuery,
    config: MatcherConfig | None = None,
    *,
    limit: Optional[int] = None,
    budget: Optional[RowBudget] = None,
    stats: Optional[PipelineStats] = None,
    span=None,
    count_rows: bool = True,
) -> Iterator[tuple]:
    """Stream COLUMNS-projected value rows for a GRAPH_TABLE statement.

    The streaming core behind both :func:`graph_table` and the SQL
    engine's GRAPH_TABLE scan operator: binding rows come straight from
    :func:`~repro.gpml.engine.match_iter` (so ``limit`` and a shared
    ``budget`` cancel the NFA search itself), and each is projected
    through the COLUMNS expressions into a tuple of SQL values.
    ``span``/``count_rows`` pass through to ``match_iter`` — the SQL
    scan operator supplies its trace span and counts delivered rows at
    the statement level instead.
    """
    for row in match_iter(
        graph, prepared, config, limit=limit, budget=budget, stats=stats,
        span=span, count_rows=count_rows,
    ):
        yield project_columns(graph, statement, row.values)


def project_columns(
    graph: PropertyGraph, statement: GraphTableStatement, values: dict
) -> tuple:
    """Project one binding-row value dict through the COLUMNS clause.

    Shared by the streaming enumeration above and the SQL engine's seeded
    graph scans, which obtain binding rows per probe row rather than from
    one ``match_iter`` stream.
    """
    ctx = EvalContext(bindings=values, graph=graph)
    return tuple(_to_sql_value(expr.evaluate(ctx)) for _, expr in statement.columns)


def _parse_graph_table(query: str, name: str) -> GraphTableStatement:
    """Parse a standalone ``MATCH ... COLUMNS (...)`` body.

    Parse errors carry the operator's table *name* so a SQL statement
    with several GRAPH_TABLEs points at the one that is broken.
    """
    try:
        parser = GpmlParser(query)
        parser.expect_keyword("MATCH")
        pattern = parser.parse_graph_pattern_body()
        if not parser.at_keyword("COLUMNS"):
            raise PgqError("GRAPH_TABLE query must end with a COLUMNS clause")
        # The MATCH text (everything before COLUMNS) is re-parsed by the
        # engine; slicing by token position keeps one source of truth.
        columns_start = parser.peek().position
        pattern_text = query[:columns_start]
        parser.advance()  # COLUMNS
        columns = parse_columns_clause(parser)
        parser.expect_eof()
    except GpmlSyntaxError as exc:
        raise PgqError(f"in GRAPH_TABLE {name!r}: {exc}") from exc
    except PgqError as exc:
        raise PgqError(f"in GRAPH_TABLE {name!r}: {exc}") from None
    return GraphTableStatement(
        pattern_text=pattern_text, columns=columns, pattern=pattern
    )


def parse_columns_clause(parser: GpmlParser) -> list[tuple[str, Expr]]:
    """Parse ``( expr [AS name] , ... )`` — the COLUMNS keyword is consumed.

    Shared between the standalone operator and the SQL parser (which
    reaches the clause inside ``FROM GRAPH_TABLE(g MATCH ...)``).
    """
    parser.expect_punct("(")
    columns: list[tuple[str, Expr]] = []
    while True:
        expr = parser.parse_expression()
        if parser.accept_keyword("AS"):
            column_name = parser.expect_name()
        else:
            column_name = _default_column_name(expr, len(columns))
        columns.append((column_name, expr))
        if not parser.accept_punct(","):
            break
    parser.expect_punct(")")
    return columns


def _default_column_name(expr: Expr, index: int) -> str:
    text = str(expr)
    if text.isidentifier():
        return text
    if "." in text:
        head, _, tail = text.partition(".")
        if head.isidentifier() and tail.isidentifier():
            return tail
    return f"col{index + 1}"


def _to_sql_value(value):
    """Graph elements project as their ids; paths as their text form."""
    if isinstance(value, (Node, Edge)):
        return value.id
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, list):
        return [_to_sql_value(v) for v in value]
    return value
