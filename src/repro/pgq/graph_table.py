"""The GRAPH_TABLE operator: GPML inside SQL/PGQ (Figure 9, left path).

``graph_table(graph, "MATCH ... COLUMNS (x.owner AS A, ...)")`` runs the
shared pattern-matching core and projects each binding row through the
COLUMNS expressions into an ordinary :class:`~repro.pgq.table.Table` —
the SQL host then composes freely (the paper's SELECT around
GRAPH_TABLE).

COLUMNS expressions are regular GPML value expressions, so horizontal
aggregates over group variables work exactly as PGQL's group variables do
(``SUM(e.amount)``, ``COUNT(e)``, ``LISTAGG(e.ID, ', ')`` — Section 3).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import GpmlSyntaxError, PgqError
from repro.gpml.engine import match_iter
from repro.gpml.expr import EvalContext, Expr
from repro.gpml.matcher import MatcherConfig
from repro.gpml.parser import GpmlParser
from repro.gpml.streaming import PipelineStats
from repro.graph.model import Edge, Node, PropertyGraph
from repro.graph.path import Path
from repro.pgq.table import Table


def graph_table(
    graph: PropertyGraph,
    query: str,
    config: MatcherConfig | None = None,
    name: str = "graph_table",
    limit: Optional[int] = None,
    stats: Optional[PipelineStats] = None,
) -> Table:
    """Evaluate ``MATCH ... [WHERE ...] COLUMNS (...)`` into a Table.

    ``limit`` keeps the first N binding rows — and, because the shared
    core streams, a satisfied row budget stops the underlying NFA search
    instead of enumerating every match and slicing afterwards (the SQL
    host's ``FETCH FIRST N ROWS ONLY`` pushed through GRAPH_TABLE).
    """
    statement = _parse_graph_table(query)
    columns = [column_name for column_name, _ in statement.columns]
    rows = []
    for row in match_iter(graph, statement.pattern_text, config, limit=limit, stats=stats):
        ctx = EvalContext(bindings=row.values, graph=graph)
        rows.append(
            tuple(_to_sql_value(expr.evaluate(ctx)) for _, expr in statement.columns)
        )
    return Table(columns, rows, name=name)


class _GraphTableStatement:
    def __init__(self, pattern_text: str, columns: list[tuple[str, Expr]]):
        self.pattern_text = pattern_text
        self.columns = columns


def _parse_graph_table(query: str) -> _GraphTableStatement:
    parser = GpmlParser(query)
    parser.expect_keyword("MATCH")
    parser.parse_graph_pattern_body()
    if not parser.at_keyword("COLUMNS"):
        raise PgqError("GRAPH_TABLE query must end with a COLUMNS clause")
    # The MATCH text (everything before COLUMNS) is re-parsed by the
    # engine; slicing by token position keeps one source of truth.
    columns_start = parser.peek().position
    pattern_text = query[:columns_start]
    parser.advance()  # COLUMNS
    parser.expect_punct("(")
    columns: list[tuple[str, Expr]] = []
    while True:
        expr = parser.parse_expression()
        if parser.accept_keyword("AS"):
            column_name = parser.expect_name()
        else:
            column_name = _default_column_name(expr, len(columns))
        columns.append((column_name, expr))
        if not parser.accept_punct(","):
            break
    parser.expect_punct(")")
    parser.expect_eof()
    return _GraphTableStatement(pattern_text=pattern_text, columns=columns)


def _default_column_name(expr: Expr, index: int) -> str:
    text = str(expr)
    if text.isidentifier():
        return text
    if "." in text:
        head, _, tail = text.partition(".")
        if head.isidentifier() and tail.isidentifier():
            return tail
    return f"col{index + 1}"


def _to_sql_value(value):
    """Graph elements project as their ids; paths as their text form."""
    if isinstance(value, (Node, Edge)):
        return value.id
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, list):
        return [_to_sql_value(v) for v in value]
    return value
