"""A miniature in-memory relational engine.

Just enough SQL machinery to host SQL/PGQ: named columns, selection
(including parsed SQL-ish conditions under three-valued logic),
projection, joins, grouping with aggregates, ordering and set operations.
Values follow the library-wide convention: missing data is
:data:`repro.values.NULL`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import TableError
from repro.gpml.expr import EvalContext
from repro.gpml.parser import parse_expression
from repro.values import NULL, is_null


class Table:
    """An immutable relation: a tuple of column names plus value rows."""

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence[Any]] = (), name: str = ""):
        self.columns = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise TableError(f"duplicate column names in {self.columns}")
        self.name = name
        materialized = []
        for row in rows:
            row = tuple(row)
            if len(row) != len(self.columns):
                raise TableError(
                    f"row arity {len(row)} does not match {len(self.columns)} columns"
                )
            materialized.append(row)
        self.rows = materialized

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(cls, columns: Sequence[str], dicts: Iterable[dict], name: str = "") -> "Table":
        return cls(
            columns,
            [tuple(d.get(c, NULL) for c in columns) for d in dicts],
            name=name,
        )

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    # ------------------------------------------------------------------
    # Core relational operators
    # ------------------------------------------------------------------
    def _index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise TableError(f"unknown column {column!r} in table {self.name!r}") from None

    def select(self, predicate: Callable[[dict], bool]) -> "Table":
        return Table(
            self.columns,
            [row for row in self.rows if predicate(dict(zip(self.columns, row)))],
            name=self.name,
        )

    def where(self, condition: str) -> "Table":
        """Filter with a parsed SQL-ish condition, e.g. ``"amount > 5M"``.

        Bare identifiers refer to columns; three-valued logic applies, so
        rows where the condition is UNKNOWN are dropped (SQL semantics).
        """
        expr = parse_expression(condition)
        kept = []
        for row in self.rows:
            ctx = EvalContext(bindings=dict(zip(self.columns, row)))
            if expr.truth(ctx):
                kept.append(row)
        return Table(self.columns, kept, name=self.name)

    def project(self, columns: Sequence[str]) -> "Table":
        indexes = [self._index(c) for c in columns]
        return Table(columns, [tuple(row[i] for i in indexes) for row in self.rows], name=self.name)

    def rename(self, mapping: dict[str, str]) -> "Table":
        return Table(
            [mapping.get(c, c) for c in self.columns], list(self.rows), name=self.name
        )

    def extend(self, column: str, fn: Callable[[dict], Any]) -> "Table":
        """Append a computed column."""
        rows = [
            tuple(row) + (fn(dict(zip(self.columns, row))),) for row in self.rows
        ]
        return Table(self.columns + (column,), rows, name=self.name)

    def distinct(self) -> "Table":
        seen: set[tuple] = set()
        out = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return Table(self.columns, out, name=self.name)

    def union_all(self, other: "Table") -> "Table":
        if self.columns != other.columns:
            raise TableError("UNION ALL requires identical column lists")
        return Table(self.columns, self.rows + other.rows, name=self.name)

    def union(self, other: "Table") -> "Table":
        return self.union_all(other).distinct()

    def join(self, other: "Table", on: Sequence[tuple[str, str]]) -> "Table":
        """Equi-join; right-side join columns are dropped from the output."""
        left_idx = [self._index(a) for a, _ in on]
        right_idx = [other._index(b) for _, b in on]
        right_keep = [i for i, c in enumerate(other.columns) if i not in right_idx]
        out_columns = self.columns + tuple(other.columns[i] for i in right_keep)
        if len(set(out_columns)) != len(out_columns):
            raise TableError(
                f"join would duplicate columns; rename first: {out_columns}"
            )
        index: dict[tuple, list[tuple]] = {}
        for row in other.rows:
            index.setdefault(tuple(row[i] for i in right_idx), []).append(row)
        rows = []
        for row in self.rows:
            key = tuple(row[i] for i in left_idx)
            if any(is_null(v) for v in key):
                continue  # SQL: NULLs never join
            for other_row in index.get(key, ()):
                rows.append(tuple(row) + tuple(other_row[i] for i in right_keep))
        return Table(out_columns, rows, name=self.name)

    def order_by(self, columns: Sequence[str], descending: bool = False) -> "Table":
        indexes = [self._index(c) for c in columns]

        def key(row: tuple) -> tuple:
            # NULLs sort last (ascending); values keyed by type name to
            # keep heterogeneous columns orderable.
            out = []
            for i in indexes:
                value = row[i]
                if is_null(value):
                    out.append((1, "", ""))
                else:
                    out.append((0, type(value).__name__, value))
            return tuple(out)

        return Table(
            self.columns, sorted(self.rows, key=key, reverse=descending), name=self.name
        )

    def limit(self, n: int, offset: int = 0) -> "Table":
        return Table(self.columns, self.rows[offset : offset + n], name=self.name)

    # ------------------------------------------------------------------
    # Grouping and aggregation
    # ------------------------------------------------------------------
    def group_by(
        self,
        keys: Sequence[str],
        aggregates: dict[str, tuple[str, str]],
    ) -> "Table":
        """Group on *keys*; ``aggregates`` maps output column ->
        (function, input column) with function in COUNT/SUM/AVG/MIN/MAX."""
        key_idx = [self._index(k) for k in keys]
        groups: dict[tuple, list[tuple]] = {}
        order: list[tuple] = []
        for row in self.rows:
            key = tuple(row[i] for i in key_idx)
            if key not in groups:
                order.append(key)
            groups.setdefault(key, []).append(row)
        out_rows = []
        for key in order:
            members = groups[key]
            values = list(key)
            for func, column in aggregates.values():
                values.append(_aggregate(func, column, members, self))
            out_rows.append(tuple(values))
        return Table(tuple(keys) + tuple(aggregates.keys()), out_rows, name=self.name)

    # ------------------------------------------------------------------
    # Dunder protocol / display
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.to_dicts())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Table)
            and self.columns == other.columns
            and sorted(map(repr, self.rows)) == sorted(map(repr, other.rows))
        )

    def __repr__(self) -> str:
        return f"Table({self.name!r}, columns={list(self.columns)}, rows={len(self.rows)})"

    def pretty(self, max_rows: int = 20) -> str:
        header = " | ".join(self.columns)
        sep = "-+-".join("-" * len(c) for c in self.columns)
        lines = [header, sep]
        for row in self.rows[:max_rows]:
            lines.append(" | ".join("NULL" if is_null(v) else str(v) for v in row))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)


def _aggregate(func: str, column: str, rows: list[tuple], table: Table) -> Any:
    func = func.upper()
    if column == "*":
        if func != "COUNT":
            raise TableError("only COUNT supports the * argument")
        return len(rows)
    index = table._index(column)
    values = [row[index] for row in rows if not is_null(row[index])]
    if func == "COUNT":
        return len(values)
    if not values:
        return NULL
    if func == "SUM":
        return sum(values)
    if func == "AVG":
        return sum(values) / len(values)
    if func == "MIN":
        return min(values)
    if func == "MAX":
        return max(values)
    raise TableError(f"unknown aggregate {func!r}")
