"""SQL/PGQ host layer.

SQL/PGQ (SQL:2023 part 16) defines property graphs as *views over tables*
and queries them read-only with GPML inside a ``GRAPH_TABLE`` operator
whose ``COLUMNS`` clause projects bindings back into a table (Figure 9 of
the paper, left output).  This package provides:

* :mod:`~repro.pgq.table` — a miniature in-memory relational engine,
* :mod:`~repro.pgq.catalog` — named tables and graphs,
* :mod:`~repro.pgq.ddl` — a ``CREATE PROPERTY GRAPH`` statement parser,
* :mod:`~repro.pgq.graph_view` — materializing the graph view (tables →
  property graph, the Figure 2 correspondence read right-to-left),
* :mod:`~repro.pgq.graph_table` — the ``GRAPH_TABLE`` operator,
* :mod:`~repro.pgq.tabular` — property graph → one relation per label
  combination (the Figure 2 correspondence read left-to-right).
"""

from repro.pgq.catalog import Catalog
from repro.pgq.ddl import parse_create_property_graph
from repro.pgq.graph_table import GraphTableStatement, graph_table, iter_graph_table_rows
from repro.pgq.graph_view import EdgeTableSpec, GraphSpec, VertexTableSpec, build_graph_view
from repro.pgq.table import Table
from repro.pgq.tabular import tabular_representation

__all__ = [
    "Catalog",
    "EdgeTableSpec",
    "GraphSpec",
    "GraphTableStatement",
    "Table",
    "VertexTableSpec",
    "build_graph_view",
    "graph_table",
    "iter_graph_table_rows",
    "parse_create_property_graph",
    "tabular_representation",
]
