"""Materializing a property-graph view over tables (SQL/PGQ DDL semantics).

A :class:`GraphSpec` says which tables contribute vertices and edges, how
keys identify elements, and which columns become properties.  Building the
view walks the tables once and produces a
:class:`~repro.graph.model.PropertyGraph` — the right-to-left reading of
the paper's Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import DdlError
from repro.graph.model import PropertyGraph
from repro.pgq.catalog import Catalog
from repro.values import is_null


@dataclass
class VertexTableSpec:
    """One VERTEX TABLES entry."""

    table: str
    key: Optional[str] = None  # default: first column
    labels: tuple[str, ...] = ()  # default: table name
    properties: Optional[tuple[str, ...]] = None  # default: all non-key columns
    no_properties: bool = False


@dataclass
class EdgeTableSpec:
    """One EDGE TABLES entry."""

    table: str
    source_key: str = ""
    source_table: str = ""
    destination_key: str = ""
    destination_table: str = ""
    key: Optional[str] = None
    labels: tuple[str, ...] = ()
    properties: Optional[tuple[str, ...]] = None
    no_properties: bool = False
    directed: bool = True


@dataclass
class GraphSpec:
    """A parsed (or programmatically built) CREATE PROPERTY GRAPH."""

    name: str
    vertex_tables: list[VertexTableSpec] = field(default_factory=list)
    edge_tables: list[EdgeTableSpec] = field(default_factory=list)


def build_graph_view(catalog: Catalog, spec: GraphSpec) -> PropertyGraph:
    """Materialize the property-graph view described by *spec*."""
    graph = PropertyGraph(name=spec.name)
    key_tables: dict[str, str] = {}  # element id -> owning table (collision check)

    for vertex in spec.vertex_tables:
        table = catalog.table(vertex.table)
        key_column = vertex.key or table.columns[0]
        labels = vertex.labels or (vertex.table,)
        property_columns = _property_columns(vertex, table.columns, key_column)
        for row in table.to_dicts():
            element_id = _element_id(row, key_column, vertex.table)
            if element_id in key_tables:
                raise DdlError(
                    f"vertex key {element_id!r} appears in both "
                    f"{key_tables[element_id]!r} and {vertex.table!r}"
                )
            key_tables[element_id] = vertex.table
            graph.add_node(
                element_id,
                labels=labels,
                properties=_properties(row, property_columns),
            )

    for edge in spec.edge_tables:
        table = catalog.table(edge.table)
        key_column = edge.key or table.columns[0]
        labels = edge.labels or (edge.table,)
        excluded = {key_column, edge.source_key, edge.destination_key}
        property_columns = _property_columns(edge, table.columns, excluded)
        for row in table.to_dicts():
            element_id = _element_id(row, key_column, edge.table)
            source = str(row[edge.source_key])
            destination = str(row[edge.destination_key])
            for endpoint in (source, destination):
                if not graph.has_node(endpoint):
                    raise DdlError(
                        f"edge table {edge.table!r} references unknown vertex "
                        f"key {endpoint!r}"
                    )
            graph.add_edge(
                element_id,
                source,
                destination,
                labels=labels,
                properties=_properties(row, property_columns),
                directed=edge.directed,
            )
    return graph


def _element_id(row: dict, key_column: str, table: str) -> str:
    value = row.get(key_column)
    if is_null(value):
        raise DdlError(f"NULL key in table {table!r}")
    return str(value)


def _property_columns(spec, columns: Sequence[str], excluded) -> tuple[str, ...]:
    if spec.no_properties:
        return ()
    if spec.properties is not None:
        unknown = set(spec.properties) - set(columns)
        if unknown:
            raise DdlError(f"unknown property columns {sorted(unknown)} in {spec.table!r}")
        return tuple(spec.properties)
    if isinstance(excluded, str):
        excluded = {excluded}
    return tuple(c for c in columns if c not in excluded)


def _properties(row: dict, columns: tuple[str, ...]) -> dict:
    return {c: row[c] for c in columns if not is_null(row.get(c))}
