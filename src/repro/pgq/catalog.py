"""Catalog: named tables and named property graphs (the SQL/PGQ schema)."""

from __future__ import annotations

from typing import Iterator

from repro.errors import PgqError
from repro.graph.model import PropertyGraph
from repro.pgq.table import Table


class Catalog:
    """Holds the base tables and the graph views defined over them."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._graphs: dict[str, PropertyGraph] = {}

    # -- tables ---------------------------------------------------------
    def register_table(self, name: str, table: Table) -> None:
        if name in self._tables:
            raise PgqError(f"table {name!r} already exists")
        self._tables[name] = table

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise PgqError(f"unknown table {name!r}")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> Iterator[str]:
        return iter(sorted(self._tables))

    # -- graphs ---------------------------------------------------------
    def register_graph(self, name: str, graph: PropertyGraph) -> None:
        if name in self._graphs:
            raise PgqError(f"graph {name!r} already exists")
        self._graphs[name] = graph

    def graph(self, name: str) -> PropertyGraph:
        if name not in self._graphs:
            raise PgqError(f"unknown graph {name!r}")
        return self._graphs[name]

    def has_graph(self, name: str) -> bool:
        return name in self._graphs

    def graph_names(self) -> Iterator[str]:
        return iter(sorted(self._graphs))

    def execute(self, ddl: str) -> PropertyGraph:
        """Execute a CREATE PROPERTY GRAPH statement against this catalog."""
        from repro.pgq.ddl import parse_create_property_graph
        from repro.pgq.graph_view import build_graph_view

        spec = parse_create_property_graph(ddl)
        graph = build_graph_view(self, spec)
        self.register_graph(spec.name, graph)
        return graph
