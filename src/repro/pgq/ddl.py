"""Parser for ``CREATE PROPERTY GRAPH`` statements (SQL/PGQ DDL subset).

Grammar (case-insensitive keywords, identifiers case-sensitive):

.. code-block:: text

    CREATE PROPERTY GRAPH <name>
      VERTEX TABLES ( vertex_entry [, vertex_entry]* )
      [ EDGE TABLES ( edge_entry [, edge_entry]* ) ]

    vertex_entry := <table> [KEY (<col>)] label_spec* [property_spec]
    edge_entry   := <table> [KEY (<col>)]
                    SOURCE KEY (<col>) REFERENCES <table>
                    DESTINATION KEY (<col>) REFERENCES <table>
                    [UNDIRECTED] label_spec* [property_spec]
    label_spec   := LABEL <label>
    property_spec:= PROPERTIES ( <col> [, <col>]* ) | NO PROPERTIES

Defaults follow the standard's spirit: the key is the first column, the
label is the table name, and all non-key/non-endpoint columns become
properties.
"""

from __future__ import annotations

from repro.errors import DdlError
from repro.gpml.lexer import EOF, IDENT, KEYWORD, Token, tokenize
from repro.pgq.graph_view import EdgeTableSpec, GraphSpec, VertexTableSpec


class _DdlParser:
    """Word-oriented parser: DDL keywords are matched textually because
    they are ordinary identifiers to the shared lexer."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type != EOF:
            self.pos += 1
        return token

    def _word_of(self, token: Token) -> str | None:
        if token.type in (IDENT, KEYWORD):
            return str(token.value).upper()
        return None

    def at_word(self, *words: str) -> bool:
        return self._word_of(self.peek()) in words

    def accept_word(self, *words: str) -> bool:
        if self.at_word(*words):
            self.advance()
            return True
        return False

    def expect_word(self, word: str) -> None:
        if not self.accept_word(word):
            raise DdlError(f"expected {word}, found {self._describe()}")

    def expect_ident(self) -> str:
        token = self.peek()
        if token.type not in (IDENT, KEYWORD):
            raise DdlError(f"expected identifier, found {self._describe()}")
        self.advance()
        return str(token.value)

    def expect_punct(self, value: str) -> None:
        token = self.peek()
        if not token.is_punct(value):
            raise DdlError(f"expected {value!r}, found {self._describe()}")
        self.advance()

    def at_punct(self, value: str) -> bool:
        return self.peek().is_punct(value)

    def _describe(self) -> str:
        token = self.peek()
        return "end of input" if token.type == EOF else repr(token.value)

    # ------------------------------------------------------------------
    def parse(self) -> GraphSpec:
        self.expect_word("CREATE")
        self.expect_word("PROPERTY")
        self.expect_word("GRAPH")
        name = self.expect_ident()
        spec = GraphSpec(name=name)
        self.expect_word("VERTEX")
        self.expect_word("TABLES")
        self.expect_punct("(")
        spec.vertex_tables.append(self._vertex_entry())
        while self.peek().is_punct(","):
            self.advance()
            spec.vertex_tables.append(self._vertex_entry())
        self.expect_punct(")")
        if self.accept_word("EDGE"):
            self.expect_word("TABLES")
            self.expect_punct("(")
            spec.edge_tables.append(self._edge_entry())
            while self.peek().is_punct(","):
                self.advance()
                spec.edge_tables.append(self._edge_entry())
            self.expect_punct(")")
        if self.peek().type != EOF:
            raise DdlError(f"unexpected trailing input: {self._describe()}")
        return spec

    def _vertex_entry(self) -> VertexTableSpec:
        table = self.expect_ident()
        entry = VertexTableSpec(table=table)
        entry.key = self._optional_key()
        labels, properties, no_properties = self._labels_and_properties()
        entry.labels = labels
        entry.properties = properties
        entry.no_properties = no_properties
        return entry

    def _edge_entry(self) -> EdgeTableSpec:
        table = self.expect_ident()
        entry = EdgeTableSpec(table=table)
        entry.key = self._optional_key()
        self.expect_word("SOURCE")
        self.expect_word("KEY")
        entry.source_key = self._parenthesized_ident()
        self.expect_word("REFERENCES")
        entry.source_table = self.expect_ident()
        self.expect_word("DESTINATION")
        self.expect_word("KEY")
        entry.destination_key = self._parenthesized_ident()
        self.expect_word("REFERENCES")
        entry.destination_table = self.expect_ident()
        if self.accept_word("UNDIRECTED"):
            entry.directed = False
        labels, properties, no_properties = self._labels_and_properties()
        entry.labels = labels
        entry.properties = properties
        entry.no_properties = no_properties
        return entry

    def _optional_key(self) -> str | None:
        if self.accept_word("KEY"):
            return self._parenthesized_ident()
        return None

    def _parenthesized_ident(self) -> str:
        self.expect_punct("(")
        name = self.expect_ident()
        self.expect_punct(")")
        return name

    def _labels_and_properties(self):
        labels: list[str] = []
        properties: tuple[str, ...] | None = None
        no_properties = False
        while True:
            if self.accept_word("LABEL"):
                labels.append(self.expect_ident())
                continue
            if self.at_word("NO"):
                self.advance()
                self.expect_word("PROPERTIES")
                no_properties = True
                continue
            if self.at_word("PROPERTIES"):
                self.advance()
                self.expect_punct("(")
                columns = [self.expect_ident()]
                while self.peek().is_punct(","):
                    self.advance()
                    columns.append(self.expect_ident())
                self.expect_punct(")")
                properties = tuple(columns)
                continue
            break
        return tuple(labels), properties, no_properties


def parse_create_property_graph(text: str) -> GraphSpec:
    """Parse one CREATE PROPERTY GRAPH statement into a GraphSpec."""
    return _DdlParser(text).parse()
