"""Datasets: the paper's Figure 1 graph and synthetic workload generators."""

from repro.datasets.figure1 import figure1_graph, FIGURE1_OWNERS
from repro.datasets.generators import (
    chain_graph,
    clique_transfer_graph,
    cycle_graph,
    diamond_chain,
    grid_graph,
    random_transfer_network,
)

__all__ = [
    "FIGURE1_OWNERS",
    "chain_graph",
    "clique_transfer_graph",
    "cycle_graph",
    "diamond_chain",
    "figure1_graph",
    "grid_graph",
    "random_transfer_network",
]
