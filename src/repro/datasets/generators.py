"""Synthetic workload generators for benchmarks and property-based tests.

All generators are deterministic given their parameters (random ones take a
``seed``) so benchmark runs are reproducible.  The shapes were chosen to
stress specific language features:

* :func:`chain_graph` — quantifier sweeps ({m,n} on a line has exactly one
  match per window),
* :func:`cycle_graph` — termination pressure (unbounded quantifiers find
  infinitely many walks; restrictors/selectors must bound them),
* :func:`diamond_chain` — exponentially many shortest paths (2^k), the
  worst case for ALL SHORTEST and a separator between ANY and ALL,
* :func:`grid_graph` — many same-length alternatives for selector benches,
* :func:`clique_transfer_graph` — dense joins,
* :func:`random_transfer_network` — a scaled-up version of the Figure 1
  schema (accounts, transfers, phones, cities) for end-to-end benches.
"""

from __future__ import annotations

import random

from repro.graph.builder import GraphBuilder
from repro.graph.model import PropertyGraph


def chain_graph(length: int, node_label: str = "N", edge_label: str = "E") -> PropertyGraph:
    """A directed path n0 -> n1 -> ... -> n<length> (length = #edges)."""
    builder = GraphBuilder(f"chain{length}")
    for i in range(length + 1):
        builder.node(f"n{i}", node_label, index=i)
    for i in range(length):
        builder.directed(f"e{i}", f"n{i}", f"n{i + 1}", edge_label, index=i)
    return builder.build()


def cycle_graph(length: int, node_label: str = "N", edge_label: str = "E") -> PropertyGraph:
    """A directed cycle of *length* nodes and edges."""
    if length < 1:
        raise ValueError("cycle length must be >= 1")
    builder = GraphBuilder(f"cycle{length}")
    for i in range(length):
        builder.node(f"n{i}", node_label, index=i)
    for i in range(length):
        builder.directed(f"e{i}", f"n{i}", f"n{(i + 1) % length}", edge_label, index=i)
    return builder.build()


def diamond_chain(num_diamonds: int, edge_label: str = "E") -> PropertyGraph:
    """A chain of diamonds; source-to-sink has exactly 2^k shortest paths.

    Each diamond is  s -> {top, bottom} -> t ; diamonds are chained, so a
    walk from the first source to the last sink makes k independent binary
    choices, all of the same length 2k.
    """
    builder = GraphBuilder(f"diamond{num_diamonds}")
    builder.node("s0", "N")
    for k in range(num_diamonds):
        builder.node(f"u{k}", "N")
        builder.node(f"d{k}", "N")
        builder.node(f"s{k + 1}", "N")
        builder.directed(f"eu{k}", f"s{k}", f"u{k}", edge_label, branch="up")
        builder.directed(f"ed{k}", f"s{k}", f"d{k}", edge_label, branch="down")
        builder.directed(f"fu{k}", f"u{k}", f"s{k + 1}", edge_label, branch="up")
        builder.directed(f"fd{k}", f"d{k}", f"s{k + 1}", edge_label, branch="down")
    return builder.build()


def grid_graph(width: int, height: int, edge_label: str = "E") -> PropertyGraph:
    """A directed grid with east and south edges (monotone lattice paths)."""
    builder = GraphBuilder(f"grid{width}x{height}")
    for x in range(width):
        for y in range(height):
            builder.node(f"n{x}_{y}", "N", x=x, y=y)
    for x in range(width):
        for y in range(height):
            if x + 1 < width:
                builder.directed(f"e{x}_{y}", f"n{x}_{y}", f"n{x + 1}_{y}", edge_label)
            if y + 1 < height:
                builder.directed(f"s{x}_{y}", f"n{x}_{y}", f"n{x}_{y + 1}", edge_label)
    return builder.build()


def clique_transfer_graph(num_nodes: int) -> PropertyGraph:
    """A complete directed graph of Account nodes with Transfer edges."""
    builder = GraphBuilder(f"clique{num_nodes}")
    for i in range(num_nodes):
        builder.node(f"a{i}", "Account", owner=f"owner{i}", isBlocked="no")
    k = 0
    for i in range(num_nodes):
        for j in range(num_nodes):
            if i != j:
                builder.directed(
                    f"t{k}", f"a{i}", f"a{j}", "Transfer", amount=(k % 10 + 1) * 1_000_000
                )
                k += 1
    return builder.build()


def random_transfer_network(
    num_accounts: int,
    num_transfers: int,
    seed: int = 0,
    blocked_fraction: float = 0.1,
    num_cities: int = 3,
    phones_per_account: float = 1.0,
) -> PropertyGraph:
    """A scaled-up Figure 1: accounts, transfers, cities, phones.

    Edge directions, amounts and dates are drawn from a seeded RNG; the
    schema (labels and property names) matches the paper's banking graph so
    every example query runs unchanged on the synthetic data.
    """
    rng = random.Random(seed)
    builder = GraphBuilder(f"bank_{num_accounts}x{num_transfers}_s{seed}")

    for c in range(num_cities):
        builder.node(f"c{c}", "City", "Country", name=f"city{c}")

    for i in range(num_accounts):
        builder.node(
            f"a{i}",
            "Account",
            owner=f"owner{i}",
            isBlocked="yes" if rng.random() < blocked_fraction else "no",
        )
        builder.directed(f"li{i}", f"a{i}", f"c{rng.randrange(num_cities)}", "isLocatedIn")

    num_phones = max(1, int(num_accounts * phones_per_account))
    for p in range(num_phones):
        builder.node(f"p{p}", "Phone", number=100 + p, isBlocked="no")
    for i in range(num_accounts):
        builder.undirected(f"hp{i}", f"a{i}", f"p{rng.randrange(num_phones)}", "hasPhone")

    for t in range(num_transfers):
        src = rng.randrange(num_accounts)
        dst = rng.randrange(num_accounts)
        builder.directed(
            f"t{t}",
            f"a{src}",
            f"a{dst}",
            "Transfer",
            amount=rng.randrange(1, 20) * 1_000_000,
            date=f"{rng.randrange(1, 13)}/1/2020",
        )
    return builder.build()
