"""Exact reconstruction of the paper's Figure 1 banking graph.

The figure shows bank accounts, their locations, phones, IP addresses and
financial transfers.  The graphics (edge directions, phone attachments)
are not present in the text dump of the paper, so every edge below is
cross-checked against statements in the running text:

* ``path(c1,li1,a1,t1,a3,hp3,p2)`` (Section 2): li1 = a1→c1 traversed in
  reverse; t1 = a1→a3; hp3 connects a3 and p2 (undirected).
* Section 4.2's two-step example binds s↦a6, e↦t5, m↦a3, f↦t2, t↦a2,
  fixing t5 = a6→a3 and t2 = a3→a2.
* Section 4.2's shared-phone query returns exactly (p1,a5,t8,a1) and
  (p2,a3,t2,a2), fixing t8 = a5→a1 and the phone attachments
  p1~{a1,a5}, p2~{a2,a3}; p3 and p4 must not be shared across a transfer,
  so p3~a4, p4~a6 (matching the hp_k ~ a_k numbering).
* Section 5.1's TRAIL example paths fix t6 = a6→a5, t7 = a3→a5,
  t1 = a1→a3, t3 = a2→a4, t4 = a4→a6.
* Section 6's join tables fix li_k = a_k → (c1 or c2) with
  a1,a3,a5 → c1 and a2,a4,a6 → c2.
* Figure 2 fixes sip1 = a1→ip1 and sip2 = a5→ip2, and the node property
  tables (owners, isBlocked, dates, amounts, numbers, names).

Amounts use integers (8M = 8_000_000); dates are kept as the paper's
string form ``"1/1/2020"``.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.model import PropertyGraph

#: owner property per account node, for test readability.
FIGURE1_OWNERS = {
    "a1": "Scott",
    "a2": "Aretha",
    "a3": "Mike",
    "a4": "Jay",
    "a5": "Charles",
    "a6": "Dave",
}

_M = 1_000_000


def figure1_graph() -> PropertyGraph:
    """Build a fresh copy of the Figure 1 property graph."""
    builder = GraphBuilder("figure1")

    # --- Accounts -----------------------------------------------------
    blocked = {"a4"}
    for node_id, owner in FIGURE1_OWNERS.items():
        builder.node(
            node_id,
            "Account",
            owner=owner,
            isBlocked="yes" if node_id in blocked else "no",
        )

    # --- Places -------------------------------------------------------
    builder.node("c1", "Country", name="Zembla")
    builder.node("c2", "City", "Country", name="Ankh-Morpork")

    # --- Phones and IPs -------------------------------------------------
    builder.node("p1", "Phone", number=111, isBlocked="no")
    builder.node("p2", "Phone", number=222, isBlocked="no")
    builder.node("p3", "Phone", number=333, isBlocked="no")
    builder.node("p4", "Phone", number=444, isBlocked="no")
    builder.node("ip1", "IP", number="123.111", isBlocked="no")
    builder.node("ip2", "IP", number="123.222", isBlocked="no")

    # --- Transfers (directed) -----------------------------------------
    transfers = [
        ("t1", "a1", "a3", "1/1/2020", 8 * _M),
        ("t2", "a3", "a2", "2/1/2020", 10 * _M),
        ("t3", "a2", "a4", "3/1/2020", 10 * _M),
        ("t4", "a4", "a6", "4/1/2020", 10 * _M),
        ("t5", "a6", "a3", "6/1/2020", 10 * _M),
        ("t6", "a6", "a5", "7/1/2020", 4 * _M),
        ("t7", "a3", "a5", "8/1/2020", 6 * _M),
        ("t8", "a5", "a1", "9/1/2020", 9 * _M),
    ]
    for edge_id, src, dst, date, amount in transfers:
        builder.directed(edge_id, src, dst, "Transfer", date=date, amount=amount)

    # --- isLocatedIn (directed: account -> city/country) ---------------
    located = {
        "li1": ("a1", "c1"),
        "li2": ("a2", "c2"),
        "li3": ("a3", "c1"),
        "li4": ("a4", "c2"),
        "li5": ("a5", "c1"),
        "li6": ("a6", "c2"),
    }
    for edge_id, (src, dst) in located.items():
        builder.directed(edge_id, src, dst, "isLocatedIn")

    # --- hasPhone (undirected) -----------------------------------------
    phones = {
        "hp1": ("a1", "p1"),
        "hp2": ("a2", "p2"),
        "hp3": ("a3", "p2"),
        "hp4": ("a4", "p3"),
        "hp5": ("a5", "p1"),
        "hp6": ("a6", "p4"),
    }
    for edge_id, (account, phone) in phones.items():
        builder.undirected(edge_id, account, phone, "hasPhone")

    # --- signInWithIP (directed: account -> IP, per Figure 2) -----------
    builder.directed("sip1", "a1", "ip1", "signInWithIP")
    builder.directed("sip2", "a5", "ip2", "signInWithIP")

    return builder.build()
