"""Workload telemetry: bounded query log + the :class:`Telemetry` hub.

:class:`WorkLog` is a thread-safe ring buffer of per-query records —
fingerprint, wall time, delivered rows, matcher steps, plan anchor line,
engine mode — bounded so a long-lived session never grows without limit.
Queries at or over the slow-query threshold additionally retain their
full :class:`~repro.obs.trace.QueryTrace` (as a ``repro.trace/v1``
dict), so the one query that blew the latency budget arrives with its
per-stage breakdown attached.

:class:`Telemetry` bundles a :class:`~repro.obs.metrics.MetricsRegistry`
and a :class:`WorkLog` behind one object that the execution hosts
(:class:`~repro.gql.session.GqlSession`, :class:`~repro.sql.database.Database`,
:func:`~repro.gpml.engine.match_iter`) accept as an optional parameter.
The discipline matches PR 5's tracing: telemetry **off** (the default
``None``) costs exactly one ``is None`` check per site and leaves the
untraced code paths byte-identical; telemetry **on** wraps the delivery
iterator and records once per query on exhaustion *or* early close, so
``LIMIT 1`` probes are logged with the rows they actually delivered.

Standard metric families (created eagerly so exports are stable):

========================================  =========================  ======
``repro_queries_total``                   counter                    engine, fingerprint
``repro_rows_delivered_total``            counter                    engine, fingerprint
``repro_matcher_steps_total``             counter                    engine, fingerprint
``repro_slow_queries_total``              counter                    engine
``repro_query_latency_ms``                log-bucketed histogram     engine, fingerprint
``repro_query_steps``                     log-bucketed histogram     engine, fingerprint
``repro_stage_latency_ms``                log-bucketed histogram     engine, stage
``repro_worklog_size``                    gauge                      —
``repro_mutations_total``                 counter                    engine, op
``repro_transactions_total``              counter                    engine, outcome
``repro_sql_rewrites_total``              counter                    rule
``repro_standing_refreshes_total``        counter                    fingerprint
``repro_standing_deltas_total``           counter                    fingerprint, kind
``repro_standing_refresh_steps_total``    counter                    fingerprint
``repro_standing_lag``                    gauge                      fingerprint
========================================  =========================  ======

The mutation counters record *committed* DML only — a rolled-back
statement bumps ``repro_transactions_total{outcome="rollback"}`` and
nothing else, since its mutations never happened.  The standing-query
families are fed by :meth:`Telemetry.record_standing_refresh` (one call
per :meth:`~repro.gql.standing.StandingQuery.refresh`): delta rows by
kind (``added`` / ``retracted``), matcher steps spent re-matching the
region, and the post-refresh lag (buffered change records).

Stage latencies come from the query's trace spans (when tracing ran),
with span names normalized to shapes (``pattern #2 search (enumerate)``
→ ``pattern search (enumerate)``) so label cardinality stays bounded.
Trace timings are *inclusive* (see :mod:`repro.obs.trace`), and so are
the stage histograms.
"""

from __future__ import annotations

import re
import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any, Dict, Iterable, Iterator, List, Optional

from repro.obs.fingerprint import normalize_query, query_fingerprint
from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    STEP_BUCKETS,
    MetricsRegistry,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpml.streaming import PipelineStats

#: default ring-buffer capacity.
DEFAULT_CAPACITY = 256
#: default slow-query threshold (milliseconds).
DEFAULT_SLOW_MS = 100.0

_PATTERN_NUMBER = re.compile(r"#\d+")


def stage_label(name: str) -> str:
    """Normalize a span name to a bounded-cardinality stage label.

    Statement spans embed their query text after a colon and pattern
    stages embed ordinals — both are stripped so every query shape maps
    onto the same small stage vocabulary.
    """
    head = name.split(":", 1)[0]
    head = _PATTERN_NUMBER.sub("", head)
    return " ".join(head.split())


@dataclass
class QueryRecord:
    """One executed query as the worklog remembers it."""

    fingerprint: str
    query: str
    engine: str
    wall_ms: float
    rows: int
    steps: int
    matches: int
    plan: Optional[str] = None
    slow: bool = False
    #: the full span tree (``repro.trace/v1`` dict) — slow queries only.
    trace: Optional[Dict[str, Any]] = field(default=None, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "query": self.query,
            "engine": self.engine,
            "wall_ms": round(self.wall_ms, 3),
            "rows": self.rows,
            "steps": self.steps,
            "matches": self.matches,
            "plan": self.plan,
            "slow": self.slow,
            "trace": self.trace,
        }


class WorkLog:
    """Thread-safe bounded ring buffer of :class:`QueryRecord` entries."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        slow_ms: Optional[float] = DEFAULT_SLOW_MS,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"worklog capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: threshold (ms) at/over which a query counts as slow and keeps
        #: its trace; ``None`` disables slow-query handling entirely.
        self.slow_ms = slow_ms
        self._lock = threading.Lock()
        self._entries: deque[QueryRecord] = deque(maxlen=capacity)

    def append(self, record: QueryRecord) -> None:
        with self._lock:
            self._entries.append(record)

    def entries(self) -> List[QueryRecord]:
        """The retained records, oldest first (a snapshot copy)."""
        with self._lock:
            return list(self._entries)

    def slow_queries(self) -> List[QueryRecord]:
        """The retained records that crossed the slow threshold."""
        return [record for record in self.entries() if record.slow]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class Telemetry:
    """Metrics registry + worklog, threaded through the execution hosts.

    ``autotrace=True`` (the default) makes the hosts run otherwise
    untraced queries with tracing on, so stage histograms fill in and a
    slow query's trace can be retained — the combined overhead is
    guarded ≤ 1.10x by ``benchmarks/bench_trace_overhead.py``.  Set
    ``autotrace=False`` to record only the flat per-query counters.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        capacity: int = DEFAULT_CAPACITY,
        slow_ms: Optional[float] = DEFAULT_SLOW_MS,
        autotrace: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.worklog = WorkLog(capacity=capacity, slow_ms=slow_ms)
        self.autotrace = autotrace
        r = self.registry
        query_labels = ("engine", "fingerprint")
        self.queries_total = r.counter(
            "repro_queries_total", "Queries executed.", query_labels
        )
        self.rows_total = r.counter(
            "repro_rows_delivered_total", "Result rows delivered.", query_labels
        )
        self.steps_total = r.counter(
            "repro_matcher_steps_total",
            "Matcher edge-expansion steps spent.",
            query_labels,
        )
        self.slow_total = r.counter(
            "repro_slow_queries_total",
            "Queries at or over the slow-query threshold.",
            ("engine",),
        )
        self.latency = r.histogram(
            "repro_query_latency_ms",
            "Query wall time (ms).",
            query_labels,
            buckets=LATENCY_BUCKETS_MS,
        )
        self.steps_hist = r.histogram(
            "repro_query_steps",
            "Matcher steps per query.",
            query_labels,
            buckets=STEP_BUCKETS,
        )
        self.stage_latency = r.histogram(
            "repro_stage_latency_ms",
            "Per-stage inclusive wall time (ms), from trace spans.",
            ("engine", "stage"),
            buckets=LATENCY_BUCKETS_MS,
        )
        self.worklog_size = r.gauge(
            "repro_worklog_size", "Query-log entries currently retained."
        )
        self.mutations_total = r.counter(
            "repro_mutations_total",
            "Graph elements touched by committed DML, by operation.",
            ("engine", "op"),
        )
        self.transactions_total = r.counter(
            "repro_transactions_total",
            "DML transactions finished, by outcome.",
            ("engine", "outcome"),
        )
        self.sql_rewrites_total = r.counter(
            "repro_sql_rewrites_total",
            "Cross-model SQL plan rewrite rules fired, by rule.",
            ("rule",),
        )
        standing_labels = ("fingerprint",)
        self.standing_refreshes_total = r.counter(
            "repro_standing_refreshes_total",
            "Standing-query incremental refreshes.",
            standing_labels,
        )
        self.standing_deltas_total = r.counter(
            "repro_standing_deltas_total",
            "Standing-query delta rows emitted, by kind (added/retracted).",
            ("fingerprint", "kind"),
        )
        self.standing_steps_total = r.counter(
            "repro_standing_refresh_steps_total",
            "Matcher steps spent re-matching standing-query regions.",
            standing_labels,
        )
        self.standing_lag = r.gauge(
            "repro_standing_lag",
            "Change records buffered but not yet folded into the view.",
            standing_labels,
        )

    # -- hooks the execution hosts call ---------------------------------
    def stats_for(self, query: Optional[str] = None, engine: Optional[str] = None):
        """A fresh ``PipelineStats`` (traced iff :attr:`autotrace`)."""
        # Imported lazily: the engine imports this module's consumers.
        from repro.gpml.streaming import PipelineStats

        if self.autotrace:
            return PipelineStats.traced(query=query, engine=engine)
        return PipelineStats()

    def instrument(
        self,
        rows: Iterable[Any],
        engine: str,
        query: Optional[str],
        stats: Optional["PipelineStats"],
    ) -> Iterator[Any]:
        """Wrap a delivery iterator: time the drain, record once at close.

        Recording happens in ``finally``, so early termination (``LIMIT``,
        ``first()``, an abandoned generator) still logs the query with
        whatever it delivered up to that point.
        """
        start = perf_counter()
        try:
            for row in rows:
                yield row
        finally:
            self.record_query(engine, query, perf_counter() - start, stats)

    def record_query(
        self,
        engine: str,
        query: Optional[str],
        wall_s: float,
        stats: Optional["PipelineStats"] = None,
        rows: Optional[int] = None,
        steps: Optional[int] = None,
    ) -> QueryRecord:
        """Record one finished query into the registry and the worklog."""
        if stats is not None:
            rows = stats.rows if rows is None else rows
            steps = stats.steps if steps is None else steps
            matches = stats.matches
            trace = stats.trace
        else:
            matches = 0
            trace = None
        rows = rows or 0
        steps = steps or 0
        wall_ms = wall_s * 1000.0
        fingerprint = query_fingerprint(query) if query else "unknown"
        labels = {"engine": engine, "fingerprint": fingerprint}
        self.queries_total.inc(**labels)
        self.rows_total.inc(rows, **labels)
        self.steps_total.inc(steps, **labels)
        self.latency.observe(wall_ms, **labels)
        self.steps_hist.observe(steps, **labels)
        if stats is not None:
            if stats.transaction is not None:
                self.transactions_total.inc(
                    engine=engine, outcome=stats.transaction
                )
            if stats.mutations:
                for op, count in stats.mutations.items():
                    self.mutations_total.inc(count, engine=engine, op=op)
        plan = None
        if trace is not None:
            from repro.obs.analyze import plan_summary

            plan = plan_summary(trace)
            for span in trace.walk():
                if span.kind == "root":
                    continue
                self.stage_latency.observe(
                    span.elapsed_ms, engine=engine, stage=stage_label(span.name)
                )
        slow_ms = self.worklog.slow_ms
        slow = slow_ms is not None and wall_ms >= slow_ms
        if slow:
            self.slow_total.inc(engine=engine)
        record = QueryRecord(
            fingerprint=fingerprint,
            query=normalize_query(query) if query else "",
            engine=engine,
            wall_ms=wall_ms,
            rows=rows,
            steps=steps,
            matches=matches,
            plan=plan,
            slow=slow,
            trace=trace.to_dict(stats) if (slow and trace is not None) else None,
        )
        self.worklog.append(record)
        self.worklog_size.set(len(self.worklog))
        return record

    def record_standing_refresh(
        self,
        query: Optional[str],
        changes: int,
        added: int,
        retracted: int,
        steps: int,
        lag: int,
    ) -> None:
        """Record one standing-query refresh (delta sizes, steps, lag)."""
        fingerprint = query_fingerprint(query) if query else "unknown"
        labels = {"fingerprint": fingerprint}
        self.standing_refreshes_total.inc(**labels)
        if added:
            self.standing_deltas_total.inc(added, kind="added", **labels)
        if retracted:
            self.standing_deltas_total.inc(retracted, kind="retracted", **labels)
        self.standing_steps_total.inc(steps, **labels)
        self.standing_lag.set(lag, **labels)

    # -- export ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """``repro.metrics/v1`` document: registry export + the worklog."""
        document = self.registry.to_dict()
        document["worklog"] = [record.to_dict() for record in self.worklog.entries()]
        return document

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        return self.registry.render_prometheus()
