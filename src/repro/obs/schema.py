"""Validators for the machine-readable observability documents.

Three document families share this module:

* ``repro.trace/v1`` — a :class:`~repro.obs.trace.QueryTrace` export
  (``trace.to_dict()`` / ``--trace-json FILE``).
* ``repro.metrics/v1`` — a workload-telemetry export
  (:meth:`~repro.obs.metrics.MetricsRegistry.to_dict` /
  :meth:`~repro.obs.worklog.Telemetry.to_dict` / ``--metrics-out FILE``),
  optionally carrying the worklog (whose slow queries embed full
  ``repro.trace/v1`` sub-documents, validated recursively).
* ``repro.bench/v1`` — the perf-trajectory file
  (``BENCH_observability.json``) written by ``benchmarks/reporting.py``
  and appended to by later perf PRs.

:func:`validate_document` dispatches on the ``schema`` tag, so
``python -m repro.obs FILE...`` auto-detects which family a file is.
Validation is hand-rolled (no jsonschema dependency): each checker
raises :class:`SchemaError` with a JSON-pointer-ish path on the first
violation.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import METRICS_SCHEMA
from repro.obs.trace import TRACE_SCHEMA

#: schema tag for the benchmark trajectory document.
BENCH_SCHEMA = "repro.bench/v1"


class SchemaError(ValueError):
    """A document does not match its declared schema."""


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise SchemaError(f"{path}: {message}")


def _int(value: Any, path: str, *, optional: bool = False) -> None:
    if optional and value is None:
        return
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        path,
        f"expected an integer, got {type(value).__name__}",
    )


def _number(value: Any, path: str) -> None:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        path,
        f"expected a number, got {type(value).__name__}",
    )


def _str(value: Any, path: str, *, optional: bool = False) -> None:
    if optional and value is None:
        return
    _require(isinstance(value, str), path, f"expected a string, got {type(value).__name__}")


# --------------------------------------------------------------------------
# repro.trace/v1


_SPAN_FIELDS = {
    "name",
    "kind",
    "elapsed_ms",
    "rows_in",
    "rows_out",
    "steps",
    "matches",
    "peak_rows",
    "meta",
    "counts",
    "events",
    "children",
}


def validate_span(span: Any, path: str = "root") -> None:
    """Validate one span dict (recursively) of a trace document."""
    _require(isinstance(span, dict), path, "span must be an object")
    missing = _SPAN_FIELDS - span.keys()
    _require(not missing, path, f"span is missing fields {sorted(missing)}")
    _str(span["name"], f"{path}.name")
    _str(span["kind"], f"{path}.kind")
    _number(span["elapsed_ms"], f"{path}.elapsed_ms")
    for counter in ("rows_in", "rows_out", "steps", "matches"):
        _int(span[counter], f"{path}.{counter}")
    _int(span["peak_rows"], f"{path}.peak_rows", optional=True)
    _require(isinstance(span["meta"], dict), f"{path}.meta", "must be an object")
    _require(isinstance(span["counts"], dict), f"{path}.counts", "must be an object")
    for key, value in span["counts"].items():
        _int(value, f"{path}.counts.{key}")
    _require(isinstance(span["events"], list), f"{path}.events", "must be a list")
    for index, event in enumerate(span["events"]):
        event_path = f"{path}.events[{index}]"
        _require(isinstance(event, dict), event_path, "must be an object")
        _str(event.get("event"), f"{event_path}.event")
    _require(isinstance(span["children"], list), f"{path}.children", "must be a list")
    for index, child in enumerate(span["children"]):
        validate_span(child, f"{path}.children[{index}]")


def validate_trace_document(document: Any) -> None:
    """Validate a ``repro.trace/v1`` document (``trace.to_dict()``)."""
    _require(isinstance(document, dict), "$", "document must be an object")
    _require(
        document.get("schema") == TRACE_SCHEMA,
        "$.schema",
        f"expected {TRACE_SCHEMA!r}, got {document.get('schema')!r}",
    )
    _str(document.get("engine"), "$.engine", optional=True)
    _str(document.get("query"), "$.query", optional=True)
    totals = document.get("totals")
    _require(isinstance(totals, dict), "$.totals", "must be an object")
    _int(totals.get("steps"), "$.totals.steps")
    _int(totals.get("spans"), "$.totals.spans")
    validate_span(document.get("root"), "$.root")
    if "stats" in document:
        stats = document["stats"]
        _require(isinstance(stats, dict), "$.stats", "must be an object")
        for counter in ("steps", "matches", "rows"):
            _int(stats.get(counter), f"$.stats.{counter}")


# --------------------------------------------------------------------------
# repro.metrics/v1


_METRIC_TYPES = {"counter", "gauge", "histogram"}

_WORKLOG_FIELDS = {
    "fingerprint",
    "query",
    "engine",
    "wall_ms",
    "rows",
    "steps",
    "matches",
    "plan",
    "slow",
    "trace",
}


def _validate_labels(
    labels: Any, labelnames: List[str], path: str
) -> None:
    _require(isinstance(labels, dict), path, "labels must be an object")
    _require(
        set(labels) == set(labelnames),
        path,
        f"expected labels {sorted(labelnames)}, got {sorted(labels)}",
    )
    for name, value in labels.items():
        _str(value, f"{path}.{name}")


def validate_metric(metric: Any, path: str) -> None:
    """Validate one metric family of a metrics document."""
    _require(isinstance(metric, dict), path, "metric must be an object")
    _str(metric.get("name"), f"{path}.name")
    _str(metric.get("help"), f"{path}.help")
    _require(
        metric.get("type") in _METRIC_TYPES,
        f"{path}.type",
        f"expected one of {sorted(_METRIC_TYPES)}, got {metric.get('type')!r}",
    )
    labelnames = metric.get("labelnames")
    _require(
        isinstance(labelnames, list) and all(isinstance(n, str) for n in labelnames),
        f"{path}.labelnames",
        "must be a list of strings",
    )
    samples = metric.get("samples")
    _require(isinstance(samples, list), f"{path}.samples", "must be a list")
    if metric["type"] == "histogram":
        buckets = metric.get("buckets")
        _require(
            isinstance(buckets, list) and buckets,
            f"{path}.buckets",
            "histogram must declare a non-empty bucket-bound list",
        )
        for bindex, bound in enumerate(buckets):
            _number(bound, f"{path}.buckets[{bindex}]")
        _require(
            buckets == sorted(buckets) and len(set(buckets)) == len(buckets),
            f"{path}.buckets",
            "bucket bounds must strictly increase",
        )
    for sindex, sample in enumerate(samples):
        sample_path = f"{path}.samples[{sindex}]"
        _require(isinstance(sample, dict), sample_path, "sample must be an object")
        _validate_labels(sample.get("labels"), labelnames, f"{sample_path}.labels")
        if metric["type"] == "histogram":
            _int(sample.get("count"), f"{sample_path}.count")
            _number(sample.get("sum"), f"{sample_path}.sum")
            counts = sample.get("bucket_counts")
            _require(
                isinstance(counts, list) and len(counts) == len(metric["buckets"]) + 1,
                f"{sample_path}.bucket_counts",
                "must be a list with one slot per bound plus the +Inf slot",
            )
            for cindex, count in enumerate(counts):
                _int(count, f"{sample_path}.bucket_counts[{cindex}]")
            _require(
                sum(counts) == sample["count"],
                f"{sample_path}.bucket_counts",
                f"bucket counts sum to {sum(counts)}, count says {sample['count']}",
            )
        else:
            _number(sample.get("value"), f"{sample_path}.value")


def validate_worklog_entry(entry: Any, path: str) -> None:
    """Validate one query-log record of a metrics document."""
    _require(isinstance(entry, dict), path, "worklog entry must be an object")
    missing = _WORKLOG_FIELDS - entry.keys()
    _require(not missing, path, f"entry is missing fields {sorted(missing)}")
    for name in ("fingerprint", "query", "engine"):
        _str(entry[name], f"{path}.{name}")
    _number(entry["wall_ms"], f"{path}.wall_ms")
    for counter in ("rows", "steps", "matches"):
        _int(entry[counter], f"{path}.{counter}")
    _str(entry["plan"], f"{path}.plan", optional=True)
    _require(isinstance(entry["slow"], bool), f"{path}.slow", "must be a boolean")
    if entry["trace"] is not None:
        try:
            validate_trace_document(entry["trace"])
        except SchemaError as exc:
            raise SchemaError(f"{path}.trace: embedded trace invalid — {exc}")


def validate_metrics_document(document: Any) -> None:
    """Validate a ``repro.metrics/v1`` document (registry/telemetry export)."""
    _require(isinstance(document, dict), "$", "document must be an object")
    _require(
        document.get("schema") == METRICS_SCHEMA,
        "$.schema",
        f"expected {METRICS_SCHEMA!r}, got {document.get('schema')!r}",
    )
    metrics = document.get("metrics")
    _require(isinstance(metrics, list), "$.metrics", "must be a list")
    seen = set()
    for index, metric in enumerate(metrics):
        validate_metric(metric, f"$.metrics[{index}]")
        name = metric["name"]
        _require(
            name not in seen, f"$.metrics[{index}].name", f"duplicate metric {name!r}"
        )
        seen.add(name)
    worklog = document.get("worklog")
    if worklog is not None:
        _require(isinstance(worklog, list), "$.worklog", "must be a list")
        for index, entry in enumerate(worklog):
            validate_worklog_entry(entry, f"$.worklog[{index}]")


# --------------------------------------------------------------------------
# repro.bench/v1


def validate_bench_result(result: Any, path: str) -> None:
    """Validate one per-benchmark measurement of a trajectory entry."""
    _require(isinstance(result, dict), path, "result must be an object")
    for field in ("name", "engine", "query"):
        _str(result.get(field), f"{path}.{field}")
    for counter in ("rows", "steps", "matches"):
        _int(result.get(counter), f"{path}.{counter}")
    _number(result.get("wall_ms"), f"{path}.wall_ms")


def validate_bench_document(document: Any) -> None:
    """Validate a ``repro.bench/v1`` document (BENCH_observability.json)."""
    _require(isinstance(document, dict), "$", "document must be an object")
    _require(
        document.get("schema") == BENCH_SCHEMA,
        "$.schema",
        f"expected {BENCH_SCHEMA!r}, got {document.get('schema')!r}",
    )
    _str(document.get("suite"), "$.suite")
    entries = document.get("entries")
    _require(isinstance(entries, list) and entries, "$.entries", "must be a non-empty list")
    for index, entry in enumerate(entries):
        path = f"$.entries[{index}]"
        _require(isinstance(entry, dict), path, "entry must be an object")
        _str(entry.get("label"), f"{path}.label")
        graph = entry.get("graph")
        _require(isinstance(graph, dict), f"{path}.graph", "must be an object")
        _int(graph.get("nodes"), f"{path}.graph.nodes")
        _int(graph.get("edges"), f"{path}.graph.edges")
        results = entry.get("results")
        _require(
            isinstance(results, list) and results,
            f"{path}.results",
            "must be a non-empty list",
        )
        for rindex, result in enumerate(results):
            validate_bench_result(result, f"{path}.results[{rindex}]")


def validate_document(document: Any) -> str:
    """Dispatch on the ``schema`` tag; return the recognized tag."""
    tag = document.get("schema") if isinstance(document, dict) else None
    if tag == TRACE_SCHEMA:
        validate_trace_document(document)
    elif tag == METRICS_SCHEMA:
        validate_metrics_document(document)
    elif tag == BENCH_SCHEMA:
        validate_bench_document(document)
    else:
        raise SchemaError(f"$.schema: unrecognized schema tag {tag!r}")
    return tag


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Validate JSON documents from the command line."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema",
        description="Validate repro trace/metrics/bench JSON documents.",
    )
    parser.add_argument("files", nargs="+", help="JSON files to validate")
    args = parser.parse_args(argv)
    for name in args.files:
        with open(name, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        try:
            tag = validate_document(document)
        except SchemaError as exc:
            print(f"{name}: INVALID — {exc}")
            return 1
        print(f"{name}: ok ({tag})")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
