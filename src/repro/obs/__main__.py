"""``python -m repro.obs FILE...`` — validate trace / metrics / bench JSON.

Auto-detects the document family from its ``schema`` tag
(``repro.trace/v1``, ``repro.metrics/v1`` or ``repro.bench/v1``) and
validates accordingly.

Thin wrapper over :func:`repro.obs.schema.main`; preferred over
``python -m repro.obs.schema`` (which works too, but triggers Python's
found-in-sys.modules runpy warning because the package init imports the
schema module).
"""

from __future__ import annotations

import sys

from repro.obs.schema import main

if __name__ == "__main__":
    sys.exit(main())
