"""Query tracing: a span tree recording what a query actually did.

The engine's pipeline (Section 6 of the paper: pattern searches,
reduce + dedup, selectors, hash joins, host-language operators) is
described *statically* by ``classify_pipeline`` / ``EXPLAIN``.  A
:class:`QueryTrace` is the *dynamic* counterpart: one :class:`Span` per
executed stage, recording wall time, rows in/out, matcher steps, the
peak materialized-row count of blocking stages, and point events such
as "budget satisfied" or "seed memo hit".

Design constraints:

* **Opt-in, near-zero overhead when off.**  Tracing is enabled by
  attaching a :class:`QueryTrace` to ``PipelineStats.trace``.  When it
  is absent, instrumented code paths reduce to a single ``is None``
  check per stage (not per row) and the original generator expressions
  run unchanged.  The matcher hot loop is untouched: per-span step
  counts are read from ``Matcher.steps`` deltas at stage boundaries.
* **No global "current span" stack.**  The executor is a web of lazy
  generators that interleave arbitrarily (a hash-join build may pull
  from one search while a probe streams another), so dynamic scoping
  would misattribute children.  Spans are threaded explicitly via
  ``span=`` keywords.
* **Inclusive times.**  ``Span.elapsed`` for a streaming stage is the
  producer-side time measured around its iterator, which *includes*
  the stages it pulls from.  Sibling spans therefore overlap; the tree
  structure, not subtraction, conveys attribution.

Everything here is standard-library only and imports nothing from the
engine, so any layer may import it without cycles.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

#: schema tag stamped into every exported trace document.
TRACE_SCHEMA = "repro.trace/v1"

#: span kinds (the ``kind`` field): the query root, one GQL statement,
#: one SQL plan operator, or one engine pipeline stage.
ROOT = "root"
STATEMENT = "statement"
OPERATOR = "operator"
STAGE = "stage"


class Span:
    """One executed pipeline stage (or operator, or statement).

    Counters are plain attributes bumped by the instrumented code:

    ``rows_in`` / ``rows_out``
        rows consumed from upstream / produced downstream.
    ``steps``
        matcher steps attributed to this stage (edge expansions).
    ``matches``
        raw pattern matches produced here (pre reduce/dedup).
    ``peak_rows``
        for blocking stages: how many rows were materialized at once.
    ``elapsed``
        inclusive wall-clock seconds (see module docstring).
    ``counts``
        named tallies (``seed_memo_hit``, ``seeded_runs``, ...).
    ``events``
        point-in-time occurrences with a payload (``budget_satisfied``,
        ``predicate_pushdown``, ...).
    ``meta``
        static annotations known at span creation (strategy, anchor
        choice, cardinality estimates).
    """

    __slots__ = (
        "name",
        "kind",
        "meta",
        "elapsed",
        "rows_in",
        "rows_out",
        "steps",
        "matches",
        "peak_rows",
        "counts",
        "events",
        "children",
    )

    def __init__(self, name: str, kind: str = STAGE, **meta: Any) -> None:
        self.name = name
        self.kind = kind
        self.meta: Dict[str, Any] = meta
        self.elapsed = 0.0
        self.rows_in = 0
        self.rows_out = 0
        self.steps = 0
        self.matches = 0
        self.peak_rows: Optional[int] = None
        self.counts: Dict[str, int] = {}
        self.events: List[Dict[str, Any]] = []
        self.children: List["Span"] = []

    def child(self, name: str, kind: str = STAGE, **meta: Any) -> "Span":
        """Open a child span (appended immediately; filled in lazily)."""
        span = Span(name, kind, **meta)
        self.children.append(span)
        return span

    def bump(self, counter: str, by: int = 1) -> None:
        """Increment a named tally on this span."""
        self.counts[counter] = self.counts.get(counter, 0) + by

    def event(self, name: str, **payload: Any) -> None:
        """Record a point-in-time event with a payload."""
        self.events.append({"event": name, **payload})

    def walk(self) -> Iterator["Span"]:
        """All spans in this subtree, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def flatten(self) -> Iterator[Tuple[int, "Span"]]:
        """``(depth, span)`` pairs in pre-order, rooted at depth 0."""
        stack: List[Tuple[int, Span]] = [(0, self)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))

    def find(self, fragment: str) -> Optional["Span"]:
        """First span in this subtree whose name contains ``fragment``."""
        for span in self.walk():
            if fragment in span.name:
                return span
        return None

    def find_all(self, fragment: str) -> List["Span"]:
        """Every span in this subtree whose name contains ``fragment``."""
        return [span for span in self.walk() if fragment in span.name]

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed * 1000.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (stable field set, see TRACE_SCHEMA)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "steps": self.steps,
            "matches": self.matches,
            "peak_rows": self.peak_rows,
            "meta": dict(self.meta),
            "counts": dict(self.counts),
            "events": list(self.events),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, rows_out={self.rows_out}, "
            f"steps={self.steps}, {self.elapsed_ms:.2f}ms)"
        )


class QueryTrace:
    """The span tree for one query execution.

    Attach to ``PipelineStats.trace`` (or build one via
    ``PipelineStats.traced()``) before executing; instrumented layers
    hang their spans off :attr:`root`.
    """

    __slots__ = ("root", "query", "engine")

    def __init__(
        self, query: Optional[str] = None, engine: Optional[str] = None
    ) -> None:
        self.root = Span("query", kind=ROOT)
        self.query = query
        self.engine = engine

    def walk(self) -> Iterator[Span]:
        return self.root.walk()

    def find(self, fragment: str) -> Optional[Span]:
        return self.root.find(fragment)

    def find_all(self, fragment: str) -> List[Span]:
        return self.root.find_all(fragment)

    def total_steps(self) -> int:
        """Matcher steps summed over all spans (each counted once)."""
        return sum(span.steps for span in self.walk())

    def to_dict(self, stats: Any = None) -> Dict[str, Any]:
        """Export the trace under the ``repro.trace/v1`` schema.

        Pass the query's ``PipelineStats`` to embed the flat counters
        next to the span tree (handy for cross-checking).
        """
        document: Dict[str, Any] = {
            "schema": TRACE_SCHEMA,
            "engine": self.engine,
            "query": self.query,
            "totals": {
                "steps": self.total_steps(),
                "spans": sum(1 for _ in self.walk()),
            },
            "root": self.root.to_dict(),
        }
        if stats is not None:
            document["stats"] = {
                "steps": stats.steps,
                "matches": stats.matches,
                "rows": stats.rows,
            }
        return document


def timed_rows(span: Span, rows: Iterable[Any]) -> Iterator[Any]:
    """Wrap an iterator: count ``rows_out`` and accumulate inclusive time.

    Time is measured around each ``next()`` on the producer side, so it
    includes everything upstream of ``rows`` — see the module docstring
    for why trace times are inclusive.
    """
    iterator = iter(rows)
    while True:
        start = perf_counter()
        try:
            row = next(iterator)
        except StopIteration:
            span.elapsed += perf_counter() - start
            return
        span.elapsed += perf_counter() - start
        span.rows_out += 1
        yield row


def counted_in(span: Span, rows: Iterable[Any]) -> Iterator[Any]:
    """Wrap an iterator: count rows flowing *into* a stage (no timing)."""
    for row in rows:
        span.rows_in += 1
        yield row
