"""Thread-safe metrics registry: counters, gauges, log-bucketed histograms.

PR 5's :class:`~repro.obs.trace.QueryTrace` answers "what did *this*
query do"; this module answers "what has the *workload* been doing" —
aggregate counters and latency/step distributions with label dimensions
(``engine``, ``stage``, query ``fingerprint``) that survive across
queries and export in two formats:

* **Prometheus text exposition** (:meth:`MetricsRegistry.render_prometheus`)
  — the de-facto scrape format, so a future query server can mount it
  on ``/metrics`` unchanged;
* **``repro.metrics/v1`` JSON** (:meth:`MetricsRegistry.to_dict`) —
  schema-validated by :mod:`repro.obs.schema`, consumed by the
  ``repro metrics`` CLI summary.

Design notes:

* One :class:`threading.Lock` per registry guards every update and
  snapshot — updates are a dict lookup plus a float add, so a single
  lock outperforms per-family locks at this scale and makes snapshots
  trivially consistent.  The thread-safety test hammers one registry
  from concurrent workers and asserts exact totals.
* Histograms are **log-bucketed**: bucket upper bounds grow
  geometrically (:func:`log_buckets`), so one histogram covers
  sub-millisecond probes and multi-second scans with bounded error.
  Quantiles are estimated as the upper bound of the bucket where the
  cumulative count crosses the rank — the standard Prometheus
  ``histogram_quantile`` convention.
* Everything is standard-library only and imports nothing from the
  engine, so any layer may import it without cycles.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: schema tag for the exported metrics document.
METRICS_SCHEMA = "repro.metrics/v1"

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def log_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` geometrically growing bucket bounds from ``start``.

    ``log_buckets(0.05, 2, 4)`` → ``(0.05, 0.1, 0.2, 0.4)``.  An
    implicit +Inf bucket always follows the last bound.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("log_buckets needs start > 0, factor > 1, count >= 1")
    bounds = []
    value = float(start)
    for _ in range(count):
        bounds.append(value)
        value *= factor
    return tuple(bounds)


#: default latency buckets: 0.05 ms … ~26 s in 20 doubling steps.
LATENCY_BUCKETS_MS = log_buckets(0.05, 2.0, 20)
#: default matcher-step buckets: 1 … ~4M edge expansions.
STEP_BUCKETS = log_buckets(1.0, 4.0, 12)


def _check_labels(
    labelnames: Tuple[str, ...], labels: Mapping[str, Any], metric: str
) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"metric {metric!r} takes labels {sorted(labelnames)}, "
            f"got {sorted(labels)}"
        )
    # Label values are always strings (None → "unknown", as Prometheus
    # has no null label value).
    return tuple(
        "unknown" if labels[name] is None else str(labels[name])
        for name in labelnames
    )


class _Family:
    """Base: one named metric with a fixed label schema."""

    type: str = ""

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str], lock: threading.Lock
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._values: Dict[Tuple[str, ...], Any] = {}

    def _key(self, labels: Mapping[str, Any]) -> Tuple[str, ...]:
        return _check_labels(self.labelnames, labels, self.name)

    def labelsets(self) -> List[Dict[str, str]]:
        with self._lock:
            keys = list(self._values)
        return [dict(zip(self.labelnames, key)) for key in keys]


class Counter(_Family):
    """A monotonically increasing total."""

    type = COUNTER

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)


class Gauge(_Family):
    """A value that can go up and down (queue depth, cache size)."""

    type = GAUGE

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)


class HistogramValue:
    """Observations of one labelset: per-bucket counts, sum, count."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]):
        self.bounds = bounds
        #: one slot per finite bound plus the +Inf overflow slot.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Estimated q-quantile: the bucket bound where the rank falls.

        Observations in the +Inf bucket report the largest finite bound
        (the estimate saturates, as Prometheus' does).  Returns 0.0 for
        an empty histogram.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bound in enumerate(self.bounds):
            cumulative += self.bucket_counts[index]
            if cumulative >= rank:
                return bound
        return self.bounds[-1]


class Histogram(_Family):
    """Log-bucketed distribution with per-labelset sum/count/quantiles."""

    type = HISTOGRAM

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
        buckets: Optional[Iterable[float]] = None,
    ) -> None:
        super().__init__(name, help, labelnames, lock)
        bounds = tuple(buckets) if buckets is not None else LATENCY_BUCKETS_MS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r} buckets must strictly increase")
        self.bounds = bounds

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            sample = self._values.get(key)
            if sample is None:
                sample = self._values[key] = HistogramValue(self.bounds)
            sample.observe(value)

    def sample(self, **labels: Any) -> Optional[HistogramValue]:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key)


class MetricsRegistry:
    """A named collection of metric families sharing one lock.

    Families are created once (:meth:`counter` / :meth:`gauge` /
    :meth:`histogram`, re-registration with the same schema returns the
    existing family) and updated from any thread.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _register(self, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if (
                    type(existing) is not type(family)
                    or existing.labelnames != family.labelnames
                ):
                    raise ValueError(
                        f"metric {family.name!r} already registered with a "
                        f"different type or label schema"
                    )
                return existing
            self._families[family.name] = family
            return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help, labelnames, self._lock))

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help, labelnames, self._lock))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Iterable[float]] = None,
    ) -> Histogram:
        return self._register(Histogram(name, help, labelnames, self._lock, buckets))

    def families(self) -> List[_Family]:
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    # -- export ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Export every family as a ``repro.metrics/v1`` document."""
        metrics: List[Dict[str, Any]] = []
        for family in self.families():
            entry: Dict[str, Any] = {
                "name": family.name,
                "type": family.type,
                "help": family.help,
                "labelnames": list(family.labelnames),
            }
            with self._lock:
                items = sorted(family._values.items())
            if family.type == HISTOGRAM:
                entry["buckets"] = list(family.bounds)  # type: ignore[attr-defined]
                entry["samples"] = [
                    {
                        "labels": dict(zip(family.labelnames, key)),
                        "count": value.count,
                        "sum": round(value.sum, 6),
                        "bucket_counts": list(value.bucket_counts),
                    }
                    for key, value in items
                ]
            else:
                entry["samples"] = [
                    {"labels": dict(zip(family.labelnames, key)), "value": value}
                    for key, value in items
                ]
            metrics.append(entry)
        return {"schema": METRICS_SCHEMA, "metrics": metrics}

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.type}")
            with self._lock:
                items = sorted(family._values.items())
            for key, value in items:
                labels = dict(zip(family.labelnames, key))
                if family.type == HISTOGRAM:
                    cumulative = 0
                    for bound, count in zip(value.bounds, value.bucket_counts):
                        cumulative += count
                        bucket_labels = dict(labels, le=_format_value(bound))
                        lines.append(
                            f"{family.name}_bucket{_render_labels(bucket_labels)} "
                            f"{cumulative}"
                        )
                    cumulative += value.bucket_counts[-1]
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_render_labels(dict(labels, le='+Inf'))} {cumulative}"
                    )
                    lines.append(
                        f"{family.name}_sum{_render_labels(labels)} "
                        f"{_format_value(value.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_render_labels(labels)} {value.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_render_labels(labels)} {_format_value(value)}"
                    )
        return "\n".join(lines) + "\n"


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in labels.items()
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    # Integral values render without a trailing .0 (counts stay counts).
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


# --------------------------------------------------------------------------
# Summaries over the exported document (used by `repro metrics`)


def summarize_fingerprints(
    document: Mapping[str, Any],
    by: str = "total",
    latency_metric: str = "repro_query_latency_ms",
) -> List[Dict[str, Any]]:
    """Per-fingerprint latency summary of a ``repro.metrics/v1`` document.

    Reads the query-latency histogram family and returns one row per
    (engine, fingerprint) labelset — ``count``, ``total_ms``, ``mean_ms``,
    ``p50_ms``, ``p99_ms``, plus an example normalized ``query`` resolved
    from the document's worklog when present — sorted descending by
    ``by`` (``total`` | ``p99`` | ``count``).
    """
    if by not in ("total", "p99", "count"):
        raise ValueError(f"sort key must be total, p99 or count, got {by!r}")
    family = None
    for metric in document.get("metrics", []):
        if metric.get("name") == latency_metric and metric.get("type") == HISTOGRAM:
            family = metric
            break
    if family is None:
        return []
    examples: Dict[str, str] = {}
    for entry in document.get("worklog", []):
        examples.setdefault(entry["fingerprint"], entry["query"])
    bounds = tuple(family["buckets"])
    rows: List[Dict[str, Any]] = []
    for sample in family["samples"]:
        value = HistogramValue(bounds)
        value.bucket_counts = list(sample["bucket_counts"])
        value.sum = sample["sum"]
        value.count = sample["count"]
        labels = sample["labels"]
        fingerprint = labels.get("fingerprint", "unknown")
        rows.append(
            {
                "fingerprint": fingerprint,
                "engine": labels.get("engine", "unknown"),
                "count": value.count,
                "total_ms": round(value.sum, 3),
                "mean_ms": round(value.sum / value.count, 3) if value.count else 0.0,
                "p50_ms": value.quantile(0.50),
                "p99_ms": value.quantile(0.99),
                "query": examples.get(fingerprint, ""),
            }
        )
    sort_key = {"total": "total_ms", "p99": "p99_ms", "count": "count"}[by]
    rows.sort(key=lambda row: (-row[sort_key], row["fingerprint"]))
    return rows
