"""EXPLAIN ANALYZE renderers and trace summaries for both hosts.

This module executes queries with tracing on and renders the resulting
span tree next to the static plan — per-stage actual rows, matcher
steps, inclusive wall time, peak materialized rows for blocking stages,
and the planner's estimated-vs-actual cardinalities where a search span
carries an anchor choice.

It imports the GQL and SQL layers, so it must NOT be imported from
``repro.obs.__init__`` (the engine imports ``repro.obs.trace``, which
triggers the package init — a cycle).  Callers import it explicitly or
lazily: ``from repro.obs.analyze import explain_analyze_gql``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, List, Optional

from repro.gpml.matcher import MatcherConfig
from repro.gpml.streaming import PipelineStats
from repro.graph.model import PropertyGraph
from repro.obs.trace import QueryTrace, Span


# --------------------------------------------------------------------------
# Span formatting (shared by every renderer)


def format_actuals(span: Span) -> str:
    """``rows=…, steps=…, time=…ms`` for one span (omit zero fields)."""
    parts = [f"rows={span.rows_out}"]
    if span.rows_in and span.rows_in != span.rows_out:
        parts.append(f"rows_in={span.rows_in}")
    if span.steps:
        parts.append(f"steps={span.steps}")
    if span.peak_rows is not None:
        parts.append(f"peak={span.peak_rows}")
    parts.append(f"time={span.elapsed_ms:.2f}ms")
    for name, value in span.counts.items():
        parts.append(f"{name}={value}")
    return ", ".join(parts)


def estimate_lines(span: Span) -> List[str]:
    """Estimated-vs-actual cardinality lines for an anchored search span."""
    meta = span.meta
    if "anchor" not in meta:
        return []
    lines = [f"anchor: {meta['anchor']}"]
    estimated = meta.get("est_candidates")
    observed = meta.get("observed_candidates")
    if estimated is not None:
        actual = "?" if observed is None else observed
        lines.append(f"est candidates={estimated:g} actual={actual}")
    est_rows = meta.get("est_rows")
    if est_rows is not None:
        lines.append(f"est rows={est_rows:g} actual={span.rows_out}")
    return lines


def engine_lines(span: Span) -> List[str]:
    """Engine-choice line for search spans (columnar frontier details)."""
    engine = span.meta.get("engine")
    if engine is None:
        return []
    selectivity = span.meta.get("vector_selectivity")
    if selectivity is None:
        return [f"engine: {engine}"]
    return [f"engine: {engine} (vector selectivity={selectivity:.3f})"]


def render_span(span: Span, indent: str = "") -> List[str]:
    """Indented text rendering of a span subtree with actuals."""
    lines = [f"{indent}{span.name} ({format_actuals(span)})"]
    child_indent = indent + "  "
    for extra in engine_lines(span):
        lines.append(f"{child_indent}{extra}")
    for extra in estimate_lines(span):
        lines.append(f"{child_indent}{extra}")
    for event in span.events:
        payload = ", ".join(
            f"{key}={value}" for key, value in event.items() if key != "event"
        )
        suffix = f" ({payload})" if payload else ""
        lines.append(f"{child_indent}event: {event['event']}{suffix}")
    for child in span.children:
        lines.extend(render_span(child, child_indent))
    return lines


def render_trace(trace: QueryTrace, indent: str = "") -> List[str]:
    """Render all top-level spans of a trace (the root itself is elided)."""
    lines: List[str] = []
    for event in trace.root.events:
        payload = ", ".join(
            f"{key}={value}" for key, value in event.items() if key != "event"
        )
        suffix = f" ({payload})" if payload else ""
        lines.append(f"{indent}event: {event['event']}{suffix}")
    for child in trace.root.children:
        lines.extend(render_span(child, indent))
    return lines


# --------------------------------------------------------------------------
# GPML / GQL


def explain_analyze_match(
    graph: PropertyGraph,
    query: Any,
    config: Optional[MatcherConfig] = None,
    stats: Optional[PipelineStats] = None,
) -> str:
    """Execute a bare MATCH with tracing and render per-stage actuals."""
    from repro.gpml.engine import match_iter

    stats = _ensure_trace(stats, query, engine="gpml")
    start = perf_counter()
    rows = list(match_iter(graph, query, config, stats=stats))
    elapsed_ms = (perf_counter() - start) * 1000.0
    lines = [
        "EXPLAIN ANALYZE (gpml)",
        f"actual: {len(rows)} row(s), {stats.steps} matcher steps, "
        f"{stats.matches} raw matches, {elapsed_ms:.2f}ms",
    ]
    lines.extend(render_trace(stats.trace, indent="  "))
    return "\n".join(lines)


def explain_analyze_gql(
    graph: PropertyGraph,
    query: Any,
    config: Optional[MatcherConfig] = None,
    stats: Optional[PipelineStats] = None,
) -> str:
    """Execute a GQL read query with tracing and render per-stage actuals.

    The output follows the span tree (one block per statement, pattern
    stages nested), annotated ``rows=…, steps=…, time=…ms`` plus the
    planner's estimated-vs-actual cardinality on anchored searches.
    """
    from repro.gql.query import execute_gql_iter

    stats = _ensure_trace(stats, query, engine="gql")
    start = perf_counter()
    records = list(execute_gql_iter(graph, query, config, stats=stats))
    elapsed_ms = (perf_counter() - start) * 1000.0
    lines = [
        "EXPLAIN ANALYZE (gql)",
        f"actual: {len(records)} record(s), {stats.steps} matcher steps, "
        f"{stats.matches} raw matches, {elapsed_ms:.2f}ms",
    ]
    lines.extend(render_trace(stats.trace, indent="  "))
    return "\n".join(lines)


def _ensure_trace(
    stats: Optional[PipelineStats], query: Any, engine: str
) -> PipelineStats:
    if stats is None:
        stats = PipelineStats()
    if stats.trace is None:
        if not isinstance(query, str):
            query = getattr(query, "text", None)
        stats.trace = QueryTrace(query=query, engine=engine)
    return stats


# --------------------------------------------------------------------------
# SQL


def render_analyzed_plan(
    op: Any, stats: PipelineStats, elapsed_ms: float, delivered: int
) -> List[str]:
    """Annotate an executed operator tree with its spans' actuals.

    ``op`` is the plan root after ``attach_spans`` + a full drain; the
    rendering mirrors ``render_plan`` but swaps the static detail lines
    for per-operator actuals and nests the GPML engine's stage spans
    under each graph scan.
    """
    lines = [
        "EXPLAIN ANALYZE (sql)",
        f"actual: {delivered} row(s), {stats.steps} matcher steps, "
        f"{elapsed_ms:.2f}ms",
    ]
    trace = stats.trace
    if trace is not None:
        for event in trace.root.events:
            payload = ", ".join(
                f"{key}={value}" for key, value in event.items() if key != "event"
            )
            lines.append(f"event: {event['event']}" + (f" ({payload})" if payload else ""))
    lines.extend(_render_operator(op, ""))
    return lines


def _render_operator(op: Any, indent: str) -> List[str]:
    span = op.span
    if span is None:  # pragma: no cover - analyze always attaches spans
        lines = [f"{indent}{op.describe()}"]
    else:
        lines = [f"{indent}{op.describe()} ({format_actuals(span)})"]
    child_indent = indent + "  "
    for predicate in getattr(op, "pushed_predicates", ()) or ():
        lines.append(f"{child_indent}pushed into MATCH: {predicate}")
    if span is not None:
        # Engine stage spans (non-operator children) nest under scans.
        for child in span.children:
            if child.kind != "operator":
                lines.extend(render_span(child, child_indent))
    for child_op in op.children:
        lines.extend(_render_operator(child_op, child_indent))
    return lines


# --------------------------------------------------------------------------
# CLI helpers


def plan_summary(trace: QueryTrace) -> Optional[str]:
    """One line about planner decisions, for ``--stats`` output.

    Collects the anchor each traced search ran with, the join order (if
    the planner reordered a multi-pattern join), and seeded-statement
    tallies.  Returns None when the trace recorded no planner activity.
    """
    parts: List[str] = []
    for span in trace.walk():
        for event in span.events:
            if event["event"] == "join_order":
                parts.append(f"join order {event['order']}")
            elif event["event"] == "predicate_pushdown":
                parts.append(
                    f"pushed into {event['graph_table']}: "
                    f"{'; '.join(event['predicates'])}"
                )
            elif event["event"] == "plan_rewrite":
                detail = ", ".join(
                    f"{key}={value}"
                    for key, value in event.items()
                    if key not in ("event", "rule")
                )
                parts.append(f"rewrite {event['rule']} ({detail})")
        anchor = span.meta.get("anchor")
        if anchor is not None:
            label = span.name.split(" search ")[0]
            parts.append(f"{label} anchor {anchor}")
        runs = span.counts.get("seeded_runs")
        if runs:
            hits = span.counts.get("seed_memo_hit", 0)
            label = span.name.split(":")[0]
            parts.append(f"{label} seeded ({runs} runs, {hits} memo hits)")
    if not parts:
        return None
    return "; ".join(parts)
