"""Query fingerprinting: stable shape keys shared by GQL and SQL.

Workload telemetry needs to aggregate *across* queries: "this query
shape ran 4 000 times at p99 = 18 ms" is what an operator watches, and
per-shape accounting only works if ``MATCH (a WHERE a.owner='Mike')``
and ``MATCH (a WHERE a.owner='Jay')`` land in the same bucket.  A
**fingerprint** is a short stable hash of the query's *normalized* text:

* literals (numbers and strings) are replaced by ``?`` placeholders,
* keywords are canonicalized to upper case (the shared lexer already
  treats them case-insensitively, so ``match`` and ``MATCH`` fold),
* whitespace and comments are canonicalized away entirely.

Identifiers keep their case — they are case-sensitive in all three
surface languages, so folding them would merge genuinely different
queries.  ``TRUE`` / ``FALSE`` / ``NULL`` are keywords, not literals:
``WHERE x IS NULL`` and ``WHERE x = ?`` stay distinct shapes.

All three surfaces (GPML, GQL, SQL/PGQ) share one lexer
(:mod:`repro.gpml.lexer`), so one tokenizer-based normalizer covers the
whole workload.  Text the lexer rejects (a truncated query captured
from a log, say) falls back to whitespace collapsing — the fingerprint
is still deterministic, just literal-sensitive.

Guaranteed properties (tested with hypothesis in
``tests/obs/test_fingerprint.py``):

* **idempotent** — ``fingerprint(normalize_query(q)) == fingerprint(q)``:
  the normalized text re-tokenizes to the same token stream;
* **literal-insensitive** — queries differing only in literal values
  share a fingerprint;
* **shape-sensitive** — structurally different queries get different
  fingerprints (hash collisions aside; the suite corpus asserts none).
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from repro.errors import GpmlSyntaxError
from repro.gpml.lexer import EOF, NUMBER, STRING, tokenize

#: placeholder substituted for every number/string literal.
PLACEHOLDER = "?"

#: normalized tokens that glue to their predecessor (no space before).
_NO_SPACE_BEFORE = frozenset({".", ",", ")", "]", "}"})
#: normalized tokens that glue to their successor (no space after).
_NO_SPACE_AFTER = frozenset({".", "(", "[", "{"})


@lru_cache(maxsize=4096)
def normalize_query(text: str) -> str:
    """The canonical shape text of *text* (literals → ``?``).

    Tokenizes with the shared GPML/GQL/SQL lexer, replaces every
    ``NUMBER``/``STRING`` token with :data:`PLACEHOLDER`, and rejoins
    with canonical spacing.  Falls back to whitespace collapsing when
    the text does not tokenize.
    """
    try:
        tokens = tokenize(text)
    except GpmlSyntaxError:
        return " ".join(text.split())
    parts: list[str] = []
    for token in tokens:
        if token.type == EOF:
            break
        if token.type in (NUMBER, STRING):
            piece = PLACEHOLDER
        else:
            piece = str(token.value)
        if parts and piece not in _NO_SPACE_BEFORE and parts[-1] not in _NO_SPACE_AFTER:
            parts.append(" ")
        parts.append(piece)
    return "".join(parts)


@lru_cache(maxsize=4096)
def query_fingerprint(text: str) -> str:
    """A 12-hex-digit stable hash of the query's normalized shape."""
    normalized = normalize_query(text)
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:12]
