"""Observability: query tracing, EXPLAIN ANALYZE, and metrics export.

Quick start::

    from repro.obs import tracing_stats

    stats = tracing_stats(query_text, engine="gql")
    records = list(execute_gql_iter(graph, query_text, stats=stats))
    stats.trace.to_dict(stats)      # repro.trace/v1 JSON document

This package init deliberately imports only the standalone pieces
(:mod:`repro.obs.trace`, :mod:`repro.obs.schema`) so the engine layers
can import them without cycles.  The renderers in
:mod:`repro.obs.analyze` import the GQL/SQL layers and must be imported
explicitly (``from repro.obs import analyze``) or lazily.
"""

from repro.obs.schema import BENCH_SCHEMA, SchemaError, validate_bench_document, validate_trace_document
from repro.obs.trace import TRACE_SCHEMA, QueryTrace, Span, counted_in, timed_rows

__all__ = [
    "BENCH_SCHEMA",
    "TRACE_SCHEMA",
    "QueryTrace",
    "SchemaError",
    "Span",
    "counted_in",
    "timed_rows",
    "tracing_stats",
    "validate_bench_document",
    "validate_trace_document",
]


def tracing_stats(query=None, engine=None):
    """A fresh ``PipelineStats`` with tracing enabled.

    Convenience factory: the flat counters work exactly as before, and
    ``stats.trace`` carries the span tree the execution layers fill in.
    """
    from repro.gpml.streaming import PipelineStats

    return PipelineStats(trace=QueryTrace(query=query, engine=engine))
