"""Observability: tracing, EXPLAIN ANALYZE, and workload telemetry.

Per-query (PR 5)::

    from repro.obs import tracing_stats

    stats = tracing_stats(query_text, engine="gql")
    records = list(execute_gql_iter(graph, query_text, stats=stats))
    stats.trace.to_dict(stats)      # repro.trace/v1 JSON document

Per-workload::

    from repro.obs import Telemetry

    telemetry = Telemetry(slow_ms=50.0)
    session = GqlSession(graph, telemetry=telemetry)
    session.execute(query_text)
    telemetry.render_prometheus()   # Prometheus text exposition
    telemetry.to_dict()             # repro.metrics/v1 JSON document
    telemetry.worklog.slow_queries()

This package init deliberately imports only the standalone pieces
(:mod:`repro.obs.trace`, :mod:`repro.obs.metrics`,
:mod:`repro.obs.fingerprint`, :mod:`repro.obs.worklog`,
:mod:`repro.obs.schema`) so the engine layers can import them without
cycles.  The renderers in :mod:`repro.obs.analyze` import the GQL/SQL
layers and must be imported explicitly (``from repro.obs import
analyze``) or lazily.
"""

from repro.obs.fingerprint import normalize_query, query_fingerprint
from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    log_buckets,
    summarize_fingerprints,
)
from repro.obs.schema import (
    BENCH_SCHEMA,
    SchemaError,
    validate_bench_document,
    validate_document,
    validate_metrics_document,
    validate_trace_document,
)
from repro.obs.trace import TRACE_SCHEMA, QueryTrace, Span, counted_in, timed_rows
from repro.obs.worklog import QueryRecord, Telemetry, WorkLog

__all__ = [
    "BENCH_SCHEMA",
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "MetricsRegistry",
    "QueryRecord",
    "QueryTrace",
    "SchemaError",
    "Span",
    "Telemetry",
    "WorkLog",
    "counted_in",
    "log_buckets",
    "normalize_query",
    "query_fingerprint",
    "summarize_fingerprints",
    "timed_rows",
    "tracing_stats",
    "validate_bench_document",
    "validate_document",
    "validate_metrics_document",
    "validate_trace_document",
]


def tracing_stats(query=None, engine=None):
    """A fresh ``PipelineStats`` with tracing enabled.

    Convenience factory: the flat counters work exactly as before, and
    ``stats.trace`` carries the span tree the execution layers fill in.
    """
    from repro.gpml.streaming import PipelineStats

    return PipelineStats(trace=QueryTrace(query=query, engine=engine))
