"""Cypher-semantics baseline: whole-pattern relationship isomorphism.

Cypher (Section 3 of the paper; Francis et al. 2018) never matches the
same relationship twice within one MATCH clause — a global trail
condition across *all* pattern parts.  GPML instead scopes TRAIL per path
pattern (or parenthesized pattern), and lists a whole-pattern
edge-isomorphic match mode as a Language Opportunity (Section 7.1).

``cypher_match`` runs the GPML engine and then enforces Cypher's rule,
making the semantic gap between the two languages directly observable:

>>> # a 2-step pattern over a single edge A->B and back is a GPML match
>>> # (walks may repeat edges) but not a Cypher match.
"""

from __future__ import annotations

from repro.extensions.match_modes import filter_edge_isomorphic
from repro.gpml.engine import MatchResult, match
from repro.gpml.matcher import MatcherConfig
from repro.graph.model import PropertyGraph


def cypher_match(
    graph: PropertyGraph, query: str, config: MatcherConfig | None = None
) -> MatchResult:
    """GPML evaluation followed by Cypher's no-repeated-edge rule."""
    result = match(graph, query, config)
    return filter_edge_isomorphic(result)
