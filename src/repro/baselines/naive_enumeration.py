"""Naive generate-and-test baseline.

Enumerates walks of the graph blindly (DFS over incidences, without the
pattern automaton steering the search), then tests each complete walk
against the compiled pattern by running the NFA *along that walk*.  Both
engines produce identical results; the naive engine pays for every walk
the product-graph matcher would have pruned after one edge — this is the
ablation baseline for the pruning benchmarks.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import GpmlEvaluationError
from repro.gpml.bindings import PathBinding, deduplicate, reduce_binding
from repro.gpml.engine import MatchResult, assemble_result, prepare
from repro.gpml.matcher import Matcher, MatcherConfig
from repro.gpml.selectors import apply_selector
from repro.graph.model import PropertyGraph


def _walks(graph: PropertyGraph, max_length: int, trail_only: bool) -> Iterator[tuple]:
    """All walks (alternating node/edge id tuples) up to max_length edges."""
    for start in sorted(graph.node_ids()):
        stack: list[tuple[tuple, frozenset]] = [((start,), frozenset())]
        while stack:
            elements, used = stack.pop()
            yield elements
            if (len(elements) - 1) // 2 >= max_length:
                continue
            node = elements[-1]
            for inc in graph.incidences(node):
                if trail_only and inc.edge in used:
                    continue
                stack.append((elements + (inc.edge, inc.other), used | {inc.edge}))


class _WalkConstrainedMatcher(Matcher):
    """The production matcher, forced to follow one fixed walk.

    Used as the *test* phase of generate-and-test: the only freedom left
    to the automaton is how it parses the walk (which iteration/branch
    choices it makes), exactly like testing a string against a regex.
    """

    def __init__(self, graph, nfa, pattern, walk: tuple):
        super().__init__(graph, nfa, pattern, MatcherConfig())
        self._walk = walk
        self._num_edges = (len(walk) - 1) // 2

    def _initial_candidates(self):
        return [self._walk[0]]

    def _edge_successors(self, run, cost_property=None):
        if run.path_len >= self._num_edges:
            return
        forced_edge = self._walk[2 * run.path_len + 1]
        forced_node = self._walk[2 * run.path_len + 2]
        for successor in super()._edge_successors(run, cost_property):
            last_edge = successor.path_cell[0][1]
            if last_edge == forced_edge and successor.node == forced_node:
                yield successor

    def _accept(self, run):
        if run.path_len != self._num_edges:
            return None
        return super()._accept(run)


def naive_walk_match(graph: PropertyGraph, query: str, max_length: int) -> MatchResult:
    """Generate-and-test with a hard length bound (bounded patterns)."""
    return _naive(graph, query, max_length, trail_only=False)


def naive_trail_match(graph: PropertyGraph, query: str) -> MatchResult:
    """Generate-and-test over all trails (for TRAIL-restricted patterns)."""
    return _naive(graph, query, graph.num_edges, trail_only=True)


def _naive(
    graph: PropertyGraph, query: str, max_length: int, trail_only: bool
) -> MatchResult:
    prepared = prepare(query)
    if prepared.num_path_patterns != 1:
        raise GpmlEvaluationError("naive baseline evaluates one path pattern")
    path = prepared.normalized.paths[0]
    analysis = prepared.analysis.paths[0]

    raw: list[PathBinding] = []
    for walk in _walks(graph, max_length, trail_only):
        matcher = _WalkConstrainedMatcher(graph, prepared.nfas[0], path.pattern, walk)
        raw.extend(matcher.enumerate_all())
    reduced = [
        reduce_binding(b, analysis.group_vars, analysis.anonymous_vars) for b in raw
    ]
    solutions = deduplicate(reduced)
    solutions.sort(key=lambda s: s.sort_key())
    solutions = apply_selector(path.selector, solutions, graph, 1.0)
    return assemble_result(graph, prepared, [solutions])
