"""Baselines: the pattern-matching semantics GPML is compared against.

Section 3 of the paper surveys SPARQL, Cypher, PGQL and GSQL.  Two of the
semantic contrasts are executable and implemented here:

* :mod:`~repro.baselines.sparql_paths` — SPARQL's *endpoint semantics*:
  property paths only test the existence of a path between node pairs;
  paths are never materialized or counted (Arenas et al.'s "Counting
  beyond a Yottabyte" motivation, cited by the paper).
* :mod:`~repro.baselines.cypher_semantics` — Cypher's relationship-
  isomorphism: no edge may be matched twice across the whole MATCH
  (GPML instead scopes TRAIL per path pattern; whole-pattern edge
  isomorphism is a Language Opportunity in Section 7.1).
* :mod:`~repro.baselines.naive_enumeration` — generate-and-test walk
  enumeration, the ablation baseline for the automaton engine's pruning.
"""

from repro.baselines.cypher_semantics import cypher_match
from repro.baselines.naive_enumeration import naive_trail_match, naive_walk_match
from repro.baselines.sparql_paths import endpoint_pairs

__all__ = ["cypher_match", "endpoint_pairs", "naive_trail_match", "naive_walk_match"]
