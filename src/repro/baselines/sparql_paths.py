"""SPARQL property-path baseline: endpoint semantics.

SPARQL 1.1 evaluates property paths by *reachability*: ``?x Transfer+ ?y``
returns the pairs of nodes connected by some path, never the paths
themselves — the W3C chose this after the counting semantics proved
intractable (Section 3 of the paper, citing Arenas/Conca/Pérez and
Losemann/Martens).

The evaluator here is faithful to that approach: a product BFS over
(graph node, automaton state) pairs with *no* path or binding tracking,
which is why it runs in polynomial time where path-returning semantics
can produce exponentially many results.  Patterns are restricted to what
SPARQL can express: one path pattern, label tests, quantifiers, unions,
and element WHERE clauses that only reference their own variable.
"""

from __future__ import annotations

from repro.errors import GpmlEvaluationError
from repro.gpml import ast
from repro.gpml.automaton import (
    BagTag,
    EnterQuant,
    ExitQuant,
    IterBegin,
    NodeTest,
    ScopeBegin,
    ScopeEnd,
    compile_path_pattern,
)
from repro.gpml.expr import EvalContext
from repro.gpml.normalize import normalize_graph_pattern
from repro.gpml.parser import parse_match
from repro.graph.model import PropertyGraph


class _NoDeferred:
    """Stand-in analysis: endpoint patterns have only local filters."""

    deferred_wheres: frozenset = frozenset()


def endpoint_pairs(graph: PropertyGraph, query: str) -> set[tuple[str, str]]:
    """All (start, end) node pairs connected by a match of the pattern.

    This is the entire result SPARQL-style endpoint semantics can give:
    no bindings, no paths, no multiplicities.  Unbounded quantifiers need
    no restrictor or selector here — reachability is finite by nature,
    which is exactly why SPARQL chose this semantics (Section 3).
    """
    normalized = normalize_graph_pattern(parse_match(query))
    if normalized.where is not None:
        raise GpmlEvaluationError("endpoint semantics has no postfilter")
    if len(normalized.paths) != 1:
        raise GpmlEvaluationError("endpoint semantics evaluates one path pattern")
    path = normalized.paths[0]
    _check_supported(path)
    nfa = compile_path_pattern(path, _NoDeferred())

    pairs: set[tuple[str, str]] = set()
    for start in sorted(graph.node_ids()):
        # product BFS from this start node; states carry no bindings.
        initial = _eps_closure(graph, nfa, {(nfa.start, (), start)})
        seen = set(initial)
        frontier = initial
        while frontier:
            next_frontier: set[tuple] = set()
            for state, counters, node in frontier:
                if state == nfa.accept:
                    pairs.add((start, node))
                for transition in nfa.edges[state]:
                    for inc in graph.incidences(node):
                        if not transition.pattern.orientation.admits(inc.direction):
                            continue
                        if not _edge_ok(graph, transition.pattern, inc.edge):
                            continue
                        candidate = (transition.target, counters, inc.other)
                        next_frontier.add(candidate)
            next_frontier = _eps_closure(graph, nfa, next_frontier)
            # accept states inside the closure are handled next round;
            # make sure terminal-only states are not lost:
            for item in next_frontier:
                if item[0] == nfa.accept:
                    pairs.add((start, item[2]))
            frontier = next_frontier - seen
            seen |= frontier
    return pairs


def _eps_closure(graph: PropertyGraph, nfa, states: set[tuple]) -> set[tuple]:
    out = set(states)
    stack = list(states)
    while stack:
        state, counters, node = stack.pop()
        for eps in nfa.epsilons[state]:
            successor = _apply(graph, eps.action, eps.target, counters, node)
            if successor is not None and successor not in out:
                out.add(successor)
                stack.append(successor)
    return out


def _apply(graph: PropertyGraph, action, target: int, counters: tuple, node: str):
    if action is None or isinstance(action, (ScopeBegin, ScopeEnd, BagTag)):
        if isinstance(action, ScopeBegin) and action.restrictor is not None:
            raise GpmlEvaluationError(
                "endpoint semantics does not support restrictors (SPARQL has none)"
            )
        return (target, counters, node)
    if isinstance(action, NodeTest):
        pattern = action.pattern
        if pattern.label is not None and not pattern.label.matches(graph.labels_of(node)):
            return None
        if pattern.where is not None:
            ctx = EvalContext(bindings={pattern.var: graph.node(node)}, graph=graph)
            if not pattern.where.truth(ctx):
                return None
        return (target, counters, node)
    if isinstance(action, EnterQuant):
        return (target, counters + ((action.quant_id, 0),), node)
    if isinstance(action, IterBegin):
        count = dict(counters).get(action.quant_id, 0)
        if action.upper is not None and count >= action.upper:
            return None
        items = [(q, c) for q, c in counters if q != action.quant_id]
        items.append((action.quant_id, min(count + 1, action.cap)))
        return (target, tuple(sorted(items)), node)
    if isinstance(action, ExitQuant):
        count = dict(counters).get(action.quant_id, 0)
        if count < action.lower:
            return None
        items = tuple((q, c) for q, c in counters if q != action.quant_id)
        return (target, items, node)
    raise GpmlEvaluationError(f"unsupported automaton action {action!r}")


def _edge_ok(graph: PropertyGraph, pattern: ast.EdgePattern, edge_id: str) -> bool:
    if pattern.label is not None and not pattern.label.matches(graph.labels_of(edge_id)):
        return False
    if pattern.where is not None:
        ctx = EvalContext(bindings={pattern.var: graph.edge(edge_id)}, graph=graph)
        if not pattern.where.truth(ctx):
            return False
    return True


def _check_supported(path: ast.PathPattern) -> None:
    if path.selector is not None or path.restrictor is not None:
        raise GpmlEvaluationError(
            "endpoint semantics has no selectors or restrictors; SPARQL "
            "avoids infinite results by returning endpoints only"
        )
    for node in path.pattern.walk():
        if isinstance(node, (ast.NodePattern, ast.EdgePattern)):
            if node.where is not None and node.where.variables() - {node.var}:
                raise GpmlEvaluationError(
                    "endpoint semantics supports only local element filters"
                )
        if isinstance(node, ast.ParenPattern) and node.restrictor is not None:
            raise GpmlEvaluationError("endpoint semantics does not support restrictors")
