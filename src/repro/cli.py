"""Command-line interface: run GPML queries against JSON graphs.

Usage::

    python -m repro 'MATCH (x:Account WHERE x.isBlocked="no")'
    python -m repro --graph mygraph.json --format json 'MATCH (a)-[e]->(b)'
    python -m repro --explain 'MATCH ANY SHORTEST p = (a)->*(b)'

With no ``--graph``, queries run against the paper's Figure 1 banking
graph.  Single or double quotes work for string literals (double quotes
are normalized so shell quoting stays sane).
"""

from __future__ import annotations

import argparse
import sys

from repro.datasets import figure1_graph
from repro.errors import ReproError
from repro.extensions.json_export import result_to_json
from repro.gpml.engine import MatchResult, match
from repro.gpml.explain import explain, explain_plan
from repro.graph.serialization import graph_from_json


def _load_graph(path: str | None):
    if path is None:
        return figure1_graph()
    with open(path, "r", encoding="utf-8") as handle:
        return graph_from_json(handle.read())


def _render_table(result: MatchResult) -> str:
    if not result.variables:
        return f"{len(result)} match(es)"
    header = " | ".join(result.variables)
    lines = [header, "-" * len(header)]
    for row in result.to_dicts():
        lines.append(" | ".join(str(row[name]) for name in result.variables))
    lines.append(f"({len(result)} row(s))")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run GPML (GQL / SQL/PGQ) pattern matching queries.",
    )
    parser.add_argument("query", help="a MATCH statement")
    parser.add_argument(
        "--graph", metavar="FILE", default=None,
        help="JSON graph file (default: the paper's Figure 1 banking graph)",
    )
    parser.add_argument(
        "--format", choices=("table", "json", "paths"), default="table",
        help="output format (default: table)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the execution pipeline instead of running the query",
    )
    parser.add_argument(
        "--explain-plan", action="store_true",
        help="print the cost-based plan (anchors, indexes, estimated "
        "cardinalities, join order) for the query against the graph",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # shells prefer double quotes; GPML strings use single quotes
    query = args.query.replace('"', "'")
    try:
        if args.explain:
            print(explain(query))
            return 0
        graph = _load_graph(args.graph)
        if args.explain_plan:
            print(explain_plan(graph, query))
            return 0
        result = match(graph, query)
        if args.format == "json":
            print(result_to_json(result))
        elif args.format == "paths":
            for row in result.rows:
                for path in row.paths:
                    print(path)
        else:
            print(_render_table(result))
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
