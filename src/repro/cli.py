"""Command-line interface: run GPML queries against JSON graphs.

Usage::

    python -m repro 'MATCH (x:Account WHERE x.isBlocked="no")'
    python -m repro --graph mygraph.json --format json 'MATCH (a)-[e]->(b)'
    python -m repro --explain 'MATCH ANY SHORTEST p = (a)->*(b)'
    python -m repro --limit 10 'MATCH (a)-[e:Transfer]->(b)'
    python -m repro --first 'MATCH (a)-[e]->(a)'
    python -m repro sql 'SELECT g.src FROM GRAPH_TABLE(figure1 MATCH
        (a:Account)-[t:Transfer]->(b) COLUMNS (a.owner AS src)) AS g LIMIT 3'
    python -m repro gql 'MATCH (a:Account)-[t:Transfer]->(b)
        MATCH (b)-[t2:Transfer]->(c) RETURN a.owner, c.owner LIMIT 5'

With no ``--graph``, queries run against the paper's Figure 1 banking
graph.  Single or double quotes work for string literals (double quotes
are normalized so shell quoting stays sane).

``--limit N`` / ``--first`` use the streaming execution path: rows print
as the search discovers them, and a satisfied row budget terminates the
search itself — a ``--first`` probe on a huge graph touches a handful of
edges.  The table renderer streams too, so even unlimited queries emit
output incrementally instead of materializing every row up front.

``repro gql`` runs a full GQL read query — a linear statement pipeline
(``MATCH`` / ``OPTIONAL MATCH`` / ``LET`` / ``FILTER`` chained before
``RETURN``) — through the GQL host.  ``--explain`` prints the statement
pipeline with per-statement [streaming]/[blocking] classification (and
how a chained MATCH executes: seeded per incoming row, or hash join);
``--stats`` reports matcher counters; ``--limit`` / ``--first`` tighten
the query's LIMIT, and the shared row budget stops even the *first*
statement's NFA search once satisfied.

``repro sql`` runs a statement through the SQL host engine instead.  The
session's database contains the chosen graph (registered under its own
name) *and* its tabular representation as base tables — one relation per
label combination (Figure 2) — so GRAPH_TABLE results join against plain
tables out of the box.  ``--explain`` prints the relational operator tree
with the embedded streaming GPML pipeline; ``--stats`` reports matcher
step/match/row counters after execution (evidence that LIMIT and WHERE
pushdown reach the NFA search).

Observability (``gql`` and ``sql`` subcommands): ``--analyze`` executes
and prints the EXPLAIN ANALYZE rendering — per-stage actual rows /
matcher steps / wall time plus the planner's estimated-vs-actual
cardinalities; ``--trace-json FILE`` writes the run's span tree as
``repro.trace/v1`` JSON; ``--stats`` additionally reports wall time and
a ``-- plan:`` line with the planner's anchor / join-order choices.
The flags compose (``--analyze --stats --trace-json t.json``).

Workload telemetry: ``--metrics-out FILE`` records the run into a
metrics registry + query log and writes it out — Prometheus text
exposition for ``.prom``/``.txt`` files, ``repro.metrics/v1`` JSON
otherwise (``--slow-ms`` sets the slow-query threshold for full-trace
capture).  ``repro metrics FILE`` summarizes such a JSON document:
top-N query fingerprints by total / p99 latency or count, and (with
``--slow``) the logged slow queries.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, Iterator

from repro.datasets import figure1_graph
from repro.errors import ReproError
from repro.extensions.json_export import result_to_json
from repro.gpml.engine import BindingRow, MatchResult, _to_ids, match_iter, prepare
from repro.gpml.explain import explain, explain_plan
from repro.graph.serialization import graph_from_json
from repro.pgq.table import Table


def _load_graph(path: str | None):
    if path is None:
        return figure1_graph()
    with open(path, "r", encoding="utf-8") as handle:
        return graph_from_json(handle.read())


def _render_table_lines(
    variables: list[str], rows: Iterable[BindingRow]
) -> Iterator[str]:
    """Stream table lines: header, one line per row, then the count."""
    count = 0
    if not variables:
        for _ in rows:
            count += 1
        yield f"{count} match(es)"
        return
    header = " | ".join(variables)
    yield header
    yield "-" * len(header)
    for row in rows:
        count += 1
        yield " | ".join(str(_to_ids(row[name])) for name in variables)
    yield f"({count} row(s))"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run GPML (GQL / SQL/PGQ) pattern matching queries.",
    )
    parser.add_argument("query", help="a MATCH statement")
    parser.add_argument(
        "--graph", metavar="FILE", default=None,
        help="JSON graph file (default: the paper's Figure 1 banking graph)",
    )
    parser.add_argument(
        "--format", choices=("table", "json", "paths"), default="table",
        help="output format (default: table)",
    )
    parser.add_argument(
        "--limit", type=int, metavar="N", default=None,
        help="deliver at most N rows; the streaming engine stops the "
        "search as soon as the budget is satisfied",
    )
    parser.add_argument(
        "--first", action="store_true",
        help="shorthand for --limit 1 (early-terminating existence probe)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the execution pipeline instead of running the query",
    )
    parser.add_argument(
        "--explain-plan", action="store_true",
        help="print the cost-based plan (anchors, indexes, estimated "
        "cardinalities, join order, streaming/blocking pipeline stages) "
        "for the query against the graph",
    )
    return parser


def build_sql_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sql",
        description="Run SQL/PGQ statements (SELECT with GRAPH_TABLE in FROM).",
    )
    parser.add_argument("query", help="a SQL statement")
    parser.add_argument(
        "--graph", metavar="FILE", default=None,
        help="JSON graph file (default: the paper's Figure 1 banking graph); "
        "registered under its own name, with its label-combination "
        "relations as base tables",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the relational operator tree (with the embedded "
        "streaming GPML pipeline per GRAPH_TABLE) instead of running",
    )
    parser.add_argument(
        "--analyze", action="store_true",
        help="EXPLAIN ANALYZE: execute, then print the operator tree "
        "annotated with per-stage actual rows/steps/time and "
        "estimated-vs-actual cardinalities",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="after execution, print matcher step/match/row counters and "
        "wall time (shows how much of the search LIMIT/WHERE pushdown "
        "skipped), plus the planner's anchor/join-order choices",
    )
    parser.add_argument(
        "--trace-json", metavar="FILE", default=None,
        help="write the query's span tree as JSON (repro.trace/v1 schema)",
    )
    parser.add_argument(
        "--no-columnar", action="store_true",
        help="disable the columnar frontier engine: run pattern searches "
        "on the object-graph matcher (the reference oracle)",
    )
    parser.add_argument(
        "--no-optimizer", action="store_true",
        help="disable every cross-model rewrite rule (seeded join, shared "
        "scan, semi-join reduction): plan the naive bound tree",
    )
    parser.add_argument(
        "--optimizer-rules", metavar="RULES", default=None,
        help="comma-separated rewrite rules to enable (seeded_join, "
        "shared_scan, semi_join); default: all",
    )
    _add_metrics_arguments(parser)
    return parser


def build_gql_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro gql",
        description="Run GQL read queries (MATCH/OPTIONAL MATCH/LET/FILTER "
        "statement pipelines ending in RETURN).",
    )
    parser.add_argument("query", help="a GQL read query")
    parser.add_argument(
        "--graph", metavar="FILE", default=None,
        help="JSON graph file (default: the paper's Figure 1 banking graph)",
    )
    parser.add_argument(
        "--limit", type=int, metavar="N", default=None,
        help="tighten the query's LIMIT to at most N delivered records; "
        "the shared row budget stops every statement's search once satisfied",
    )
    parser.add_argument(
        "--first", action="store_true",
        help="shorthand for --limit 1 (early-terminating probe)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the statement pipeline (per-statement streaming/blocking "
        "classification, chained-MATCH execution mode) instead of running",
    )
    parser.add_argument(
        "--analyze", action="store_true",
        help="EXPLAIN ANALYZE: execute, then print the statement pipeline "
        "annotated with per-stage actual rows/steps/time and "
        "estimated-vs-actual cardinalities",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="after execution, print matcher step/match/row counters and "
        "wall time, plus the planner's anchor/join-order choices",
    )
    parser.add_argument(
        "--trace-json", metavar="FILE", default=None,
        help="write the query's span tree as JSON (repro.trace/v1 schema)",
    )
    parser.add_argument(
        "--no-columnar", action="store_true",
        help="disable the columnar frontier engine: run pattern searches "
        "on the object-graph matcher (the reference oracle)",
    )
    parser.add_argument(
        "--save", metavar="FILE", default=None,
        help="after the query commits, write the (possibly mutated) graph "
        "as JSON to FILE — pairs with INSERT/SET/DELETE statements",
    )
    _add_metrics_arguments(parser)
    return parser


def _add_metrics_arguments(parser: argparse.ArgumentParser) -> None:
    """The workload-telemetry flags shared by ``gql`` and ``sql``."""
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="record the run into a metrics registry + query log and "
        "write it to FILE: Prometheus text exposition for .prom/.txt, "
        "repro.metrics/v1 JSON otherwise",
    )
    parser.add_argument(
        "--slow-ms", type=float, metavar="MS", default=100.0,
        help="slow-query threshold for --metrics-out: queries at or over "
        "MS wall milliseconds keep their full trace in the query log "
        "(default: 100)",
    )


def build_metrics_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="Summarize a repro.metrics/v1 JSON document: top query "
        "fingerprints by latency, and the logged slow queries.",
    )
    parser.add_argument("file", help="a repro.metrics/v1 JSON file")
    parser.add_argument(
        "--top", type=int, metavar="N", default=10,
        help="show the top N fingerprints (default: 10)",
    )
    parser.add_argument(
        "--by", choices=("total", "p99", "count"), default="total",
        help="ranking key: total latency, p99 latency, or query count "
        "(default: total)",
    )
    parser.add_argument(
        "--slow", action="store_true",
        help="also list the slow queries captured in the query log",
    )
    return parser


def _write_trace_json(path: str, stats) -> None:
    """Dump a traced run's span tree as repro.trace/v1 JSON."""
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stats.trace.to_dict(stats=stats), handle, indent=2)
        handle.write("\n")


def _write_metrics(path: str, telemetry) -> None:
    """Dump a run's telemetry: Prometheus text or repro.metrics/v1 JSON."""
    import json

    if path.endswith((".prom", ".txt")):
        payload = telemetry.render_prometheus()
    else:
        from repro.obs.schema import validate_document

        document = telemetry.to_dict()
        validate_document(document)
        payload = json.dumps(document, indent=2)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
        if not payload.endswith("\n"):
            handle.write("\n")


def metrics_main(argv: list[str]) -> int:
    import json

    from repro.obs.metrics import summarize_fingerprints
    from repro.obs.schema import SchemaError, validate_metrics_document

    args = build_metrics_parser().parse_args(argv)
    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        validate_metrics_document(document)
    except (OSError, json.JSONDecodeError, SchemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rows = summarize_fingerprints(document, by=args.by)[: max(args.top, 0)]
    print(f"top {len(rows)} fingerprint(s) by {args.by}")
    header = (
        f"{'fingerprint':<14} {'engine':<7} {'count':>5} "
        f"{'total_ms':>10} {'mean_ms':>9} {'p50_ms':>9} {'p99_ms':>9}  query"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        query = row["query"] or ""
        if len(query) > 60:
            query = query[:57] + "..."
        print(
            f"{row['fingerprint']:<14} {row['engine']:<7} {row['count']:>5} "
            f"{row['total_ms']:>10.2f} {row['mean_ms']:>9.2f} "
            f"{row['p50_ms']:>9.2f} {row['p99_ms']:>9.2f}  {query}"
        )
    if args.slow:
        slow = [
            entry for entry in document.get("worklog", []) if entry["slow"]
        ]
        print(f"\n{len(slow)} slow quer(ies) in the log")
        for entry in slow:
            print(
                f"  {entry['fingerprint']}  {entry['engine']:<5} "
                f"{entry['wall_ms']:>9.2f} ms  rows={entry['rows']}  "
                f"{entry['query']}"
            )
    return 0


def _print_stats_lines(stats, elapsed_ms: float, graph=None) -> None:
    """The ``--stats`` footer: counters + wall time, then planner info."""
    from repro.obs.analyze import plan_summary

    print(
        f"-- stats: {stats.steps} matcher steps, "
        f"{stats.matches} raw matches, {stats.rows} delivered rows, "
        f"{elapsed_ms:.2f} ms"
    )
    if stats.trace is not None:
        summary = plan_summary(stats.trace)
        if summary is not None:
            print(f"-- plan: {summary}")
    if graph is not None:
        from repro.graph.columnar import storage_stats

        storage = storage_stats(graph)
        print(
            f"-- storage: columnar snapshot "
            f"build {storage['build_ms']:.2f} ms, "
            f"{storage['misses']} miss(es), {storage['hits']} hit(s)"
        )


def gql_main(argv: list[str]) -> int:
    import dataclasses
    from time import perf_counter

    from repro.gpml.streaming import PipelineStats
    from repro.gql.query import execute_gql_iter, explain_gql, parse_gql_query

    args = build_gql_parser().parse_args(argv)
    query = args.query
    if "'" not in query:  # shell-friendly double quotes, as in `repro sql`
        query = query.replace('"', "'")
    limit = 1 if args.first else args.limit
    if limit is not None and limit < 0:
        print("error: --limit must be non-negative", file=sys.stderr)
        return 1
    try:
        if args.explain:
            print(explain_gql(query))
            return 0
        graph = _load_graph(args.graph)
        parsed = parse_gql_query(query)
        if limit is not None:
            tightened = limit if parsed.limit is None else min(parsed.limit, limit)
            parsed = dataclasses.replace(parsed, limit=tightened)
        config = None
        if args.no_columnar:
            from repro.gpml.matcher import MatcherConfig

            config = MatcherConfig(use_columnar=False)
        telemetry = None
        if args.metrics_out:
            from repro.obs import Telemetry

            telemetry = Telemetry(slow_ms=args.slow_ms)
        from repro.gql.dml import WRITE_STATEMENTS

        has_writes = any(
            isinstance(statement, WRITE_STATEMENTS)
            for statement in parsed.statements
        )
        stats = None
        if args.stats or args.trace_json or args.analyze or telemetry:
            stats = PipelineStats.traced(query=query, engine="gql")
        elif has_writes:
            stats = PipelineStats()  # carries the mutation summary
        start = perf_counter()
        if args.analyze:
            from repro.obs.analyze import explain_analyze_gql

            print(explain_analyze_gql(graph, parsed, config=config, stats=stats))
            if telemetry is not None:
                telemetry.record_query(
                    "gql", query, perf_counter() - start, stats
                )
        else:
            records = execute_gql_iter(graph, parsed, config=config, stats=stats)
            if telemetry is not None:
                records = telemetry.instrument(records, "gql", query, stats)
            columns = [item.alias for item in parsed.items]
            header = " | ".join(columns)
            print(header)
            print("-" * len(header))
            count = 0
            for record in records:
                count += 1
                print(" | ".join(str(_to_ids(record[name])) for name in columns))
            print(f"({count} record(s))")
        elapsed_ms = (perf_counter() - start) * 1000.0
        if stats is not None and stats.mutations is not None:
            summary = ", ".join(
                f"{key}={value}" for key, value in sorted(stats.mutations.items())
            )
            print(f"-- mutations: {summary or 'none'} ({stats.transaction})")
        if args.stats:
            _print_stats_lines(stats, elapsed_ms, graph)
        if args.trace_json:
            _write_trace_json(args.trace_json, stats)
        if args.metrics_out:
            _write_metrics(args.metrics_out, telemetry)
        if args.save:
            from repro.graph.serialization import graph_to_json

            with open(args.save, "w", encoding="utf-8") as handle:
                handle.write(graph_to_json(graph))
                handle.write("\n")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def sql_main(argv: list[str]) -> int:
    from time import perf_counter

    from repro.gpml.streaming import PipelineStats
    from repro.pgq.tabular import tabular_representation
    from repro.sql import ALL_RULES, Database, SqlConfig

    args = build_sql_parser().parse_args(argv)
    sql_config = None
    if args.no_optimizer:
        sql_config = SqlConfig(optimizer_rules=frozenset())
    elif args.optimizer_rules is not None:
        rules = frozenset(
            name.strip() for name in args.optimizer_rules.split(",") if name.strip()
        )
        unknown = rules - ALL_RULES
        if unknown:
            print(
                f"error: unknown optimizer rule(s) {', '.join(sorted(unknown))}; "
                f"valid: {', '.join(sorted(ALL_RULES))}",
                file=sys.stderr,
            )
            return 2
        sql_config = SqlConfig(optimizer_rules=rules)
    # shells prefer double quotes; SQL strings use single quotes.  Only
    # normalize when the statement has no single-quoted literal of its
    # own, so data containing double quotes survives untouched.
    query = args.query
    if "'" not in query:
        query = query.replace('"', "'")
    try:
        graph = _load_graph(args.graph)
        telemetry = None
        if args.metrics_out:
            from repro.obs import Telemetry

            telemetry = Telemetry(slow_ms=args.slow_ms)
        database = Database(telemetry=telemetry)
        database.register_graph(graph.name, graph)
        for name, table in tabular_representation(graph).items():
            database.register_table(name, table)
        if args.explain:
            print(database.explain(query, sql_config=sql_config))
            return 0
        config = None
        if args.no_columnar:
            from repro.gpml.matcher import MatcherConfig

            config = MatcherConfig(use_columnar=False)
        stats = None
        if args.stats or args.trace_json or args.analyze or telemetry:
            stats = PipelineStats.traced(query=query, engine="sql")
        start = perf_counter()
        if args.analyze:
            print(
                database.explain_analyze(
                    query, config=config, stats=stats, sql_config=sql_config
                )
            )
            if telemetry is not None:
                telemetry.record_query(
                    "sql", query, perf_counter() - start, stats
                )
        else:
            result = database.execute(
                query, config=config, stats=stats, sql_config=sql_config
            )
            if isinstance(result, Table):
                print(result.pretty(max_rows=50))
            else:  # CREATE PROPERTY GRAPH returns the new graph view
                print(result)
        elapsed_ms = (perf_counter() - start) * 1000.0
        if args.stats:
            _print_stats_lines(stats, elapsed_ms, graph)
        if args.trace_json:
            _write_trace_json(args.trace_json, stats)
        if args.metrics_out:
            _write_metrics(args.metrics_out, telemetry)
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sql":
        return sql_main(argv[1:])
    if argv and argv[0] == "gql":
        return gql_main(argv[1:])
    if argv and argv[0] == "metrics":
        return metrics_main(argv[1:])
    args = build_parser().parse_args(argv)
    # shells prefer double quotes; GPML strings use single quotes
    query = args.query.replace('"', "'")
    limit = 1 if args.first else args.limit
    if limit is not None and limit < 0:
        print("error: --limit must be non-negative", file=sys.stderr)
        return 1
    try:
        if args.explain:
            print(explain(query))
            return 0
        graph = _load_graph(args.graph)
        if args.explain_plan:
            print(explain_plan(graph, query))
            return 0
        prepared = prepare(query)
        rows = match_iter(graph, prepared, limit=limit)
        if args.format == "json":
            result = MatchResult(rows=list(rows), variables=prepared.visible_variables())
            print(result_to_json(result))
        elif args.format == "paths":
            for row in rows:
                for path in row.paths:
                    print(path)
        else:
            for line in _render_table_lines(prepared.visible_variables(), rows):
                print(line)
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
