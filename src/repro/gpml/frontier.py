"""Frontier-batched NFA search over the columnar snapshot.

The object matcher (:mod:`repro.gpml.matcher`) explores one product-graph
run at a time, materializing ``Incidence`` lists and evaluating WHERE
expressions through ``Node``/``Edge`` handles per step.  This module is
the columnar fast path for the common case — **linear chain patterns**
(``(a)-[e]->(b)-[f]->(c)``: no quantifiers, alternation, restrictors or
selectors requiring non-enumerate strategies):

* :func:`chain_spec` walks a compiled :class:`PatternNFA` and, when its
  shape is a linear chain, extracts the node/edge pattern sequence
  (``None`` = not a chain → the caller falls back to the object matcher,
  which remains the reference oracle for every pattern);
* :class:`FrontierMatcher` then runs the chain over the
  :class:`~repro.graph.columnar.ColumnarGraph` snapshot: each partial
  chain expands by scanning one CSR slice, and node/edge predicates are
  compiled once into **vectorized tests over property columns** (label
  bitset membership, dictionary-encoded string equality, 3VL compare
  closures) applied before any ``Node``/``Edge`` wrapper exists.
  Non-sargable conjuncts and deferred WHEREs fall back to ordinary
  expression evaluation on exactly the rows that survive the columns.

Equivalence contract: the emission order, step counting, budget errors
and produced :class:`PathBinding` objects are identical to
``Matcher.enumerate_all`` on the same inputs.  The search replicates the
object engine's stack discipline — one seed drained at a time, slice
entries pushed in incidence order and popped LIFO, final-hop accepts
yielded in ascending incidence order — and counts one step per
orientation-admitted CSR entry, exactly where the object matcher counts
one per admitted incidence.  (Sole documented deviation: conjuncts of an
inline WHERE are evaluated with short-circuiting, so a query whose WHERE
*raises* mid-conjunction may fail on the oracle and filter cleanly here.)

The property-based suite ``tests/property/test_columnar_equivalence.py``
pins the contract down against random graphs and budget-truncated runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.errors import BudgetExceededError, ExpressionError, GraphError
from repro.gpml import ast
from repro.gpml.automaton import NodeTest, PatternNFA, ScopeBegin, ScopeEnd
from repro.gpml.bindings import ElementaryBinding, PathBinding
from repro.gpml.expr import Comparison, Expr, Literal, PropertyRef, conjoin
from repro.gpml.label_expr import LabelAtom
from repro.gpml.matcher import MatcherConfig, RunContext
from repro.gpml.streaming import PipelineStats, RowBudget
from repro.graph.columnar import (
    DIR_IN,
    DIR_OUT,
    DIR_UNDIRECTED,
    MISSING,
    ColumnarGraph,
    CsrBlock,
    cached_snapshot,
    snapshot_for,
)
from repro.graph.model import Edge, Node, PropertyGraph
from repro.planner.indexes import (
    conjuncts,
    required_labels,
    sargable_equalities,
)
from repro.values import NULL, compare, is_null

_UNSET = object()


# ----------------------------------------------------------------------
# Chain extraction (graph-independent, cached on the NFA)
# ----------------------------------------------------------------------
@dataclass
class ChainSpec:
    """The linear shape of a chain NFA: anchor node tests, then hops."""

    #: (NodePattern, deferred) applied to the seed node
    anchor: list[tuple[ast.NodePattern, bool]]
    #: per hop: (EdgePattern, deferred, [(NodePattern, deferred), ...])
    hops: list[tuple[ast.EdgePattern, bool, list[tuple[ast.NodePattern, bool]]]]


def chain_spec(nfa: PatternNFA) -> Optional[ChainSpec]:
    """The chain shape of *nfa*, or None when it is not a linear chain.

    Cached on the NFA object (compiled patterns are long-lived).  The
    walk accepts exactly: states with a single epsilon transition whose
    action is ``None``, a :class:`NodeTest`, or a no-op scope marker —
    or states with a single edge transition and no epsilons.  Anything
    else (quantifier counters, alternation tags, restrictor scopes)
    means the product search can branch, and the object matcher runs it.
    """
    cached = getattr(nfa, "_chain_spec", _UNSET)
    if cached is not _UNSET:
        return cached
    spec = _walk_chain(nfa)
    nfa._chain_spec = spec
    return spec


def _walk_chain(nfa: PatternNFA) -> Optional[ChainSpec]:
    anchor: list[tuple[ast.NodePattern, bool]] = []
    hops: list[tuple[ast.EdgePattern, bool, list]] = []
    current_nodes = anchor
    state = nfa.start
    visited: set[int] = set()
    while state != nfa.accept:
        if state in visited:
            return None
        visited.add(state)
        edges = nfa.edges[state]
        epsilons = nfa.epsilons[state]
        if edges:
            if len(edges) != 1 or epsilons:
                return None
            transition = edges[0]
            nodes_after: list[tuple[ast.NodePattern, bool]] = []
            hops.append((transition.pattern, transition.deferred, nodes_after))
            current_nodes = nodes_after
            state = transition.target
        else:
            if len(epsilons) != 1:
                return None
            eps = epsilons[0]
            action = eps.action
            if action is None:
                pass
            elif isinstance(action, NodeTest):
                current_nodes.append((action.pattern, action.deferred))
            elif isinstance(action, ScopeBegin) and action.restrictor is None:
                pass
            elif (
                isinstance(action, ScopeEnd)
                and action.restrictor is None
                and action.where is None
            ):
                pass
            else:
                return None
            state = eps.target
    if nfa.edges[nfa.accept] or nfa.epsilons[nfa.accept]:
        return None
    if not _vars_consistent(anchor, hops):
        return None
    return ChainSpec(anchor=anchor, hops=hops)


def _vars_consistent(anchor, hops) -> bool:
    """Every repeated variable must keep its element kind (node/edge)."""
    kinds: dict[str, str] = {}

    def check(var: Optional[str], kind: str) -> bool:
        if var is None:
            return True
        previous = kinds.setdefault(var, kind)
        return previous == kind

    for pattern, _ in anchor:
        if not check(pattern.var, "node"):
            return False
    for edge_pattern, _, node_tests in hops:
        if not check(edge_pattern.var, "edge"):
            return False
        for pattern, _ in node_tests:
            if not check(pattern.var, "node"):
                return False
    return True


# ----------------------------------------------------------------------
# Predicate compilation: conjuncts -> column tests + residual expression
# ----------------------------------------------------------------------
def _value_test(op: str, literal: Any, flipped: bool):
    """A raw-column-value test replicating ``Comparison.evaluate`` exactly.

    ``flipped`` marks the literal on the left (matters for ``<``/``>=``).
    MISSING column slots behave as NULL (UNKNOWN → row dropped), and the
    element-identity branch matches the expression evaluator's.
    """

    def test(raw: Any) -> bool:
        value = NULL if raw is MISSING else raw
        if isinstance(value, (Node, Edge)):
            if is_null(literal):
                return False  # UNKNOWN
            if op == "=":
                return value == literal
            if op == "<>":
                return value != literal
            raise ExpressionError(f"cannot order graph elements with {op!r}")
        if flipped:
            return bool(compare(op, literal, value))
        return bool(compare(op, value, literal))

    return test


_VECTOR_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})


def _split_where(where: Optional[Expr], var: Optional[str], column_of):
    """Compile sargable conjuncts of *where* into column tests.

    Returns ``(tests, residual)``: *tests* take the element's column
    index and return bool; *residual* is the AND of the conjuncts that
    need full expression evaluation (None when everything vectorized).
    """
    tests: list = []
    residual: list[Expr] = []
    for conjunct in conjuncts(where):
        compiled = _compile_conjunct(conjunct, var, column_of)
        if compiled is None:
            residual.append(conjunct)
        else:
            tests.append(compiled)
    return tests, conjoin(*residual)


def _compile_conjunct(conjunct: Expr, var: Optional[str], column_of):
    if var is None or not isinstance(conjunct, Comparison):
        return None
    if conjunct.op not in _VECTOR_OPS:
        return None
    for ref, literal, flipped in (
        (conjunct.left, conjunct.right, False),
        (conjunct.right, conjunct.left, True),
    ):
        if (
            isinstance(ref, PropertyRef)
            and ref.var == var
            and isinstance(literal, Literal)
            and isinstance(literal.value, (str, int, float, bool))
        ):
            column = column_of(ref.prop)
            value = literal.value
            if (
                column.codes is not None
                and conjunct.op in ("=", "<>")
                and type(value) is str
            ):
                codes = column.codes
                target = column.code_of.get(value, -2)
                if conjunct.op == "=":
                    return lambda index: codes[index] == target
                return lambda index: codes[index] not in (-1, target)
            values = column.values
            test = _value_test(conjunct.op, value, flipped)
            return lambda index: test(values[index])
    return None


# ----------------------------------------------------------------------
# Compiled chain program (per NFA x snapshot, cached on the NFA)
# ----------------------------------------------------------------------
class _NodeOp:
    __slots__ = ("mask", "join_pos", "tests", "residual")

    def __init__(self, mask, join_pos, tests, residual):
        self.mask = mask  # bytes membership bitmap over node codes, or None
        self.join_pos = join_pos  # earlier path position of the same var
        self.tests = tests
        self.residual = residual


class _EdgeOp:
    __slots__ = ("block", "admit", "label_expr", "join_pos", "tests", "residual")

    def __init__(self, block, admit, label_expr, join_pos, tests, residual):
        self.block = block  # CsrBlock this hop scans
        self.admit = admit  # (out, in, undirected) orientation admits
        self.label_expr = label_expr  # per-entry check (non-atom labels)
        self.join_pos = join_pos
        self.tests = tests
        self.residual = residual


class _Program:
    __slots__ = ("anchor_ops", "hops", "entry_plan", "deferred", "num_hops")

    def __init__(self, anchor_ops, hops, entry_plan, deferred):
        self.anchor_ops = anchor_ops
        self.hops = hops  # list of (_EdgeOp, [_NodeOp, ...])
        self.entry_plan = entry_plan  # [(path position, var)] first bindings
        self.deferred = deferred  # deferred WHEREs in traversal order
        self.num_hops = len(hops)


class _NotVectorizable(Exception):
    """Compile-time bail-out: run this pattern on the object matcher."""


def _hop_need(edge_pattern: ast.EdgePattern) -> str:
    """The CSR specialization a hop's orientation can use."""
    orientation = edge_pattern.orientation
    admit = (
        orientation.admits("out"),
        orientation.admits("in"),
        orientation.admits("undirected"),
    )
    if admit == (True, False, False):
        return "out"
    if admit == (False, True, False):
        return "in"
    return "any"


def _hop_block_keys(spec: ChainSpec, use_label_index: bool):
    """The (edge_label, need) CSR cache keys a chain's hops scan."""
    keys = []
    for edge_pattern, _, _ in spec.hops:
        label = edge_pattern.label
        label_key = (
            label.name if use_label_index and isinstance(label, LabelAtom) else None
        )
        keys.append((label_key, _hop_need(edge_pattern)))
    return keys


def compiled_program(
    nfa: PatternNFA, spec: ChainSpec, snapshot: ColumnarGraph, use_label_index: bool
) -> Optional[_Program]:
    """The chain program for *nfa* on *snapshot* (cached on the NFA).

    Seeded chained-MATCH runs construct one matcher per upstream row, so
    the compiled closures must be reused: the cache key is the snapshot
    identity plus the label-index knob.
    """
    cached = getattr(nfa, "_frontier_program", None)
    if (
        cached is not None
        and cached[0] is snapshot
        and cached[1] == use_label_index
    ):
        return cached[2]
    try:
        program = _compile_program(spec, snapshot, use_label_index)
    except _NotVectorizable:
        program = None
    nfa._frontier_program = (snapshot, use_label_index, program)
    return program


def _compile_program(
    spec: ChainSpec, snapshot: ColumnarGraph, use_label_index: bool
) -> _Program:
    var_pos: dict[str, int] = {}
    entry_plan: list[tuple[int, str]] = []
    deferred: list[Expr] = []
    mask_bytes = (snapshot.num_nodes + 7) // 8

    def node_mask(pattern: ast.NodePattern):
        if pattern.label is None:
            return None
        bits = snapshot.compile_node_label_expr(pattern.label)
        if bits is None:
            raise _NotVectorizable
        return bits.to_bytes(mask_bytes, "little")

    def bind(var: Optional[str], pos: int) -> Optional[int]:
        if var is None:
            return None
        previous = var_pos.get(var)
        if previous is None:
            var_pos[var] = pos
            entry_plan.append((pos, var))
            return None
        if previous == pos:
            return None  # same element re-tested (two node tests)
        return previous

    def compile_node_op(pattern: ast.NodePattern, is_deferred: bool, pos: int):
        mask = node_mask(pattern)
        join_pos = bind(pattern.var, pos)
        tests: list = []
        residual = None
        if pattern.where is not None:
            if is_deferred:
                deferred.append(pattern.where)
            else:
                tests, residual = _split_where(
                    pattern.where, pattern.var, snapshot.node_column
                )
        return _NodeOp(mask, join_pos, tests, residual)

    anchor_ops = [
        compile_node_op(pattern, is_deferred, 0)
        for pattern, is_deferred in spec.anchor
    ]

    hops: list[tuple[_EdgeOp, list[_NodeOp]]] = []
    for level, (edge_pattern, edge_deferred, node_tests) in enumerate(spec.hops):
        orientation = edge_pattern.orientation
        admit = (
            orientation.admits("out"),
            orientation.admits("in"),
            orientation.admits("undirected"),
        )
        need = _hop_need(edge_pattern)
        label = edge_pattern.label
        if use_label_index and isinstance(label, LabelAtom):
            block = snapshot.csr(label.name, need)
            label_expr = None  # partition already label-filtered
        else:
            block = snapshot.csr(None, need)
            label_expr = label
        edge_pos = 2 * level + 1
        join_pos = bind(edge_pattern.var, edge_pos)
        tests: list = []
        residual = None
        if edge_pattern.where is not None:
            if edge_deferred:
                deferred.append(edge_pattern.where)
            else:
                tests, residual = _split_where(
                    edge_pattern.where, edge_pattern.var, block.column
                )
        edge_op = _EdgeOp(block, admit, label_expr, join_pos, tests, residual)
        node_pos = 2 * level + 2
        node_ops = [
            compile_node_op(pattern, is_deferred, node_pos)
            for pattern, is_deferred in node_tests
        ]
        hops.append((edge_op, node_ops))
    return _Program(anchor_ops, hops, entry_plan, deferred)


# ----------------------------------------------------------------------
# The frontier matcher
# ----------------------------------------------------------------------
class FrontierMatcher:
    """Drop-in replacement for ``Matcher`` restricted to chain patterns.

    Exposes the subset of the object matcher's surface the engine
    consumes for the ENUMERATE strategy: :meth:`enumerate_all`,
    :attr:`steps` and :attr:`initial_candidate_count` — plus
    :attr:`metrics`, the frontier/selectivity counters rendered by
    ``EXPLAIN ANALYZE``.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        nfa: PatternNFA,
        pattern: ast.Pattern,
        spec: ChainSpec,
        config: MatcherConfig | None = None,
        start_candidates=None,
        *,
        budget: Optional[RowBudget] = None,
        stats: Optional[PipelineStats] = None,
    ):
        self.graph = graph
        self.pattern = pattern
        self.config = config or MatcherConfig()
        self.snapshot = snapshot_for(graph)
        self.program = compiled_program(
            nfa, spec, self.snapshot, self.config.use_label_index
        )
        if self.program is None:
            raise _NotVectorizable  # caller must pre-check via supports()
        self._steps = 0
        self._budget = budget
        self._stats = stats
        self._start_candidates = (
            None if start_candidates is None else list(start_candidates)
        )
        self.initial_candidate_count = 0
        #: CSR slice scans, entries examined, entries surviving all
        #: vectorized filters (the EXPLAIN ANALYZE frontier counters)
        self.metrics = {
            "frontier_slices": 0,
            "frontier_entries": 0,
            "frontier_survivors": 0,
        }

    @classmethod
    def supports(
        cls,
        graph: PropertyGraph,
        nfa: PatternNFA,
        config: MatcherConfig,
        budget: Optional[RowBudget] = None,
    ) -> Optional[ChainSpec]:
        """The chain spec when this NFA should run columnar on *graph*.

        A *bounded* consumer (finite ``budget.needed`` — LIMIT / FETCH
        FIRST) may stop after a handful of rows, so it only runs columnar
        when the snapshot and every hop's CSR block already exist: it
        reuses structures an exhaustive query paid for, but never fronts
        an O(edges) build the object matcher's streaming would beat.
        """
        spec = chain_spec(nfa)
        if spec is None:
            return None
        if budget is not None and budget.needed is not None:
            snapshot = cached_snapshot(graph)
            if snapshot is None:
                return None
            built = snapshot._csr
            for key in _hop_block_keys(spec, config.use_label_index):
                if key not in built and (key[0], "any") not in built:
                    return None
        else:
            snapshot = snapshot_for(graph)
        program = compiled_program(nfa, spec, snapshot, config.use_label_index)
        if program is None:
            return None
        return spec

    @property
    def steps(self) -> int:
        return self._steps

    # -- seeds ---------------------------------------------------------
    def _initial_candidates(self) -> list[str]:
        if self._start_candidates is not None:
            return self._start_candidates
        candidates = columnar_initial_candidates(self.snapshot, self.pattern)
        if candidates is None:
            return sorted(self.graph.node_ids())
        return candidates

    # -- search --------------------------------------------------------
    def enumerate_all(self) -> Iterator[PathBinding]:
        """DFS over CSR slices, exactly mirroring the object matcher's
        emission order (see module docstring)."""
        program = self.program
        snapshot = self.snapshot
        node_code = snapshot.node_code
        budget = self._budget
        stats = self._stats
        config = self.config
        max_steps = config.max_steps
        metrics = self.metrics
        num_hops = program.num_hops
        hops = program.hops
        emitted = 0
        candidates = self._initial_candidates()
        self.initial_candidate_count = len(candidates)
        stack: list[tuple[int, tuple]] = []
        for node_id in candidates:
            code = node_code.get(node_id)
            if code is None:
                raise GraphError(f"unknown node {node_id!r}")
            if not self._admit_node(program.anchor_ops, code, (code,)):
                continue
            if num_hops == 0:
                binding = self._accept((code,))
                if binding is not None:
                    if stats is not None:
                        stats.matches += 1
                    emitted += 1
                    self._check_budget(emitted)
                    yield binding
                    if budget is not None and budget.satisfied:
                        return
                continue
            stack.append((0, (code,)))
            while stack:
                level, path = stack.pop()
                edge_op, node_ops = hops[level]
                block = edge_op.block
                node = path[-1]
                start = block.indptr[node]
                end = block.indptr[node + 1]
                metrics["frontier_slices"] += 1
                metrics["frontier_entries"] += end - start
                final = level + 1 == num_hops
                admit = edge_op.admit
                dirs = block.dir
                locals_ = block.local
                others = block.other
                edge_ids = block.edge_ids
                for k in range(start, end):
                    if not admit[dirs[k]]:
                        continue
                    self._steps += 1
                    if stats is not None:
                        stats.steps += 1
                    if self._steps > max_steps:
                        raise BudgetExceededError(
                            f"matcher exceeded max_steps={max_steps}"
                        )
                    local = locals_[k]
                    edge_id = edge_ids[local]
                    if edge_op.label_expr is not None and not edge_op.label_expr.matches(
                        self.graph.labels_of(edge_id)
                    ):
                        continue
                    if edge_op.join_pos is not None and path[edge_op.join_pos] != edge_id:
                        continue
                    if edge_op.tests and not all(
                        test(local) for test in edge_op.tests
                    ):
                        continue
                    if edge_op.residual is not None and not self._residual_ok(
                        edge_op.residual, path + (edge_id,)
                    ):
                        continue
                    other = others[k]
                    new_path = path + (edge_id, other)
                    if not self._admit_node(node_ops, other, new_path):
                        continue
                    metrics["frontier_survivors"] += 1
                    if final:
                        binding = self._accept(new_path)
                        if binding is not None:
                            if stats is not None:
                                stats.matches += 1
                            emitted += 1
                            self._check_budget(emitted)
                            yield binding
                            if budget is not None and budget.satisfied:
                                return
                    else:
                        stack.append((level + 1, new_path))

    def _admit_node(self, node_ops, code: int, path: tuple) -> bool:
        for op in node_ops:
            mask = op.mask
            if mask is not None and not (mask[code >> 3] >> (code & 7)) & 1:
                return False
            if op.join_pos is not None and path[op.join_pos] != code:
                return False
            if op.tests and not all(test(code) for test in op.tests):
                return False
            if op.residual is not None and not self._residual_ok(op.residual, path):
                return False
        return True

    # -- expression fallbacks ------------------------------------------
    def _bind_map(self, path: tuple) -> dict:
        node_ids = self.snapshot.node_ids
        bind_map: dict[str, dict] = {}
        length = len(path)
        for pos, var in self.program.entry_plan:
            if pos >= length:
                break
            element = path[pos]
            if pos % 2 == 0:
                element = node_ids[element]
            bind_map[var] = {(): element}
        return bind_map

    def _residual_ok(self, residual: Expr, path: tuple) -> bool:
        ctx = RunContext(self.graph, self._bind_map(path), ())
        return bool(residual.truth(ctx))

    def _accept(self, path: tuple) -> Optional[PathBinding]:
        deferred = self.program.deferred
        if deferred:
            bind_map = self._bind_map(path)
            for where in deferred:
                ctx = RunContext(self.graph, bind_map, ())
                if not where.truth(ctx):
                    return None
        node_ids = self.snapshot.node_ids
        elements = tuple(
            node_ids[item] if position % 2 == 0 else item
            for position, item in enumerate(path)
        )
        entries = tuple(
            ElementaryBinding(var, (), elements[pos])
            for pos, var in self.program.entry_plan
        )
        return PathBinding(elements=elements, entries=entries, bag_tags=frozenset())

    def _check_budget(self, num_results: int) -> None:
        if num_results > self.config.max_results:
            raise BudgetExceededError(
                f"matcher exceeded max_results={self.config.max_results}"
            )


# ----------------------------------------------------------------------
# Columnar anchor narrowing (mirrors planner.indexes.initial_node_candidates)
# ----------------------------------------------------------------------
def columnar_initial_candidates(
    snapshot: ColumnarGraph, pattern: ast.Pattern
) -> Optional[list[str]]:
    """Start candidates from label bitsets and column scans.

    Produces the identical candidate list (same ids, same sorted order)
    as :func:`repro.planner.indexes.initial_node_candidates`, but serves
    it from the snapshot: label members come from the cached sorted
    member lists, and the sargable equality probes become column scans —
    dictionary-code compares for string columns — instead of hash-index
    builds on the object graph.
    """
    from repro.planner.anchor import LEFT, pinned_end_nodes

    nodes = pinned_end_nodes(pattern, LEFT)
    if nodes is None:
        return None
    out: set[str] = set()
    for node in nodes:
        labels = required_labels(node.label)
        equalities = sargable_equalities(node.where, node.var)
        if equalities:
            prop = sorted(equalities)[0]
            value = equalities[prop]
            for label in [None] if labels is None else sorted(labels):
                out |= snapshot.equality_scan(label, prop, value)
        elif labels is not None:
            for label in sorted(labels):
                out.update(snapshot.label_members_sorted(label))
        else:
            return None  # an unconstrained branch end: scan everything
    return sorted(out)
