"""Label expressions (Section 4.1).

A label expression restricts the label set of a node or edge: single
labels, conjunction ``&``, disjunction ``|``, negation ``!``, grouping,
and the wildcard ``%`` which matches any element *having at least one
label* — so ``!%`` matches exactly the elements with no labels, as in the
paper's example ``(:!%)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet


class LabelExpr:
    """Base class; subclasses implement :meth:`matches`."""

    def matches(self, labels: FrozenSet[str]) -> bool:
        raise NotImplementedError

    def referenced_labels(self) -> frozenset[str]:
        """All label names mentioned (used by EXPLAIN and index planning)."""
        raise NotImplementedError


@dataclass(frozen=True)
class LabelAtom(LabelExpr):
    name: str

    def matches(self, labels: FrozenSet[str]) -> bool:
        return self.name in labels

    def referenced_labels(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class LabelWildcard(LabelExpr):
    """``%`` — matches any element that carries at least one label."""

    def matches(self, labels: FrozenSet[str]) -> bool:
        return bool(labels)

    def referenced_labels(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "%"


@dataclass(frozen=True)
class LabelNot(LabelExpr):
    inner: LabelExpr

    def matches(self, labels: FrozenSet[str]) -> bool:
        return not self.inner.matches(labels)

    def referenced_labels(self) -> frozenset[str]:
        return self.inner.referenced_labels()

    def __str__(self) -> str:
        return f"!{self.inner}"


@dataclass(frozen=True)
class LabelAnd(LabelExpr):
    items: tuple[LabelExpr, ...]

    def matches(self, labels: FrozenSet[str]) -> bool:
        return all(item.matches(labels) for item in self.items)

    def referenced_labels(self) -> frozenset[str]:
        return frozenset().union(*(item.referenced_labels() for item in self.items))

    def __str__(self) -> str:
        return "&".join(_wrap(item) for item in self.items)


@dataclass(frozen=True)
class LabelOr(LabelExpr):
    items: tuple[LabelExpr, ...]

    def matches(self, labels: FrozenSet[str]) -> bool:
        return any(item.matches(labels) for item in self.items)

    def referenced_labels(self) -> frozenset[str]:
        return frozenset().union(*(item.referenced_labels() for item in self.items))

    def __str__(self) -> str:
        return "|".join(_wrap(item) for item in self.items)


def _wrap(item: LabelExpr) -> str:
    if isinstance(item, (LabelOr, LabelAnd)):
        return f"({item})"
    return str(item)
