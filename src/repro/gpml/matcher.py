"""Product-graph search: evaluating one compiled path pattern on a graph.

The matcher explores runs of the pattern NFA over the property graph,
seeded either by planner-supplied start candidates (see
:mod:`repro.planner` — property indexes, anchor-side selection) or by its
own narrowing of the leftmost pinned element (labels plus sargable
property equalities).
A *run* tracks the current graph node, NFA state, quantifier counters,
iteration annotations, restrictor scopes, bindings, the walked path, and
multiset tags.  Four search strategies cover the semantics of Section 5;
all four are **generators** that yield accepted bindings as the search
discovers them, so downstream pipeline stages can pull lazily and a
satisfied :class:`~repro.gpml.streaming.RowBudget` stops the search
itself:

* :func:`enumerate_all` — exhaustive DFS, yielding each accepted binding
  the moment it is found.  Used when the pattern is bounded, or when
  every unbounded quantifier sits inside a restrictor scope (then the
  used-edge/visited-node sets make the search finite).
* :func:`search_shortest` — breadth-first by path length with product-
  state pruning, yielding per completed BFS layer (the layer boundary is
  the earliest emission point at which all strictly-shorter matches are
  known).  Counter saturation keeps the product space finite, so the
  search terminates even without restrictors; later arrivals at an
  already-visited product state cannot contribute new *minimal* matches
  (the pruning key includes singleton bindings and scope memories, which
  are the only run components that can block a future suffix).
* :func:`search_k_shortest` — length-ordered search keeping up to *k*
  distinct path lengths per product state, also yielding per layer;
  sound for ANY k / SHORTEST k / SHORTEST k GROUP by the standard
  k-shortest-walks argument.
* :func:`search_cheapest` — Dijkstra over non-negative edge costs for the
  cheapest-path extension (Section 7.1 Language Opportunity).  Accepted
  bindings are held in a small heap and emitted in final cost order as
  soon as the frontier's minimum cost passes them, reproducing exactly
  the stable sort-by-cost order of a materialized run.

The ``max_results`` safety budget is charged per *emitted* binding, so a
consumer that stops early (``LIMIT``, ``exists()``) never trips it; an
exhaustive consumer observes the same error a materializing run would.
(:func:`search_cheapest` charges at acceptance instead — see its
docstring — because its emissions lag behind the search.)

Known engine refinements (documented deviations, all affecting only
pathological queries): iterations of a quantifier that consume no edges
are explored at most once per product state (their repetitions reduce to
equal bindings anyway), and deferred prefilters inside unbounded
quantifiers do not take part in shortest-search pruning keys.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional

from repro.errors import BudgetExceededError, GpmlEvaluationError
from repro.gpml import ast
from repro.gpml.automaton import (
    BagTag,
    EnterQuant,
    ExitQuant,
    IterBegin,
    NodeTest,
    PatternNFA,
    ScopeBegin,
    ScopeEnd,
)
from repro.gpml.bindings import Annotation, ElementaryBinding, PathBinding
from repro.gpml.expr import EvalContext
from repro.gpml.label_expr import LabelAtom
from repro.gpml.streaming import PipelineStats, RowBudget
from repro.graph.model import PropertyGraph
from repro.planner.indexes import initial_node_candidates
from repro.values import NULL, is_null


def _columnar_default() -> bool:
    """Columnar frontier on unless REPRO_DISABLE_COLUMNAR=1 (oracle runs)."""
    return os.environ.get("REPRO_DISABLE_COLUMNAR") != "1"


@dataclass
class MatcherConfig:
    """Safety budgets and knobs; defaults suit laptop-scale graphs."""

    max_steps: int = 5_000_000
    max_results: int = 1_000_000
    max_depth: Optional[int] = None  # k-search / cheapest safety bound
    default_edge_cost: float = 1.0
    use_label_index: bool = True  # per-node label-filtered incidence lists
    use_planner: bool = True  # cost-based anchor/join planning (repro.planner)
    #: seed a chained GQL MATCH from variables bound by earlier statements
    #: (per-incoming-row anchored search; off = always hash-join fallback)
    seed_chained_match: bool = True
    #: run eligible linear-chain patterns on the columnar frontier engine
    #: (repro.gpml.frontier); off = the object matcher, the reference
    #: oracle.  Env override: REPRO_DISABLE_COLUMNAR=1 flips the default.
    use_columnar: bool = field(default_factory=lambda: _columnar_default())


# ----------------------------------------------------------------------
# Run state
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Scope:
    scope_id: int
    kind: str  # TRAIL | ACYCLIC | SIMPLE
    used_edges: frozenset
    visited_nodes: frozenset
    first_node: str
    closed: bool


class _Run:
    """One partial match.  Paths/bindings use parent-linked cells so that
    extending a run is O(1); materialization happens on acceptance."""

    __slots__ = (
        "state",
        "node",
        "start_node",
        "counters",
        "ann",
        "scopes",
        "bind_map",
        "entry_cell",
        "path_cell",
        "path_len",
        "bag_tags",
        "deferred_cell",
        "cost",
    )

    def __init__(
        self,
        state: int,
        node: str,
        start_node: str,
        counters: tuple,
        ann: Annotation,
        scopes: tuple,
        bind_map: dict,
        entry_cell: Optional[tuple],
        path_cell: tuple,
        path_len: int,
        bag_tags: frozenset,
        deferred_cell: Optional[tuple],
        cost: float = 0.0,
    ):
        self.state = state
        self.node = node
        self.start_node = start_node
        self.counters = counters  # sorted tuple of (quant_id, count)
        self.ann = ann
        self.scopes = scopes
        self.bind_map = bind_map  # var -> {annotation: element_id}
        self.entry_cell = entry_cell
        self.path_cell = path_cell
        self.path_len = path_len
        self.bag_tags = bag_tags
        self.deferred_cell = deferred_cell
        self.cost = cost

    # -- derived -------------------------------------------------------
    def path_elements(self) -> tuple[str, ...]:
        out: list[str] = []
        cell = self.path_cell
        while cell is not None:
            out.append(cell[1])
            cell = cell[0]
        out.reverse()
        return tuple(out)

    def entries(self) -> tuple[ElementaryBinding, ...]:
        out: list[ElementaryBinding] = []
        cell = self.entry_cell
        while cell is not None:
            out.append(cell[1])
            cell = cell[0]
        out.reverse()
        return tuple(out)

    def deferred(self) -> list[tuple]:
        out: list[tuple] = []
        cell = self.deferred_cell
        while cell is not None:
            out.append(cell[1])
            cell = cell[0]
        out.reverse()
        return out

    def singleton_key(self) -> frozenset:
        items = []
        for var, by_ann in self.bind_map.items():
            element = by_ann.get(())
            if element is not None:
                items.append((var, element))
        return frozenset(items)

    def bindings_key(self) -> frozenset:
        items = []
        for var, by_ann in self.bind_map.items():
            for ann, element in by_ann.items():
                items.append((var, ann, element))
        return frozenset(items)

    def shadow_key(self) -> frozenset:
        """Annotation-free view of the bindings (for the ε-cycle guard).

        Zero-length quantifier laps rebind the same variables to the same
        elements under deeper annotations, so their shadow is unchanged —
        whereas genuinely different ε-routes (union branches) bind
        different variables or elements and keep distinct shadows.
        """
        items = []
        for var, by_ann in self.bind_map.items():
            for element in by_ann.values():
                items.append((var, element))
        return frozenset(items)

    def prune_key(self) -> tuple:
        return (
            self.start_node,
            self.node,
            self.state,
            self.counters,
            self.scopes,
            self.singleton_key(),
        )

    def fingerprint(self) -> tuple:
        return (
            self.state,
            self.node,
            self.counters,
            self.ann,
            self.scopes,
            self.bindings_key(),
            self.path_elements(),
            self.bag_tags,
        )


class RunContext(EvalContext):
    """Expression evaluation against a run's bindings.

    Singleton lookup finds the binding whose annotation is the longest
    prefix of the current annotation; group lookup collects bindings whose
    annotations strictly extend the current one (iteration order).
    """

    def __init__(self, graph: PropertyGraph, bind_map: dict, current_ann: Annotation):
        super().__init__(graph=graph)
        self._map = bind_map
        self._ann = current_ann

    def lookup(self, name: str) -> Any:
        by_ann = self._map.get(name)
        if not by_ann:
            return NULL
        for cut in range(len(self._ann), -1, -1):
            prefix = self._ann[:cut]
            element = by_ann.get(prefix)
            if element is not None:
                return self.graph.element(element)
        return NULL

    def group_items(self, name: str) -> list[Any]:
        by_ann = self._map.get(name)
        if not by_ann:
            return []
        current = self._ann
        items = []
        for ann in sorted(by_ann):
            if len(ann) > len(current) and ann[: len(current)] == current:
                items.append(self.graph.element(by_ann[ann]))
        if items:
            return items
        value = self.lookup(name)
        return [] if is_null(value) else [value]


# ----------------------------------------------------------------------
# Matcher
# ----------------------------------------------------------------------
class Matcher:
    """Evaluates one compiled path pattern over one property graph."""

    def __init__(
        self,
        graph: PropertyGraph,
        nfa: PatternNFA,
        pattern: ast.Pattern,
        config: MatcherConfig | None = None,
        start_candidates: Optional[Iterable[str]] = None,
        *,
        budget: Optional[RowBudget] = None,
        stats: Optional[PipelineStats] = None,
    ):
        self.graph = graph
        self.nfa = nfa
        self.pattern = pattern
        self.config = config or MatcherConfig()
        self._steps = 0
        #: cooperative cancellation: checked after every emitted binding
        self._budget = budget
        #: observability counters shared across the whole pipeline
        self._stats = stats
        #: planner-supplied start nodes; None = derive from the pattern
        self._start_candidates = (
            None if start_candidates is None else list(start_candidates)
        )
        #: how many start nodes the search actually seeded (observability
        #: for EXPLAIN PLAN, benchmarks and the planner's regression tests)
        self.initial_candidate_count = 0

    @property
    def steps(self) -> int:
        """Edge expansions examined so far (the max_steps unit)."""
        return self._steps

    # -- public strategies ----------------------------------------------
    def enumerate_all(self) -> Iterator[PathBinding]:
        """DFS over the product graph, yielding accepts as discovered.

        Start candidates are explored one at a time (each drained to
        completion before the next is seeded), so the first row of a
        ``LIMIT``/``exists`` probe arrives after touching only as many
        candidates as it takes to find a match — not all of them.
        """
        budget = self._budget
        emitted = 0
        stack: list[_Run] = []
        for run in self._initial_runs():
            for binding in self._closure(run, stack):
                emitted += 1
                self._check_budget(emitted)
                yield binding
                if budget is not None and budget.satisfied:
                    return
            while stack:
                current = stack.pop()
                for new_run in self._edge_successors(current):
                    for binding in self._closure(new_run, stack):
                        emitted += 1
                        self._check_budget(emitted)
                        yield binding
                        if budget is not None and budget.satisfied:
                            return

    def search_shortest(self) -> Iterator[PathBinding]:
        """Layered BFS, yielding each completed layer's accepts in turn."""
        budget = self._budget
        emitted = 0
        visited: dict[tuple, int] = {}
        frontier: list[_Run] = []
        layer: list[PathBinding] = []
        for run in self._initial_runs():
            layer.extend(self._closure(run, frontier))
        frontier = self._prune_layer(frontier, visited, 0)
        for binding in layer:
            emitted += 1
            self._check_budget(emitted)
            yield binding
            if budget is not None and budget.satisfied:
                return
        depth = 0
        while frontier:
            depth += 1
            layer = []
            next_frontier: list[_Run] = []
            for run in frontier:
                for new_run in self._edge_successors(run):
                    layer.extend(self._closure(new_run, next_frontier))
            frontier = self._prune_layer(next_frontier, visited, depth)
            for binding in layer:
                emitted += 1
                self._check_budget(emitted)
                yield binding
                if budget is not None and budget.satisfied:
                    return

    def search_k_shortest(self, k: int) -> Iterator[PathBinding]:
        budget = self._budget
        emitted = 0
        allowed: dict[tuple, set[int]] = {}
        max_depth = self.config.max_depth
        if max_depth is None:
            max_depth = (self.graph.num_nodes * self.nfa.num_states + 1) * (k + 1)
        frontier: list[_Run] = []
        layer: list[PathBinding] = []
        for run in self._initial_runs():
            layer.extend(self._closure(run, frontier))
        frontier = self._prune_layer_k(frontier, allowed, 0, k)
        for binding in layer:
            emitted += 1
            self._check_budget(emitted)
            yield binding
            if budget is not None and budget.satisfied:
                return
        depth = 0
        while frontier and depth < max_depth:
            depth += 1
            layer = []
            next_frontier: list[_Run] = []
            for run in frontier:
                for new_run in self._edge_successors(run):
                    layer.extend(self._closure(new_run, next_frontier))
            frontier = self._prune_layer_k(next_frontier, allowed, depth, k)
            for binding in layer:
                emitted += 1
                self._check_budget(emitted)
                yield binding
                if budget is not None and budget.satisfied:
                    return

    def search_cheapest(self, k: int, cost_property: str) -> Iterator[PathBinding]:
        """Dijkstra, yielding accepts in final (stable) cost order.

        An accepted binding of cost *c* becomes emittable once the run
        queue's minimum cost reaches *c*: every future accept costs at
        least that much, and equal-cost accepts arriving later carry a
        later sequence number, so the emission order equals the stable
        sort-by-cost of a fully materialized run.

        Unlike the other strategies, ``max_results`` is charged at
        *acceptance* (when a binding enters the pending heap), not at
        emission: emission lags acceptance by up to the whole search, so
        an emission-time check would let a runaway query buffer far more
        than the budget before erroring.  Cheapest-path queries always
        feed a blocking selector, so nothing streams past it anyway.
        """
        budget = self._budget
        accepted = 0
        #: accepted-but-not-yet-emittable bindings, ordered (cost, seq)
        pending: list[tuple[float, int, PathBinding]] = []
        best: dict[tuple, list[float]] = {}
        queue: list[tuple[float, int, _Run]] = []
        seq = 0
        sink: list[_Run] = []
        for run in self._initial_runs():
            for binding in self._closure(run, sink):
                accepted += 1
                self._check_budget(accepted)
                heapq.heappush(pending, (0.0, accepted, binding))
        for run in sink:
            heapq.heappush(queue, (run.cost, seq, run))
            seq += 1
        while queue:
            cost, _, run = heapq.heappop(queue)
            while pending and pending[0][0] <= cost:
                _, _, binding = heapq.heappop(pending)
                yield binding
                if budget is not None and budget.satisfied:
                    return
            key = run.prune_key()
            kept = best.setdefault(key, [])
            if cost not in kept:
                if len(kept) >= k and cost > max(kept):
                    continue
                kept.append(cost)
            for new_run in self._edge_successors(run, cost_property=cost_property):
                nested: list[_Run] = []
                for binding in self._closure(new_run, nested):
                    accepted += 1
                    self._check_budget(accepted)
                    heapq.heappush(pending, (new_run.cost, accepted, binding))
                for nr in nested:
                    heapq.heappush(queue, (nr.cost, seq, nr))
                    seq += 1
        while pending:
            _, _, binding = heapq.heappop(pending)
            yield binding
            if budget is not None and budget.satisfied:
                return

    # -- initialization --------------------------------------------------
    def _initial_runs(self) -> Iterable[_Run]:
        candidates = self._initial_candidates()
        self.initial_candidate_count = len(candidates)
        for node_id in candidates:
            yield _Run(
                state=self.nfa.start,
                node=node_id,
                start_node=node_id,
                counters=(),
                ann=(),
                scopes=(),
                bind_map={},
                entry_cell=None,
                path_cell=(None, node_id),
                path_len=0,
                bag_tags=frozenset(),
                deferred_cell=None,
            )

    def _initial_candidates(self) -> list[str]:
        if self._start_candidates is not None:
            return self._start_candidates
        candidates = initial_node_candidates(self.graph, self.pattern)
        if candidates is None:
            return sorted(self.graph.node_ids())
        return candidates

    # -- epsilon closure --------------------------------------------------
    def _closure(self, run: _Run, frontier: list[_Run]) -> Iterator[PathBinding]:
        """Expand epsilon transitions; deposit edge-ready runs, yield accepts.

        The cycle guard allows revisiting a product state with *different*
        bindings (distinct union branches merging), but cuts revisits whose
        bindings extend a previous visit: those are zero-length quantifier
        laps, whose repetitions only pump group variables with duplicate
        elements (a documented engine refinement — see module docstring).
        """
        stack = [run]
        seen: set[tuple] = set()
        while stack:
            current = stack.pop()
            guard = (
                current.state,
                current.counters,
                current.scopes,
                current.shadow_key(),
                # Multiset branches must both survive even with identical
                # bindings; strip the annotation component so zero-length
                # quantifier laps still converge.
                frozenset((alt, cls) for alt, cls, _ in current.bag_tags),
            )
            if guard in seen:
                continue
            seen.add(guard)
            if current.state == self.nfa.accept:
                binding = self._accept(current)
                if binding is not None:
                    if self._stats is not None:
                        self._stats.matches += 1
                    yield binding
            if self.nfa.edges[current.state]:
                frontier.append(current)
            for eps in self.nfa.epsilons[current.state]:
                successor = self._apply_action(current, eps.target, eps.action)
                if successor is not None:
                    stack.append(successor)

    def _apply_action(self, run: _Run, target: int, action) -> Optional[_Run]:
        if action is None:
            return self._with(run, state=target)
        if isinstance(action, NodeTest):
            return self._apply_node_test(run, target, action)
        if isinstance(action, EnterQuant):
            counters = _set_counter(run.counters, action.quant_id, 0)
            ann = run.ann + ((action.quant_id, 0),)
            return self._with(run, state=target, counters=counters, ann=ann)
        if isinstance(action, IterBegin):
            count = _get_counter(run.counters, action.quant_id)
            if action.upper is not None and count >= action.upper:
                return None
            counters = _set_counter(
                run.counters, action.quant_id, min(count + 1, action.cap)
            )
            head, (qid, iteration) = run.ann[:-1], run.ann[-1]
            ann = head + ((qid, iteration + 1),)
            return self._with(run, state=target, counters=counters, ann=ann)
        if isinstance(action, ExitQuant):
            count = _get_counter(run.counters, action.quant_id)
            if count < action.lower:
                return None
            counters = _del_counter(run.counters, action.quant_id)
            ann = run.ann[:-1]
            return self._with(run, state=target, counters=counters, ann=ann)
        if isinstance(action, ScopeBegin):
            if action.restrictor is None:
                return self._with(run, state=target)
            scope = _Scope(
                scope_id=action.scope_id,
                kind=action.restrictor,
                used_edges=frozenset(),
                visited_nodes=frozenset({run.node}),
                first_node=run.node,
                closed=False,
            )
            return self._with(run, state=target, scopes=run.scopes + (scope,))
        if isinstance(action, ScopeEnd):
            scopes = run.scopes
            if action.restrictor is not None:
                scopes = scopes[:-1]
            successor = self._with(run, state=target, scopes=scopes)
            if action.where is not None:
                if action.deferred:
                    cell = (successor.deferred_cell, (action.where, successor.ann))
                    successor.deferred_cell = cell
                else:
                    ctx = RunContext(self.graph, successor.bind_map, successor.ann)
                    if not action.where.truth(ctx):
                        return None
            return successor
        if isinstance(action, BagTag):
            tag = (action.alt_id, action.dedup_class, run.ann)
            return self._with(run, state=target, bag_tags=run.bag_tags | {tag})
        raise GpmlEvaluationError(f"unknown automaton action {action!r}")

    def _apply_node_test(self, run: _Run, target: int, action: NodeTest) -> Optional[_Run]:
        pattern = action.pattern
        node_id = run.node
        if pattern.label is not None:
            if not pattern.label.matches(self.graph.labels_of(node_id)):
                return None
        bind_map, entry_cell = self._bind(run, pattern.var, node_id)
        if bind_map is None:
            return None
        successor = self._with(
            run, state=target, bind_map=bind_map, entry_cell=entry_cell
        )
        if pattern.where is not None:
            if action.deferred:
                successor.deferred_cell = (
                    successor.deferred_cell,
                    (pattern.where, successor.ann),
                )
            else:
                ctx = RunContext(self.graph, successor.bind_map, successor.ann)
                if not pattern.where.truth(ctx):
                    return None
        return successor

    def _bind(self, run: _Run, var: Optional[str], element_id: str):
        """Bind var@ann -> element with the implicit equi-join check."""
        if var is None:
            return run.bind_map, run.entry_cell
        by_ann = run.bind_map.get(var)
        if by_ann is not None:
            existing = by_ann.get(run.ann)
            if existing is not None:
                if existing != element_id:
                    return None, None
                return run.bind_map, run.entry_cell
            by_ann = dict(by_ann)
        else:
            by_ann = {}
        by_ann[run.ann] = element_id
        bind_map = dict(run.bind_map)
        bind_map[var] = by_ann
        entry_cell = (run.entry_cell, ElementaryBinding(var, run.ann, element_id))
        return bind_map, entry_cell

    # -- edge traversal ----------------------------------------------------
    def _incidences_for(self, node_id: str, pattern: ast.EdgePattern):
        """Candidate incidences, via the label index when a single
        label atom is required (checked there, skipped in the loop)."""
        if self.config.use_label_index and isinstance(pattern.label, LabelAtom):
            return self.graph.incidences_with_label(node_id, pattern.label.name), True
        return self.graph.incidences(node_id), False

    def _edge_successors(self, run: _Run, cost_property: Optional[str] = None):
        for transition in self.nfa.edges[run.state]:
            pattern = transition.pattern
            incidences, label_checked = self._incidences_for(run.node, pattern)
            for inc in incidences:
                if not pattern.orientation.admits(inc.direction):
                    continue
                self._steps += 1
                if self._stats is not None:
                    self._stats.steps += 1
                if self._steps > self.config.max_steps:
                    raise BudgetExceededError(
                        f"matcher exceeded max_steps={self.config.max_steps}"
                    )
                if pattern.label is not None and not label_checked:
                    if not pattern.label.matches(self.graph.labels_of(inc.edge)):
                        continue
                scopes = self._scopes_after_edge(run.scopes, inc.edge, inc.other)
                if scopes is None:
                    continue
                bind_map, entry_cell = self._bind(run, pattern.var, inc.edge)
                if bind_map is None:
                    continue
                cost = run.cost
                if cost_property is not None:
                    cost += self._edge_cost(inc.edge, cost_property)
                successor = _Run(
                    state=transition.target,
                    node=inc.other,
                    start_node=run.start_node,
                    counters=run.counters,
                    ann=run.ann,
                    scopes=scopes,
                    bind_map=bind_map,
                    entry_cell=entry_cell,
                    path_cell=((run.path_cell, inc.edge), inc.other),
                    path_len=run.path_len + 1,
                    bag_tags=run.bag_tags,
                    deferred_cell=run.deferred_cell,
                    cost=cost,
                )
                if pattern.where is not None:
                    if transition.deferred:
                        successor.deferred_cell = (
                            successor.deferred_cell,
                            (pattern.where, successor.ann),
                        )
                    else:
                        ctx = RunContext(self.graph, successor.bind_map, successor.ann)
                        if not pattern.where.truth(ctx):
                            continue
                yield successor

    def _edge_cost(self, edge_id: str, cost_property: str) -> float:
        value = self.graph.property_of(edge_id, cost_property, None)
        if value is None or is_null(value):
            return self.config.default_edge_cost
        cost = float(value)
        if cost < 0:
            raise GpmlEvaluationError(
                f"negative cost {cost} on edge {edge_id!r}; cheapest-path "
                f"search requires non-negative costs"
            )
        return cost

    def _scopes_after_edge(self, scopes: tuple, edge_id: str, target: str):
        if not scopes:
            return scopes
        out = []
        for scope in scopes:
            if scope.closed:
                return None
            if scope.kind == "TRAIL":
                if edge_id in scope.used_edges:
                    return None
                scope = _Scope(
                    scope.scope_id,
                    scope.kind,
                    scope.used_edges | {edge_id},
                    scope.visited_nodes,
                    scope.first_node,
                    False,
                )
            elif scope.kind == "ACYCLIC":
                if target in scope.visited_nodes:
                    return None
                scope = _Scope(
                    scope.scope_id,
                    scope.kind,
                    scope.used_edges,
                    scope.visited_nodes | {target},
                    scope.first_node,
                    False,
                )
            elif scope.kind == "SIMPLE":
                if target in scope.visited_nodes:
                    if target != scope.first_node:
                        return None
                    scope = _Scope(
                        scope.scope_id,
                        scope.kind,
                        scope.used_edges,
                        scope.visited_nodes,
                        scope.first_node,
                        True,
                    )
                else:
                    scope = _Scope(
                        scope.scope_id,
                        scope.kind,
                        scope.used_edges,
                        scope.visited_nodes | {target},
                        scope.first_node,
                        False,
                    )
            out.append(scope)
        return tuple(out)

    # -- acceptance ----------------------------------------------------------
    def _accept(self, run: _Run) -> Optional[PathBinding]:
        for where, ann in run.deferred():
            ctx = RunContext(self.graph, run.bind_map, ann)
            if not where.truth(ctx):
                return None
        return PathBinding(
            elements=run.path_elements(),
            entries=run.entries(),
            bag_tags=run.bag_tags,
        )

    # -- pruning --------------------------------------------------------------
    @staticmethod
    def _prune_layer(runs: list[_Run], visited: dict[tuple, int], depth: int) -> list[_Run]:
        out: list[_Run] = []
        layer_seen: set[tuple] = set()
        for run in runs:
            key = run.prune_key()
            first = visited.get(key)
            if first is not None and first < depth:
                continue
            if first is None:
                visited[key] = depth
            fingerprint = run.fingerprint()
            if fingerprint in layer_seen:
                continue
            layer_seen.add(fingerprint)
            out.append(run)
        return out

    @staticmethod
    def _prune_layer_k(
        runs: list[_Run], allowed: dict[tuple, set[int]], depth: int, k: int
    ) -> list[_Run]:
        out: list[_Run] = []
        layer_seen: set[tuple] = set()
        for run in runs:
            key = run.prune_key()
            depths = allowed.setdefault(key, set())
            if depth not in depths:
                if len(depths) >= k and depth > max(depths):
                    continue
                depths.add(depth)
            fingerprint = run.fingerprint()
            if fingerprint in layer_seen:
                continue
            layer_seen.add(fingerprint)
            out.append(run)
        return out

    # -- misc -------------------------------------------------------------------
    def _check_budget(self, num_results: int) -> None:
        if num_results > self.config.max_results:
            raise BudgetExceededError(
                f"matcher exceeded max_results={self.config.max_results}"
            )

    @staticmethod
    def _with(run: _Run, **overrides) -> _Run:
        new = _Run(
            state=overrides.get("state", run.state),
            node=overrides.get("node", run.node),
            start_node=run.start_node,
            counters=overrides.get("counters", run.counters),
            ann=overrides.get("ann", run.ann),
            scopes=overrides.get("scopes", run.scopes),
            bind_map=overrides.get("bind_map", run.bind_map),
            entry_cell=overrides.get("entry_cell", run.entry_cell),
            path_cell=run.path_cell,
            path_len=run.path_len,
            bag_tags=overrides.get("bag_tags", run.bag_tags),
            deferred_cell=run.deferred_cell,
            cost=run.cost,
        )
        return new


# ----------------------------------------------------------------------
# Counter tuples (sorted, immutable)
# ----------------------------------------------------------------------
def _get_counter(counters: tuple, quant_id: int) -> int:
    for qid, count in counters:
        if qid == quant_id:
            return count
    return 0


def _set_counter(counters: tuple, quant_id: int, value: int) -> tuple:
    out = [(qid, count) for qid, count in counters if qid != quant_id]
    out.append((quant_id, value))
    out.sort()
    return tuple(out)


def _del_counter(counters: tuple, quant_id: int) -> tuple:
    return tuple((qid, count) for qid, count in counters if qid != quant_id)


# Start-candidate narrowing lives in repro.planner.indexes (sargable
# predicate extraction + label scans); see initial_node_candidates.
