"""Static analysis of normalized graph patterns.

Implements, ahead of execution:

* **variable classification** — node vs edge variables, singleton vs group
  (Section 4.4: "a reference is group if you have to cross a quantifier to
  get from the reference to the declaration"), conditional vs unconditional
  singletons (Section 4.6),
* **legality checks** — no variable used as both node and edge, no
  declarations at conflicting quantifier depths, no implicit equi-joins on
  conditional singletons (within a path pattern or across path patterns),
  SAME/ALL_DIFFERENT restricted to unconditional singletons, group
  variables never referenced as singletons,
* **termination rules of Section 5** — every unbounded quantifier must be
  in the scope of a restrictor or a selector; prefilters must not
  aggregate *effectively unbounded* group variables (Section 5.3: allowed
  again once a restrictor or a static upper bound bounds the group —
  a selector does **not** bound a prefilter),
* **strategy selection** — which search procedure the matcher will use,
* **deferred predicates** — element-level WHERE clauses that reference
  variables declared further right are evaluated once the full path is
  known (still prefilters: they run before selectors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import (
    ConditionalJoinError,
    NonTerminationError,
    VariableScopeError,
)
from repro.gpml import ast
from repro.gpml.expr import Aggregate, Expr, Same, AllDifferent

#: matcher strategies
ENUMERATE = "enumerate"
SHORTEST = "shortest"
K_SEARCH = "k_search"
CHEAPEST = "cheapest"

_SHORTEST_SELECTORS = frozenset({"ANY", "ANY_SHORTEST", "ALL_SHORTEST"})
_K_SELECTORS = frozenset({"ANY_K", "SHORTEST_K", "SHORTEST_K_GROUP"})
_CHEAPEST_SELECTORS = frozenset({"ANY_CHEAPEST", "TOP_K_CHEAPEST"})


@dataclass
class DeclSite:
    """One declaration of a variable inside a path pattern."""

    quant_chain: tuple[int, ...]
    context: tuple
    index: int
    kind: str  # 'node' | 'edge'


@dataclass
class VarInfo:
    """Classification of one variable within a path pattern."""

    name: str
    kind: str
    anonymous: bool
    sites: list[DeclSite] = field(default_factory=list)
    group: bool = False
    conditional: bool = False

    @property
    def min_index(self) -> int:
        return min(site.index for site in self.sites)


@dataclass
class QuantInfo:
    quant_id: int
    unbounded: bool
    covered_by_restrictor: bool


@dataclass
class PathAnalysis:
    """Everything the engine needs to know about one path pattern."""

    path: ast.PathPattern
    vars: dict[str, VarInfo]
    quants: dict[int, QuantInfo]
    deferred_wheres: set[int]  # id() of pattern nodes whose WHERE is deferred
    strategy: str
    has_multiset: bool

    @property
    def group_vars(self) -> frozenset[str]:
        return frozenset(v.name for v in self.vars.values() if v.group)

    @property
    def anonymous_vars(self) -> frozenset[str]:
        return frozenset(v.name for v in self.vars.values() if v.anonymous)

    @property
    def visible_vars(self) -> list[str]:
        return sorted(v.name for v in self.vars.values() if not v.anonymous)


@dataclass
class QueryAnalysis:
    """Analysis of a whole (normalized) graph pattern."""

    pattern: ast.GraphPattern
    paths: list[PathAnalysis]
    join_vars: frozenset[str]
    path_vars: dict[str, int]  # path variable -> index of its path pattern

    def var_info(self, name: str) -> Optional[VarInfo]:
        for path in self.paths:
            if name in path.vars:
                return path.vars[name]
        return None


def analyze(pattern: ast.GraphPattern) -> QueryAnalysis:
    """Analyze a *normalized* graph pattern; raises on illegal queries."""
    paths = [_analyze_path(path) for path in pattern.paths]
    path_vars = _collect_path_vars(pattern, paths)
    join_vars = _check_cross_pattern_joins(paths)
    if pattern.where is not None:
        _check_filter_expr(
            pattern.where,
            paths=paths,
            chain=(),
            quants=_merged_quants(paths),
            is_prefilter=False,
            where_owner="the final WHERE clause",
        )
    return QueryAnalysis(pattern=pattern, paths=paths, join_vars=join_vars, path_vars=path_vars)


# ----------------------------------------------------------------------
# Per-path analysis
# ----------------------------------------------------------------------
class _PathWalker:
    def __init__(self, path: ast.PathPattern):
        self.path = path
        self.vars: dict[str, VarInfo] = {}
        self.quants: dict[int, QuantInfo] = {}
        self.wheres: list[tuple] = []  # (owner_node, expr, chain, index, own_var)
        self.next_index = 0
        self.path_restrictor = path.restrictor is not None

    def walk(self) -> None:
        self._walk(self.path.pattern, chain=(), context=(), in_restrictor=self.path_restrictor)

    def _walk(self, pattern: ast.Pattern, chain: tuple, context: tuple, in_restrictor: bool) -> None:
        if isinstance(pattern, ast.NodePattern):
            self._declare(pattern.var, "node", pattern.anonymous, chain, context)
            if pattern.where is not None:
                self.wheres.append((pattern, pattern.where, chain, self.next_index, pattern.var))
            self.next_index += 1
            return
        if isinstance(pattern, ast.EdgePattern):
            self._declare(pattern.var, "edge", pattern.anonymous, chain, context)
            if pattern.where is not None:
                self.wheres.append((pattern, pattern.where, chain, self.next_index, pattern.var))
            self.next_index += 1
            return
        if isinstance(pattern, ast.Concatenation):
            for item in pattern.items:
                self._walk(item, chain, context, in_restrictor)
            return
        if isinstance(pattern, ast.Quantified):
            self.quants[pattern.quant_id] = QuantInfo(
                quant_id=pattern.quant_id,
                unbounded=pattern.unbounded,
                covered_by_restrictor=in_restrictor,
            )
            self._walk(pattern.inner, chain + (pattern.quant_id,), context, in_restrictor)
            return
        if isinstance(pattern, ast.OptionalPattern):
            self._walk(pattern.inner, chain, context + (("opt", id(pattern)),), in_restrictor)
            return
        if isinstance(pattern, ast.ParenPattern):
            inner_restrictor = in_restrictor or pattern.restrictor is not None
            self._walk(pattern.inner, chain, context, inner_restrictor)
            if pattern.where is not None:
                self.wheres.append((pattern, pattern.where, chain, self.next_index, None))
            return
        if isinstance(pattern, ast.Alternation):
            for branch_index, branch in enumerate(pattern.branches):
                self._walk(
                    branch,
                    chain,
                    context + ((pattern.alt_id, branch_index),),
                    in_restrictor,
                )
            return
        raise VariableScopeError(f"unexpected pattern node {type(pattern).__name__}")

    def _declare(self, var: str, kind: str, anonymous: bool, chain: tuple, context: tuple) -> None:
        info = self.vars.get(var)
        if info is None:
            info = VarInfo(name=var, kind=kind, anonymous=anonymous)
            self.vars[var] = info
        else:
            if info.kind != kind:
                raise VariableScopeError(
                    f"variable {var!r} used as both {info.kind} and {kind}"
                )
        info.sites.append(DeclSite(quant_chain=chain, context=context, index=self.next_index, kind=kind))


def _analyze_path(path: ast.PathPattern) -> PathAnalysis:
    walker = _PathWalker(path)
    walker.walk()
    vars_ = walker.vars

    _classify_group_vars(vars_)
    certain = _certainly_bound(path.pattern)
    for info in vars_.values():
        if not info.group:
            info.conditional = info.name not in certain
    _check_conditional_joins(vars_)

    if path.path_var is not None and path.path_var in vars_:
        raise VariableScopeError(
            f"path variable {path.path_var!r} clashes with an element variable"
        )

    _check_termination(path, walker.quants)

    deferred: set[int] = set()
    for owner, expr, chain, index, own_var in walker.wheres:
        is_deferred = _check_element_where(
            expr,
            vars_=vars_,
            quants=walker.quants,
            chain=chain,
            index=index,
            own_var=own_var,
        )
        if is_deferred:
            deferred.add(id(owner))

    strategy = _choose_strategy(path, walker.quants)
    has_multiset = any(
        isinstance(node, ast.Alternation) and node.has_multiset()
        for node in path.pattern.walk()
    )
    return PathAnalysis(
        path=path,
        vars=vars_,
        quants=walker.quants,
        deferred_wheres=deferred,
        strategy=strategy,
        has_multiset=has_multiset,
    )


def _classify_group_vars(vars_: dict[str, VarInfo]) -> None:
    for info in vars_.values():
        chains = {site.quant_chain for site in info.sites}
        depths = {len(chain) for chain in chains}
        if len(chains) > 1 and depths != {0}:
            # A variable may be declared several times at the top level
            # (equi-join) but not both inside and outside a quantifier.
            raise VariableScopeError(
                f"variable {info.name!r} is declared at conflicting "
                f"quantification depths"
            )
        info.group = any(chain for chain in chains)


def _certainly_bound(pattern: ast.Pattern) -> frozenset[str]:
    """Variables bound on every execution path (non-group certainty)."""
    if isinstance(pattern, (ast.NodePattern, ast.EdgePattern)):
        return frozenset({pattern.var}) if pattern.var else frozenset()
    if isinstance(pattern, ast.Concatenation):
        out: frozenset[str] = frozenset()
        for item in pattern.items:
            out |= _certainly_bound(item)
        return out
    if isinstance(pattern, ast.ParenPattern):
        return _certainly_bound(pattern.inner)
    if isinstance(pattern, ast.Alternation):
        sets = [_certainly_bound(b) for b in pattern.branches]
        out = sets[0]
        for s in sets[1:]:
            out &= s
        return out
    # Quantified bodies hold group variables; Optional bodies are conditional.
    return frozenset()


def _contexts_compatible(a: tuple, b: tuple) -> bool:
    """Two declaration contexts can be active simultaneously.

    Only sibling branches of the *same* alternation exclude each other;
    different optionals (or an optional and a branch) can both be active.
    """
    for marker_a, marker_b in zip(a, b):
        if marker_a == marker_b:
            continue
        same_alternation = (
            marker_a[0] == marker_b[0] and marker_a[0] != "opt"
        )
        if same_alternation:
            return False  # mutually exclusive branches
    return True


def _check_conditional_joins(vars_: dict[str, VarInfo]) -> None:
    for info in vars_.values():
        if info.group or not info.conditional:
            continue
        for i, site_a in enumerate(info.sites):
            for site_b in info.sites[i + 1 :]:
                if site_a.context == site_b.context:
                    continue  # repetition inside one branch: joint binding
                if _contexts_compatible(site_a.context, site_b.context):
                    raise ConditionalJoinError(
                        f"implicit equi-join on conditional singleton {info.name!r}"
                    )


def _check_termination(path: ast.PathPattern, quants: dict[int, QuantInfo]) -> None:
    has_selector = path.selector is not None
    for quant in quants.values():
        if quant.unbounded and not quant.covered_by_restrictor and not has_selector:
            raise NonTerminationError(
                "unbounded quantifier outside the scope of any restrictor or "
                "selector (Section 5: the result could be infinite)"
            )


def _non_aggregate_refs(expr: Expr) -> frozenset[str]:
    """Variables referenced outside of any aggregate."""
    if isinstance(expr, Aggregate):
        return frozenset()
    refs = frozenset(expr.own_variables())
    for child in expr.children():
        refs |= _non_aggregate_refs(child)
    return refs


def _check_element_where(
    expr: Expr,
    vars_: dict[str, VarInfo],
    quants: dict[int, QuantInfo],
    chain: tuple,
    index: int,
    own_var: Optional[str],
) -> bool:
    """Validate a prefilter WHERE; returns True when it must be deferred."""
    _check_known_vars(expr, vars_, "a pattern WHERE clause")
    _check_same_all_different(expr, vars_)

    for name in _non_aggregate_refs(expr):
        info = vars_.get(name)
        if info is None:
            continue
        crossed = _crossed_quants(info, chain)
        if crossed:
            raise VariableScopeError(
                f"group variable {name!r} referenced as a singleton in a "
                f"pattern WHERE clause (crossing quantifier scope)"
            )

    for agg in expr.aggregates():
        info = vars_.get(agg.var)
        if info is None:
            continue
        crossed = _crossed_quants(info, chain)
        for quant_id in crossed:
            quant = quants[quant_id]
            if quant.unbounded and not quant.covered_by_restrictor:
                raise NonTerminationError(
                    f"prefilter aggregates the effectively unbounded group "
                    f"variable {agg.var!r} (Section 5.3); bound the "
                    f"quantifier or move the predicate to the final WHERE"
                )

    # Defer evaluation when the clause references variables declared to
    # the right of this element (they are unbound at match time here).
    for name in expr.variables():
        info = vars_.get(name)
        if info is None or name == own_var:
            continue
        if info.min_index > index:
            return True
    return False


def _crossed_quants(info: VarInfo, chain: tuple) -> tuple[int, ...]:
    """Quantifiers crossed from a reference at *chain* to the declaration."""
    declared = info.sites[0].quant_chain
    common = 0
    for a, b in zip(declared, chain):
        if a != b:
            break
        common += 1
    return declared[common:]


def _check_same_all_different(expr: Expr, vars_: dict[str, VarInfo]) -> None:
    def visit(node: Expr) -> None:
        if isinstance(node, (Same, AllDifferent)):
            for name in node.vars:
                info = vars_.get(name)
                if info is not None and (info.group or info.conditional):
                    kind = "group" if info.group else "conditional"
                    raise VariableScopeError(
                        f"{type(node).__name__.upper()} requires unconditional "
                        f"singletons; {name!r} is a {kind} variable"
                    )
        for child in node.children():
            visit(child)

    visit(expr)


def _check_known_vars(expr: Expr, vars_: dict[str, VarInfo], where: str) -> None:
    for name in expr.variables():
        if name not in vars_:
            raise VariableScopeError(
                f"unknown variable {name!r} referenced in {where}"
            )


def _choose_strategy(path: ast.PathPattern, quants: dict[int, QuantInfo]) -> str:
    selector = path.selector
    if selector is None:
        return ENUMERATE
    if selector.kind in _CHEAPEST_SELECTORS:
        return CHEAPEST
    if selector.kind in _K_SELECTORS:
        return K_SEARCH
    if selector.kind in _SHORTEST_SELECTORS:
        return SHORTEST
    return ENUMERATE


# ----------------------------------------------------------------------
# Query-level checks
# ----------------------------------------------------------------------
def _collect_path_vars(
    pattern: ast.GraphPattern, paths: list[PathAnalysis]
) -> dict[str, int]:
    path_vars: dict[str, int] = {}
    for index, path in enumerate(pattern.paths):
        if path.path_var is None:
            continue
        if path.path_var in path_vars:
            raise VariableScopeError(f"duplicate path variable {path.path_var!r}")
        for analysis in paths:
            if path.path_var in analysis.vars:
                raise VariableScopeError(
                    f"path variable {path.path_var!r} clashes with an element variable"
                )
        path_vars[path.path_var] = index
    return path_vars


def _check_cross_pattern_joins(paths: list[PathAnalysis]) -> frozenset[str]:
    seen: dict[str, tuple[int, VarInfo]] = {}
    join_vars: set[str] = set()
    for index, analysis in enumerate(paths):
        for name, info in analysis.vars.items():
            if info.anonymous:
                continue
            if name not in seen:
                seen[name] = (index, info)
                continue
            other_index, other = seen[name]
            if other_index == index:
                continue
            if info.kind != other.kind:
                raise VariableScopeError(
                    f"variable {name!r} used as {other.kind} and {info.kind} "
                    f"in different path patterns"
                )
            if info.group or other.group:
                raise VariableScopeError(
                    f"group variable {name!r} cannot join path patterns"
                )
            if info.conditional or other.conditional:
                raise ConditionalJoinError(
                    f"implicit equi-join on conditional singleton {name!r} "
                    f"across path patterns"
                )
            join_vars.add(name)
    return frozenset(join_vars)


def _merged_quants(paths: list[PathAnalysis]) -> dict[int, QuantInfo]:
    merged: dict[int, QuantInfo] = {}
    for path in paths:
        merged.update(path.quants)
    return merged


def _check_filter_expr(
    expr: Expr,
    paths: list[PathAnalysis],
    chain: tuple,
    quants: dict[int, QuantInfo],
    is_prefilter: bool,
    where_owner: str,
) -> None:
    """Validate the final (postfilter) WHERE clause of a MATCH."""
    all_vars: dict[str, VarInfo] = {}
    for path in paths:
        for name, info in path.vars.items():
            all_vars.setdefault(name, info)
    known = set(all_vars)
    for path in paths:
        if path.path.path_var:
            known.add(path.path.path_var)
    for name in expr.variables():
        if name not in known:
            raise VariableScopeError(f"unknown variable {name!r} referenced in {where_owner}")
    for name in _non_aggregate_refs(expr):
        info = all_vars.get(name)
        if info is not None and info.group:
            raise VariableScopeError(
                f"group variable {name!r} referenced as a singleton in {where_owner}; "
                f"use an aggregate"
            )
    _check_same_all_different(expr, all_vars)
