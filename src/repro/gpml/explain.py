"""EXPLAIN: a human-readable account of how a query will be executed.

Surfaces each pipeline stage of the engine — the normalized pattern (the
paper's Section 6.2 output), the variable classification (Sections
4.4/4.6), the compiled automaton, the chosen search strategy with the
reasoning behind it (Section 5 termination analysis), and the
streaming/blocking classification of every execution stage (which stages
emit rows as their input produces them, and which are pipeline breakers
that must consume their whole input first).

:func:`explain_plan` is the cost-based companion: given a concrete graph
it renders the planner's decisions — chosen anchor side, access path
(property index / label scan / full scan), estimated cardinalities, the
scored alternatives, the cross-pattern join order — plus the same
pipeline classification.
"""

from __future__ import annotations

from repro.gpml import ast
from repro.gpml.engine import PreparedQuery, prepare
from repro.gpml.matcher import MatcherConfig
from repro.gpml.streaming import classify_pipeline, render_pipeline
from repro.graph.model import PropertyGraph
from repro.planner.plan import plan_query


def explain(query: "str | PreparedQuery") -> str:
    """Render the execution plan of a MATCH statement as text."""
    prepared = query if isinstance(query, PreparedQuery) else prepare(query)
    lines: list[str] = []
    if prepared.text is not None:
        lines.append(f"query: {prepared.text.strip()}")
    lines.append(f"normalized: {prepared.normalized}")
    for index, path_analysis in enumerate(prepared.analysis.paths):
        path = prepared.normalized.paths[index]
        lines.append(f"path pattern #{index + 1}: {path}")
        lines.append(f"  strategy: {path_analysis.strategy}")
        if path.selector is not None:
            lines.append(f"  selector: {path.selector}")
        if path.restrictor is not None:
            lines.append(f"  restrictor: {path.restrictor}")
        for name in sorted(path_analysis.vars):
            info = path_analysis.vars[name]
            if info.anonymous:
                continue
            role = "group" if info.group else (
                "conditional singleton" if info.conditional else "singleton"
            )
            lines.append(f"  variable {name}: {info.kind} ({role})")
        unbounded = [q for q in path_analysis.quants.values() if q.unbounded]
        if unbounded:
            covers = []
            for quant in unbounded:
                if quant.covered_by_restrictor:
                    covers.append("restrictor")
                elif path.selector is not None:
                    covers.append("selector")
            lines.append(
                f"  termination: {len(unbounded)} unbounded quantifier(s) "
                f"covered by {', '.join(sorted(set(covers)))}"
            )
        nfa = prepared.nfas[index]
        lines.append(f"  automaton: {nfa.num_states} states")
    if prepared.normalized.where is not None:
        lines.append(f"postfilter: WHERE {prepared.normalized.where}")
    if prepared.normalized.keep is not None:
        lines.append(f"post-WHERE selection: KEEP {prepared.normalized.keep}")
    join_vars = prepared.analysis.join_vars
    if join_vars:
        lines.append(f"cross-pattern join on: {', '.join(sorted(join_vars))}")
    lines.extend(render_pipeline(classify_pipeline(prepared)))
    return "\n".join(lines)


def explain_plan(graph: PropertyGraph, query: "str | PreparedQuery") -> str:
    """Render the cost-based execution plan of a query against *graph*."""
    prepared = query if isinstance(query, PreparedQuery) else prepare(query)
    plan = plan_query(graph, prepared)
    return plan.render(
        query_text=prepared.text or str(prepared.normalized),
        paths=[str(path) for path in prepared.normalized.paths],
    )


def explain_analyze(
    graph: PropertyGraph,
    query: "str | PreparedQuery",
    config: "MatcherConfig | None" = None,
) -> str:
    """Execute a MATCH on *graph* and render per-stage actuals.

    The runtime companion to :func:`explain` / :func:`explain_plan`:
    instead of predicted strategies and estimated cardinalities, every
    stage shows the rows, matcher steps, and wall time it actually
    consumed (see :mod:`repro.obs`).
    """
    # Imported lazily: repro.obs.analyze depends on higher layers.
    from repro.obs.analyze import explain_analyze_match

    return explain_analyze_match(graph, query, config=config)


def explain_automaton(query: "str | PreparedQuery", index: int = 0) -> str:
    """Dump the compiled NFA of one path pattern."""
    prepared = query if isinstance(query, PreparedQuery) else prepare(query)
    return prepared.nfas[index].describe()
