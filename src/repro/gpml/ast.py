"""Abstract syntax of GPML graph patterns (Section 4 of the paper).

The AST mirrors the paper's constructs one-to-one:

* :class:`NodePattern`, :class:`EdgePattern` (with the seven orientations
  of Figure 5),
* :class:`Concatenation` — path patterns built by chaining (Section 4.2),
* :class:`Quantified` — the quantifiers of Figure 6,
* :class:`OptionalPattern` — the ``?`` postfix (Section 4.6; *not* the
  same as ``{0,1}``: it exposes conditional singletons, not group vars),
* :class:`ParenPattern` — parenthesized path patterns with their own
  WHERE (a prefilter) and optional restrictor,
* :class:`Alternation` — path pattern union ``|`` and multiset
  alternation ``|+|`` (Section 4.5),
* :class:`PathPattern` — one comma-separated top-level pattern with its
  optional selector, restrictor and path variable (Section 5),
* :class:`GraphPattern` — the full MATCH with its postfilter WHERE
  (Section 4.3).

Every node pretty-prints back to GPML text via ``str()``; the parser/
printer pair round-trips (tested property-style).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.gpml.expr import Expr
from repro.gpml.label_expr import LabelExpr


class Orientation(enum.Enum):
    """The seven edge-pattern orientations of Figure 5.

    ``admits`` lists traversal directions relative to left-to-right reading
    of the pattern: "out" = directed edge traversed forward, "in" =
    directed edge traversed against its direction, "undirected" =
    undirected edge.  (The strings are spelled out because enum members
    shadow same-named imports inside the class body.)
    """

    LEFT = ("pointing left", "<-[", "]-", ("in",))
    UNDIRECTED = ("undirected", "~[", "]~", ("undirected",))
    RIGHT = ("pointing right", "-[", "]->", ("out",))
    LEFT_OR_UNDIRECTED = ("left or undirected", "<~[", "]~", ("in", "undirected"))
    UNDIRECTED_OR_RIGHT = ("undirected or right", "~[", "]~>", ("undirected", "out"))
    LEFT_OR_RIGHT = ("left or right", "<-[", "]->", ("in", "out"))
    ANY = ("left, undirected or right", "-[", "]-", ("in", "out", "undirected"))

    def __init__(self, description: str, open_text: str, close_text: str, admits):
        self.description = description
        self.open_text = open_text
        self.close_text = close_text
        self._admits = frozenset(admits)

    def admits(self, direction: str) -> bool:
        return direction in self._admits

    @property
    def abbreviation(self) -> str:
        return _ABBREVIATIONS[self]


_ABBREVIATIONS = {
    Orientation.LEFT: "<-",
    Orientation.UNDIRECTED: "~",
    Orientation.RIGHT: "->",
    Orientation.LEFT_OR_UNDIRECTED: "<~",
    Orientation.UNDIRECTED_OR_RIGHT: "~>",
    Orientation.LEFT_OR_RIGHT: "<->",
    Orientation.ANY: "-",
}


class Pattern:
    """Base class of all pattern AST nodes."""

    def sub_patterns(self) -> Iterator["Pattern"]:
        return iter(())

    def walk(self) -> Iterator["Pattern"]:
        """Depth-first traversal of this pattern and all sub-patterns."""
        yield self
        for sub in self.sub_patterns():
            yield from sub.walk()


@dataclass
class NodePattern(Pattern):
    """``(x:Label WHERE cond)`` — every component optional."""

    var: Optional[str] = None
    label: Optional[LabelExpr] = None
    where: Optional[Expr] = None
    anonymous: bool = False  # var was synthesized during normalization

    def __str__(self) -> str:
        return f"({self._spec_text()})"

    def _spec_text(self) -> str:
        parts = []
        if self.var and not self.anonymous:
            parts.append(self.var)
        if self.label is not None:
            parts.append(f":{self.label}")
        text = "".join(parts)
        if self.where is not None:
            text = f"{text} WHERE {self.where}" if text else f"WHERE {self.where}"
        return text


@dataclass
class EdgePattern(Pattern):
    """``-[e:Label WHERE cond]->`` and the six other orientations."""

    orientation: Orientation
    var: Optional[str] = None
    label: Optional[LabelExpr] = None
    where: Optional[Expr] = None
    anonymous: bool = False

    def __str__(self) -> str:
        spec_parts = []
        if self.var and not self.anonymous:
            spec_parts.append(self.var)
        if self.label is not None:
            spec_parts.append(f":{self.label}")
        spec = "".join(spec_parts)
        if self.where is not None:
            spec = f"{spec} WHERE {self.where}" if spec else f"WHERE {self.where}"
        if not spec:
            return self.orientation.abbreviation
        return f"{self.orientation.open_text}{spec}{self.orientation.close_text}"


@dataclass
class Concatenation(Pattern):
    """A sequence of element patterns read left to right."""

    items: list[Pattern] = field(default_factory=list)

    def sub_patterns(self) -> Iterator[Pattern]:
        return iter(self.items)

    def __str__(self) -> str:
        return "".join(
            (f" {item} " if isinstance(item, (Quantified, ParenPattern, OptionalPattern, Alternation)) else str(item))
            for item in self.items
        ).replace("  ", " ").strip()


@dataclass
class Quantified(Pattern):
    """``inner{m,n}`` / ``inner{m,}`` / ``inner*`` / ``inner+``.

    ``upper`` is None for unbounded quantifiers.  ``quant_id`` is assigned
    during normalization and identifies the quantifier for counters and
    group-variable annotations.
    """

    inner: Pattern
    lower: int
    upper: Optional[int]
    quant_id: int = -1

    @property
    def unbounded(self) -> bool:
        return self.upper is None

    def quantifier_text(self) -> str:
        if self.lower == 0 and self.upper is None:
            return "*"
        if self.lower == 1 and self.upper is None:
            return "+"
        if self.upper is None:
            return f"{{{self.lower},}}"
        return f"{{{self.lower},{self.upper}}}"

    def sub_patterns(self) -> Iterator[Pattern]:
        return iter((self.inner,))

    def __str__(self) -> str:
        return f"{self.inner}{self.quantifier_text()}"


@dataclass
class OptionalPattern(Pattern):
    """``inner?`` — like {0,1} but exposing conditional singletons (§4.6)."""

    inner: Pattern

    def sub_patterns(self) -> Iterator[Pattern]:
        return iter((self.inner,))

    def __str__(self) -> str:
        return f"{self.inner}?"


@dataclass
class ParenPattern(Pattern):
    """A parenthesized path pattern ``[ pattern WHERE cond ]``.

    ``restrictor`` (TRAIL/ACYCLIC/SIMPLE) may appear at its head; the WHERE
    is a *prefilter* evaluated per match of this sub-pattern (Section 5.2).
    ``square`` records which bracket style was written, for round-tripping.
    ``paren_id`` is assigned during normalization.
    """

    inner: Pattern
    where: Optional[Expr] = None
    restrictor: Optional[str] = None
    square: bool = True
    paren_id: int = -1

    def sub_patterns(self) -> Iterator[Pattern]:
        return iter((self.inner,))

    def __str__(self) -> str:
        open_b, close_b = ("[", "]") if self.square else ("(", ")")
        head = f"{self.restrictor} " if self.restrictor else ""
        where = f" WHERE {self.where}" if self.where is not None else ""
        return f"{open_b}{head}{self.inner}{where}{close_b}"


@dataclass
class Alternation(Pattern):
    """``p1 | p2 |+| p3 ...`` — union (set) and multiset alternation.

    ``operators[i]`` joins ``branches[i]`` and ``branches[i+1]`` and is
    either ``"|"`` or ``"|+|"``.  ``alt_id`` is assigned in normalization;
    multiset branches are tagged with it so duplicates survive reduction.
    """

    branches: list[Pattern]
    operators: list[str]
    alt_id: int = -1

    def sub_patterns(self) -> Iterator[Pattern]:
        return iter(self.branches)

    def has_multiset(self) -> bool:
        return "|+|" in self.operators

    def __str__(self) -> str:
        parts = [str(self.branches[0])]
        for op, branch in zip(self.operators, self.branches[1:]):
            parts.append(f" {op} {branch}")
        return "".join(parts)


@dataclass(frozen=True)
class Selector:
    """A selector of Figure 8 (plus the cheapest-path extension of §7.1).

    kind ∈ {ANY, ANY_SHORTEST, ALL_SHORTEST, ANY_K, SHORTEST_K,
    SHORTEST_K_GROUP, ANY_CHEAPEST, TOP_K_CHEAPEST}.
    """

    kind: str
    k: Optional[int] = None
    cost_property: Optional[str] = None

    def __str__(self) -> str:
        if self.kind == "ANY":
            return "ANY"
        if self.kind == "ANY_SHORTEST":
            return "ANY SHORTEST"
        if self.kind == "ALL_SHORTEST":
            return "ALL SHORTEST"
        if self.kind == "ANY_K":
            return f"ANY {self.k}"
        if self.kind == "SHORTEST_K":
            return f"SHORTEST {self.k}"
        if self.kind == "SHORTEST_K_GROUP":
            return f"SHORTEST {self.k} GROUP"
        cost = f" COST {self.cost_property}" if self.cost_property else ""
        if self.kind == "ANY_CHEAPEST":
            return f"ANY CHEAPEST{cost}"
        if self.kind == "TOP_K_CHEAPEST":
            return f"TOP {self.k} CHEAPEST{cost}"
        return self.kind


RESTRICTORS = ("TRAIL", "ACYCLIC", "SIMPLE")


@dataclass
class PathPattern(Pattern):
    """One top-level path pattern with optional selector/restrictor/variable."""

    pattern: Pattern
    selector: Optional[Selector] = None
    restrictor: Optional[str] = None
    path_var: Optional[str] = None

    def sub_patterns(self) -> Iterator[Pattern]:
        return iter((self.pattern,))

    def __str__(self) -> str:
        parts = []
        if self.selector is not None:
            parts.append(str(self.selector))
        if self.restrictor is not None:
            parts.append(self.restrictor)
        if self.path_var is not None:
            parts.append(f"{self.path_var} =")
        parts.append(str(self.pattern))
        return " ".join(parts)


@dataclass
class GraphPattern(Pattern):
    """A full MATCH statement: path patterns joined by comma + postfilter.

    ``keep`` is the Section 7.2 trailing selector (``KEEP ANY SHORTEST``),
    applied *after* the final WHERE — unlike head selectors, which run
    before it (Section 5.2).
    """

    paths: list[PathPattern]
    where: Optional[Expr] = None
    keep: Optional[Selector] = None

    def sub_patterns(self) -> Iterator[Pattern]:
        return iter(self.paths)

    def __str__(self) -> str:
        body = ", ".join(str(p) for p in self.paths)
        where = f" WHERE {self.where}" if self.where is not None else ""
        keep = f" KEEP {self.keep}" if self.keep is not None else ""
        return f"MATCH {body}{where}{keep}"
