"""Top-level GPML engine: prepare and match, streaming end to end.

Pipeline (mirroring Section 6 of the paper):

1. **parse** the MATCH statement,
2. **normalize** (Section 6.2),
3. **analyze** — classification, legality, termination (Sections 4-5),
4. **compile** one counter NFA per path pattern,
5. **match** each path pattern (strategy chosen by the analysis),
6. **reduce + deduplicate** path bindings (Sections 6.4-6.5),
7. apply **selectors** per path pattern (Figure 8),
8. **join** path patterns on shared singleton variables and apply the
   final WHERE postfilter (Sections 4.3, 6.6),
9. materialize rows with element handles, group lists and Path values.

Stages 5-9 form a lazy, pull-based pipeline: :func:`match_iter` yields
:class:`BindingRow` objects as the underlying product-graph search
discovers them, and a :class:`~repro.gpml.streaming.RowBudget` threaded
down to the matcher lets consumers (GQL ``LIMIT``, :func:`exists`,
``graph_table(..., limit=N)``) terminate the NFA search early.  Stages
that cannot stream — selectors, KEEP — materialize exactly their own
input and nothing more; see :func:`repro.gpml.streaming.classify_pipeline`
for the full streaming/blocking classification rendered by EXPLAIN.

Row order is deterministic: per pattern, solutions come out in discovery
order of the (planned) search from sorted start candidates; selectors
refine per endpoint partition by the documented (length, walk, content)
tie-break; multi-pattern rows follow textual nested-loop order.  The
materializing wrappers :func:`match` / ``execute_gql`` produce exactly
``list()`` of their streaming counterparts.

``match(graph, "MATCH ...")`` is the one-call public entry point;
``prepare`` caches everything up to step 4 for repeated execution.
:func:`iter_seeded_rows` is the anchored variant behind GQL's chained
MATCH: it runs a single-pattern query from explicit start nodes (forward
or reversed), one seeded search per upstream binding row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.worklog import Telemetry

from repro.errors import GpmlEvaluationError
from repro.gpml import ast
from repro.gpml.analysis import (
    CHEAPEST,
    ENUMERATE,
    K_SEARCH,
    SHORTEST,
    PathAnalysis,
    QueryAnalysis,
    analyze,
)
from repro.gpml.automaton import PatternNFA, compile_path_pattern
from repro.gpml.bindings import PathBinding, ReducedBinding, reduce_binding
from repro.gpml.expr import EvalContext
from repro.gpml.frontier import FrontierMatcher
from repro.gpml.matcher import Matcher, MatcherConfig
from repro.gpml.normalize import normalize_graph_pattern
from repro.gpml.parser import parse_match
from repro.gpml.selectors import apply_selector
from repro.gpml.streaming import BLOCKING, STREAMING, PipelineStats, RowBudget
from repro.obs.trace import Span, timed_rows
from repro.graph.model import Edge, Node, PropertyGraph
from repro.graph.path import Path
from repro.planner.anchor import RIGHT, reverse_binding
from repro.planner.plan import QueryPlan, plan_query
from repro.values import NULL


@dataclass
class PreparedQuery:
    """A parsed, normalized, analyzed and compiled MATCH statement."""

    text: Optional[str]
    raw: ast.GraphPattern
    normalized: ast.GraphPattern
    analysis: QueryAnalysis
    nfas: list[PatternNFA]
    #: per-graph query plan, keyed on the graph's mutation version
    #: (managed by repro.planner.plan.plan_query)
    plan_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def num_path_patterns(self) -> int:
        return len(self.normalized.paths)

    def visible_variables(self) -> list[str]:
        names: list[str] = []
        for path_analysis in self.analysis.paths:
            for name in path_analysis.visible_vars:
                if name not in names:
                    names.append(name)
        for name in self.analysis.path_vars:
            if name not in names:
                names.append(name)
        return names


class BindingRow:
    """One result row: variable values plus the matched path per pattern."""

    __slots__ = ("values", "paths")

    def __init__(self, values: dict[str, Any], paths: list[Path]):
        self.values = values
        self.paths = paths

    def __getitem__(self, name: str) -> Any:
        return self.values.get(name, NULL)

    def get(self, name: str, default: Any = NULL) -> Any:
        return self.values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v!r}" for k, v in sorted(self.values.items()))
        return f"BindingRow({items})"


class MatchResult:
    """The outcome of evaluating a MATCH statement on a property graph."""

    def __init__(self, rows: list[BindingRow], variables: list[str]):
        self.rows = rows
        self.variables = variables

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[BindingRow]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def first(self) -> Optional[BindingRow]:
        """The first row, or None when the result is empty.

        On an already-materialized result this is trivial; use the
        module-level :func:`first` to get the first row *without*
        materializing (the streaming pipeline stops after one row).
        """
        return self.rows[0] if self.rows else None

    def column(self, name: str) -> list[Any]:
        return [row[name] for row in self.rows]

    def ids(self, name: str) -> list[Any]:
        """Element ids for a variable column (lists for group variables)."""
        return [_to_ids(value) for value in self.column(name)]

    def paths(self, pattern_index: int = 0) -> list[Path]:
        return [row.paths[pattern_index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [
            {name: _to_ids(row[name]) for name in self.variables} for row in self.rows
        ]

    def distinct_dicts(self) -> list[dict[str, Any]]:
        seen = set()
        out = []
        for entry in self.to_dicts():
            key = tuple(sorted((k, _hashable(v)) for k, v in entry.items()))
            if key not in seen:
                seen.add(key)
                out.append(entry)
        return out

    def __repr__(self) -> str:
        return f"MatchResult({len(self.rows)} rows, variables={self.variables})"


def _to_ids(value: Any) -> Any:
    if isinstance(value, (Node, Edge)):
        return value.id
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, list):
        return [_to_ids(v) for v in value]
    return value


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    return value


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def prepare(query: "str | ast.GraphPattern") -> PreparedQuery:
    """Parse, normalize, analyze and compile a MATCH statement."""
    if isinstance(query, str):
        raw = parse_match(query)
        text: Optional[str] = query
    else:
        raw = query
        text = None
    normalized = normalize_graph_pattern(raw)
    analysis = analyze(normalized)
    nfas = [
        compile_path_pattern(path, path_analysis)
        for path, path_analysis in zip(normalized.paths, analysis.paths)
    ]
    return PreparedQuery(
        text=text, raw=raw, normalized=normalized, analysis=analysis, nfas=nfas
    )


def match(
    graph: PropertyGraph,
    query: "str | ast.GraphPattern | PreparedQuery",
    config: MatcherConfig | None = None,
) -> MatchResult:
    """Evaluate a MATCH statement and return the binding rows.

    A thin materializing wrapper over :func:`match_iter`: the result is
    exactly ``list(match_iter(graph, query, config))``, in the same order.
    """
    prepared = query if isinstance(query, PreparedQuery) else prepare(query)
    return MatchResult(
        rows=list(match_iter(graph, prepared, config)),
        variables=prepared.visible_variables(),
    )


def match_iter(
    graph: PropertyGraph,
    query: "str | ast.GraphPattern | PreparedQuery",
    config: MatcherConfig | None = None,
    *,
    limit: Optional[int] = None,
    budget: Optional[RowBudget] = None,
    stats: Optional[PipelineStats] = None,
    span: Optional[Span] = None,
    count_rows: bool = True,
    telemetry: Optional["Telemetry"] = None,
) -> Iterator[BindingRow]:
    """Evaluate a MATCH statement as a lazy stream of binding rows.

    Rows come out in the same deterministic order :func:`match` returns
    them, but the underlying NFA search only runs as far as the consumer
    pulls.  ``limit`` caps the number of delivered rows and — through a
    :class:`~repro.gpml.streaming.RowBudget` — stops the search itself
    once satisfied.  Callers that filter rows further downstream (GQL
    DISTINCT, host-language predicates) pass their own ``budget`` instead
    and call :meth:`RowBudget.take` per row they actually deliver.

    ``stats``, when given, accumulates matcher step/match/row counters.
    ``count_rows=False`` suppresses the ``stats.rows`` bump — for callers
    (GQL pipeline, SQL scans) whose rows are intermediate, so the flat
    counter keeps meaning *delivered to the end consumer*.  ``span``
    attaches per-stage trace spans under the given parent; when omitted
    but ``stats.trace`` is set, spans hang off the trace root.

    ``telemetry``, when given, records the query into the workload
    registry and query log (:class:`~repro.obs.worklog.Telemetry`) once
    the stream is drained or closed — creating (auto-traced) stats when
    the caller passed none.  The default ``None`` leaves every code path
    untouched.
    """
    if limit is not None and budget is not None:
        raise GpmlEvaluationError(
            "match_iter takes limit or budget, not both: a caller-supplied "
            "budget counts its own delivered rows"
        )
    prepared = query if isinstance(query, PreparedQuery) else prepare(query)
    config = config or MatcherConfig()
    if telemetry is not None and stats is None:
        stats = telemetry.stats_for(query=prepared.text, engine="gpml")
    own_budget = budget is None
    if own_budget:
        budget = RowBudget(limit)
    plan = plan_query(graph, prepared) if config.use_planner else None
    if span is None and stats is not None and stats.trace is not None:
        span = stats.trace.root
    delivery = (
        span.child("row delivery", mode=STREAMING) if span is not None else None
    )

    def rows() -> Iterator[BindingRow]:
        if budget.satisfied:
            return
        for row in _match_stream(graph, prepared, config, plan, budget, stats, span):
            if own_budget:
                budget.take()
            if count_rows and stats is not None:
                stats.rows += 1
            yield row
            if budget.satisfied:
                if delivery is not None:
                    delivery.event("budget_satisfied", taken=budget.taken)
                return

    stream = rows() if delivery is None else timed_rows(delivery, rows())
    if telemetry is None:
        return stream
    return telemetry.instrument(stream, "gpml", prepared.text, stats)


def first(
    graph: PropertyGraph,
    query: "str | ast.GraphPattern | PreparedQuery",
    config: MatcherConfig | None = None,
) -> Optional[BindingRow]:
    """The first binding row, terminating the search early — or None."""
    return next(match_iter(graph, query, config, limit=1), None)


def exists(
    graph: PropertyGraph,
    query: "str | ast.GraphPattern | PreparedQuery",
    config: MatcherConfig | None = None,
) -> bool:
    """Whether the pattern has at least one match (early-terminating)."""
    return first(graph, query, config) is not None


def assemble_result(
    graph: PropertyGraph,
    prepared: PreparedQuery,
    per_pattern: list[list[ReducedBinding]],
    plan: Optional[QueryPlan] = None,
) -> MatchResult:
    """Join per-pattern solutions, apply the postfilter, build rows.

    The materializing assembly used by the Section 6 reference engine and
    the naive baselines (the production engine streams — see
    :func:`_match_stream`); both produce the same textual nested-loop row
    order.  The optional plan supplies the join order; rows always come
    out in the textual nested-loop order regardless.
    """
    join_order = plan.join_order if plan is not None else None
    rows = _join_patterns(graph, prepared, per_pattern, join_order)
    if prepared.normalized.where is not None:
        condition = prepared.normalized.where
        rows = [
            row
            for row in rows
            if condition.truth(EvalContext(bindings=row.values, graph=graph))
        ]
    if prepared.normalized.keep is not None:
        rows = _apply_keep(graph, rows, prepared.normalized.keep)
    return MatchResult(rows=rows, variables=prepared.visible_variables())


# ----------------------------------------------------------------------
# KEEP: post-WHERE selection (Section 7.2 syntax)
# ----------------------------------------------------------------------
def _apply_keep(graph: PropertyGraph, rows: list["BindingRow"], keep) -> list["BindingRow"]:
    """Select rows per endpoint partition *after* the final WHERE.

    This is the semantic difference from head selectors (Section 5.2):
    the paper's Scott→Charles postfilter query is empty with a head
    selector but non-empty with KEEP, because KEEP selects among the rows
    that survived the filter.  Partitions are keyed by the endpoint pairs
    of all matched paths; lengths/costs sum over them.
    """
    partitions: dict[tuple, list[BindingRow]] = {}
    order: list[tuple] = []
    for row in rows:
        key = tuple((p.source_id, p.target_id) for p in row.paths)
        if key not in partitions:
            order.append(key)
        partitions.setdefault(key, []).append(row)
    out: list[BindingRow] = []
    for key in order:
        out.extend(_select_rows(graph, partitions[key], keep))
    return out


def _row_length(row: "BindingRow") -> int:
    return sum(p.length for p in row.paths)


def _row_sort_key(row: "BindingRow") -> tuple:
    elements = tuple(p.element_ids for p in row.paths)
    values = tuple(sorted((k, _hashable(_to_ids(v))) for k, v in row.values.items()))
    return (_row_length(row), elements, values)


def _select_rows(graph: PropertyGraph, partition: list["BindingRow"], keep) -> list["BindingRow"]:
    ordered = sorted(partition, key=_row_sort_key)
    kind = keep.kind
    if kind == "ANY":
        return ordered[:1]
    if kind == "ANY_K":
        return ordered[: keep.k or 1]
    if kind == "ANY_SHORTEST":
        return ordered[:1]  # ordered by total length first
    if kind == "ALL_SHORTEST":
        shortest = _row_length(ordered[0])
        return [row for row in ordered if _row_length(row) == shortest]
    if kind == "SHORTEST_K":
        return ordered[: keep.k or 1]
    if kind == "SHORTEST_K_GROUP":
        kept: list[BindingRow] = []
        groups: list[int] = []
        for row in ordered:
            length = _row_length(row)
            if length not in groups:
                if len(groups) >= (keep.k or 1):
                    break
                groups.append(length)
            kept.append(row)
        return kept
    if kind in ("ANY_CHEAPEST", "TOP_K_CHEAPEST"):
        cost_property = keep.cost_property or "cost"
        costed = sorted(
            ordered,
            key=lambda row: (sum(p.cost(cost_property) for p in row.paths),)
            + _row_sort_key(row),
        )
        k = 1 if kind == "ANY_CHEAPEST" else (keep.k or 1)
        return costed[:k]
    raise GpmlEvaluationError(f"unknown KEEP selector {kind!r}")


def _make_matcher(
    graph: PropertyGraph,
    nfa: PatternNFA,
    pattern,
    config: MatcherConfig,
    analysis,
    *,
    start_candidates=None,
    budget: Optional[RowBudget] = None,
    stats: Optional[PipelineStats] = None,
):
    """The search engine for one pattern run: columnar frontier when the
    pattern is an eligible linear chain (and ``config.use_columnar``),
    otherwise the object matcher — the reference oracle for everything.

    ``start_candidates`` may be a zero-arg callable: it is materialized
    only after the engine choice, so a frontier run has already built the
    columnar snapshot and the planner's candidate source serves itself
    from column scans instead of object hash indexes.
    """
    if config.use_columnar and analysis.strategy == ENUMERATE:
        spec = FrontierMatcher.supports(graph, nfa, config, budget)
        if spec is not None:
            if callable(start_candidates):
                start_candidates = start_candidates()
            return FrontierMatcher(
                graph, nfa, pattern, spec, config,
                start_candidates=start_candidates, budget=budget, stats=stats,
            )
    if callable(start_candidates):
        start_candidates = start_candidates()
    return Matcher(
        graph, nfa, pattern, config,
        start_candidates=start_candidates, budget=budget, stats=stats,
    )


def iter_solve_path_pattern(
    graph: PropertyGraph,
    prepared: PreparedQuery,
    index: int,
    config: MatcherConfig,
    plan: Optional[QueryPlan] = None,
    budget: Optional[RowBudget] = None,
    stats: Optional[PipelineStats] = None,
    span: Optional[Span] = None,
    label: Optional[str] = None,
) -> Iterator[ReducedBinding]:
    """Solutions (reduced, deduplicated, selected) of one path pattern,
    streamed lazily in the engine's deterministic discovery order.

    With a plan, the search starts from the planned candidate set and —
    for a right anchor — runs the reversed pattern, mapping each accepted
    binding back to forward orientation before reduction, so everything
    downstream (dedup, selectors, joins) is orientation-blind.

    Reduction and deduplication stream (incremental seen-set); a selector
    is a pipeline breaker — it materializes this pattern's solution set,
    then yields its selection.  ``budget`` must only be given when this
    stream feeds the terminal consumer directly (never for a hash-join
    build side, which has to be complete).
    """
    path = prepared.normalized.paths[index]
    analysis = prepared.analysis.paths[index]
    nfa = prepared.nfas[index]

    pattern_plan = plan.patterns[index] if plan is not None else None
    reversed_run = (
        pattern_plan is not None
        and pattern_plan.side == RIGHT
        and pattern_plan.reversed_nfa is not None
    )
    if reversed_run:
        matcher = _make_matcher(
            graph,
            pattern_plan.reversed_nfa,
            pattern_plan.reversed_path.pattern,
            config,
            analysis,
            start_candidates=lambda: pattern_plan.start_candidates(graph),
            budget=budget,
            stats=stats,
        )
    else:
        start = (
            (lambda: pattern_plan.start_candidates(graph))
            if pattern_plan is not None
            else None
        )
        matcher = _make_matcher(
            graph, nfa, path.pattern, config, analysis,
            start_candidates=start, budget=budget, stats=stats,
        )

    def record_candidates() -> None:
        if pattern_plan is not None:
            pattern_plan.observed_candidates = matcher.initial_candidate_count

    anchor_meta: dict[str, Any] = {}
    if span is not None and pattern_plan is not None:
        anchor_meta = {
            "anchor": f"{pattern_plan.side} via {pattern_plan.source.describe()}",
            "est_candidates": pattern_plan.source.estimate,
            "est_rows": pattern_plan.est_result,
        }
    return _iter_pattern_solutions(
        graph, matcher, path, analysis, config,
        reverse=reversed_run, on_finish=record_candidates,
        span=span, label=label or f"pattern #{index + 1}",
        anchor_meta=anchor_meta,
    )


def _run_strategy(matcher: Matcher, path, analysis) -> Iterator[PathBinding]:
    """Run the search strategy the analysis chose for one path pattern."""
    strategy = analysis.strategy
    if strategy == ENUMERATE:
        return matcher.enumerate_all()
    if strategy == SHORTEST:
        return matcher.search_shortest()
    if strategy == K_SEARCH:
        return matcher.search_k_shortest(path.selector.k or 1)
    if strategy == CHEAPEST:
        selector = path.selector
        return matcher.search_cheapest(
            selector.k or 1, selector.cost_property or "cost"
        )
    raise GpmlEvaluationError(f"unknown strategy {strategy!r}")


def _iter_pattern_solutions(
    graph: PropertyGraph,
    matcher: Matcher,
    path,
    analysis,
    config: MatcherConfig,
    *,
    reverse: bool = False,
    on_finish=None,
    span: Optional[Span] = None,
    label: str = "pattern #1",
    anchor_meta: Optional[dict] = None,
) -> Iterator[ReducedBinding]:
    """The shared solution stages of one pattern run: strategy search,
    optional binding reversal, streaming reduce + dedup, selector breaker.

    Used by both the planner-driven :func:`iter_solve_path_pattern` and
    the seeded :func:`iter_seeded_rows`, so dedup keys, reversal and
    selector handling cannot drift between the two paths.  ``on_finish``
    runs when the search generator closes (normally or abandoned).

    With a ``span``, the stages open child spans matching the names
    ``classify_pipeline`` uses; the search span's step count is the
    matcher's step delta, read once when the search closes — the matcher
    hot loop itself is not instrumented per span.
    """
    raw = _run_strategy(matcher, path, analysis)
    search_span = dedup_span = None
    if span is not None:
        search_span = span.child(
            f"{label} search ({analysis.strategy})",
            mode=STREAMING,
            **(anchor_meta or {}),
        )
        raw = timed_rows(search_span, raw)
        dedup_span = span.child(f"{label} reduce + dedup", mode=STREAMING)

    def solutions() -> Iterator[ReducedBinding]:
        seen: set[tuple] = set()
        try:
            for binding in raw:
                if dedup_span is not None:
                    dedup_span.rows_in += 1
                if reverse:
                    binding = reverse_binding(binding)
                reduced = reduce_binding(
                    binding, analysis.group_vars, analysis.anonymous_vars
                )
                key = reduced.dedup_key()
                if key in seen:
                    continue
                seen.add(key)
                yield reduced
        finally:
            if search_span is not None:
                search_span.steps = matcher.steps
                search_span.matches = search_span.rows_out
                search_span.meta["observed_candidates"] = (
                    matcher.initial_candidate_count
                )
                metrics = getattr(matcher, "metrics", None)
                if metrics is not None:
                    search_span.meta["engine"] = "columnar"
                    for counter, value in metrics.items():
                        search_span.counts[counter] = value
                    examined = metrics.get("frontier_entries", 0)
                    if examined:
                        search_span.meta["vector_selectivity"] = (
                            metrics.get("frontier_survivors", 0) / examined
                        )
            if on_finish is not None:
                on_finish()

    deduped = solutions()
    if dedup_span is not None:
        deduped = timed_rows(dedup_span, deduped)
    if path.selector is None:
        return deduped

    selector_span = None
    if span is not None:
        selector_span = span.child(
            f"{label} selector {path.selector.kind}", mode=BLOCKING
        )

    def selected() -> Iterator[ReducedBinding]:
        # Pipeline breaker: selectors choose per complete endpoint
        # partition, so this pattern's solution set must be materialized.
        complete = list(deduped)
        if selector_span is not None:
            selector_span.rows_in = selector_span.peak_rows = len(complete)
        yield from apply_selector(
            path.selector, complete, graph, config.default_edge_cost
        )

    if selector_span is None:
        return selected()
    return timed_rows(selector_span, selected())


def iter_seeded_rows(
    graph: PropertyGraph,
    prepared: PreparedQuery,
    config: MatcherConfig,
    start_nodes: list[str],
    *,
    reversed_run: "Optional[tuple[ast.PathPattern, PatternNFA]]" = None,
    budget: Optional[RowBudget] = None,
    stats: Optional[PipelineStats] = None,
    span: Optional[Span] = None,
) -> Iterator[BindingRow]:
    """Binding rows of a single-pattern query anchored at explicit nodes.

    This is the engine primitive behind GQL's chained ``MATCH``: a later
    statement whose pattern pins an end element to a variable bound
    upstream runs one seeded search per incoming binding row, starting
    from exactly the bound node instead of every candidate in the graph.
    ``reversed_run`` carries a pre-compiled reversed pattern + NFA (see
    :mod:`repro.planner.anchor`) when the bound variable pins the *right*
    end; accepted bindings are mapped back to forward orientation, so
    everything downstream is orientation-blind.

    Soundness mirrors the planner's anchor machinery: restricting the
    start candidates to one node selects whole endpoint partitions, so
    selectors and KEEP — which choose per endpoint partition — see
    exactly the partitions a full run would have produced for that node.
    The final WHERE and KEEP of the prepared pattern are applied here
    (the caller strips them from ``prepared`` when they must instead see
    upstream bindings).

    ``span``, when given, *aggregates* across seeded runs: one chained
    MATCH statement may run thousands of seeded searches, so instead of
    one span per seed the caller's statement span accumulates the step
    total and a ``seeded_runs`` tally.  Each matcher's steps are added
    exactly once, when its run closes.
    """
    if prepared.num_path_patterns != 1:
        raise GpmlEvaluationError(
            "iter_seeded_rows requires a single-pattern query; "
            f"got {prepared.num_path_patterns} patterns"
        )
    path = prepared.normalized.paths[0]
    analysis = prepared.analysis.paths[0]
    if reversed_run is not None:
        run_path, run_nfa = reversed_run
    else:
        run_path, run_nfa = path, prepared.nfas[0]
    matcher = _make_matcher(
        graph, run_nfa, run_path.pattern, config, analysis,
        start_candidates=start_nodes, budget=budget, stats=stats,
    )
    # Selector note: a seeded run restricts the search to whole endpoint
    # partitions, so the (blocking) selector stage is scoped to exactly
    # this seed's partitions and selects what a full run would have.
    selected = _iter_pattern_solutions(
        graph, matcher, path, analysis, config, reverse=reversed_run is not None
    )

    def rows() -> Iterator[BindingRow]:
        condition = prepared.normalized.where
        try:
            for solution in selected:
                values, path_obj = _materialize(graph, solution, analysis, path.path_var)
                row = BindingRow(values, [path_obj])
                if condition is not None and not condition.truth(
                    EvalContext(bindings=row.values, graph=graph)
                ):
                    continue
                yield row
        finally:
            if span is not None:
                span.steps += matcher.steps
                span.bump("seeded_runs")

    if prepared.normalized.keep is None:
        return rows()
    return iter(_apply_keep(graph, list(rows()), prepared.normalized.keep))


class SeededSearch:
    """The shared seeded-search entry point, with per-distinct-seed memo.

    Both hosts anchor searches at runtime-known nodes through this object:
    GQL's chained MATCH seeds one run per incoming binding row, and the
    SQL planner's join-through-GRAPH_TABLE rewrite seeds one run per probe
    row.  Each :meth:`run` wraps :func:`iter_seeded_rows` for one seed
    node and yields ``(values, paths)`` items.

    Probe streams repeat seeds (hub nodes), and re-running the identical
    anchored search per duplicate would cost more than the hash join it
    replaces — so complete runs are memoized per seed id.  Only
    *exhausted* runs are cached: a run abandoned mid-way (satisfied row
    budget closed the generator) never populates the memo, so a truncated
    candidate list can never be replayed as if complete.  ``span``, when
    given, aggregates ``seeded_runs`` / ``seed_memo_hit`` /
    ``seed_memo_miss`` tallies and the matchers' step totals instead of
    exploding into one span per seed.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        prepared: PreparedQuery,
        config: Optional[MatcherConfig] = None,
        *,
        reversed_run: "Optional[tuple[ast.PathPattern, PatternNFA]]" = None,
        budget: Optional[RowBudget] = None,
        stats: Optional[PipelineStats] = None,
        span: Optional[Span] = None,
    ):
        self.graph = graph
        self.prepared = prepared
        self.config = config if config is not None else MatcherConfig()
        self.reversed_run = reversed_run
        self.budget = budget
        self.stats = stats
        self.span = span
        self._memo: dict[str, list[tuple[dict, list]]] = {}

    def run(self, seed_id: str) -> Iterator[tuple[dict[str, Any], list]]:
        """All ``(values, paths)`` rows whose anchored end is *seed_id*."""
        cached = self._memo.get(seed_id)
        if cached is not None:
            if self.span is not None:
                self.span.bump("seed_memo_hit")
            yield from cached
            return
        if self.span is not None:
            self.span.bump("seed_memo_miss")
        acc: list[tuple[dict, list]] = []
        for m in iter_seeded_rows(
            self.graph, self.prepared, self.config, [seed_id],
            reversed_run=self.reversed_run, budget=self.budget,
            stats=self.stats, span=self.span,
        ):
            item = (m.values, m.paths)
            acc.append(item)
            yield item
        self._memo[seed_id] = acc


def solve_path_pattern(
    graph: PropertyGraph,
    prepared: PreparedQuery,
    index: int,
    config: MatcherConfig,
    plan: Optional[QueryPlan] = None,
) -> list[ReducedBinding]:
    """Materialized solutions of one path pattern (see the iter variant)."""
    return list(iter_solve_path_pattern(graph, prepared, index, config, plan))


# ----------------------------------------------------------------------
# Joining path patterns (Section 6.6, "Multiple patterns")
# ----------------------------------------------------------------------
def _join_patterns(
    graph: PropertyGraph,
    prepared: PreparedQuery,
    per_pattern: list[list[ReducedBinding]],
    join_order: Optional[list[int]] = None,
) -> list[BindingRow]:
    """Natural-join the per-pattern solutions on shared singleton vars.

    ``join_order`` (from the planner) controls only the *evaluation*
    order; each partial row remembers which solution index it used per
    pattern, and the final sort restores the exact nested-loop order of
    the textual pattern sequence, so results are plan-independent.
    """
    num_patterns = len(per_pattern)
    order = list(join_order) if join_order is not None else list(range(num_patterns))
    # (values, path per pattern index, solution index per pattern index)
    rows: list[tuple[dict[str, Any], dict[int, Path], dict[int, int]]] = [({}, {}, {})]
    bound_vars: set[str] = set()
    for index in order:
        solutions = per_pattern[index]
        path = prepared.normalized.paths[index]
        path_analysis = prepared.analysis.paths[index]
        shared = sorted(
            name
            for name, info in path_analysis.vars.items()
            if not info.anonymous and not info.group and name in bound_vars
        )
        materialized = [
            (position, *_materialize(graph, solution, path_analysis, path.path_var))
            for position, solution in enumerate(solutions)
        ]
        if shared:
            bucket: dict[tuple, list[tuple[int, dict, Path]]] = {}
            for position, values, path_obj in materialized:
                key = tuple(_join_key(values.get(name)) for name in shared)
                bucket.setdefault(key, []).append((position, values, path_obj))
            new_rows = []
            for row_values, row_paths, row_positions in rows:
                key = tuple(_join_key(row_values.get(name)) for name in shared)
                for position, values, path_obj in bucket.get(key, ()):
                    merged = dict(row_values)
                    merged.update(values)
                    new_rows.append(
                        (
                            merged,
                            {**row_paths, index: path_obj},
                            {**row_positions, index: position},
                        )
                    )
            rows = new_rows
        else:
            rows = [
                (
                    dict(row_values) | values,
                    {**row_paths, index: path_obj},
                    {**row_positions, index: position},
                )
                for row_values, row_paths, row_positions in rows
                for position, values, path_obj in materialized
            ]
        bound_vars.update(
            name
            for name, info in path_analysis.vars.items()
            if not info.anonymous and not info.group
        )
    rows.sort(
        key=lambda row: tuple(row[2][index] for index in range(num_patterns))
    )
    return [
        BindingRow(values, [paths[index] for index in range(num_patterns)])
        for values, paths, _ in rows
    ]


def _join_key(value: Any) -> Any:
    if isinstance(value, (Node, Edge)):
        return value.id
    return value


def _materialize(
    graph: PropertyGraph,
    solution: ReducedBinding,
    analysis: PathAnalysis,
    path_var: Optional[str],
) -> tuple[dict[str, Any], Path]:
    values: dict[str, Any] = {}
    singles = solution.singleton_map()
    groups = solution.group_map()
    for name, info in analysis.vars.items():
        if info.anonymous:
            continue
        if info.group:
            values[name] = [graph.element(el) for el in groups.get(name, ())]
        elif name in singles:
            values[name] = graph.element(singles[name])
        else:
            values[name] = NULL  # unbound conditional singleton
    path_obj = Path.from_element_ids(graph, solution.elements)
    if path_var is not None:
        values[path_var] = path_obj
    return values, path_obj


# ----------------------------------------------------------------------
# The streaming pipeline (pull-based; used by match / match_iter)
# ----------------------------------------------------------------------
def _singleton_vars(prepared: PreparedQuery, index: int) -> set[str]:
    return {
        name
        for name, info in prepared.analysis.paths[index].vars.items()
        if not info.anonymous and not info.group
    }


def _iter_join_rows(
    graph: PropertyGraph,
    prepared: PreparedQuery,
    config: MatcherConfig,
    plan: Optional[QueryPlan],
    budget: Optional[RowBudget],
    stats: Optional[PipelineStats],
    span: Optional[Span] = None,
) -> Iterator[BindingRow]:
    """Stream joined binding rows in textual nested-loop order.

    The textual-first pattern is the streaming probe side; every other
    pattern is materialized once into a hash table keyed on the singleton
    variables it shares with the textual prefix (a pipeline breaker, like
    any hash-join build).  Probing a bucket preserves the build pattern's
    solution order, so the emitted rows equal the materializing engine's
    nested-loop order row for row — the row budget therefore only ever
    cuts a suffix.
    """
    num = prepared.num_path_patterns
    if span is not None and plan is not None and num > 1:
        span.event("join_order", order=[i + 1 for i in plan.join_order])
    first_solutions = iter_solve_path_pattern(
        graph, prepared, 0, config, plan, budget, stats, span=span
    )
    path0 = prepared.normalized.paths[0]
    analysis0 = prepared.analysis.paths[0]
    if num == 1:
        for solution in first_solutions:
            values, path_obj = _materialize(graph, solution, analysis0, path0.path_var)
            yield BindingRow(values, [path_obj])
        return

    # Build sides: one bucket table per non-first pattern, in textual
    # order, keyed on the variables shared with the patterns before it.
    builds: list[tuple[list[str], dict[tuple, list[tuple[dict, Path]]]]] = []
    bound_vars = _singleton_vars(prepared, 0)
    for index in range(1, num):
        shared = sorted(_singleton_vars(prepared, index) & bound_vars)
        path = prepared.normalized.paths[index]
        path_analysis = prepared.analysis.paths[index]
        build_span = None
        if span is not None:
            build_span = span.child(
                f"pattern #{index + 1} hash-join build",
                mode=BLOCKING,
                keys=shared,
            )
            build_start = perf_counter()
        buckets: dict[tuple, list[tuple[dict, Path]]] = {}
        for solution in iter_solve_path_pattern(
            graph, prepared, index, config, plan, None, stats, span=build_span
        ):
            if build_span is not None:
                build_span.rows_in += 1
            values, path_obj = _materialize(graph, solution, path_analysis, path.path_var)
            key = tuple(_join_key(values.get(name)) for name in shared)
            buckets.setdefault(key, []).append((values, path_obj))
        if build_span is not None:
            build_span.peak_rows = build_span.rows_out = sum(
                len(entries) for entries in buckets.values()
            )
            build_span.elapsed += perf_counter() - build_start
        if not buckets:
            return  # an empty pattern empties the whole join
        builds.append((shared, buckets))
        bound_vars |= _singleton_vars(prepared, index)

    def expand(
        values: dict[str, Any], paths: list[Path], level: int
    ) -> Iterator[BindingRow]:
        if level == len(builds):
            yield BindingRow(values, list(paths))
            return
        shared, buckets = builds[level]
        key = tuple(_join_key(values.get(name)) for name in shared)
        for build_values, path_obj in buckets.get(key, ()):
            merged = dict(values)
            merged.update(build_values)
            paths.append(path_obj)
            yield from expand(merged, paths, level + 1)
            paths.pop()

    probe_span = None
    if span is not None:
        probe_span = span.child("hash-join probe (pattern #1 outer)", mode=STREAMING)
    for solution in first_solutions:
        if probe_span is not None:
            probe_span.rows_in += 1
        values0, path_obj0 = _materialize(graph, solution, analysis0, path0.path_var)
        for row in expand(values0, [path_obj0], 0):
            if probe_span is not None:
                probe_span.rows_out += 1
            yield row


def _match_stream(
    graph: PropertyGraph,
    prepared: PreparedQuery,
    config: MatcherConfig,
    plan: Optional[QueryPlan],
    budget: Optional[RowBudget],
    stats: Optional[PipelineStats],
    span: Optional[Span] = None,
) -> Iterator[BindingRow]:
    """Joined rows through the postfilter and KEEP, still lazy.

    When untraced, the WHERE postfilter stays the original generator
    expression; tracing swaps in counting wrappers per *stage*, never
    per-row conditionals inside the untraced path.
    """
    rows: Iterator[BindingRow] = _iter_join_rows(
        graph, prepared, config, plan, budget, stats, span
    )
    condition = prepared.normalized.where
    if condition is not None:
        if span is not None:
            where_span = span.child("postfilter WHERE", mode=STREAMING)
            rows = timed_rows(where_span, _filtered_rows(graph, rows, condition, where_span))
        else:
            rows = (
                row
                for row in rows
                if condition.truth(EvalContext(bindings=row.values, graph=graph))
            )
    if prepared.normalized.keep is not None:
        # Pipeline breaker: KEEP selects per endpoint partition among the
        # rows that survived the final WHERE, so it needs all of them.
        keep = prepared.normalized.keep
        if span is not None:
            keep_span = span.child(f"KEEP {keep.kind}", mode=BLOCKING)
            rows = timed_rows(keep_span, _kept_rows(graph, rows, keep, keep_span))
        else:
            rows = iter(_apply_keep(graph, list(rows), keep))
    return rows


def _filtered_rows(
    graph: PropertyGraph, rows: Iterator[BindingRow], condition, where_span: Span
) -> Iterator[BindingRow]:
    """The traced WHERE postfilter (rows_out counted by the wrapper)."""
    for row in rows:
        where_span.rows_in += 1
        if condition.truth(EvalContext(bindings=row.values, graph=graph)):
            yield row


def _kept_rows(
    graph: PropertyGraph, rows: Iterator[BindingRow], keep, keep_span: Span
) -> Iterator[BindingRow]:
    """The traced KEEP breaker; materialization happens on first pull."""
    materialized = list(rows)
    keep_span.rows_in = keep_span.peak_rows = len(materialized)
    yield from _apply_keep(graph, materialized, keep)
