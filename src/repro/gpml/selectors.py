"""Selectors (Figure 8) and the cheapest-path extension (Section 7.1).

A selector conceptually partitions the (possibly infinite) solution space
by path endpoints and keeps a finite subset per partition.  Selectors run
*after* restrictors and after reduction/deduplication (Sections 5.1, 6.5),
and before the cross-pattern join and the final WHERE (Section 5.2).

The paper marks ANY, ANY k and ANY SHORTEST as non-deterministic.  This
implementation refines them deterministically — the lexicographically
least candidate by (length, walk elements, variable content) is chosen —
which is one legal refinement and keeps tests and benchmarks stable.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import GpmlEvaluationError
from repro.gpml.ast import Selector
from repro.gpml.bindings import ReducedBinding
from repro.graph.model import PropertyGraph
from repro.values import is_null


def apply_selector(
    selector: Selector | None,
    solutions: list[ReducedBinding],
    graph: PropertyGraph,
    default_edge_cost: float = 1.0,
) -> list[ReducedBinding]:
    """Apply one selector to deduplicated solutions of a path pattern."""
    if selector is None:
        return solutions
    partitions = _partition_by_endpoints(solutions)
    out: list[ReducedBinding] = []
    for partition in partitions.values():
        out.extend(_select(selector, partition, graph, default_edge_cost))
    return out


def _partition_by_endpoints(
    solutions: list[ReducedBinding],
) -> "OrderedDict[tuple[str, str], list[ReducedBinding]]":
    partitions: OrderedDict[tuple[str, str], list[ReducedBinding]] = OrderedDict()
    for solution in solutions:
        key = (solution.source_id, solution.target_id)
        partitions.setdefault(key, []).append(solution)
    return partitions


def _select(
    selector: Selector,
    partition: list[ReducedBinding],
    graph: PropertyGraph,
    default_edge_cost: float,
) -> list[ReducedBinding]:
    ordered = sorted(partition, key=lambda s: s.sort_key())
    kind = selector.kind
    if kind == "ANY":
        return ordered[:1]
    if kind == "ANY_K":
        return ordered[: _require_k(selector)]
    if kind == "ANY_SHORTEST":
        shortest = min(s.length for s in ordered)
        return [next(s for s in ordered if s.length == shortest)]
    if kind == "ALL_SHORTEST":
        shortest = min(s.length for s in ordered)
        return [s for s in ordered if s.length == shortest]
    if kind == "SHORTEST_K":
        return ordered[: _require_k(selector)]
    if kind == "SHORTEST_K_GROUP":
        k = _require_k(selector)
        kept: list[ReducedBinding] = []
        groups_seen: list[int] = []
        for solution in ordered:
            if solution.length not in groups_seen:
                if len(groups_seen) >= k:
                    break
                groups_seen.append(solution.length)
            kept.append(solution)
        return kept
    if kind in ("ANY_CHEAPEST", "TOP_K_CHEAPEST"):
        cost_property = selector.cost_property or "cost"
        costed = sorted(
            ordered,
            key=lambda s: (_solution_cost(s, graph, cost_property, default_edge_cost),)
            + s.sort_key(),
        )
        k = 1 if kind == "ANY_CHEAPEST" else _require_k(selector)
        return costed[:k]
    raise GpmlEvaluationError(f"unknown selector kind {kind!r}")


def _require_k(selector: Selector) -> int:
    if selector.k is None or selector.k < 1:
        raise GpmlEvaluationError(f"selector {selector} requires a positive k")
    return selector.k


def _solution_cost(
    solution: ReducedBinding,
    graph: PropertyGraph,
    cost_property: str,
    default_edge_cost: float,
) -> float:
    total = 0.0
    # elements = n0, e0, n1, e1, ... ; edges at odd indexes.
    for index in range(1, len(solution.elements), 2):
        value = graph.property_of(solution.elements[index], cost_property, None)
        if value is None or is_null(value):
            total += default_edge_cost
        else:
            total += float(value)
    return total
