"""The literal execution model of Section 6 (reference engine / oracle).

This engine follows the paper's four stages exactly:

1. **Normalization** (shared with the production engine, Section 6.2).
2. **Expansion** — the pattern is unrolled into *rigid patterns*: one per
   choice of quantifier iteration counts and union/alternation branches.
   A rigid pattern is an alternation of node tests and edge tests with
   annotated variables (b¹, b², □ᵢ ...), like the paper's π(n, ℓ).
3. **Rigid-pattern matching** — each node-edge-node part of a rigid
   pattern is matched *independently* against the graph, and the part
   tables are concatenated by an implicit equi-join on shared annotated
   variables (the tables of Section 6.4).  Restrictors filter the joined
   walks; prefilters are evaluated on the assembled rows.
4. **Reduction and deduplication** (shared module, Section 6.5).

Unbounded quantifiers make the set of rigid patterns infinite; the
expansion is cut at ``max_unroll`` iterations.  For restrictor-covered
patterns a sufficient bound exists (|E| for TRAIL, |N| for
ACYCLIC/SIMPLE) and is chosen automatically; for selector-only patterns
the bound is an approximation — callers pick one large enough for the
graph at hand (the differential tests do exactly this).

The engine is deliberately simple and slow: it exists as an executable
specification to differential-test the automaton engine against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import BudgetExceededError, GpmlEvaluationError
from repro.gpml import ast
from repro.gpml.bindings import (
    Annotation,
    ElementaryBinding,
    PathBinding,
    ReducedBinding,
    deduplicate,
    reduce_binding,
)
from repro.gpml.engine import MatchResult, PreparedQuery, assemble_result, prepare
from repro.gpml.matcher import MatcherConfig, RunContext
from repro.gpml.selectors import apply_selector
from repro.graph.model import IN, OUT, UNDIRECTED, PropertyGraph


@dataclass(frozen=True)
class _NodeTestSpec:
    var: str
    ann: Annotation
    label: object  # LabelExpr | None
    where: object  # Expr | None


@dataclass(frozen=True)
class _RigidNode:
    tests: tuple[_NodeTestSpec, ...]


@dataclass(frozen=True)
class _RigidEdge:
    var: str
    ann: Annotation
    orientation: ast.Orientation
    label: object
    where: object


@dataclass
class _RigidSeq:
    """A rigid pattern: items alternate node/edge, node at both ends."""

    items: list  # _RigidNode | _RigidEdge
    instance_wheres: list[tuple] = field(default_factory=list)  # (expr, ann)
    restrictions: list[tuple] = field(default_factory=list)  # (kind, start, end)
    bag_tags: frozenset = frozenset()

    def num_edges(self) -> int:
        return len(self.items) // 2


def _empty_seq() -> _RigidSeq:
    return _RigidSeq(items=[_RigidNode(tests=())])


def _concat(left: _RigidSeq, right: _RigidSeq) -> _RigidSeq:
    """Concatenate; the junction node patterns unify (paper's clean-up)."""
    offset = len(left.items) - 1
    junction = _RigidNode(tests=left.items[-1].tests + right.items[0].tests)
    items = left.items[:-1] + [junction] + right.items[1:]
    return _RigidSeq(
        items=items,
        instance_wheres=left.instance_wheres + right.instance_wheres,
        restrictions=left.restrictions
        + [(kind, start + offset, end + offset) for kind, start, end in right.restrictions],
        bag_tags=left.bag_tags | right.bag_tags,
    )


@dataclass
class ReferenceConfig:
    """Controls for the expansion-based engine."""

    max_unroll: Optional[int] = None  # None = automatic (|N| + |E| + 1)
    max_rigid_patterns: int = 100_000
    max_rows: int = 1_000_000


# ----------------------------------------------------------------------
# Stage 2: Expansion
# ----------------------------------------------------------------------
def _expand(pattern: ast.Pattern, ann: Annotation, max_unroll: int) -> Iterator[_RigidSeq]:
    if isinstance(pattern, ast.NodePattern):
        test = _NodeTestSpec(pattern.var, ann, pattern.label, pattern.where)
        yield _RigidSeq(items=[_RigidNode(tests=(test,))])
        return
    if isinstance(pattern, ast.EdgePattern):
        edge = _RigidEdge(pattern.var, ann, pattern.orientation, pattern.label, pattern.where)
        yield _RigidSeq(items=[_RigidNode(tests=()), edge, _RigidNode(tests=())])
        return
    if isinstance(pattern, ast.Concatenation):
        expansions = [list(_expand(item, ann, max_unroll)) for item in pattern.items]
        for combo in itertools.product(*expansions):
            seq = combo[0]
            for part in combo[1:]:
                seq = _concat(seq, part)
            yield seq
        return
    if isinstance(pattern, ast.Quantified):
        upper = pattern.upper if pattern.upper is not None else max_unroll
        upper = min(upper, max_unroll)
        for n in range(pattern.lower, upper + 1):
            if n == 0:
                yield _empty_seq()
                continue
            iteration_expansions = [
                list(_expand(pattern.inner, ann + ((pattern.quant_id, i),), max_unroll))
                for i in range(1, n + 1)
            ]
            for combo in itertools.product(*iteration_expansions):
                seq = combo[0]
                for part in combo[1:]:
                    seq = _concat(seq, part)
                yield seq
        return
    if isinstance(pattern, ast.OptionalPattern):
        yield _empty_seq()
        yield from _expand(pattern.inner, ann, max_unroll)
        return
    if isinstance(pattern, ast.ParenPattern):
        for seq in _expand(pattern.inner, ann, max_unroll):
            instance_wheres = list(seq.instance_wheres)
            if pattern.where is not None:
                instance_wheres.append((pattern.where, ann))
            restrictions = list(seq.restrictions)
            if pattern.restrictor is not None:
                restrictions.append((pattern.restrictor, 0, len(seq.items) - 1))
            yield _RigidSeq(
                items=seq.items,
                instance_wheres=instance_wheres,
                restrictions=restrictions,
                bag_tags=seq.bag_tags,
            )
        return
    if isinstance(pattern, ast.Alternation):
        classes = [0]
        for op in pattern.operators:
            classes.append(classes[-1] + 1 if op == "|+|" else classes[-1])
        multiset = pattern.has_multiset()
        for branch, dedup_class in zip(pattern.branches, classes):
            for seq in _expand(branch, ann, max_unroll):
                if multiset:
                    tag = (pattern.alt_id, dedup_class, ann)
                    seq = _RigidSeq(
                        items=seq.items,
                        instance_wheres=seq.instance_wheres,
                        restrictions=seq.restrictions,
                        bag_tags=seq.bag_tags | {tag},
                    )
                yield seq
        return
    raise GpmlEvaluationError(f"cannot expand pattern node {type(pattern).__name__}")


# ----------------------------------------------------------------------
# Stage 3: Rigid-pattern matching (part tables + equi-join)
# ----------------------------------------------------------------------
def _match_rigid(graph: PropertyGraph, seq: _RigidSeq, max_rows: int) -> list[PathBinding]:
    if len(seq.items) == 1:
        rows = _node_part_rows(graph, seq.items[0], position=0)
    else:
        rows = None
        for start in range(0, len(seq.items) - 2, 2):
            part = _edge_part_rows(
                graph,
                seq.items[start],
                seq.items[start + 1],
                seq.items[start + 2],
                position=start,
            )
            rows = part if rows is None else _equi_join(rows, part, max_rows)
            # Prune restrictor violations on the joined prefix: a repeated
            # edge (TRAIL) or node (ACYCLIC/SIMPLE) can never be repaired
            # by extending the walk, and dense graphs otherwise blow the
            # row budget on joins the restrictor would discard anyway.
            rows = [
                row
                for row in rows
                if _prefix_restrictions_hold(row, seq.restrictions, start + 2)
            ]
            if not rows:
                return []
    out: list[PathBinding] = []
    for row in rows:
        binding = _assemble(graph, seq, row)
        if binding is not None:
            out.append(binding)
    return out


def _node_part_rows(graph: PropertyGraph, node: _RigidNode, position: int) -> list[dict]:
    rows = []
    for node_id in sorted(graph.node_ids()):
        row = _apply_node_tests(graph, node, node_id, position)
        if row is not None:
            rows.append(row)
    return rows


def _apply_node_tests(
    graph: PropertyGraph, node: _RigidNode, node_id: str, position: int
) -> Optional[dict]:
    row: dict = {("pos", position): node_id}
    for test in node.tests:
        if test.label is not None and not test.label.matches(graph.labels_of(node_id)):
            return None
        key = (test.var, test.ann)
        if key in row and row[key] != node_id:
            return None
        row[key] = node_id
    return row


_TRAVERSALS = {
    OUT: lambda first, second: [(first, second)],
    IN: lambda first, second: [(second, first)],
}


def _edge_part_rows(
    graph: PropertyGraph,
    left: _RigidNode,
    edge: _RigidEdge,
    right: _RigidNode,
    position: int,
) -> list[dict]:
    """All matches of one node-edge-node part, computed independently."""
    rows: list[dict] = []
    for graph_edge in sorted(graph.edges()):
        first, second = graph_edge.endpoint_ids
        traversals: list[tuple[str, str]] = []
        if graph_edge.is_directed:
            if edge.orientation.admits(OUT):
                traversals.append((first, second))
            if edge.orientation.admits(IN):
                traversals.append((second, first))
        else:
            if edge.orientation.admits(UNDIRECTED):
                traversals.append((first, second))
                if first != second:
                    traversals.append((second, first))
        if not traversals:
            continue
        if edge.label is not None and not edge.label.matches(graph_edge.labels):
            continue
        for source, target in traversals:
            row = _apply_node_tests(graph, left, source, position)
            if row is None:
                continue
            right_row = _apply_node_tests(graph, right, target, position + 2)
            if right_row is None:
                continue
            merged = _merge_rows(row, right_row)
            if merged is None:
                continue
            edge_key = (edge.var, edge.ann)
            if merged.get(edge_key, graph_edge.id) != graph_edge.id:
                continue
            merged[edge_key] = graph_edge.id
            merged[("pos", position + 1)] = graph_edge.id
            # Local WHERE whose references live in this part (the paper
            # checks these at part-construction time).
            if edge.where is not None:
                bind_map = _row_bind_map(merged)
                ctx = RunContext(graph, bind_map, edge.ann)
                if not edge.where.truth(ctx):
                    continue
            rows.append(merged)
    return rows


def _merge_rows(left: dict, right: dict) -> Optional[dict]:
    merged = dict(left)
    for key, value in right.items():
        if merged.get(key, value) != value:
            return None
        merged[key] = value
    return merged


def _equi_join(left_rows: list[dict], right_rows: list[dict], max_rows: int) -> list[dict]:
    if not left_rows or not right_rows:
        return []
    shared = sorted(
        set(left_rows[0].keys()) & set(right_rows[0].keys()),
        key=repr,
    )
    index: dict[tuple, list[dict]] = {}
    for row in right_rows:
        key = tuple(row[k] for k in shared)
        index.setdefault(key, []).append(row)
    out: list[dict] = []
    for row in left_rows:
        key = tuple(row[k] for k in shared)
        for other in index.get(key, ()):
            merged = _merge_rows(row, other)
            if merged is not None:
                out.append(merged)
                if len(out) > max_rows:
                    raise BudgetExceededError(
                        f"reference engine exceeded max_rows={max_rows}"
                    )
    return out


def _row_bind_map(row: dict) -> dict:
    bind_map: dict = {}
    for key, element in row.items():
        if key[0] == "pos":
            continue
        var, ann = key
        bind_map.setdefault(var, {})[ann] = element
    return bind_map


def _assemble(graph: PropertyGraph, seq: _RigidSeq, row: dict) -> Optional[PathBinding]:
    elements = tuple(row[("pos", i)] for i in range(len(seq.items)))
    for kind, start, end in seq.restrictions:
        if not _restriction_holds(kind, elements[start : end + 1]):
            return None
    bind_map = _row_bind_map(row)
    for where, ann in seq.instance_wheres:
        ctx = RunContext(graph, bind_map, ann)
        if not where.truth(ctx):
            return None
    # Node/edge WHERE clauses that reference other parts are checked here
    # (conjunctively equivalent to the paper's part-stage checks).
    for index, item in enumerate(seq.items):
        if isinstance(item, _RigidNode):
            for test in item.tests:
                if test.where is not None:
                    ctx = RunContext(graph, bind_map, test.ann)
                    if not test.where.truth(ctx):
                        return None
    entries = []
    for index, item in enumerate(seq.items):
        if isinstance(item, _RigidNode):
            for test in item.tests:
                entries.append(ElementaryBinding(test.var, test.ann, elements[index]))
        else:
            entries.append(ElementaryBinding(item.var, item.ann, elements[index]))
    return PathBinding(elements=elements, entries=tuple(entries), bag_tags=seq.bag_tags)


def _prefix_restrictions_hold(
    row: dict, restrictions: list[tuple], max_position: int
) -> bool:
    """Can a partial walk (positions 0..max_position) still satisfy all
    restrictions?  Complete spans get the exact check; incomplete ones the
    prefix-monotone necessary condition (distinct edges for TRAIL,
    distinct nodes for ACYCLIC — and for SIMPLE too: an interior repeat
    can never be legalized, and a premature return to the first node puts
    it at an interior position of the final span)."""
    for kind, start, end in restrictions:
        if start >= max_position:
            continue
        upto = min(end, max_position)
        span = tuple(row[("pos", i)] for i in range(start, upto + 1))
        if upto == end:
            if not _restriction_holds(kind, span):
                return False
        elif kind == "TRAIL":
            edges = span[1::2]
            if len(set(edges)) != len(edges):
                return False
        else:  # ACYCLIC | SIMPLE
            nodes = span[0::2]
            if len(set(nodes)) != len(nodes):
                return False
    return True


def _restriction_holds(kind: str, span: tuple[str, ...]) -> bool:
    nodes = span[0::2]
    edges = span[1::2]
    if kind == "TRAIL":
        return len(set(edges)) == len(edges)
    if kind == "ACYCLIC":
        return len(set(nodes)) == len(nodes)
    if kind == "SIMPLE":
        interior = nodes[1:] if nodes[0] == nodes[-1] else nodes
        return len(set(interior)) == len(interior)
    raise GpmlEvaluationError(f"unknown restrictor {kind!r}")


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def reference_solve_path_pattern(
    graph: PropertyGraph,
    prepared: PreparedQuery,
    index: int,
    config: ReferenceConfig,
) -> list[ReducedBinding]:
    """Stage 2-4 for one path pattern."""
    path = prepared.normalized.paths[index]
    analysis = prepared.analysis.paths[index]
    max_unroll = config.max_unroll
    if max_unroll is None:
        max_unroll = graph.num_nodes + graph.num_edges + 1

    pattern = path.pattern
    raw: list[PathBinding] = []
    count = 0
    for seq in _expand(pattern, (), max_unroll):
        count += 1
        if count > config.max_rigid_patterns:
            raise BudgetExceededError(
                f"reference engine exceeded max_rigid_patterns="
                f"{config.max_rigid_patterns}"
            )
        if path.restrictor is not None:
            seq.restrictions.append((path.restrictor, 0, len(seq.items) - 1))
        raw.extend(_match_rigid(graph, seq, config.max_rows))

    reduced = [
        reduce_binding(b, analysis.group_vars, analysis.anonymous_vars) for b in raw
    ]
    solutions = deduplicate(reduced)
    solutions.sort(key=lambda s: s.sort_key())
    return apply_selector(path.selector, solutions, graph, MatcherConfig().default_edge_cost)


def reference_match(
    graph: PropertyGraph,
    query: "str | PreparedQuery",
    config: ReferenceConfig | None = None,
) -> MatchResult:
    """Evaluate a MATCH statement with the Section 6 reference pipeline."""
    prepared = query if isinstance(query, PreparedQuery) else prepare(query)
    config = config or ReferenceConfig()
    per_pattern = [
        reference_solve_path_pattern(graph, prepared, index, config)
        for index in range(prepared.num_path_patterns)
    ]
    return assemble_result(graph, prepared, per_pattern)
