"""Compilation of normalized path patterns into counter NFAs.

The matcher explores the product of the property graph with a small
nondeterministic automaton compiled from the pattern:

* **states** sit *between* element patterns (at node positions),
* **edge transitions** consume one graph edge under an
  :class:`~repro.gpml.ast.EdgePattern`,
* **epsilon transitions** carry actions: node tests, quantifier counter
  bookkeeping (Thompson construction with bounded counters), restrictor
  scopes, per-paren prefilters and multiset provenance tags.

Counters saturate at the quantifier's upper bound (or at the lower bound
for unbounded quantifiers), which keeps the reachable product state space
finite — the standard trick that makes shortest-path search terminate on
cyclic graphs (Section 5 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import GpmlAnalysisError
from repro.gpml import ast
from repro.gpml.analysis import PathAnalysis
from repro.gpml.expr import Expr

#: synthetic scope id for a restrictor at the head of the path pattern
PATH_SCOPE_ID = 0


@dataclass(frozen=True)
class NodeTest:
    """Apply a node pattern at the current graph node (test + bind)."""

    pattern: ast.NodePattern
    deferred: bool


@dataclass(frozen=True)
class EnterQuant:
    quant_id: int


@dataclass(frozen=True)
class IterBegin:
    """Start the next iteration; guarded by ``count < upper``."""

    quant_id: int
    upper: Optional[int]
    cap: int


@dataclass(frozen=True)
class ExitQuant:
    """Leave the quantifier; guarded by ``count >= lower``."""

    quant_id: int
    lower: int


@dataclass(frozen=True)
class ScopeBegin:
    scope_id: int
    restrictor: Optional[str]


@dataclass(frozen=True)
class ScopeEnd:
    scope_id: int
    restrictor: Optional[str]
    where: Optional[Expr]
    deferred: bool


@dataclass(frozen=True)
class BagTag:
    """Multiset-alternation provenance (Section 4.5)."""

    alt_id: int
    dedup_class: int


Action = object  # union of the dataclasses above; None for plain epsilon


@dataclass(frozen=True)
class EdgeTransition:
    target: int
    pattern: ast.EdgePattern
    deferred: bool


@dataclass(frozen=True)
class EpsTransition:
    target: int
    action: Optional[Action]


class PatternNFA:
    """A compiled path pattern."""

    def __init__(self) -> None:
        self.edges: list[list[EdgeTransition]] = []
        self.epsilons: list[list[EpsTransition]] = []
        self.start = 0
        self.accept = 0

    @property
    def num_states(self) -> int:
        return len(self.edges)

    def new_state(self) -> int:
        self.edges.append([])
        self.epsilons.append([])
        return len(self.edges) - 1

    def add_eps(self, source: int, target: int, action: Optional[Action] = None) -> None:
        self.epsilons[source].append(EpsTransition(target=target, action=action))

    def add_edge(self, source: int, target: int, pattern: ast.EdgePattern, deferred: bool) -> None:
        self.edges[source].append(EdgeTransition(target=target, pattern=pattern, deferred=deferred))

    def describe(self) -> str:
        """Human-readable dump (used by EXPLAIN and tests)."""
        lines = [f"states: {self.num_states}, start: {self.start}, accept: {self.accept}"]
        for state in range(self.num_states):
            for eps in self.epsilons[state]:
                action = "" if eps.action is None else f" [{eps.action}]"
                lines.append(f"  {state} -ε-> {eps.target}{action}")
            for edge in self.edges[state]:
                lines.append(f"  {state} -{edge.pattern}-> {edge.target}")
        return "\n".join(lines)


def compile_path_pattern(path: ast.PathPattern, analysis: PathAnalysis) -> PatternNFA:
    """Compile one normalized path pattern into its NFA."""
    nfa = PatternNFA()
    start = nfa.new_state()
    nfa.start = start
    deferred = analysis.deferred_wheres
    if path.restrictor is not None:
        inner_start = nfa.new_state()
        nfa.add_eps(start, inner_start, ScopeBegin(PATH_SCOPE_ID, path.restrictor))
        end = _build(nfa, path.pattern, inner_start, deferred)
        accept = nfa.new_state()
        nfa.add_eps(end, accept, ScopeEnd(PATH_SCOPE_ID, path.restrictor, None, False))
        nfa.accept = accept
    else:
        nfa.accept = _build(nfa, path.pattern, start, deferred)
    return nfa


def _build(nfa: PatternNFA, pattern: ast.Pattern, start: int, deferred: set[int]) -> int:
    if isinstance(pattern, ast.NodePattern):
        end = nfa.new_state()
        nfa.add_eps(start, end, NodeTest(pattern, deferred=id(pattern) in deferred))
        return end
    if isinstance(pattern, ast.EdgePattern):
        end = nfa.new_state()
        nfa.add_edge(start, end, pattern, deferred=id(pattern) in deferred)
        return end
    if isinstance(pattern, ast.Concatenation):
        current = start
        for item in pattern.items:
            current = _build(nfa, item, current, deferred)
        return current
    if isinstance(pattern, ast.Quantified):
        return _build_quantified(nfa, pattern, start, deferred)
    if isinstance(pattern, ast.OptionalPattern):
        inner_start = nfa.new_state()
        nfa.add_eps(start, inner_start)
        inner_end = _build(nfa, pattern.inner, inner_start, deferred)
        end = nfa.new_state()
        nfa.add_eps(inner_end, end)
        nfa.add_eps(start, end)  # skip branch
        return end
    if isinstance(pattern, ast.ParenPattern):
        inner_start = nfa.new_state()
        nfa.add_eps(
            start, inner_start, ScopeBegin(pattern.paren_id, pattern.restrictor)
        )
        inner_end = _build(nfa, pattern.inner, inner_start, deferred)
        end = nfa.new_state()
        nfa.add_eps(
            inner_end,
            end,
            ScopeEnd(
                pattern.paren_id,
                pattern.restrictor,
                pattern.where,
                deferred=id(pattern) in deferred,
            ),
        )
        return end
    if isinstance(pattern, ast.Alternation):
        return _build_alternation(nfa, pattern, start, deferred)
    raise GpmlAnalysisError(f"cannot compile pattern node {type(pattern).__name__}")


def _build_quantified(
    nfa: PatternNFA, pattern: ast.Quantified, start: int, deferred: set[int]
) -> int:
    lower, upper = pattern.lower, pattern.upper
    cap = upper if upper is not None else max(lower, 0)
    decide = nfa.new_state()
    nfa.add_eps(start, decide, EnterQuant(pattern.quant_id))
    inner_start = nfa.new_state()
    nfa.add_eps(decide, inner_start, IterBegin(pattern.quant_id, upper, cap))
    inner_end = _build(nfa, pattern.inner, inner_start, deferred)
    nfa.add_eps(inner_end, decide)  # loop back for the next iteration
    end = nfa.new_state()
    nfa.add_eps(decide, end, ExitQuant(pattern.quant_id, lower))
    return end


def _build_alternation(
    nfa: PatternNFA, pattern: ast.Alternation, start: int, deferred: set[int]
) -> int:
    # Branches joined by '|' share a dedup class; '|+|' separates classes,
    # so reduction keeps multiset branches apart (Section 4.5).
    classes: list[int] = [0]
    for op in pattern.operators:
        classes.append(classes[-1] + 1 if op == "|+|" else classes[-1])
    multiset = pattern.has_multiset()
    end = nfa.new_state()
    for branch, dedup_class in zip(pattern.branches, classes):
        branch_start = nfa.new_state()
        action = BagTag(pattern.alt_id, dedup_class) if multiset else None
        nfa.add_eps(start, branch_start, action)
        branch_end = _build(nfa, branch, branch_start, deferred)
        nfa.add_eps(branch_end, end)
    return end
