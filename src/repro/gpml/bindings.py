"""Path bindings, reduction and deduplication (Sections 6.4-6.5).

A *path binding* is a sequence of elementary bindings: pairs of an
annotated variable and a graph element.  Annotations record which
iteration of which quantifier a binding belongs to (the paper's
superscripts b¹, b², ... and the subscripts on anonymous variables).

*Reduction* strips annotations: singleton variables keep their single
element, group variables collapse to the ordered list of elements across
iterations, anonymous variables disappear.  *Deduplication* then collects
reduced bindings into a set — except that bindings tagged by different
multiset-alternation branches (``|+|``, Section 4.5) are kept apart, which
is exactly how the multiset semantics survives reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

#: An annotation is a tuple of (quantifier id, iteration number) pairs,
#: outermost quantifier first.  The empty tuple annotates top-level
#: (singleton) bindings.
Annotation = tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class ElementaryBinding:
    """One (variable, annotation) -> element entry of a path binding."""

    var: str
    annotation: Annotation
    element_id: str

    def __repr__(self) -> str:
        if not self.annotation:
            return f"{self.var}={self.element_id}"
        ann = ",".join(f"q{q}#{i}" for q, i in self.annotation)
        return f"{self.var}[{ann}]={self.element_id}"


@dataclass(frozen=True)
class PathBinding:
    """Raw matcher output for one accepted run (before reduction).

    ``elements`` is the alternating node/edge id sequence of the traversed
    walk; ``entries`` the elementary bindings in event (left-to-right)
    order; ``bag_tags`` the multiset-alternation provenance tags.
    """

    elements: tuple[str, ...]
    entries: tuple[ElementaryBinding, ...]
    bag_tags: frozenset = frozenset()


@dataclass(frozen=True)
class ReducedBinding:
    """A reduced path binding: the walk plus annotation-free variable map.

    ``singletons`` maps variable name -> element id; ``groups`` maps
    variable name -> ordered tuple of element ids (iteration order).
    Conditional variables that did not bind are simply absent.
    ``bag_tags`` keeps multiset branches apart during deduplication and is
    stripped when results are materialized.
    """

    elements: tuple[str, ...]
    singletons: tuple[tuple[str, str], ...]
    groups: tuple[tuple[str, tuple[str, ...]], ...]
    bag_tags: frozenset = frozenset()

    @property
    def source_id(self) -> str:
        return self.elements[0]

    @property
    def target_id(self) -> str:
        return self.elements[-1]

    @property
    def length(self) -> int:
        """Number of edges in the walk."""
        return len(self.elements) // 2

    def singleton_map(self) -> dict[str, str]:
        return dict(self.singletons)

    def group_map(self) -> dict[str, tuple[str, ...]]:
        return dict(self.groups)

    def sort_key(self) -> tuple:
        """Deterministic order: by length, walk, then variable content."""
        return (self.length, self.elements, self.singletons, self.groups)

    def dedup_key(self) -> tuple:
        return (self.elements, self.singletons, self.groups, self.bag_tags)


def reduce_binding(
    binding: PathBinding,
    group_vars: frozenset[str],
    anonymous_vars: frozenset[str],
) -> ReducedBinding:
    """Strip annotations per Section 6.5.

    Singleton entries must be consistent (enforced during matching); group
    entries are collected in event order, which coincides with iteration
    order because patterns are matched left to right.
    """
    singles: dict[str, str] = {}
    groups: dict[str, list[str]] = {}
    for entry in binding.entries:
        if entry.var in anonymous_vars:
            continue
        if entry.var in group_vars:
            groups.setdefault(entry.var, []).append(entry.element_id)
        else:
            # Repeated singleton binds are equality-checked during the
            # match, so overwriting is a no-op by construction.
            singles[entry.var] = entry.element_id
    return ReducedBinding(
        elements=binding.elements,
        singletons=tuple(sorted(singles.items())),
        groups=tuple(sorted((var, tuple(vals)) for var, vals in groups.items())),
        bag_tags=binding.bag_tags,
    )


def deduplicate(bindings: Iterable[ReducedBinding]) -> list[ReducedBinding]:
    """Keep one copy per dedup key, preserving first-seen order."""
    seen: set[tuple] = set()
    out: list[ReducedBinding] = []
    for binding in bindings:
        key = binding.dedup_key()
        if key not in seen:
            seen.add(key)
            out.append(binding)
    return out


def strip_bag_tags(binding: ReducedBinding) -> ReducedBinding:
    """Remove multiset provenance before materializing results."""
    if not binding.bag_tags:
        return binding
    return ReducedBinding(
        elements=binding.elements,
        singletons=binding.singletons,
        groups=binding.groups,
        bag_tags=frozenset(),
    )
