"""Streaming-pipeline primitives: row budgets, stats, stage classification.

The execution stack is a lazy, pull-based pipeline: the matcher yields
accepted bindings as the product-graph search discovers them, and every
downstream stage is either *streaming* (emits rows as its input produces
them — reduction, WALK dedup, hash-join probing, WHERE filters) or a
*pipeline breaker* (must consume its whole input before emitting anything
— selectors, KEEP, ORDER BY, vertical aggregation).

Three small primitives make early termination explicit:

* :class:`RowBudget` — a cooperative cancellation token.  The terminal
  consumer calls :meth:`RowBudget.take` once per row it actually delivers;
  producers poll :attr:`RowBudget.satisfied` and abandon the search.  This
  is how GQL ``LIMIT``, ``Session.exists()`` and ``graph_table(...,
  limit=N)`` stop the underlying NFA search itself.  One budget may be
  shared by *many* producers: a GQL statement pipeline threads the same
  token through every chained MATCH's searches, so a satisfied consumer
  cancels even the first statement's exploration.  It is distinct from
  the *error-raising* safety budgets (``MatcherConfig.max_steps`` /
  ``max_results``), which exist to catch pathological queries.
* :class:`PipelineStats` — observability counters (edge expansions,
  raw matches, delivered rows) for benchmarks and tests that assert early
  termination is real.
* :func:`classify_pipeline` — the static streaming/blocking
  classification of every stage of a prepared query, rendered by
  ``EXPLAIN`` and ``EXPLAIN PLAN``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.trace import QueryTrace

from repro.gpml.analysis import CHEAPEST, ENUMERATE, K_SEARCH, SHORTEST

#: stage modes
STREAMING = "streaming"
BLOCKING = "blocking"


class RowBudget:
    """Cooperative cancellation token for early termination.

    ``needed=None`` means unlimited: :attr:`satisfied` is never true and
    the pipeline runs to exhaustion.  Otherwise the terminal stage calls
    :meth:`take` per delivered row, and every producer that polls
    :attr:`satisfied` stops as soon as the consumer has enough.  Because
    the token counts *delivered* rows (after dedup, joins, filters and
    DISTINCT), aborting a satisfied search can only suppress rows beyond
    the already-delivered prefix — never change it.
    """

    __slots__ = ("needed", "taken")

    def __init__(self, needed: Optional[int] = None):
        if needed is not None and needed < 0:
            raise ValueError(f"row budget must be non-negative, got {needed}")
        self.needed = needed
        self.taken = 0

    @property
    def satisfied(self) -> bool:
        return self.needed is not None and self.taken >= self.needed

    @property
    def remaining(self) -> Optional[int]:
        if self.needed is None:
            return None
        return max(self.needed - self.taken, 0)

    def take(self, count: int = 1) -> None:
        self.taken += count

    def __repr__(self) -> str:
        return f"RowBudget(needed={self.needed}, taken={self.taken})"


@dataclass
class PipelineStats:
    """Counters recorded by a streaming execution.

    ``steps`` is the matcher's edge-expansion count (the unit the
    ``max_steps`` safety budget is measured in), summed over all matchers
    the query ran; ``matches`` counts raw accepted bindings the searches
    emitted; ``rows`` counts rows the pipeline delivered to the caller.
    Benchmarks assert on ``steps`` — wall-clock-free evidence that
    ``LIMIT 1`` / ``exists()`` explore a fraction of the search space.

    The three flat counters are always maintained.  Attaching a
    :class:`~repro.obs.trace.QueryTrace` to :attr:`trace` (or using
    :meth:`traced` / ``repro.obs.tracing_stats``) additionally records a
    per-stage span tree, from which :meth:`breakdown` derives
    per-pattern / per-statement views of the same totals.
    """

    steps: int = 0
    matches: int = 0
    rows: int = 0
    trace: Optional["QueryTrace"] = field(default=None, repr=False, compare=False)
    #: DML outcome of a write query: summary counts ({"nodes_created": 1,
    #: ...}) and "commit" / "rollback".  None for read queries.
    mutations: Optional[dict] = field(default=None, repr=False, compare=False)
    transaction: Optional[str] = field(default=None, repr=False, compare=False)

    @classmethod
    def traced(
        cls, query: Optional[str] = None, engine: Optional[str] = None
    ) -> "PipelineStats":
        """Stats with tracing enabled (span tree on :attr:`trace`)."""
        from repro.obs.trace import QueryTrace

        return cls(trace=QueryTrace(query=query, engine=engine))

    def breakdown(self) -> list[dict[str, Any]]:
        """Per-stage counters derived from the trace (pre-order).

        Empty when tracing is off.  Each entry carries the span's name,
        kind, tree depth, and its share of the flat counters — so
        ``sum(entry["steps"])`` equals :attr:`steps` for a fully drained
        traced run (each matcher's steps land on exactly one span).
        """
        if self.trace is None:
            return []
        entries: list[dict[str, Any]] = []
        for depth, span in self.trace.root.flatten():
            if span.kind == "root":
                continue
            entries.append(
                {
                    "name": span.name,
                    "kind": span.kind,
                    "depth": depth - 1,
                    "rows_in": span.rows_in,
                    "rows_out": span.rows_out,
                    "steps": span.steps,
                    "matches": span.matches,
                    "peak_rows": span.peak_rows,
                    "elapsed_ms": round(span.elapsed_ms, 3),
                }
            )
        return entries


@dataclass(frozen=True)
class StageInfo:
    """One classified stage of the execution pipeline."""

    name: str
    mode: str  # STREAMING | BLOCKING
    detail: str = ""

    def describe(self) -> str:
        detail = f" — {self.detail}" if self.detail else ""
        return f"[{self.mode}] {self.name}{detail}"


#: why each search strategy may stream (emission granularity)
_SEARCH_DETAIL = {
    ENUMERATE: "DFS emits each accepted binding as it is discovered",
    SHORTEST: "BFS emits per completed layer (nondecreasing path length)",
    K_SEARCH: "layered search emits per completed layer",
    CHEAPEST: "Dijkstra emits in cost order as the frontier settles",
}


def classify_pipeline(prepared) -> list[StageInfo]:
    """Classify every stage of a prepared query as streaming or blocking.

    The classification mirrors the actual generator pipeline in
    :mod:`repro.gpml.engine`: per pattern a search stage, a reduce+dedup
    stage and (when present) a selector breaker; then the cross-pattern
    hash join (builds block, the textual-first probe side streams), the
    final WHERE postfilter, and KEEP.
    """
    stages: list[StageInfo] = []
    num = len(prepared.normalized.paths)
    for index, (path, analysis) in enumerate(
        zip(prepared.normalized.paths, prepared.analysis.paths)
    ):
        n = index + 1
        strategy = analysis.strategy
        stages.append(
            StageInfo(
                name=f"pattern #{n} search ({strategy})",
                mode=STREAMING,
                detail=_SEARCH_DETAIL.get(strategy, ""),
            )
        )
        stages.append(
            StageInfo(
                name=f"pattern #{n} reduce + dedup",
                mode=STREAMING,
                detail="incremental seen-set over reduced bindings",
            )
        )
        if path.selector is not None:
            stages.append(
                StageInfo(
                    name=f"pattern #{n} selector {path.selector.kind}",
                    mode=BLOCKING,
                    detail="needs complete endpoint partitions",
                )
            )
    if num > 1:
        for index in range(1, num):
            stages.append(
                StageInfo(
                    name=f"pattern #{index + 1} hash-join build",
                    mode=BLOCKING,
                    detail="materializes the build side keyed on shared variables",
                )
            )
        stages.append(
            StageInfo(
                name="hash-join probe (pattern #1 outer)",
                mode=STREAMING,
                detail="probe side streams in textual nested-loop order",
            )
        )
    if prepared.normalized.where is not None:
        stages.append(
            StageInfo(
                name="postfilter WHERE",
                mode=STREAMING,
                detail="per-row predicate",
            )
        )
    if prepared.normalized.keep is not None:
        stages.append(
            StageInfo(
                name=f"KEEP {prepared.normalized.keep.kind}",
                mode=BLOCKING,
                detail="selects per endpoint partition after the final WHERE",
            )
        )
    stages.append(
        StageInfo(
            name="row delivery",
            mode=STREAMING,
            detail="rows surface as the pipeline produces them",
        )
    )
    return stages


def render_pipeline(stages: list[StageInfo], indent: str = "  ") -> list[str]:
    """Uniform text rendering shared by EXPLAIN and EXPLAIN PLAN."""
    width = max(len(stage.mode) for stage in stages)
    lines = ["pipeline:"]
    for stage in stages:
        detail = f" — {stage.detail}" if stage.detail else ""
        lines.append(f"{indent}[{stage.mode:<{width}}] {stage.name}{detail}")
    return lines
