"""Normalization (Section 6.2 of the paper).

Normalization rewrites each path pattern so that:

1. every concatenation, every parenthesized sub-pattern, every quantified
   body, and every alternation branch *starts and ends with a node
   pattern* — bare edge patterns get anonymous node patterns on both
   sides, exactly like the paper's rewrite of ``[-[b:Transfer]->]+`` into
   ``[()-[b:Transfer]->()]{1,}``;
2. every anonymous node and edge pattern receives a fresh variable
   (the paper's □ᵢ and −ᵢ), so the reference engine can build its join
   tables and the reduction step can strip them later;
3. every quantifier, parenthesized pattern and alternation receives a
   stable numeric id (used for counters, restrictor scopes and multiset
   provenance tags).

Adjacent node patterns (for instance at quantifier boundaries, where the
paper's "clean-up" step deletes one of them) are *kept*: the automaton
simply applies both node tests at the same position, which is equivalent
to the paper's unification.

Normalization never mutates the input AST; it builds a fresh tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GpmlSyntaxError
from repro.gpml import ast

ANON_NODE_PREFIX = "__n"
ANON_EDGE_PREFIX = "__e"


def is_anonymous_name(name: str) -> bool:
    return name.startswith(ANON_NODE_PREFIX) or name.startswith(ANON_EDGE_PREFIX)


@dataclass
class NormalizeState:
    """Counters shared across one graph pattern."""

    next_anon: int = 0
    next_quant: int = 0
    next_paren: int = 0
    next_alt: int = 0

    def fresh_node_var(self) -> str:
        self.next_anon += 1
        return f"{ANON_NODE_PREFIX}{self.next_anon}"

    def fresh_edge_var(self) -> str:
        self.next_anon += 1
        return f"{ANON_EDGE_PREFIX}{self.next_anon}"


def normalize_graph_pattern(pattern: ast.GraphPattern) -> ast.GraphPattern:
    """Normalize all path patterns of a MATCH statement."""
    state = NormalizeState()
    paths = [_normalize_path_pattern(p, state) for p in pattern.paths]
    return ast.GraphPattern(paths=paths, where=pattern.where, keep=pattern.keep)


def _normalize_path_pattern(path: ast.PathPattern, state: NormalizeState) -> ast.PathPattern:
    normalized = _normalize(path.pattern, state)
    normalized = _pad_to_nodes(normalized, state)
    return ast.PathPattern(
        pattern=normalized,
        selector=path.selector,
        restrictor=path.restrictor,
        path_var=path.path_var,
    )


def _normalize(pattern: ast.Pattern, state: NormalizeState) -> ast.Pattern:
    if isinstance(pattern, ast.NodePattern):
        var = pattern.var
        anonymous = var is None
        if anonymous:
            var = state.fresh_node_var()
        return ast.NodePattern(
            var=var, label=pattern.label, where=pattern.where, anonymous=anonymous
        )
    if isinstance(pattern, ast.EdgePattern):
        var = pattern.var
        anonymous = var is None
        if anonymous:
            var = state.fresh_edge_var()
        return ast.EdgePattern(
            orientation=pattern.orientation,
            var=var,
            label=pattern.label,
            where=pattern.where,
            anonymous=anonymous,
        )
    if isinstance(pattern, ast.Concatenation):
        items = [_normalize(item, state) for item in pattern.items]
        padded: list[ast.Pattern] = []
        previous_ends_at_edge = True  # force a node pattern at the start
        for item in items:
            if _starts_with_edge(item) and previous_ends_at_edge:
                padded.append(_anon_node(state))
            padded.append(item)
            previous_ends_at_edge = _ends_with_edge(item)
        if previous_ends_at_edge:
            padded.append(_anon_node(state))
        return ast.Concatenation(items=padded)
    if isinstance(pattern, ast.Quantified):
        state.next_quant += 1
        quant_id = state.next_quant
        inner = _pad_to_nodes(_normalize(pattern.inner, state), state)
        return ast.Quantified(
            inner=inner, lower=pattern.lower, upper=pattern.upper, quant_id=quant_id
        )
    if isinstance(pattern, ast.OptionalPattern):
        inner = _pad_to_nodes(_normalize(pattern.inner, state), state)
        return ast.OptionalPattern(inner=inner)
    if isinstance(pattern, ast.ParenPattern):
        state.next_paren += 1
        paren_id = state.next_paren
        inner = _pad_to_nodes(_normalize(pattern.inner, state), state)
        return ast.ParenPattern(
            inner=inner,
            where=pattern.where,
            restrictor=pattern.restrictor,
            square=pattern.square,
            paren_id=paren_id,
        )
    if isinstance(pattern, ast.Alternation):
        state.next_alt += 1
        alt_id = state.next_alt
        branches = [_pad_to_nodes(_normalize(b, state), state) for b in pattern.branches]
        return ast.Alternation(branches=branches, operators=list(pattern.operators), alt_id=alt_id)
    raise GpmlSyntaxError(f"cannot normalize pattern node {type(pattern).__name__}")


def _anon_node(state: NormalizeState) -> ast.NodePattern:
    return ast.NodePattern(var=state.fresh_node_var(), anonymous=True)


def _pad_to_nodes(pattern: ast.Pattern, state: NormalizeState) -> ast.Pattern:
    """Guarantee the pattern starts and ends at a node position."""
    starts_edge = _starts_with_edge(pattern)
    ends_edge = _ends_with_edge(pattern)
    if not starts_edge and not ends_edge:
        return pattern
    items: list[ast.Pattern] = []
    if starts_edge:
        items.append(_anon_node(state))
    if isinstance(pattern, ast.Concatenation):
        items.extend(pattern.items)
    else:
        items.append(pattern)
    if ends_edge:
        items.append(_anon_node(state))
    return ast.Concatenation(items=items)


def _starts_with_edge(pattern: ast.Pattern) -> bool:
    if isinstance(pattern, ast.EdgePattern):
        return True
    if isinstance(pattern, ast.NodePattern):
        return False
    if isinstance(pattern, ast.Concatenation):
        return _starts_with_edge(pattern.items[0]) if pattern.items else False
    if isinstance(pattern, (ast.Quantified, ast.OptionalPattern, ast.ParenPattern)):
        inner = pattern.inner
        return _starts_with_edge(inner)
    if isinstance(pattern, ast.Alternation):
        return any(_starts_with_edge(b) for b in pattern.branches)
    return False


def _ends_with_edge(pattern: ast.Pattern) -> bool:
    if isinstance(pattern, ast.EdgePattern):
        return True
    if isinstance(pattern, ast.NodePattern):
        return False
    if isinstance(pattern, ast.Concatenation):
        return _ends_with_edge(pattern.items[-1]) if pattern.items else False
    if isinstance(pattern, (ast.Quantified, ast.OptionalPattern, ast.ParenPattern)):
        return _ends_with_edge(pattern.inner)
    if isinstance(pattern, ast.Alternation):
        return any(_ends_with_edge(b) for b in pattern.branches)
    return False
