"""Value expressions: WHERE conditions, graphical predicates, aggregates.

GPML expressions follow SQL semantics (Section 4.7 of the paper plus the
aggregate machinery of Sections 4.4 and 5.3):

* property access on an element missing the property yields NULL,
* all predicates use three-valued logic (:mod:`repro.values`),
* the graphical predicates ``IS DIRECTED``, ``IS SOURCE OF``,
  ``IS DESTINATION OF``, ``SAME(...)`` and ``ALL_DIFFERENT(...)``,
* aggregates (COUNT/SUM/AVG/MIN/MAX/LISTAGG) over group variables are
  *horizontal*: they fold over the iterations of a quantifier within one
  path binding.

Expression nodes evaluate against an :class:`EvalContext`, which resolves
variable references to graph elements, paths, or group lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import ExpressionError
from repro.graph.model import Edge, Node
from repro.graph.path import Path
from repro.values import FALSE, NULL, TRUE, UNKNOWN, TruthValue, compare, is_null, truth_of


class EvalContext:
    """Resolves variable references during expression evaluation.

    Engines subclass or instantiate this with the appropriate lookup; the
    default implementation reads from a plain mapping.
    """

    def __init__(self, bindings: dict[str, Any] | None = None, graph=None):
        self._bindings = bindings or {}
        self.graph = graph

    def lookup(self, name: str) -> Any:
        """Value of a singleton reference; NULL when unbound (conditional)."""
        return self._bindings.get(name, NULL)

    def group_items(self, name: str) -> list[Any]:
        """Items an aggregate folds over for variable *name*.

        Group variables resolve to their iteration list; a bound singleton
        is a one-element group; an unbound variable is the empty group.
        """
        value = self.lookup(name)
        if is_null(value):
            return []
        if isinstance(value, (list, tuple)):
            return list(value)
        return [value]


class Expr:
    """Base class for expression AST nodes."""

    def evaluate(self, ctx: EvalContext) -> Any:
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        """All variable names referenced anywhere in the expression."""
        return frozenset().union(
            *(child.variables() for child in self.children()), self.own_variables()
        )

    def own_variables(self) -> frozenset[str]:
        return frozenset()

    def children(self) -> Sequence["Expr"]:
        return ()

    def aggregates(self) -> list["Aggregate"]:
        found: list[Aggregate] = []
        if isinstance(self, Aggregate):
            found.append(self)
        for child in self.children():
            found.extend(child.aggregates())
        return found

    def aggregated_variables(self) -> frozenset[str]:
        """Variables referenced *inside* aggregates."""
        return frozenset().union(
            frozenset(), *(agg.inner_variables() for agg in self.aggregates())
        )

    def truth(self, ctx: EvalContext) -> TruthValue:
        """Evaluate as a predicate under three-valued logic."""
        return truth_of(self.evaluate(ctx))


@dataclass(frozen=True)
class Literal(Expr):
    value: Any

    def evaluate(self, ctx: EvalContext) -> Any:
        return self.value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if self.value is NULL:
            return "NULL"
        if isinstance(self.value, TruthValue):
            return self.value.name
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        return str(self.value)


@dataclass(frozen=True)
class VarRef(Expr):
    """Reference to a pattern variable (element, path, or group)."""

    name: str

    def evaluate(self, ctx: EvalContext) -> Any:
        return ctx.lookup(self.name)

    def own_variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PropertyRef(Expr):
    """``x.prop`` — property access on the element bound to ``x``."""

    var: str
    prop: str

    def evaluate(self, ctx: EvalContext) -> Any:
        element = ctx.lookup(self.var)
        return property_value(element, self.prop, self.var)

    def own_variables(self) -> frozenset[str]:
        return frozenset({self.var})

    def __str__(self) -> str:
        return f"{self.var}.{self.prop}"


def property_value(element: Any, prop: str, var_name: str = "?") -> Any:
    if is_null(element):
        return NULL
    if isinstance(element, (Node, Edge)):
        return element.get(prop)
    if isinstance(element, (list, tuple)):
        raise ExpressionError(
            f"group variable {var_name!r} referenced as a singleton "
            f"(property access {var_name}.{prop} outside an aggregate)"
        )
    raise ExpressionError(f"{var_name!r} is not an element; cannot read .{prop}")


@dataclass(frozen=True)
class Comparison(Expr):
    op: str  # = <> < <= > >=
    left: Expr
    right: Expr

    def evaluate(self, ctx: EvalContext) -> TruthValue:
        left = self.left.evaluate(ctx)
        right = self.right.evaluate(ctx)
        # Element handles compare by identity (GQL permits = on elements).
        if isinstance(left, (Node, Edge)) or isinstance(right, (Node, Edge)):
            if is_null(left) or is_null(right):
                return UNKNOWN
            if self.op == "=":
                return truth_of(left == right)
            if self.op == "<>":
                return truth_of(left != right)
            raise ExpressionError(f"cannot order graph elements with {self.op!r}")
        return compare(self.op, left, right)

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr

    def evaluate(self, ctx: EvalContext) -> TruthValue:
        return self.left.truth(ctx).and_(self.right.truth(ctx))

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr

    def evaluate(self, ctx: EvalContext) -> TruthValue:
        return self.left.truth(ctx).or_(self.right.truth(ctx))

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not(Expr):
    inner: Expr

    def evaluate(self, ctx: EvalContext) -> TruthValue:
        return self.inner.truth(ctx).not_()

    def children(self) -> Sequence[Expr]:
        return (self.inner,)

    def __str__(self) -> str:
        return f"NOT ({self.inner})"


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class Arithmetic(Expr):
    op: str
    left: Expr
    right: Expr

    def evaluate(self, ctx: EvalContext) -> Any:
        left = self.left.evaluate(ctx)
        right = self.right.evaluate(ctx)
        if is_null(left) or is_null(right):
            return NULL
        if self.op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
            raise ExpressionError(
                f"arithmetic {self.op!r} on non-numeric values {left!r}, {right!r}"
            )
        if self.op == "/" and right == 0:
            return NULL
        return _ARITH[self.op](left, right)

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Negate(Expr):
    inner: Expr

    def evaluate(self, ctx: EvalContext) -> Any:
        value = self.inner.evaluate(ctx)
        if is_null(value):
            return NULL
        if not isinstance(value, (int, float)):
            raise ExpressionError(f"unary minus on non-numeric value {value!r}")
        return -value

    def children(self) -> Sequence[Expr]:
        return (self.inner,)

    def __str__(self) -> str:
        return f"-{self.inner}"


@dataclass(frozen=True)
class IsNull(Expr):
    inner: Expr
    negated: bool = False

    def evaluate(self, ctx: EvalContext) -> TruthValue:
        result = is_null(self.inner.evaluate(ctx))
        if self.negated:
            result = not result
        return TRUE if result else FALSE

    def children(self) -> Sequence[Expr]:
        return (self.inner,)

    def __str__(self) -> str:
        return f"{self.inner} IS {'NOT ' if self.negated else ''}NULL"


@dataclass(frozen=True)
class In(Expr):
    """``expr IN (v1, v2, ...)`` over a literal value set.

    Produced by the SQL planner's semi-join reduction (the parser never
    emits it): the probe side's distinct join-key values are injected as
    one membership predicate.  Three-valued: UNKNOWN when the operand is
    NULL, else TRUE/FALSE by membership.  Membership uses Python
    hash-bucket equality — the same equality the SQL hash join applies to
    its keys — so the injected filter keeps exactly the operand values
    that could find a join partner.  Values are restricted to plain
    scalars (str/int/float, never bool or NULL) by the injecting rule.
    """

    operand: Expr
    values: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "_value_set", frozenset(self.values))

    def evaluate(self, ctx: EvalContext) -> TruthValue:
        value = self.operand.evaluate(ctx)
        if is_null(value):
            return UNKNOWN
        try:
            return TRUE if value in self._value_set else FALSE
        except TypeError:  # unhashable operand (a list) never equals a scalar
            return FALSE

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def __str__(self) -> str:
        rendered = ", ".join(str(Literal(value)) for value in self.values)
        return f"{self.operand} IN ({rendered})"


@dataclass(frozen=True)
class IsDirected(Expr):
    """``e IS DIRECTED`` (Section 4.7)."""

    var: str
    negated: bool = False

    def evaluate(self, ctx: EvalContext) -> TruthValue:
        edge = ctx.lookup(self.var)
        if is_null(edge):
            return UNKNOWN
        if not isinstance(edge, Edge):
            raise ExpressionError(f"IS DIRECTED requires an edge; got {edge!r}")
        result = edge.is_directed
        return truth_of(not result if self.negated else result)

    def own_variables(self) -> frozenset[str]:
        return frozenset({self.var})

    def __str__(self) -> str:
        return f"{self.var} IS {'NOT ' if self.negated else ''}DIRECTED"


@dataclass(frozen=True)
class IsSourceOf(Expr):
    """``s IS SOURCE OF e`` — s is the source endpoint of directed edge e."""

    node_var: str
    edge_var: str
    negated: bool = False

    def evaluate(self, ctx: EvalContext) -> TruthValue:
        return _endpoint_test(ctx, self.node_var, self.edge_var, "source", self.negated)

    def own_variables(self) -> frozenset[str]:
        return frozenset({self.node_var, self.edge_var})

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"{self.node_var} IS {neg}SOURCE OF {self.edge_var}"


@dataclass(frozen=True)
class IsDestinationOf(Expr):
    node_var: str
    edge_var: str
    negated: bool = False

    def evaluate(self, ctx: EvalContext) -> TruthValue:
        return _endpoint_test(ctx, self.node_var, self.edge_var, "target", self.negated)

    def own_variables(self) -> frozenset[str]:
        return frozenset({self.node_var, self.edge_var})

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"{self.node_var} IS {neg}DESTINATION OF {self.edge_var}"


def _endpoint_test(
    ctx: EvalContext, node_var: str, edge_var: str, role: str, negated: bool
) -> TruthValue:
    node = ctx.lookup(node_var)
    edge = ctx.lookup(edge_var)
    if is_null(node) or is_null(edge):
        return UNKNOWN
    if not isinstance(edge, Edge):
        raise ExpressionError(f"{edge_var!r} is not an edge")
    if not isinstance(node, Node):
        raise ExpressionError(f"{node_var!r} is not a node")
    endpoint = edge.source if role == "source" else edge.target
    result = endpoint is not None and endpoint == node
    return truth_of(not result if negated else result)


@dataclass(frozen=True)
class Same(Expr):
    """``SAME(p, q, ...)`` — all references bound to the same element."""

    vars: tuple[str, ...]

    def evaluate(self, ctx: EvalContext) -> TruthValue:
        elements = [ctx.lookup(v) for v in self.vars]
        if any(is_null(el) for el in elements):
            return UNKNOWN
        first = elements[0]
        return truth_of(all(el == first for el in elements[1:]))

    def own_variables(self) -> frozenset[str]:
        return frozenset(self.vars)

    def __str__(self) -> str:
        return f"SAME({', '.join(self.vars)})"


@dataclass(frozen=True)
class AllDifferent(Expr):
    """``ALL_DIFFERENT(p, q, ...)`` — pairwise distinct elements."""

    vars: tuple[str, ...]

    def evaluate(self, ctx: EvalContext) -> TruthValue:
        elements = [ctx.lookup(v) for v in self.vars]
        if any(is_null(el) for el in elements):
            return UNKNOWN
        seen = set()
        for el in elements:
            if el in seen:
                return FALSE
            seen.add(el)
        return TRUE

    def own_variables(self) -> frozenset[str]:
        return frozenset(self.vars)

    def __str__(self) -> str:
        return f"ALL_DIFFERENT({', '.join(self.vars)})"


@dataclass(frozen=True)
class Aggregate(Expr):
    """Horizontal aggregate over a group variable.

    ``func`` is COUNT/SUM/AVG/MIN/MAX/LISTAGG.  ``var`` is the aggregated
    variable; ``prop`` is None for whole-element forms (``COUNT(e)``,
    ``COUNT(e.*)``).  ``separator`` applies to LISTAGG only.
    """

    func: str
    var: str
    prop: str | None = None
    distinct: bool = False
    separator: str = ", "

    def evaluate(self, ctx: EvalContext) -> Any:
        items = ctx.group_items(self.var)
        if self.prop is None:
            values: list[Any] = [item for item in items if not is_null(item)]
        else:
            values = []
            for item in items:
                value = property_value(item, self.prop, self.var)
                if not is_null(value):
                    values.append(value)
        if self.distinct:
            unique: list[Any] = []
            for value in values:
                if value not in unique:
                    unique.append(value)
            values = unique
        if self.func == "COUNT":
            return len(values)
        if self.func == "LISTAGG":
            return self.separator.join(_listagg_text(v) for v in values)
        if not values:
            return NULL
        if self.func == "SUM":
            return sum(values)
        if self.func == "AVG":
            return sum(values) / len(values)
        if self.func == "MIN":
            return min(values)
        if self.func == "MAX":
            return max(values)
        raise ExpressionError(f"unknown aggregate {self.func!r}")

    def inner_variables(self) -> frozenset[str]:
        return frozenset({self.var})

    def own_variables(self) -> frozenset[str]:
        return frozenset({self.var})

    def __str__(self) -> str:
        arg = self.var if self.prop is None else f"{self.var}.{self.prop}"
        distinct = "DISTINCT " if self.distinct else ""
        return f"{self.func}({distinct}{arg})"


def _listagg_text(value: Any) -> str:
    if isinstance(value, (Node, Edge)):
        return value.id
    return str(value)


@dataclass(frozen=True)
class FunctionCall(Expr):
    """Built-in scalar functions (length, nodes, edges, coalesce, ...)."""

    name: str
    args: tuple[Expr, ...]

    def evaluate(self, ctx: EvalContext) -> Any:
        name = self.name.lower()
        if name == "coalesce":
            for arg in self.args:
                value = arg.evaluate(ctx)
                if not is_null(value):
                    return value
            return NULL
        values = [arg.evaluate(ctx) for arg in self.args]
        if name == "length":
            return _path_length(values[0])
        if name == "nodes":
            return _require_path(values[0]).nodes
        if name == "edges":
            return _require_path(values[0]).edges
        if name == "size":
            value = values[0]
            if is_null(value):
                return NULL
            return len(value)
        if any(is_null(v) for v in values):
            return NULL
        if name == "abs":
            return abs(values[0])
        if name == "upper":
            return str(values[0]).upper()
        if name == "lower":
            return str(values[0]).lower()
        if name == "id":
            element = values[0]
            if isinstance(element, (Node, Edge)):
                return element.id
            raise ExpressionError("id() requires a graph element")
        raise ExpressionError(f"unknown function {self.name!r}")

    def children(self) -> Sequence[Expr]:
        return self.args

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


def _require_path(value: Any) -> Path:
    if not isinstance(value, Path):
        raise ExpressionError(f"expected a path, got {value!r}")
    return value


def _path_length(value: Any) -> Any:
    if is_null(value):
        return NULL
    if isinstance(value, Path):
        return value.length
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (list, tuple)):
        return len(value)
    raise ExpressionError(f"length() undefined for {value!r}")


def conjoin(*exprs: Expr | None) -> Expr | None:
    """AND together the non-None expressions; None when all are None."""
    present = [e for e in exprs if e is not None]
    if not present:
        return None
    result = present[0]
    for nxt in present[1:]:
        result = And(result, nxt)
    return result
