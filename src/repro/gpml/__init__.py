"""GPML — the Graph Pattern Matching Language of GQL and SQL/PGQ.

This package implements the paper's core contribution end to end:

* :mod:`~repro.gpml.lexer` / :mod:`~repro.gpml.parser` — the surface syntax
  of Section 4 (node/edge patterns, quantifiers, unions, restrictors,
  selectors, graph patterns),
* :mod:`~repro.gpml.normalize` — Section 6.2 normalization,
* :mod:`~repro.gpml.analysis` — variable classification (Sections 4.4/4.6)
  and the termination rules of Section 5,
* :mod:`~repro.gpml.automaton` / :mod:`~repro.gpml.matcher` — the
  production engine (counter-NFA product search),
* :mod:`~repro.gpml.reference` — the literal expansion-based execution
  model of Section 6, used as a differential-testing oracle,
* :mod:`~repro.gpml.engine` — the public entry points
  :func:`~repro.gpml.engine.match` and
  :func:`~repro.gpml.engine.prepare`.
"""

from repro.gpml.engine import (
    MatchResult,
    PreparedQuery,
    exists,
    first,
    match,
    match_iter,
    prepare,
)
from repro.gpml.parser import parse_expression, parse_match, parse_path_pattern
from repro.gpml.streaming import PipelineStats, RowBudget

__all__ = [
    "MatchResult",
    "PipelineStats",
    "PreparedQuery",
    "RowBudget",
    "exists",
    "first",
    "match",
    "match_iter",
    "parse_expression",
    "parse_match",
    "parse_path_pattern",
    "prepare",
]
