"""Tokenizer for GPML, GQL and the PGQ surface syntax.

The lexer deliberately does **not** assemble multi-character edge-pattern
arrows (``-[``, ``]->`` and friends): the characters ``< - ~ >`` are
ambiguous between pattern punctuation and comparison/arithmetic operators,
and only the parser knows which context it is in.  The lexer emits small
tokens and records, for each token, whether it was *glued* to the previous
one (no intervening whitespace); the parser uses this plus context to
assemble arrows.

Multi-character operators that are unambiguous are lexed greedily:
``<=``, ``>=``, ``<>`` and ``|+|``.

Keywords are case-insensitive and reserved; identifiers (labels, variable
names, property names) are case-sensitive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GpmlSyntaxError
from repro.values import parse_number

# Token types
IDENT = "IDENT"
KEYWORD = "KEYWORD"
NUMBER = "NUMBER"
STRING = "STRING"
PUNCT = "PUNCT"
EOF = "EOF"

KEYWORDS = frozenset(
    {
        "MATCH", "WHERE", "AND", "OR", "NOT", "IS", "NULL",
        "TRUE", "FALSE", "UNKNOWN",
        "TRAIL", "ACYCLIC", "SIMPLE",
        "ANY", "ALL", "SHORTEST", "GROUP", "KEEP",
        "DIRECTED", "SOURCE", "DESTINATION", "OF",
        "SAME", "ALL_DIFFERENT", "DISTINCT",
        "COUNT", "SUM", "AVG", "MIN", "MAX", "LISTAGG",
        "RETURN", "ORDER", "BY", "ASC", "DESC", "LIMIT", "OFFSET", "AS",
        "COLUMNS", "CHEAPEST", "TOP", "COST",
    }
)

# Greedy multi-character punctuation, longest first.
_MULTI_PUNCT = ("|+|", "<=", ">=", "<>")

_SINGLE_PUNCT = set("()[]{}<>,.:=+-*/?!%&|~")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``glued`` is True when no whitespace separated this token from the
    previous one — the parser needs this to assemble arrows like ``-[``
    while still allowing ``a - [`` ... (which cannot occur in well-formed
    input anyway, but the flag keeps error messages precise).
    """

    type: str
    value: str | int | float
    position: int
    glued: bool = False

    def is_punct(self, *values: str) -> bool:
        return self.type == PUNCT and self.value in values

    def is_keyword(self, *names: str) -> bool:
        return self.type == KEYWORD and self.value in names

    def __repr__(self) -> str:
        return f"{self.type}({self.value!r})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_part(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*, raising GpmlSyntaxError with position on failure."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    glued = False
    while i < n:
        ch = text[i]
        # Whitespace
        if ch.isspace():
            i += 1
            glued = False
            continue
        # Comments: // to end of line, /* ... */
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            glued = False
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            if end < 0:
                raise GpmlSyntaxError("unterminated comment", i, text)
            i = end + 2
            glued = False
            continue
        start = i
        # Strings: single quotes with '' escape (SQL style)
        if ch == "'":
            i += 1
            parts: list[str] = []
            while True:
                if i >= n:
                    raise GpmlSyntaxError("unterminated string literal", start, text)
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        parts.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                parts.append(text[i])
                i += 1
            tokens.append(Token(STRING, "".join(parts), start, glued))
            glued = True
            continue
        # Numbers (with optional K/M/B magnitude suffix)
        if ch.isdigit():
            j = i
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            # scientific notation
            if j < n and text[j] in "eE" and j + 1 < n and (
                text[j + 1].isdigit() or text[j + 1] in "+-"
            ):
                j += 2
                while j < n and text[j].isdigit():
                    j += 1
            literal = text[i:j]
            if j < n and text[j].upper() in "KMB" and (
                j + 1 >= n or not _is_ident_part(text[j + 1])
            ):
                literal += text[j]
                j += 1
            try:
                value = parse_number(literal)
            except ValueError as exc:
                raise GpmlSyntaxError(f"bad numeric literal {literal!r}", i, text) from exc
            tokens.append(Token(NUMBER, value, start, glued))
            i = j
            glued = True
            continue
        # Identifiers / keywords
        if _is_ident_start(ch):
            j = i
            while j < n and _is_ident_part(text[j]):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(KEYWORD, upper, start, glued))
            else:
                tokens.append(Token(IDENT, word, start, glued))
            i = j
            glued = True
            continue
        # Multi-char punctuation
        for punct in _MULTI_PUNCT:
            if text.startswith(punct, i):
                tokens.append(Token(PUNCT, punct, start, glued))
                i += len(punct)
                break
        else:
            if ch in _SINGLE_PUNCT:
                tokens.append(Token(PUNCT, ch, start, glued))
                i += 1
            else:
                raise GpmlSyntaxError(f"unexpected character {ch!r}", i, text)
        glued = True
    tokens.append(Token(EOF, "", n, False))
    return tokens
