"""Recursive-descent parser for GPML (and the shared GQL/PGQ clauses).

The grammar implemented here covers every construct of Section 4 of the
paper:

.. code-block:: text

    match        := MATCH path_pattern (',' path_pattern)* [WHERE expr]
    path_pattern := [selector] [restrictor] [ident '='] alternation
    alternation  := concatenation (('|' | '|+|') concatenation)*
    concatenation:= element+
    element      := (node | edge | paren) [quantifier]
    node         := '(' [ident] [':' label_expr] [WHERE expr] ')'
    edge         := the seven orientations of Figure 5, full or abbreviated
    paren        := ('[' | '(') [restrictor] alternation [WHERE expr] (']' | ')')
    quantifier   := '{' m [',' [n]] '}' | '*' | '+' | '?'
    selector     := ANY | ANY k | ANY SHORTEST | ALL SHORTEST
                  | SHORTEST k [GROUP] | ANY CHEAPEST [COST p]
                  | TOP k CHEAPEST [COST p]
    restrictor   := TRAIL | ACYCLIC | SIMPLE

The lexer emits ``< - ~ > [ ]`` as single tokens; this parser assembles
them into edge patterns (the only place the sequences are valid), so
``a < -1`` in a WHERE clause and ``(a)<-[e]-(b)`` in a pattern coexist.

Parsing ``(`` is ambiguous between a node pattern and a parenthesized path
pattern; we first attempt the node-pattern parse and backtrack on failure.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import GpmlSyntaxError
from repro.gpml import ast
from repro.gpml import expr as E
from repro.gpml.label_expr import (
    LabelAnd,
    LabelAtom,
    LabelExpr,
    LabelNot,
    LabelOr,
    LabelWildcard,
)
from repro.gpml.lexer import EOF, IDENT, KEYWORD, NUMBER, PUNCT, STRING, Token, tokenize

_AGGREGATE_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX", "LISTAGG")

#: keywords that terminate a pattern at the top level (host-language clauses)
_CLAUSE_KEYWORDS = ("WHERE", "RETURN", "ORDER", "LIMIT", "OFFSET", "COLUMNS", "KEEP", "MATCH")


class GpmlParser:
    """A parser instance over one query text.

    The class is reused by the GQL and PGQ hosts, which parse their own
    clauses around the shared MATCH grammar.
    """

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type != EOF:
            self.pos += 1
        return token

    def at_punct(self, *values: str) -> bool:
        return self.peek().is_punct(*values)

    def at_keyword(self, *names: str) -> bool:
        return self.peek().is_keyword(*names)

    def accept_punct(self, *values: str) -> bool:
        if self.at_punct(*values):
            self.advance()
            return True
        return False

    def accept_keyword(self, *names: str) -> bool:
        if self.at_keyword(*names):
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> Token:
        if not self.at_punct(value):
            self.error(f"expected {value!r}, found {self._describe(self.peek())}")
        return self.advance()

    def expect_keyword(self, name: str) -> Token:
        if not self.at_keyword(name):
            self.error(f"expected {name}, found {self._describe(self.peek())}")
        return self.advance()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.type != IDENT:
            self.error(f"expected identifier, found {self._describe(token)}")
        self.advance()
        return str(token.value)

    def expect_name(self) -> str:
        """An identifier where keywords are allowed (property names).

        Keyword tokens carry their uppercased form; the original spelling
        is recovered from the source text so ``x.cost`` keeps its case.
        """
        token = self.peek()
        if token.type == IDENT:
            self.advance()
            return str(token.value)
        if token.type == KEYWORD:
            self.advance()
            raw = self.text[token.position : token.position + len(str(token.value))]
            return raw
        self.error(f"expected a name, found {self._describe(token)}")
        raise AssertionError("unreachable")

    def expect_number(self) -> int:
        token = self.peek()
        if token.type != NUMBER or not isinstance(token.value, int):
            self.error(f"expected integer, found {self._describe(token)}")
        self.advance()
        return int(token.value)

    def expect_eof(self) -> None:
        if self.peek().type != EOF:
            self.error(f"unexpected trailing input: {self._describe(self.peek())}")

    def error(self, message: str) -> None:
        raise GpmlSyntaxError(message, self.peek().position, self.text)

    @staticmethod
    def _describe(token: Token) -> str:
        if token.type == EOF:
            return "end of input"
        return repr(token.value)

    # ------------------------------------------------------------------
    # MATCH statement
    # ------------------------------------------------------------------
    def parse_match_statement(self) -> ast.GraphPattern:
        self.expect_keyword("MATCH")
        return self.parse_graph_pattern_body()

    def parse_graph_pattern_body(self) -> ast.GraphPattern:
        """Path-pattern list and optional postfilter (MATCH already consumed)."""
        paths = [self.parse_path_pattern()]
        while self.accept_punct(","):
            # PGQL writes a repeated MATCH before each pattern; accept it.
            self.accept_keyword("MATCH")
            paths.append(self.parse_path_pattern())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        keep = None
        if self.accept_keyword("KEEP"):
            # Section 7.2 syntax: a selector applied *after* the final
            # WHERE (unlike head selectors, which precede it).
            keep = self._parse_selector()
            if keep is None:
                self.error("expected a selector after KEEP")
        return ast.GraphPattern(paths=paths, where=where, keep=keep)

    def parse_path_pattern(self) -> ast.PathPattern:
        selector = self._parse_selector()
        restrictor = None
        if self.at_keyword(*ast.RESTRICTORS):
            restrictor = str(self.advance().value)
        path_var = None
        if self.peek().type == IDENT and self.peek(1).is_punct("="):
            path_var = self.expect_ident()
            self.expect_punct("=")
        pattern = self.parse_alternation()
        return ast.PathPattern(
            pattern=pattern, selector=selector, restrictor=restrictor, path_var=path_var
        )

    def _parse_selector(self) -> Optional[ast.Selector]:
        if self.at_keyword("ANY"):
            self.advance()
            if self.accept_keyword("SHORTEST"):
                return ast.Selector("ANY_SHORTEST")
            if self.accept_keyword("CHEAPEST"):
                return ast.Selector("ANY_CHEAPEST", cost_property=self._parse_cost())
            if self.peek().type == NUMBER:
                return ast.Selector("ANY_K", k=self.expect_number())
            return ast.Selector("ANY")
        if self.at_keyword("ALL"):
            self.advance()
            self.expect_keyword("SHORTEST")
            return ast.Selector("ALL_SHORTEST")
        if self.at_keyword("SHORTEST"):
            self.advance()
            k = self.expect_number()
            if self.accept_keyword("GROUP"):
                return ast.Selector("SHORTEST_K_GROUP", k=k)
            return ast.Selector("SHORTEST_K", k=k)
        if self.at_keyword("TOP"):
            self.advance()
            k = self.expect_number()
            self.expect_keyword("CHEAPEST")
            return ast.Selector("TOP_K_CHEAPEST", k=k, cost_property=self._parse_cost())
        return None

    def _parse_cost(self) -> Optional[str]:
        if self.accept_keyword("COST"):
            return self.expect_name()
        return None

    # ------------------------------------------------------------------
    # Patterns
    # ------------------------------------------------------------------
    def parse_alternation(self) -> ast.Pattern:
        branches = [self.parse_concatenation()]
        operators: list[str] = []
        while True:
            if self.at_punct("|+|"):
                self.advance()
                operators.append("|+|")
            elif self.at_punct("|"):
                self.advance()
                operators.append("|")
            else:
                break
            branches.append(self.parse_concatenation())
        if len(branches) == 1:
            return branches[0]
        return ast.Alternation(branches=branches, operators=operators)

    def parse_concatenation(self) -> ast.Pattern:
        items = [self.parse_element()]
        while self._at_element_start():
            items.append(self.parse_element())
        if len(items) == 1:
            return items[0]
        return ast.Concatenation(items=items)

    def _at_element_start(self) -> bool:
        return self.at_punct("(", "[", "<", "-", "~")

    def parse_element(self) -> ast.Pattern:
        if self.at_punct("("):
            element = self._parse_round_bracket()
        elif self.at_punct("["):
            element = self._parse_paren_pattern("[", "]")
        elif self.at_punct("<", "-", "~"):
            element = self._parse_edge_pattern()
        else:
            self.error(f"expected a pattern element, found {self._describe(self.peek())}")
        return self._parse_quantifier(element)

    def _parse_round_bracket(self) -> ast.Pattern:
        """Disambiguate node pattern vs parenthesized path pattern."""
        saved = self.pos
        try:
            return self._parse_node_pattern()
        except GpmlSyntaxError:
            self.pos = saved
            return self._parse_paren_pattern("(", ")")

    def _parse_node_pattern(self) -> ast.NodePattern:
        self.expect_punct("(")
        var = None
        if self.peek().type == IDENT:
            var = self.expect_ident()
        label = None
        if self.accept_punct(":"):
            label = self.parse_label_expression()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        self.expect_punct(")")
        return ast.NodePattern(var=var, label=label, where=where)

    def _parse_paren_pattern(self, open_b: str, close_b: str) -> ast.ParenPattern:
        self.expect_punct(open_b)
        restrictor = None
        if self.at_keyword(*ast.RESTRICTORS):
            restrictor = str(self.advance().value)
        inner = self.parse_alternation()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        self.expect_punct(close_b)
        return ast.ParenPattern(
            inner=inner, where=where, restrictor=restrictor, square=(open_b == "[")
        )

    def _parse_edge_pattern(self) -> ast.EdgePattern:
        """Assemble one of the seven orientations of Figure 5."""
        O = ast.Orientation
        if self.accept_punct("<"):
            if self.accept_punct("-"):
                if self.at_punct("["):
                    spec = self._parse_edge_spec()
                    self.expect_punct("]")
                    self.expect_punct("-")
                    orientation = O.LEFT_OR_RIGHT if self.accept_punct(">") else O.LEFT
                    return self._finish_edge(orientation, spec)
                orientation = O.LEFT_OR_RIGHT if self.accept_punct(">") else O.LEFT
                return self._finish_edge(orientation, None)
            if self.accept_punct("~"):
                if self.at_punct("["):
                    spec = self._parse_edge_spec()
                    self.expect_punct("]")
                    self.expect_punct("~")
                    return self._finish_edge(O.LEFT_OR_UNDIRECTED, spec)
                return self._finish_edge(O.LEFT_OR_UNDIRECTED, None)
            self.error("expected '-' or '~' after '<' in edge pattern")
        if self.accept_punct("-"):
            if self.at_punct("["):
                spec = self._parse_edge_spec()
                self.expect_punct("]")
                self.expect_punct("-")
                orientation = O.RIGHT if self.accept_punct(">") else O.ANY
                return self._finish_edge(orientation, spec)
            orientation = O.RIGHT if self.accept_punct(">") else O.ANY
            return self._finish_edge(orientation, None)
        if self.accept_punct("~"):
            if self.at_punct("["):
                spec = self._parse_edge_spec()
                self.expect_punct("]")
                self.expect_punct("~")
                orientation = O.UNDIRECTED_OR_RIGHT if self.accept_punct(">") else O.UNDIRECTED
                return self._finish_edge(orientation, spec)
            orientation = O.UNDIRECTED_OR_RIGHT if self.accept_punct(">") else O.UNDIRECTED
            return self._finish_edge(orientation, None)
        self.error("expected an edge pattern")
        raise AssertionError("unreachable")

    def _parse_edge_spec(self) -> tuple:
        self.expect_punct("[")
        var = None
        if self.peek().type == IDENT:
            var = self.expect_ident()
        label = None
        if self.accept_punct(":"):
            label = self.parse_label_expression()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return (var, label, where)

    @staticmethod
    def _finish_edge(orientation: ast.Orientation, spec: tuple | None) -> ast.EdgePattern:
        var, label, where = spec if spec is not None else (None, None, None)
        return ast.EdgePattern(orientation=orientation, var=var, label=label, where=where)

    def _parse_quantifier(self, element: ast.Pattern) -> ast.Pattern:
        lower: int
        upper: Optional[int]
        if self.at_punct("{") and self.peek(1).type == NUMBER:
            self.advance()
            lower = self.expect_number()
            if self.accept_punct(","):
                upper = self.expect_number() if self.peek().type == NUMBER else None
            else:
                upper = lower
            self.expect_punct("}")
        elif self.accept_punct("*"):
            lower, upper = 0, None
        elif self.accept_punct("+"):
            lower, upper = 1, None
        elif self.accept_punct("?"):
            self._check_quantifiable(element, "?")
            return ast.OptionalPattern(inner=element)
        else:
            return element
        self._check_quantifiable(element, "quantifier")
        if upper is not None and upper < lower:
            self.error(f"quantifier upper bound {upper} below lower bound {lower}")
        return ast.Quantified(inner=element, lower=lower, upper=upper)

    def _check_quantifiable(self, element: ast.Pattern, what: str) -> None:
        if isinstance(element, ast.NodePattern):
            self.error(f"a {what} cannot be applied to a node pattern")
        if isinstance(element, (ast.Quantified, ast.OptionalPattern)):
            self.error(f"a {what} cannot be applied to an already-quantified pattern")

    # ------------------------------------------------------------------
    # Label expressions
    # ------------------------------------------------------------------
    def parse_label_expression(self) -> LabelExpr:
        return self._parse_label_or()

    def _parse_label_or(self) -> LabelExpr:
        items = [self._parse_label_and()]
        while self.at_punct("|") and not self._label_bar_is_union():
            self.advance()
            items.append(self._parse_label_and())
        if len(items) == 1:
            return items[0]
        return LabelOr(items=tuple(items))

    def _label_bar_is_union(self) -> bool:
        """Inside a label expression ``|`` always belongs to the labels.

        A label expression only occurs inside node/edge brackets, where a
        path-pattern union cannot start, so there is no real ambiguity;
        hook kept for clarity and future extension.
        """
        return False

    def _parse_label_and(self) -> LabelExpr:
        items = [self._parse_label_factor()]
        while self.accept_punct("&"):
            items.append(self._parse_label_factor())
        if len(items) == 1:
            return items[0]
        return LabelAnd(items=tuple(items))

    def _parse_label_factor(self) -> LabelExpr:
        if self.accept_punct("!"):
            return LabelNot(inner=self._parse_label_factor())
        if self.accept_punct("%"):
            return LabelWildcard()
        if self.accept_punct("("):
            inner = self._parse_label_or()
            self.expect_punct(")")
            return inner
        return LabelAtom(name=self.expect_ident())

    # ------------------------------------------------------------------
    # Value expressions (precedence-climbing)
    # ------------------------------------------------------------------
    def parse_expression(self) -> E.Expr:
        return self._parse_or()

    def _parse_or(self) -> E.Expr:
        left = self._parse_and()
        while self.accept_keyword("OR"):
            left = E.Or(left, self._parse_and())
        return left

    def _parse_and(self) -> E.Expr:
        left = self._parse_not()
        while self.accept_keyword("AND"):
            left = E.And(left, self._parse_not())
        return left

    def _parse_not(self) -> E.Expr:
        if self.accept_keyword("NOT"):
            return E.Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> E.Expr:
        left = self._parse_additive()
        if self.at_punct("=", "<>", "<", "<=", ">", ">="):
            op = str(self.advance().value)
            right = self._parse_additive()
            return E.Comparison(op, left, right)
        if self.at_keyword("IS"):
            return self._parse_is_predicate(left)
        return left

    def _parse_is_predicate(self, left: E.Expr) -> E.Expr:
        self.expect_keyword("IS")
        negated = bool(self.accept_keyword("NOT"))
        if self.accept_keyword("NULL"):
            return E.IsNull(left, negated=negated)
        if self.accept_keyword("DIRECTED"):
            return E.IsDirected(self._as_var(left, "IS DIRECTED"), negated=negated)
        if self.accept_keyword("SOURCE"):
            self.expect_keyword("OF")
            edge = self.expect_ident()
            return E.IsSourceOf(self._as_var(left, "IS SOURCE OF"), edge, negated=negated)
        if self.accept_keyword("DESTINATION"):
            self.expect_keyword("OF")
            edge = self.expect_ident()
            return E.IsDestinationOf(
                self._as_var(left, "IS DESTINATION OF"), edge, negated=negated
            )
        self.error("expected NULL, DIRECTED, SOURCE OF or DESTINATION OF after IS")
        raise AssertionError("unreachable")

    def _as_var(self, expression: E.Expr, context: str) -> str:
        if not isinstance(expression, E.VarRef):
            self.error(f"{context} requires a variable reference")
        return expression.name

    def _parse_additive(self) -> E.Expr:
        left = self._parse_multiplicative()
        while self.at_punct("+", "-"):
            op = str(self.advance().value)
            left = E.Arithmetic(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> E.Expr:
        left = self._parse_unary()
        while self.at_punct("*", "/"):
            op = str(self.advance().value)
            left = E.Arithmetic(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> E.Expr:
        if self.accept_punct("-"):
            return E.Negate(self._parse_unary())
        if self.accept_punct("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> E.Expr:
        token = self.peek()
        if token.type == NUMBER or token.type == STRING:
            self.advance()
            return E.Literal(token.value)
        if token.is_keyword("TRUE"):
            self.advance()
            return E.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return E.Literal(False)
        if token.is_keyword("NULL"):
            self.advance()
            return E.Literal(None)
        if token.is_keyword(*_AGGREGATE_FUNCS):
            return self._parse_aggregate()
        if token.is_keyword("SAME"):
            self.advance()
            return E.Same(vars=self._parse_var_list())
        if token.is_keyword("ALL_DIFFERENT"):
            self.advance()
            return E.AllDifferent(vars=self._parse_var_list())
        if token.type == IDENT:
            self.advance()
            name = str(token.value)
            if self.at_punct("(") :
                return self._parse_function_call(name)
            if self.at_punct(".") and self.peek(1).type in (IDENT, KEYWORD):
                self.advance()
                prop = self.expect_name()
                return E.PropertyRef(var=name, prop=prop)
            return E.VarRef(name=name)
        if self.accept_punct("("):
            inner = self.parse_expression()
            self.expect_punct(")")
            return inner
        self.error(f"expected an expression, found {self._describe(token)}")
        raise AssertionError("unreachable")

    def _parse_var_list(self) -> tuple[str, ...]:
        self.expect_punct("(")
        names = [self.expect_ident()]
        while self.accept_punct(","):
            names.append(self.expect_ident())
        self.expect_punct(")")
        return tuple(names)

    def _parse_function_call(self, name: str) -> E.Expr:
        self.expect_punct("(")
        args: list[E.Expr] = []
        if not self.at_punct(")"):
            args.append(self.parse_expression())
            while self.accept_punct(","):
                args.append(self.parse_expression())
        self.expect_punct(")")
        return E.FunctionCall(name=name, args=tuple(args))

    def _parse_aggregate(self) -> E.Aggregate:
        func = str(self.advance().value)
        self.expect_punct("(")
        distinct = bool(self.accept_keyword("DISTINCT"))
        var = self.expect_ident()
        prop: Optional[str] = None
        if self.accept_punct("."):
            if self.accept_punct("*"):
                prop = None  # COUNT(e.*) counts iterations, like COUNT(e)
            else:
                prop = self.expect_name()
        separator = ", "
        if self.accept_punct(","):
            sep_token = self.peek()
            if sep_token.type != STRING:
                self.error("aggregate separator must be a string literal")
            self.advance()
            separator = str(sep_token.value)
        self.expect_punct(")")
        return E.Aggregate(
            func=func, var=var, prop=prop, distinct=distinct, separator=separator
        )


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def parse_match(text: str) -> ast.GraphPattern:
    """Parse a complete ``MATCH ... [WHERE ...]`` statement."""
    parser = GpmlParser(text)
    statement = parser.parse_match_statement()
    parser.expect_eof()
    return statement


def parse_path_pattern(text: str) -> ast.PathPattern:
    """Parse a single path pattern (no MATCH keyword)."""
    parser = GpmlParser(text)
    pattern = parser.parse_path_pattern()
    parser.expect_eof()
    return pattern


def parse_expression(text: str) -> E.Expr:
    """Parse a standalone value expression."""
    parser = GpmlParser(text)
    expression = parser.parse_expression()
    parser.expect_eof()
    return expression
