"""Cost-based query planning: statistics, indexes, anchors, join order.

The planner sits between :func:`repro.gpml.engine.prepare` and the
matcher.  Given a prepared query and a concrete graph it produces a
:class:`~repro.planner.plan.QueryPlan` that decides, per path pattern,

* **where to anchor** the product-graph search — leftmost element,
  rightmost element (executed by reversing the pattern), scored against
  interior fixed elements,
* **which access path** supplies the start candidates — a property-value
  hash index, a label scan, or a full node scan,
* **in which order** multiple path patterns join (smallest estimated
  result first, connected joins before cross products).

Planning is purely an exploration-order decision: the bag of results is
identical to the naive left-to-right engine (differentially tested
against it and against the Section 6 reference engine).

The anchor machinery has a second consumer besides :func:`plan_query`:
GQL's chained-MATCH seeding (:mod:`repro.gql.pipeline`) anchors a later
statement's pattern search at a variable bound upstream, reusing
:mod:`~repro.planner.anchor`'s pinned-end analysis and pattern/binding
reversal per incoming row.

Modules: :mod:`~repro.planner.stats` (cardinality catalog + caching),
:mod:`~repro.planner.indexes` (sargable predicates, candidate sources),
:mod:`~repro.planner.anchor` (pattern/binding reversal, anchor scoring),
:mod:`~repro.planner.plan` (plan representation and EXPLAIN PLAN).
"""

from repro.planner.anchor import reverse_binding, reverse_pattern
from repro.planner.indexes import CandidateSource, sargable_equalities
from repro.planner.plan import AnchorOption, PatternPlan, QueryPlan, plan_query
from repro.planner.stats import StatisticsCatalog

__all__ = [
    "AnchorOption",
    "CandidateSource",
    "PatternPlan",
    "QueryPlan",
    "StatisticsCatalog",
    "plan_query",
    "reverse_binding",
    "reverse_pattern",
    "sargable_equalities",
]
