"""Sargable predicates and index-assisted candidate sources.

A predicate is *sargable* here when it is a top-level conjunct of the form
``var.prop = literal`` (either operand order): exactly the shape a hash
index on ``(label, prop)`` can answer.  The planner extracts these from a
node pattern's inline WHERE (a prefilter, so pushing it into the lookup is
always sound) and — for single pinned anchor elements — from the query's
final WHERE (sound because the anchor variable is an endpoint: dropping a
start node eliminates whole endpoint partitions whose every row the final
WHERE would reject anyway, so selectors and KEEP see the same input).

A :class:`CandidateSource` describes where a pattern's start candidates
come from — property index, label scan, or full scan — with an estimated
cardinality, and materializes the candidate ids on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.gpml import ast
from repro.gpml.expr import And, Comparison, Expr, In, Literal, PropertyRef
from repro.gpml.label_expr import LabelAnd, LabelAtom, LabelExpr, LabelOr
from repro.graph.columnar import cached_snapshot
from repro.graph.model import PropertyGraph
from repro.planner.stats import StatisticsCatalog

PROPERTY_INDEX = "property index"
LABEL_SCAN = "label scan"
FULL_SCAN = "full scan"


# ----------------------------------------------------------------------
# Sargable-predicate extraction
# ----------------------------------------------------------------------
def conjuncts(expr: Optional[Expr]) -> list[Expr]:
    """Flatten a conjunctive WHERE tree into its AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, And):
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def sargable_equalities(expr: Optional[Expr], var: Optional[str]) -> dict[str, Any]:
    """``prop -> literal value`` for conjuncts of the form ``var.prop = lit``.

    Only top-level conjuncts count (a disjunct cannot be pushed into an
    index lookup); the first equality per property wins.
    """
    if var is None:
        return {}
    out: dict[str, Any] = {}
    for conjunct in conjuncts(expr):
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            continue
        sides = [(conjunct.left, conjunct.right), (conjunct.right, conjunct.left)]
        for ref, literal in sides:
            if (
                isinstance(ref, PropertyRef)
                and ref.var == var
                and isinstance(literal, Literal)
                # Only plain scalars: hash-bucket equality provably agrees
                # with GPML `=` for these (bools/NULL have 3VL wrinkles).
                and isinstance(literal.value, (str, int, float))
                and not isinstance(literal.value, bool)
            ):
                out.setdefault(ref.prop, literal.value)
                break
    return out


def sargable_memberships(
    expr: Optional[Expr], var: Optional[str]
) -> dict[str, tuple]:
    """``prop -> value tuple`` for conjuncts ``var.prop IN (v1, ...)``.

    The multi-value sibling of :func:`sargable_equalities`: an IN over
    plain-scalar values (injected by the SQL planner's semi-join
    reduction) is answerable as a union of per-value index probes.  Only
    all-plain-scalar value sets qualify, for the same hash-bucket-equality
    reason; the first membership per property wins.
    """
    if var is None:
        return {}
    out: dict[str, tuple] = {}
    for conjunct in conjuncts(expr):
        if not isinstance(conjunct, In):
            continue
        ref = conjunct.operand
        if not (isinstance(ref, PropertyRef) and ref.var == var):
            continue
        if all(
            isinstance(value, (str, int, float)) and not isinstance(value, bool)
            for value in conjunct.values
        ):
            out.setdefault(ref.prop, conjunct.values)
    return out


def required_labels(label: Optional[LabelExpr]) -> Optional[frozenset[str]]:
    """Labels one of which a matching element must carry, or None.

    Conservative: ``None`` whenever nothing can be pinned down (wildcard,
    negation, or an OR branch without a required atom).  For AND the first
    pinnable operand is used (any operand is a sound superset filter).
    """
    if label is None:
        return None
    if isinstance(label, LabelAtom):
        return frozenset({label.name})
    if isinstance(label, LabelAnd):
        for item in label.items:
            result = required_labels(item)
            if result is not None:
                return result
        return None
    if isinstance(label, LabelOr):
        union: set[str] = set()
        for item in label.items:
            result = required_labels(item)
            if result is None:
                return None
            union.update(result)
        return frozenset(union)
    return None


# ----------------------------------------------------------------------
# Candidate sources
# ----------------------------------------------------------------------
@dataclass
class CandidateSource:
    """One way of producing the start candidates of a path pattern.

    ``lookups`` lists the per-label index probes of a property-index
    source: ``(label_or_None, prop, value)`` triples whose union is the
    candidate set.  Label scans carry ``labels``; full scans carry
    neither.
    """

    kind: str  # PROPERTY_INDEX | LABEL_SCAN | FULL_SCAN
    estimate: float
    labels: Optional[frozenset[str]] = None
    lookups: list[tuple[Optional[str], str, Any]] = field(default_factory=list)

    def candidate_ids(self, graph: PropertyGraph) -> Optional[list[str]]:
        """Sorted candidate node ids; None means "scan everything".

        When a current columnar snapshot exists (the frontier engine
        built one for this graph version), label scans and index probes
        are served from its member lists and property columns — same
        ids, same order, no object-graph hash-index build.
        """
        if self.kind == FULL_SCAN:
            return None
        snapshot = cached_snapshot(graph)
        if self.kind == LABEL_SCAN:
            out: set[str] = set()
            for label in self.labels or ():
                if snapshot is not None:
                    out.update(snapshot.label_members_sorted(label))
                else:
                    out.update(node.id for node in graph.nodes_with_label(label))
            return sorted(out)
        out = set()
        for label, prop, value in self.lookups:
            if snapshot is not None:
                out |= snapshot.equality_scan(label, prop, value)
            else:
                out.update(graph.index_lookup(label, prop, value, kind="node"))
        return sorted(out)

    def describe(self) -> str:
        if self.kind == FULL_SCAN:
            return "full node scan"
        if self.kind == LABEL_SCAN:
            labels = "|".join(sorted(self.labels or ()))
            return f"label scan {labels}"
        probes = ", ".join(
            (f"{label or '*'}({prop}={value!r})") for label, prop, value in self.lookups
        )
        return f"property index {probes}"


def candidate_source(
    catalog: StatisticsCatalog,
    node: ast.NodePattern,
    extra_where: Optional[Expr] = None,
) -> CandidateSource:
    """The cheapest candidate source for one pinned end node pattern.

    *extra_where* carries pushed-down final-WHERE conjuncts (only ever
    non-None for single pinned anchors — see module docstring).
    """
    labels = required_labels(node.label)
    # Single-value equalities and multi-value IN memberships compete on
    # estimated survivors; an equality on a prop shadows its membership
    # (one probe is never worse than a value-set union on the same prop).
    probes: dict[str, tuple] = {}
    for memberships in (
        sargable_memberships(node.where, node.var),
        sargable_memberships(extra_where, node.var),
    ):
        for prop, values in memberships.items():
            probes.setdefault(prop, values)
    equalities = dict(sargable_equalities(node.where, node.var))
    for prop, value in sargable_equalities(extra_where, node.var).items():
        equalities.setdefault(prop, value)
    for prop, value in equalities.items():
        probes[prop] = (value,)

    if probes:
        # Probe the property with the fewest estimated survivors.
        best_prop = min(
            probes,
            key=lambda prop: catalog.equality_estimate(labels, prop)
            * len(probes[prop]),
        )
        values = probes[best_prop]
        estimate = catalog.equality_estimate(
            labels, best_prop, num_predicates=len(probes)
        ) * len(values)
        if labels is None:
            lookups = [(None, best_prop, value) for value in values]
        else:
            lookups = [
                (label, best_prop, value)
                for label in sorted(labels)
                for value in values
            ]
        return CandidateSource(
            kind=PROPERTY_INDEX, estimate=estimate, labels=labels, lookups=lookups
        )
    if labels is not None:
        return CandidateSource(
            kind=LABEL_SCAN, estimate=catalog.label_scan_estimate(labels), labels=labels
        )
    return CandidateSource(kind=FULL_SCAN, estimate=float(catalog.num_nodes))


def initial_node_candidates(
    graph: PropertyGraph, pattern: ast.Pattern
) -> Optional[list[str]]:
    """Start candidates for a pattern anchored at its leftmost element.

    The matcher's fallback when no plan supplies candidates: pins the left
    end, then serves it from a property index or label scan.  ``None``
    means nothing could be narrowed — scan all nodes.  This is the
    sargable upgrade of the old label-only narrowing: ``(x WHERE
    x.id = 5)`` without a label now probes the (None, 'id') hash index
    instead of scanning every node.

    Deliberately statistics-free: this path also serves the planner-off
    configuration, where rebuilding the cardinality catalog after every
    mutation would cost a full graph pass per query.  Correctness needs
    no estimates — any sargable equality is at least as narrow as the
    label scan it replaces.
    """
    from repro.planner.anchor import LEFT, pinned_end_nodes

    nodes = pinned_end_nodes(pattern, LEFT)
    if nodes is None:
        return None
    out: set[str] = set()
    for node in nodes:
        labels = required_labels(node.label)
        equalities = sargable_equalities(node.where, node.var)
        memberships = sargable_memberships(node.where, node.var)
        if equalities:
            prop = sorted(equalities)[0]
            value = equalities[prop]
            for label in [None] if labels is None else sorted(labels):
                out |= graph.index_lookup(label, prop, value, kind="node")
        elif memberships:
            prop = sorted(memberships)[0]
            for label in [None] if labels is None else sorted(labels):
                for value in memberships[prop]:
                    out |= graph.index_lookup(label, prop, value, kind="node")
        elif labels is not None:
            for label in sorted(labels):
                out.update(n.id for n in graph.nodes_with_label(label))
        else:
            return None  # an unconstrained branch end: scan everything
    return sorted(out)


def union_source(sources: list[CandidateSource], catalog: StatisticsCatalog) -> CandidateSource:
    """Combine per-branch sources (alternation ends) into one source.

    Any full scan poisons the union; otherwise estimates add and lookups/
    labels merge, degrading to a label scan when kinds mix.
    """
    if not sources:
        return CandidateSource(kind=FULL_SCAN, estimate=float(catalog.num_nodes))
    if any(source.kind == FULL_SCAN for source in sources):
        return CandidateSource(kind=FULL_SCAN, estimate=float(catalog.num_nodes))
    estimate = min(sum(s.estimate for s in sources), float(catalog.num_nodes))
    if all(source.kind == PROPERTY_INDEX for source in sources):
        lookups = [probe for source in sources for probe in source.lookups]
        labels_sets = [s.labels for s in sources]
        labels = (
            None
            if any(l is None for l in labels_sets)
            else frozenset().union(*labels_sets)
        )
        return CandidateSource(
            kind=PROPERTY_INDEX, estimate=estimate, labels=labels, lookups=lookups
        )
    # Mixed index/label-scan branches: fall back to the label-scan union.
    labels: set[str] = set()
    for source in sources:
        if source.labels is None:
            return CandidateSource(kind=FULL_SCAN, estimate=float(catalog.num_nodes))
        labels.update(source.labels)
    return CandidateSource(
        kind=LABEL_SCAN,
        estimate=catalog.label_scan_estimate(frozenset(labels)),
        labels=frozenset(labels),
    )
