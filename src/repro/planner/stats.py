"""Per-graph statistics catalog with mutation-keyed caching.

The raw numbers live in :mod:`repro.graph.statistics`; this module wraps
them in the estimation API the planner consumes and caches one catalog
per graph, invalidated whenever :attr:`PropertyGraph.version` moves (every
mutation bumps it).  Estimates are floats and deliberately crude — they
only need to *rank* anchor candidates and join orders, not predict exact
cardinalities.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.model import PropertyGraph
from repro.graph.statistics import (  # noqa: F401  (re-export for callers)
    CardinalityStatistics,
    LazyCardinalityStatistics,
    cardinality_statistics,
)

_CACHE_ATTR = "_planner_stats_cache"


class StatisticsCatalog:
    """Estimation façade over a cardinality-statistics provider.

    ``stats`` is either the eager :class:`CardinalityStatistics` snapshot
    or (the default via :meth:`for_graph`) the pay-as-you-go
    :class:`LazyCardinalityStatistics`, which computes identical numbers
    per label/property on first use instead of one full graph pass up
    front — planning a query on a 60k-node graph costs milliseconds, not
    a second.
    """

    def __init__(self, stats: "CardinalityStatistics | LazyCardinalityStatistics"):
        self.stats = stats

    # -- caching -------------------------------------------------------
    @classmethod
    def for_graph(cls, graph: PropertyGraph) -> "StatisticsCatalog":
        """The catalog for *graph*, recollected after any mutation."""
        cached = getattr(graph, _CACHE_ATTR, None)
        if cached is not None and cached.stats.version == graph.version:
            return cached
        catalog = cls(LazyCardinalityStatistics(graph))
        setattr(graph, _CACHE_ATTR, catalog)
        return catalog

    @property
    def version(self) -> int:
        return self.stats.version

    @property
    def num_nodes(self) -> int:
        return self.stats.num_nodes

    @property
    def num_edges(self) -> int:
        return self.stats.num_edges

    # -- node cardinalities --------------------------------------------
    def label_scan_estimate(self, labels: Optional[frozenset[str]]) -> float:
        """Estimated nodes carrying at least one of *labels* (None = all)."""
        if labels is None:
            return float(self.stats.num_nodes)
        total = sum(self.stats.node_count(label) for label in labels)
        return float(min(total, self.stats.num_nodes))

    def equality_estimate(
        self, labels: Optional[frozenset[str]], prop: str, num_predicates: int = 1
    ) -> float:
        """Estimated nodes surviving equality predicates on *prop*.

        Uses the uniform-distribution assumption ``count / distinct``; a
        second equality predicate on another property halves the estimate
        again (the classic independence heuristic, floored at one row).
        """
        if labels is None:
            count = float(self.stats.num_nodes)
            distinct = self.stats.distinct("node", None, prop)
        else:
            count = 0.0
            distinct = 0
            for label in labels:
                count += self.stats.node_count(label)
                distinct = max(distinct, self.stats.distinct("node", label, prop))
            count = min(count, float(self.stats.num_nodes))
        if distinct <= 0:
            # No element carries the property: the lookup returns nothing.
            return 0.0
        estimate = count / distinct
        for _ in range(num_predicates - 1):
            estimate /= 2.0
        return max(estimate, 0.0)

    # -- traversal fan-out ---------------------------------------------
    def edge_fanout(self, edge_label: Optional[str]) -> float:
        """Mean number of *edge_label* edges per node (traversal fan-out)."""
        if not self.stats.num_nodes:
            return 0.0
        return self.stats.edge_count(edge_label) / self.stats.num_nodes

    def pair_selectivity(
        self,
        edge_label: Optional[str],
        source_label: Optional[str],
        target_label: Optional[str],
    ) -> float:
        return self.stats.pair_selectivity(edge_label, source_label, target_label)
