"""Query plans: anchors, candidate sources, join order, EXPLAIN PLAN.

:func:`plan_query` turns a :class:`~repro.gpml.engine.PreparedQuery` plus
a concrete graph into a :class:`QueryPlan`:

* per path pattern, every candidate anchor (leftmost, rightmost via
  pattern reversal, interior fixed elements) is scored by estimated start
  cardinality; the cheapest *executable* anchor wins,
* path patterns are ordered for the cross-pattern join by estimated
  result size, preferring patterns that share singleton variables with
  the patterns already joined (connected joins before cross products) —
  used by the materializing assembly (reference engine, baselines) and
  surfaced in EXPLAIN PLAN; the streaming engine joins in textual order
  with hash builds, where build order is immaterial,
* the plan carries the streaming/blocking pipeline classification that
  EXPLAIN PLAN renders (see :mod:`repro.gpml.streaming`),
* the plan caches the reversed pattern + NFA for right anchors and is
  itself cached on the prepared query, keyed on the graph's mutation
  version — mutating the graph invalidates the plan.

Plans only reorder exploration; the bag of results is unchanged (joined
rows always come out in textual nested-loop order, and reversed runs map
bindings back to forward orientation).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ReproError
from repro.gpml import ast
from repro.gpml.analysis import PathAnalysis
from repro.gpml.automaton import PatternNFA
from repro.gpml.streaming import classify_pipeline, render_pipeline
from repro.graph.model import PropertyGraph
from repro.planner.anchor import (
    INTERIOR,
    LEFT,
    RIGHT,
    compile_reversed,
    interior_fixed_nodes,
    is_reversible,
    pinned_end_nodes,
)
from repro.planner.indexes import (
    FULL_SCAN,
    CandidateSource,
    candidate_source,
    required_labels,
    sargable_equalities,
    sargable_memberships,
    union_source,
)
from repro.planner.stats import StatisticsCatalog


@dataclass
class AnchorOption:
    """One scored anchor candidate of a path pattern."""

    side: str  # left | right | interior
    source: CandidateSource
    executable: bool
    element: Optional[str] = None  # pretty-printed anchor element

    def describe(self) -> str:
        element = f" at {self.element}" if self.element else ""
        note = "" if self.executable else " (not executable)"
        return (
            f"{self.side}{element} via {self.source.describe()} "
            f"[est {_fmt(self.source.estimate)}]{note}"
        )


@dataclass
class PatternPlan:
    """The chosen execution strategy of one path pattern."""

    index: int
    side: str  # left | right
    source: CandidateSource
    options: list[AnchorOption]
    est_result: float
    reversed_path: Optional[ast.PathPattern] = None
    reversed_nfa: Optional[PatternNFA] = None
    #: actual start-candidate count, recorded by the engine at execution
    observed_candidates: Optional[int] = None

    @property
    def est_candidates(self) -> float:
        return self.source.estimate

    def start_candidates(self, graph: PropertyGraph) -> Optional[list[str]]:
        """Materialized start candidates; None lets the matcher scan."""
        return self.source.candidate_ids(graph)


@dataclass
class QueryPlan:
    """A full plan: one PatternPlan per path pattern plus the join order."""

    graph_name: str
    graph_version: int
    num_nodes: int
    num_edges: int
    patterns: list[PatternPlan]
    join_order: list[int]
    join_sharing: dict[int, list[str]] = field(default_factory=dict)
    #: streaming/blocking classification of every execution stage
    #: (see repro.gpml.streaming.classify_pipeline)
    pipeline: list = field(default_factory=list)

    def render(self, query_text: Optional[str] = None, paths: Optional[list] = None) -> str:
        lines: list[str] = []
        if query_text:
            lines.append(f"EXPLAIN PLAN for: {query_text.strip()}")
        lines.append(
            f"graph: {self.graph_name} ({self.num_nodes} nodes, "
            f"{self.num_edges} edges; statistics v{self.graph_version})"
        )
        for plan in self.patterns:
            if paths is not None:
                lines.append(f"path pattern #{plan.index + 1}: {paths[plan.index]}")
            else:
                lines.append(f"path pattern #{plan.index + 1}:")
            chosen = next(
                (o for o in plan.options if o.side == plan.side and o.executable), None
            )
            anchor_at = f" at {chosen.element}" if chosen and chosen.element else ""
            lines.append(
                f"  anchor: {plan.side}{anchor_at} via {plan.source.describe()} "
                f"[est {_fmt(plan.source.estimate)} of {self.num_nodes} nodes]"
            )
            if plan.observed_candidates is not None:
                lines.append(f"  observed start candidates: {plan.observed_candidates}")
            for option in plan.options:
                marker = "*" if option.side == plan.side and option.executable else " "
                lines.append(f"  {marker} considered: {option.describe()}")
            lines.append(f"  estimated result size: {_fmt(plan.est_result)}")
        if len(self.patterns) > 1:
            parts = []
            for position, index in enumerate(self.join_order):
                shared = self.join_sharing.get(index, [])
                tag = f"#{index + 1}"
                if position and shared:
                    tag += f" (join on {', '.join(shared)})"
                elif position:
                    tag += " (cross product)"
                parts.append(tag)
            lines.append(f"join order: {' -> '.join(parts)}")
            lines.append(
                "  (materializing assembly only; the streaming engine "
                "probes pattern #1 and hash-builds the rest — see pipeline)"
            )
        if self.pipeline:
            lines.extend(render_pipeline(self.pipeline))
        return "\n".join(lines)


def _fmt(value: float) -> str:
    if value >= 1e15:
        return f"{value:.2e}"
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def plan_query(graph: PropertyGraph, prepared) -> QueryPlan:
    """Plan *prepared* against *graph*; cached until the graph mutates."""
    cache = getattr(prepared, "plan_cache", None)
    if cache is not None:
        entry = cache.get("plan")
        if entry is not None:
            cached_ref, cached_version, cached_plan = entry
            if cached_ref() is graph and cached_version == graph.version:
                return cached_plan

    catalog = StatisticsCatalog.for_graph(graph)
    patterns = [
        _plan_pattern(catalog, prepared, index)
        for index in range(prepared.num_path_patterns)
    ]
    join_order, join_sharing = _order_joins(prepared, patterns)
    plan = QueryPlan(
        graph_name=graph.name,
        graph_version=graph.version,
        num_nodes=catalog.num_nodes,
        num_edges=catalog.num_edges,
        patterns=patterns,
        join_order=join_order,
        join_sharing=join_sharing,
        pipeline=classify_pipeline(prepared),
    )
    if cache is not None:
        cache["plan"] = (weakref.ref(graph), graph.version, plan)
    return plan


def _plan_pattern(catalog: StatisticsCatalog, prepared, index: int) -> PatternPlan:
    path = prepared.normalized.paths[index]
    analysis: PathAnalysis = prepared.analysis.paths[index]
    where = prepared.normalized.where

    options: list[AnchorOption] = []
    end_sources: dict[str, CandidateSource] = {}
    for side in (LEFT, RIGHT):
        nodes = pinned_end_nodes(path.pattern, side)
        source = _end_source(catalog, analysis, nodes, where)
        executable = side == LEFT or is_reversible(analysis)
        element = str(nodes[0]) if nodes and len(nodes) == 1 else None
        end_sources[side] = source
        options.append(
            AnchorOption(side=side, source=source, executable=executable, element=element)
        )
    for node in interior_fixed_nodes(path.pattern):
        source = candidate_source(catalog, node, _pushable_where(analysis, node, where))
        options.append(
            AnchorOption(
                side=INTERIOR, source=source, executable=False, element=str(node)
            )
        )

    executable = [o for o in options if o.executable]
    # Left wins ties: it needs no reversal machinery.
    chosen = min(
        executable, key=lambda o: (o.source.estimate, 0 if o.side == LEFT else 1)
    )

    reversed_path = reversed_nfa = None
    if chosen.side == RIGHT:
        try:
            reversed_path, reversed_nfa = compile_reversed(path)
        except ReproError:
            # Defensive: if the reversed pattern will not analyze/compile,
            # fall back to the forward anchor rather than failing the query.
            chosen = next(o for o in options if o.side == LEFT)

    est_result = _estimate_result(catalog, path.pattern)
    return PatternPlan(
        index=index,
        side=chosen.side,
        source=chosen.source,
        options=options,
        est_result=est_result,
        reversed_path=reversed_path,
        reversed_nfa=reversed_nfa,
    )


def _end_source(
    catalog: StatisticsCatalog,
    analysis: PathAnalysis,
    nodes: Optional[list[ast.NodePattern]],
    where,
) -> CandidateSource:
    if not nodes:
        return CandidateSource(kind=FULL_SCAN, estimate=float(catalog.num_nodes))
    sources = []
    for node in nodes:
        extra = _pushable_where(analysis, node, where) if len(nodes) == 1 else None
        sources.append(candidate_source(catalog, node, extra))
    return union_source(sources, catalog)


def _pushable_where(analysis: PathAnalysis, node: ast.NodePattern, where):
    """The final WHERE, when its conjuncts on this anchor var may be pushed.

    Requires an unconditional non-group singleton: every solution then
    binds the variable to the anchor element, so dropping a start node
    only removes rows the final WHERE would reject (see planner.indexes).
    """
    if where is None or node.var is None:
        return None
    info = analysis.vars.get(node.var)
    if info is None or info.group or info.conditional or info.anonymous:
        return None
    if not sargable_equalities(where, node.var) and not sargable_memberships(
        where, node.var
    ):
        return None
    return where


# ----------------------------------------------------------------------
# Result-size estimation (for join ordering only; deliberately crude)
# ----------------------------------------------------------------------
#: estimates saturate here — only their relative order matters, and
#: unclamped powers of fan-out overflow floats on large quantifiers
_EST_CAP = 1e18


def _clamp(value: float) -> float:
    if value != value or value > _EST_CAP:  # NaN or huge
        return _EST_CAP
    return max(value, 0.0)


def _estimate_result(catalog: StatisticsCatalog, pattern: ast.Pattern) -> float:
    return _clamp(catalog.num_nodes * _expansion(catalog, pattern))


def _expansion(catalog: StatisticsCatalog, pattern: ast.Pattern) -> float:
    """Multiplicative growth factor of the match count for *pattern*.

    Node patterns contribute their label/equality selectivity as a
    fraction; edge patterns contribute their mean fan-out; quantifiers
    exponentiate by their lower bound (the dominant term for unbounded
    quantifiers under restrictors/selectors).
    """
    if isinstance(pattern, ast.NodePattern):
        if not catalog.num_nodes:
            return 0.0
        labels = required_labels(pattern.label)
        equalities = sargable_equalities(pattern.where, pattern.var)
        if equalities:
            prop = min(
                equalities, key=lambda p: catalog.equality_estimate(labels, p)
            )
            count = catalog.equality_estimate(labels, prop, len(equalities))
        else:
            count = catalog.label_scan_estimate(labels)
        return count / catalog.num_nodes
    if isinstance(pattern, ast.EdgePattern):
        labels = required_labels(pattern.label)
        if labels is None:
            return max(catalog.edge_fanout(None), 0.0)
        return sum(catalog.edge_fanout(label) for label in labels)
    if isinstance(pattern, ast.Concatenation):
        factor = 1.0
        for item in pattern.items:
            factor = _clamp(factor * _expansion(catalog, item))
        return factor
    if isinstance(pattern, ast.Quantified):
        inner = _expansion(catalog, pattern.inner)
        if pattern.lower <= 0:
            return _clamp(max(inner, 1.0))
        try:
            return _clamp(inner ** max(pattern.lower, 1))
        except OverflowError:
            return _EST_CAP
    if isinstance(pattern, ast.OptionalPattern):
        return _clamp(1.0 + _expansion(catalog, pattern.inner))
    if isinstance(pattern, ast.ParenPattern):
        return _expansion(catalog, pattern.inner)
    if isinstance(pattern, ast.Alternation):
        return _clamp(sum(_expansion(catalog, branch) for branch in pattern.branches))
    return 1.0


# ----------------------------------------------------------------------
# Join ordering
# ----------------------------------------------------------------------
def _order_joins(prepared, patterns: list[PatternPlan]):
    """Greedy order: smallest first, then connected-and-small.

    Patterns sharing a bound singleton variable join with equality
    filtering; unconnected patterns form cross products and go last among
    equals.  Returns the order and, per pattern, the variables it shares
    with previously joined patterns (for EXPLAIN PLAN).
    """
    num = len(patterns)
    if num <= 1:
        return list(range(num)), {}
    singleton_vars: list[set[str]] = []
    for analysis in prepared.analysis.paths:
        singleton_vars.append(
            {
                name
                for name, info in analysis.vars.items()
                if not info.anonymous and not info.group
            }
        )
    remaining = set(range(num))
    order: list[int] = []
    sharing: dict[int, list[str]] = {}
    bound: set[str] = set()
    while remaining:
        if not order:
            choice = min(remaining, key=lambda i: (patterns[i].est_result, i))
        else:
            choice = min(
                remaining,
                key=lambda i: (
                    0 if singleton_vars[i] & bound else 1,
                    patterns[i].est_result,
                    i,
                ),
            )
            sharing[choice] = sorted(singleton_vars[choice] & bound)
        order.append(choice)
        remaining.discard(choice)
        bound |= singleton_vars[choice]
    return order, sharing
