"""Anchor selection: where the product-graph search should start.

The matcher anchors a path pattern at its leftmost element.  This module
lets the planner anchor at the *rightmost* element instead, by reversing
the pattern — flipping edge orientations and concatenation order — and
mapping accepted bindings back to forward orientation afterwards.  The
mapping is exact: walked elements are reversed, elementary-binding entries
are re-ordered, and quantifier-iteration annotations are renumbered so
group variables and multiset provenance tags come out identical to a
forward run (iteration *i* of *k* becomes iteration *k+1-i*).

Interior fixed elements are scored as well (they often dominate both
ends on selectivity) but are not executable anchors in this engine — the
plan records them so EXPLAIN PLAN shows what a bidirectional matcher
would buy.

One reversal hazard is order-sensitive aggregation: LISTAGG inside a
*prefilter* folds group bindings in iteration order, which a reversed run
visits backwards.  Patterns whose element/paren WHEREs use LISTAGG are
therefore marked non-reversible.  (The final WHERE is unaffected: it sees
reduced bindings, which are already mapped back to forward order.)

The planner is not the only consumer: GQL's chained-MATCH seeding
(:mod:`repro.gql.pipeline`) uses :func:`pinned_end_nodes`,
:func:`is_reversible` and :func:`compile_reversed` to anchor a later
statement's search at a variable bound upstream — a right-end seed runs
the reversed pattern from the bound node and maps bindings back exactly
as a right-anchored plan does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.gpml import ast
from repro.gpml.analysis import PathAnalysis, analyze
from repro.gpml.automaton import PatternNFA, compile_path_pattern
from repro.gpml.bindings import ElementaryBinding, PathBinding
from repro.gpml.expr import Aggregate, Expr

LEFT = "left"
RIGHT = "right"
INTERIOR = "interior"

_REVERSED_ORIENTATION = {
    ast.Orientation.LEFT: ast.Orientation.RIGHT,
    ast.Orientation.RIGHT: ast.Orientation.LEFT,
    ast.Orientation.UNDIRECTED: ast.Orientation.UNDIRECTED,
    ast.Orientation.LEFT_OR_UNDIRECTED: ast.Orientation.UNDIRECTED_OR_RIGHT,
    ast.Orientation.UNDIRECTED_OR_RIGHT: ast.Orientation.LEFT_OR_UNDIRECTED,
    ast.Orientation.LEFT_OR_RIGHT: ast.Orientation.LEFT_OR_RIGHT,
    ast.Orientation.ANY: ast.Orientation.ANY,
}


# ----------------------------------------------------------------------
# Pattern reversal
# ----------------------------------------------------------------------
def reverse_pattern(pattern: ast.Pattern) -> ast.Pattern:
    """Mirror a (normalized) pattern left-to-right.

    Node patterns are shared (they are immutable in practice); all
    containers and edge patterns are rebuilt.  Quantifier/paren/alternation
    ids are preserved so annotations line up with the forward pattern.
    """
    if isinstance(pattern, ast.NodePattern):
        return pattern
    if isinstance(pattern, ast.EdgePattern):
        return ast.EdgePattern(
            orientation=_REVERSED_ORIENTATION[pattern.orientation],
            var=pattern.var,
            label=pattern.label,
            where=pattern.where,
            anonymous=pattern.anonymous,
        )
    if isinstance(pattern, ast.Concatenation):
        return ast.Concatenation(
            items=[reverse_pattern(item) for item in reversed(pattern.items)]
        )
    if isinstance(pattern, ast.Quantified):
        return ast.Quantified(
            inner=reverse_pattern(pattern.inner),
            lower=pattern.lower,
            upper=pattern.upper,
            quant_id=pattern.quant_id,
        )
    if isinstance(pattern, ast.OptionalPattern):
        return ast.OptionalPattern(inner=reverse_pattern(pattern.inner))
    if isinstance(pattern, ast.ParenPattern):
        return ast.ParenPattern(
            inner=reverse_pattern(pattern.inner),
            where=pattern.where,
            restrictor=pattern.restrictor,
            square=pattern.square,
            paren_id=pattern.paren_id,
        )
    if isinstance(pattern, ast.Alternation):
        return ast.Alternation(
            branches=[reverse_pattern(branch) for branch in pattern.branches],
            operators=list(pattern.operators),
            alt_id=pattern.alt_id,
        )
    raise TypeError(f"cannot reverse pattern node {type(pattern).__name__}")


def reverse_path_pattern(path: ast.PathPattern) -> ast.PathPattern:
    return ast.PathPattern(
        pattern=reverse_pattern(path.pattern),
        selector=path.selector,
        restrictor=path.restrictor,
        path_var=path.path_var,
    )


def compile_reversed(path: ast.PathPattern) -> tuple[ast.PathPattern, PatternNFA]:
    """Reverse a normalized path pattern and compile its NFA.

    The reversed pattern is re-analyzed so deferred-WHERE decisions follow
    the reversed evaluation order (a clause referencing variables bound
    further right *in reversed order* must now be deferred).
    """
    reversed_path = reverse_path_pattern(path)
    analysis = analyze(ast.GraphPattern(paths=[reversed_path], where=None, keep=None))
    nfa = compile_path_pattern(reversed_path, analysis.paths[0])
    return reversed_path, nfa


def is_reversible(analysis: PathAnalysis) -> bool:
    """Reversal is unsound only for order-sensitive prefilter aggregates."""
    for node in analysis.path.pattern.walk():
        where = getattr(node, "where", None)
        if where is None:
            continue
        if any(agg.func == "LISTAGG" for agg in where.aggregates()):
            return False
    return True


# ----------------------------------------------------------------------
# Binding reversal
# ----------------------------------------------------------------------
def reverse_binding(binding: PathBinding) -> PathBinding:
    """Map a binding of the reversed pattern back to forward orientation.

    Quantifier annotations are renumbered per enclosing context: a
    quantifier that ran k iterations has iteration i relabeled k+1-i, so
    the renumbered annotations equal what a forward run would have
    produced.  (Iterations are contiguous 1..k by construction, and
    ``ann`` records true iteration numbers — counters saturate, the
    annotations do not.)
    """
    annotations = {entry.annotation for entry in binding.entries}
    annotations.update(ann for _, _, ann in binding.bag_tags)
    max_iteration: dict[tuple, int] = {}
    for ann in annotations:
        for depth in range(len(ann)):
            quant_id, iteration = ann[depth]
            key = (ann[:depth], quant_id)
            max_iteration[key] = max(max_iteration.get(key, 0), iteration)

    def remap(ann: tuple) -> tuple:
        return tuple(
            (quant_id, max_iteration[(ann[:depth], quant_id)] + 1 - iteration)
            for depth, (quant_id, iteration) in enumerate(ann)
        )

    entries = tuple(
        ElementaryBinding(entry.var, remap(entry.annotation), entry.element_id)
        for entry in reversed(binding.entries)
    )
    bag_tags = frozenset(
        (alt_id, dedup_class, remap(ann)) for alt_id, dedup_class, ann in binding.bag_tags
    )
    return PathBinding(
        elements=tuple(reversed(binding.elements)),
        entries=entries,
        bag_tags=bag_tags,
    )


# ----------------------------------------------------------------------
# Pinned end elements
# ----------------------------------------------------------------------
def pinned_end_nodes(pattern: ast.Pattern, side: str) -> Optional[list[ast.NodePattern]]:
    """The node patterns the *side* end of every match must satisfy.

    Returns one node pattern per alternation branch reaching that end, or
    None when the end cannot be pinned (an optional or {0,...}-quantified
    prefix means the first tested element varies by match).
    """
    if isinstance(pattern, ast.NodePattern):
        return [pattern]
    if isinstance(pattern, ast.EdgePattern):
        return None
    if isinstance(pattern, ast.Concatenation):
        ordered = pattern.items if side == LEFT else list(reversed(pattern.items))
        out: list[ast.NodePattern] = []
        for item in ordered:
            result = _taken_end_nodes(item, side)
            if result is None:
                return None
            out.extend(result)
            if not _may_be_empty(item):
                # The end element is one of the pinned nodes collected so
                # far (skippable prefixes contribute their own ends too).
                return out
        return None  # the whole concatenation can match empty
    if isinstance(pattern, ast.ParenPattern):
        return pinned_end_nodes(pattern.inner, side)
    if isinstance(pattern, ast.Quantified):
        if pattern.lower == 0:
            return None
        return pinned_end_nodes(pattern.inner, side)
    if isinstance(pattern, ast.Alternation):
        out: list[ast.NodePattern] = []
        for branch in pattern.branches:
            result = pinned_end_nodes(branch, side)
            if result is None:
                return None
            out.extend(result)
        return out
    return None


def _taken_end_nodes(pattern: ast.Pattern, side: str) -> Optional[list[ast.NodePattern]]:
    """End nodes of *pattern* when it matches non-empty (skips handled by
    the caller, which also considers the elements after the skip)."""
    if isinstance(pattern, ast.OptionalPattern):
        return pinned_end_nodes(pattern.inner, side)
    if isinstance(pattern, ast.Quantified) and pattern.lower == 0:
        return pinned_end_nodes(pattern.inner, side)
    return pinned_end_nodes(pattern, side)


def _may_be_empty(pattern: ast.Pattern) -> bool:
    if isinstance(pattern, ast.Quantified):
        return pattern.lower == 0
    if isinstance(pattern, ast.OptionalPattern):
        return True
    if isinstance(pattern, ast.ParenPattern):
        return _may_be_empty(pattern.inner)
    if isinstance(pattern, ast.Concatenation):
        return all(_may_be_empty(item) for item in pattern.items)
    return False


# ----------------------------------------------------------------------
# Seed planning (shared by GQL chained MATCH and SQL seeded joins)
# ----------------------------------------------------------------------
@dataclass
class SeedSpec:
    """How a pattern search anchors at a runtime-known node.

    Produced by :func:`plan_seed`; consumed by GQL's chained MATCH and the
    SQL planner's join-through-GRAPH_TABLE rewrite.  A RIGHT-side seed
    carries the pre-compiled reversed pattern and NFA.
    """

    var: str
    side: str  # LEFT | RIGHT
    reversed_path: Optional[ast.PathPattern] = None
    reversed_nfa: Optional[PatternNFA] = None

    @property
    def reversed_run(self) -> Optional[tuple[ast.PathPattern, PatternNFA]]:
        """The ``reversed_run`` argument for a seeded engine search."""
        if self.side == RIGHT:
            return (self.reversed_path, self.reversed_nfa)
        return None

    def describe(self) -> str:
        return (
            f"seeded search on {self.var} ({self.side} end bound upstream), "
            f"one anchored run per incoming row"
        )


def plan_seed(prepared, candidate_vars: Sequence[str]) -> Optional[SeedSpec]:
    """Pick a sound anchor variable among *candidate_vars*, or None.

    Seeding is sound when every match pins one end of the (single) path
    pattern to the same unconditional singleton variable: restricting the
    search to start at the bound node then selects whole endpoint
    partitions, so selectors/KEEP inside the pattern are unaffected.  The
    right end requires the reversal machinery (and a reversible pattern);
    left wins ties because it needs none.

    ``prepared`` is a :class:`~repro.gpml.engine.PreparedQuery` (typed
    loosely to keep this module independent of the engine).
    """
    if prepared.num_path_patterns != 1:
        return None
    path = prepared.normalized.paths[0]
    analysis = prepared.analysis.paths[0]
    for side in (LEFT, RIGHT):
        nodes = pinned_end_nodes(path.pattern, side)
        if not nodes:
            continue
        vars_ = {node.var for node in nodes}
        if len(vars_) != 1:
            continue
        var = next(iter(vars_))
        if var is None or var not in candidate_vars:
            continue
        info = analysis.vars.get(var)
        if info is None or info.group or info.conditional or info.anonymous:
            continue
        if side == LEFT:
            return SeedSpec(var=var, side=LEFT)
        if not is_reversible(analysis):
            continue
        try:
            reversed_path, reversed_nfa = compile_reversed(path)
        except ReproError:  # pragma: no cover - defensive, mirrors planner
            continue
        return SeedSpec(
            var=var, side=RIGHT,
            reversed_path=reversed_path, reversed_nfa=reversed_nfa,
        )
    return None


def interior_fixed_nodes(pattern: ast.Pattern) -> list[ast.NodePattern]:
    """Interior node patterns matched exactly once per match.

    Only top-level concatenation members count (descending through
    parens); anything under a quantifier, optional, or alternation is not
    at a fixed position.  Ends are excluded — they are scored separately.
    """
    items = _fixed_sequence(pattern)
    return [item for item in items[1:-1] if isinstance(item, ast.NodePattern)]


def _fixed_sequence(pattern: ast.Pattern) -> list[ast.Pattern]:
    if isinstance(pattern, ast.Concatenation):
        out: list[ast.Pattern] = []
        for item in pattern.items:
            out.extend(_fixed_sequence(item))
        return out
    if isinstance(pattern, ast.ParenPattern):
        return _fixed_sequence(pattern.inner)
    return [pattern]
