"""Name resolution: SQL expressions over operator schemas.

The parser reuses GPML expression nodes, so a column reference arrives
as either ``VarRef("amount")`` (unqualified) or
``PropertyRef("t", "amount")`` (alias-qualified).  The binder resolves
each against a :class:`Scope` — the ordered column list an operator
produces — and rewrites it into a positional :class:`BoundColumn`.
Everything else in the expression tree is rebuilt unchanged, which keeps
one evaluator for both languages: a bound SQL expression evaluates with
the ordinary GPML machinery against a :class:`RowContext`.

Resolution is where SQL's error surface lives: unknown columns, unknown
table aliases, ambiguous unqualified names, aggregates outside
GROUP BY/HAVING/SELECT, and graph-only predicates (``IS DIRECTED``,
``SAME``...) leaking out of GRAPH_TABLE all raise :class:`SqlError`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.errors import SqlError
from repro.gpml.expr import (
    Aggregate,
    AllDifferent,
    EvalContext,
    Expr,
    IsDestinationOf,
    IsDirected,
    IsSourceOf,
    PropertyRef,
    Same,
    VarRef,
)
from repro.sql.ast import SqlAggregate
from repro.values import TRUE

#: GPML-only expression nodes that cannot appear in SQL clauses
_GRAPH_ONLY = (Aggregate, Same, AllDifferent, IsDirected, IsSourceOf, IsDestinationOf)


@dataclass(frozen=True)
class Column:
    """One output column of an operator: optional qualifier, bare name,
    and the index of the FROM item it descends from (for pushdown)."""

    table: Optional[str]
    name: str
    source: int = 0

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


class Scope:
    """An ordered column list with SQL name-resolution rules."""

    def __init__(self, columns: Iterable[Column]):
        self.columns = list(columns)

    def __len__(self) -> int:
        return len(self.columns)

    def resolve(self, qualifier: Optional[str], name: str) -> int:
        """Index of the referenced column, or raise SqlError."""
        if qualifier is None:
            hits = [i for i, c in enumerate(self.columns) if c.name == name]
            if len(hits) == 1:
                return hits[0]
            if len(hits) > 1:
                tables = ", ".join(
                    sorted(self.columns[i].qualified for i in hits)
                )
                raise SqlError(f"ambiguous column {name!r} (could be {tables})")
            raise SqlError(
                f"unknown column {name!r} (available: {self._available()})"
            )
        hits = [
            i
            for i, c in enumerate(self.columns)
            if c.table == qualifier and c.name == name
        ]
        if len(hits) == 1:
            return hits[0]
        if not any(c.table == qualifier for c in self.columns):
            raise SqlError(f"unknown table alias {qualifier!r} in {qualifier}.{name}")
        raise SqlError(
            f"unknown column {qualifier}.{name} (available: {self._available()})"
        )

    def _available(self) -> str:
        return ", ".join(c.qualified for c in self.columns) or "<no columns>"


@dataclass(frozen=True)
class BoundColumn(Expr):
    """A resolved column reference: positional index into the input row."""

    index: int
    label: str

    def evaluate(self, ctx: "RowContext") -> Any:
        return ctx.row[self.index]

    def __str__(self) -> str:
        return self.label


class RowContext(EvalContext):
    """Evaluation context over one operator row (a plain value tuple)."""

    __slots__ = ("row",)

    def __init__(self, row: tuple):
        self.row = row
        self._bindings = {}
        self.graph = None


def evaluate(expr: Expr, row: tuple) -> Any:
    return expr.evaluate(RowContext(row))


def holds(expr: Expr, row: tuple) -> bool:
    """SQL predicate semantics: keep the row only when the truth is TRUE."""
    return expr.truth(RowContext(row)) is TRUE


# ----------------------------------------------------------------------
# Binding
# ----------------------------------------------------------------------
def bind(expr: Expr, scope: Scope, *, where: str = "this context") -> Expr:
    """Rewrite column references in *expr* to :class:`BoundColumn`.

    Aggregates are rejected — clauses that accept them (SELECT, HAVING,
    ORDER BY) go through the aggregation path in the planner, which
    replaces :class:`SqlAggregate` nodes before delegating here.
    """
    if isinstance(expr, _GRAPH_ONLY):
        raise SqlError(
            f"{expr} is a graph pattern predicate; it is only valid inside "
            f"GRAPH_TABLE, not in {where}"
        )
    if isinstance(expr, SqlAggregate):
        raise SqlError(f"aggregate {expr} is not allowed in {where}")
    if isinstance(expr, VarRef):
        return BoundColumn(scope.resolve(None, expr.name), str(expr))
    if isinstance(expr, PropertyRef):
        return BoundColumn(scope.resolve(expr.var, expr.prop), str(expr))
    return rebuild(expr, lambda child: bind(child, scope, where=where))


def rebuild(expr: Expr, transform) -> Expr:
    """Rebuild a frozen expression node with *transform* applied to every
    child expression (including those inside tuple-valued fields)."""
    changes = {}
    for f in dataclasses.fields(expr):
        value = getattr(expr, f.name)
        if isinstance(value, Expr):
            changes[f.name] = transform(value)
        elif isinstance(value, tuple) and any(isinstance(v, Expr) for v in value):
            changes[f.name] = tuple(
                transform(v) if isinstance(v, Expr) else v for v in value
            )
    return dataclasses.replace(expr, **changes) if changes else expr


def referenced_columns(expr: Expr, scope: Scope) -> set[int]:
    """Scope indexes of every column reference in *expr*."""
    found: set[int] = set()

    def walk(node: Expr) -> None:
        if isinstance(node, VarRef):
            found.add(scope.resolve(None, node.name))
            return
        if isinstance(node, PropertyRef):
            found.add(scope.resolve(node.var, node.prop))
            return
        for child in node.children():
            walk(child)

    walk(expr)
    return found


def substitute_columns(expr: Expr, scope: Scope, replacements: dict[int, Expr]) -> Expr:
    """Replace every column reference by its entry in *replacements*.

    Used by predicate pushdown: references to GRAPH_TABLE output columns
    are substituted by the defining COLUMNS expressions, turning a SQL
    conjunct into a GPML predicate over pattern variables.
    """
    if isinstance(expr, VarRef):
        return replacements[scope.resolve(None, expr.name)]
    if isinstance(expr, PropertyRef):
        return replacements[scope.resolve(expr.var, expr.prop)]
    return rebuild(expr, lambda child: substitute_columns(child, scope, replacements))


def bind_post_aggregate(
    expr: Expr,
    group_keys: list[tuple[Expr, int]],
    aggregates: list[tuple[SqlAggregate, int]],
    post_scope: Scope,
    *,
    where: str = "SELECT list",
) -> Expr:
    """Bind an expression against the output of the aggregate operator.

    A subexpression structurally equal to a GROUP BY expression maps to
    its key column; a :class:`SqlAggregate` maps to its aggregate column;
    remaining column references resolve against the post-aggregate scope
    by name (``GROUP BY t.sender`` keeps ``sender`` addressable).  Any
    other column reference is the classic SQL error: it must appear in
    GROUP BY or be used in an aggregate.
    """
    for unbound, index in group_keys:
        if expr == unbound:
            return BoundColumn(index, str(expr))
    if isinstance(expr, SqlAggregate):
        for aggregate, index in aggregates:
            if expr == aggregate:
                return BoundColumn(index, str(expr))
        raise SqlError(f"uncollected aggregate {expr}")  # pragma: no cover
    if isinstance(expr, (VarRef, PropertyRef)):
        qualifier = expr.var if isinstance(expr, PropertyRef) else None
        name = expr.prop if isinstance(expr, PropertyRef) else expr.name
        try:
            return BoundColumn(post_scope.resolve(qualifier, name), str(expr))
        except SqlError:
            raise SqlError(
                f"column {expr} in {where} must appear in GROUP BY or be "
                f"used inside an aggregate"
            ) from None
    if isinstance(expr, _GRAPH_ONLY):
        raise SqlError(
            f"{expr} is a graph pattern predicate; it is only valid inside "
            f"GRAPH_TABLE, not in {where}"
        )
    return rebuild(
        expr,
        lambda child: bind_post_aggregate(
            child, group_keys, aggregates, post_scope, where=where
        ),
    )


def output_name(expr: Optional[Expr], alias: Optional[str], index: int) -> str:
    """SELECT-item output column name (mirrors COLUMNS default naming)."""
    if alias is not None:
        return alias
    text = str(expr)
    if text.isidentifier():
        return text
    if isinstance(expr, (PropertyRef, BoundColumn)):
        tail = text.rpartition(".")[2]
        if tail.isidentifier():
            return tail
    return f"col{index + 1}"
