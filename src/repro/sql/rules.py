"""Rule-driven rewrites over the bound SQL operator tree.

The planner first builds the naive tree (scans, filters, a left-deep
join tree, projection), then — when the statement is planned with
pushdown enabled — runs this pass.  Each rule walks the tree, proves its
applicability conditions on concrete operators, and mutates the tree in
place; every firing is recorded as a ``plan_rewrite`` trace event and a
``repro_sql_rewrites_total{rule=...}`` telemetry tick.  Rules are gated
individually through :class:`~repro.sql.config.SqlConfig.optimizer_rules`
(`REPRO_DISABLE_SQL_OPTIMIZER=1` clears the whole set), and every rewrite
is result-identical to the naive plan — the differential test suite runs
each rule combination against the rules-off oracle.

The three cross-model rules, in application order:

* **join-through-GRAPH_TABLE** (``seeded_join``): a join whose right side
  is a bare graph scan and whose join key is a COLUMNS output projecting
  a pinned-end element (or one of its properties) becomes a
  :class:`~repro.sql.operators.SeededGraphTableScan` — one anchored NFA
  search per probe row instead of a full enumeration plus hash build.
* **common-subpattern sharing** (``shared_scan``): structurally identical
  graph scans (same graph, same normalized pattern including pushed
  predicates and KEEP, COLUMNS lists in a prefix relation) enumerate once
  through a :class:`~repro.sql.operators.SharedGraphSpool`.
* **semi-join reduction** (``semi_join``): a hash join building a graph
  scan first harvests the probe side's distinct key values and injects
  them as a sargable ``IN`` into the pattern's WHERE, bounding the graph
  enumeration to key-matching anchors.

Application order matters only pairwise: a seeded scan is strictly better
than a reduced one for the same join (no enumeration at all), so
``seeded_join`` runs first and the later rules skip its scans by type.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.gpml.expr import Arithmetic, Expr, Literal, Negate, PropertyRef, VarRef
from repro.planner.anchor import plan_seed
from repro.sql.binder import BoundColumn
from repro.sql.config import SEEDED_JOIN, SEMI_JOIN, SHARED_SCAN
from repro.sql.operators import (
    PROBE_ELEMENT,
    PROBE_PROPERTY,
    GraphTableScan,
    Join,
    Operator,
    SeededGraphTableScan,
    SemiJoinSpec,
    SharedGraphSpool,
    SharedScanConsumer,
)

#: defining expressions whose SQL projection equals the GPML value — the
#: same scalar gate the planner's predicate pushdown applies
_SCALAR_DEFINING_NODES = (Literal, PropertyRef, Arithmetic, Negate)


def apply_rewrite_rules(root: Operator, ctx) -> Operator:
    """Run the enabled rewrite rules over a freshly planned tree.

    Mutates the tree in place (rules only ever replace non-root
    operators) and returns it.  ``ctx`` is the PlannerContext — rules
    read ``sql_config``, update ``graph_scans`` so the later row-budget
    assignment reaches replacement scans, and record firings on
    ``stats.trace`` / the database's telemetry.
    """
    rules = (
        (SEEDED_JOIN, _apply_seeded_join),
        (SHARED_SCAN, _apply_shared_scan),
        (SEMI_JOIN, _apply_semi_join),
    )
    enabled = ctx.sql_config.optimizer_rules
    for name, rule in rules:
        if name in enabled:
            rule(root, ctx)
    return root


# ----------------------------------------------------------------------
# Tree plumbing
# ----------------------------------------------------------------------
def _walk_ops(
    op: Operator, parent: Optional[Operator] = None
) -> Iterator[tuple[Operator, Optional[Operator]]]:
    yield op, parent
    for child in op.children:
        yield from _walk_ops(child, op)


def _replace(parent: Operator, old: Operator, new: Operator) -> None:
    for attr in ("child", "left", "right"):
        if getattr(parent, attr, None) is old:
            setattr(parent, attr, new)
    parent.children = [new if c is old else c for c in parent.children]


def _walk_expr(expr: Expr) -> Iterator[Expr]:
    yield expr
    for child in expr.children():
        yield from _walk_expr(child)


def _record(ctx, rule: str, **meta) -> None:
    trace = ctx.stats.trace if ctx.stats is not None else None
    if trace is not None:
        trace.root.event("plan_rewrite", rule=rule, **meta)
    telemetry = getattr(ctx.database, "telemetry", None)
    if telemetry is not None:
        telemetry.sql_rewrites_total.inc(rule=rule)


# ----------------------------------------------------------------------
# Rule: join-through-GRAPH_TABLE
# ----------------------------------------------------------------------
def _apply_seeded_join(root: Operator, ctx) -> int:
    fired = 0
    for op, _parent in list(_walk_ops(root)):
        if not isinstance(op, Join) or not op.left_keys:
            continue
        scan = op.right
        if type(scan) is not GraphTableScan:
            continue
        choice = _seed_choice(scan, op.right_keys)
        if choice is None:
            continue
        position, seed, mode, prop, column_name = choice
        seeded = SeededGraphTableScan(scan, seed, mode, prop, column_name, position)
        _replace(op, scan, seeded)
        ctx.graph_scans[:] = [seeded if s is scan else s for s in ctx.graph_scans]
        fired += 1
        _record(
            ctx, SEEDED_JOIN,
            graph_table=scan.graph_name, anchor=seed.var, side=seed.side,
            probe=column_name,
        )
    return fired


def _seed_choice(scan: GraphTableScan, right_keys: list[Expr]):
    """The first join key a seeded search can anchor on, or None.

    A key qualifies when it is exactly a COLUMNS output whose defining
    expression is a bound element (``VarRef``) or element property
    (``PropertyRef``) of a variable :func:`plan_seed` accepts as an
    anchor — a pinned, unconditional singleton end of the single path
    pattern (RIGHT ends via the reversal machinery).
    """
    for position, key in enumerate(right_keys):
        if not isinstance(key, BoundColumn):
            continue
        name, defining = scan.statement.columns[key.index]
        if isinstance(defining, VarRef):
            mode, prop, var = PROBE_ELEMENT, None, defining.name
        elif isinstance(defining, PropertyRef):
            mode, prop, var = PROBE_PROPERTY, defining.prop, defining.var
        else:
            continue
        seed = plan_seed(scan.prepared, [var])
        if seed is None:
            continue
        return position, seed, mode, prop, name
    return None


# ----------------------------------------------------------------------
# Rule: common-subpattern sharing
# ----------------------------------------------------------------------
def _apply_shared_scan(root: Operator, ctx) -> int:
    groups: dict[tuple, list[tuple[GraphTableScan, Operator]]] = {}
    for op, parent in list(_walk_ops(root)):
        if type(op) is GraphTableScan and parent is not None:
            groups.setdefault(_fingerprint(op), []).append((op, parent))
    fired = 0
    for members in groups.values():
        if len(members) < 2:
            continue
        # Longest COLUMNS list produces; the others must be prefixes of
        # it (checked on the defining expressions, not just names).
        members.sort(key=lambda pair: len(pair[0].statement.columns), reverse=True)
        longest = members[0][0]
        full = [str(expr) for _, expr in longest.statement.columns]
        group = [members[0]]
        for scan, parent in members[1:]:
            exprs = [str(expr) for _, expr in scan.statement.columns]
            if exprs == full[: len(exprs)] and (
                scan.prepared.normalized == longest.prepared.normalized
            ):
                group.append((scan, parent))
        if len(group) < 2:
            continue
        spool = SharedGraphSpool(longest)
        for index, (scan, parent) in enumerate(group):
            consumer = SharedScanConsumer(
                spool, list(scan.columns), producer=(index == 0)
            )
            _replace(parent, scan, consumer)
            if index > 0:
                # Only the producer's scan polls the shared row budget.
                ctx.graph_scans[:] = [s for s in ctx.graph_scans if s is not scan]
        fired += 1
        _record(
            ctx, SHARED_SCAN,
            graph_table=longest.graph_name, consumers=len(group),
        )
    return fired


def _fingerprint(scan: GraphTableScan) -> tuple:
    """Structural identity of a graph scan's enumeration.

    Normalization numbers anonymous variables and quantifier/paren/
    alternation ids with per-pattern counters, so two scans of identical
    pattern text normalize to *equal* trees — the string rendering (which
    includes the final WHERE with pushed predicates, and KEEP) is the
    group key, and grouped members are re-checked with dataclass
    equality before sharing.
    """
    return (id(scan.graph), str(scan.prepared.normalized))


# ----------------------------------------------------------------------
# Rule: semi-join reduction
# ----------------------------------------------------------------------
def _apply_semi_join(root: Operator, ctx) -> int:
    fired = 0
    max_keys = ctx.sql_config.semi_join_max_keys
    for op, _parent in list(_walk_ops(root)):
        if not isinstance(op, Join) or not op.left_keys or op.semi_join is not None:
            continue
        scan = op.right
        if type(scan) is not GraphTableScan:
            continue
        if scan.prepared.raw.keep is not None:
            continue  # KEEP selects after the WHERE; cannot strengthen it
        choice = None
        for position, key in enumerate(op.right_keys):
            if not isinstance(key, BoundColumn):
                continue
            _name, defining = scan.statement.columns[key.index]
            if all(
                isinstance(node, _SCALAR_DEFINING_NODES)
                for node in _walk_expr(defining)
            ):
                choice = (position, defining)
                break
        if choice is None:
            continue
        position, defining = choice
        op.semi_join = SemiJoinSpec(key_position=position, max_keys=max_keys)
        scan.reduction_expr = defining
        fired += 1
        _record(
            ctx, SEMI_JOIN,
            graph_table=scan.graph_name, key=str(defining), cap=max_keys,
        )
    return fired
