"""The SQL/PGQ session object: a catalog plus ``execute(sql)``.

:class:`Database` is the SQL twin of :class:`repro.gql.session.GqlSession`
— Figure 9's two hosts over the shared GPML core.  It wraps a
:class:`~repro.pgq.catalog.Catalog` of base tables and property graphs
(graphs are created with ``CREATE PROPERTY GRAPH`` DDL or registered
directly) and executes SELECT statements through the relational operator
pipeline of :mod:`repro.sql.planner`, returning ordinary
:class:`~repro.pgq.table.Table` results.

Pass a :class:`~repro.obs.worklog.Telemetry` to record every SELECT the
database executes into a workload metrics registry and bounded query log
(fingerprint, wall time, rows, steps, plan anchors; slow queries keep
their full trace).  DDL (``CREATE PROPERTY GRAPH``) and EXPLAIN are not
recorded — they are catalog/diagnostic operations, not workload.  The
default ``telemetry=None`` costs one ``is None`` check per execution and
leaves the untraced paths byte-identical.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.worklog import Telemetry

from repro.errors import SqlError
from repro.gpml.matcher import MatcherConfig
from repro.gpml.streaming import PipelineStats
from repro.graph.model import PropertyGraph
from repro.pgq.catalog import Catalog
from repro.pgq.table import Table
from repro.sql import ast
from repro.sql.operators import attach_spans, render_plan
from repro.sql.config import SqlConfig
from repro.sql.parser import parse_sql
from repro.sql.planner import PlannerContext, plan_statement


class Database:
    """Executes SQL (with GRAPH_TABLE in FROM) against a catalog."""

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        telemetry: "Optional[Telemetry]" = None,
    ):
        self.catalog = catalog if catalog is not None else Catalog()
        self.telemetry = telemetry

    # -- catalog ergonomics ---------------------------------------------
    def register_table(self, name: str, table: Table) -> None:
        self.catalog.register_table(name, table)

    def register_graph(self, name: str, graph: PropertyGraph) -> None:
        self.catalog.register_graph(name, graph)

    def table(self, name: str) -> Table:
        if not self.catalog.has_table(name):
            raise SqlError(
                f"unknown table {name!r} "
                f"(known tables: {', '.join(self.catalog.table_names()) or '<none>'})"
            )
        return self.catalog.table(name)

    def graph(self, name: str) -> PropertyGraph:
        if not self.catalog.has_graph(name):
            raise SqlError(
                f"unknown graph {name!r} "
                f"(known graphs: {', '.join(self.catalog.graph_names()) or '<none>'})"
            )
        return self.catalog.graph(name)

    # -- execution ------------------------------------------------------
    def execute(
        self,
        sql: str,
        config: Optional[MatcherConfig] = None,
        stats: Optional[PipelineStats] = None,
        pushdown: bool = True,
        sql_config: Optional[SqlConfig] = None,
    ):
        """Execute one statement.

        SELECT returns a :class:`Table`; ``EXPLAIN SELECT`` returns a
        one-column Table of plan lines (``EXPLAIN ANALYZE SELECT``
        executes first and annotates them with per-operator actuals);
        ``CREATE PROPERTY GRAPH`` builds and registers the graph view,
        returning the :class:`PropertyGraph`.  ``pushdown=False``
        disables predicate and row-budget pushdown into GRAPH_TABLE
        (results are identical; the flag exists for tests and
        benchmarks).  ``sql_config`` gates the rewrite rules of the
        cross-model optimizer individually (the default enables all of
        them unless ``REPRO_DISABLE_SQL_OPTIMIZER=1``); like pushdown,
        rules never change results, only plans.
        """
        statement = parse_sql(sql)
        if isinstance(statement, ast.CreateGraphStatement):
            return self.catalog.execute(statement.text)
        if isinstance(statement, ast.ExplainStatement):
            if statement.analyze:
                lines = self._explain_analyze_lines(
                    statement.inner, config, stats, pushdown, sql_config
                )
            else:
                lines = self._plan_lines(
                    statement.inner, config, pushdown, sql_config
                )
            return Table(["plan"], [(line,) for line in lines], name="explain")
        if self.telemetry is not None and stats is None:
            stats = self.telemetry.stats_for(query=sql, engine="sql")
        plan = self._plan(statement, config, stats, pushdown, sql_config)
        names = [column.name for column in plan.columns]
        rows = self._delivered(plan.run(), stats)
        if self.telemetry is not None:
            rows = self.telemetry.instrument(rows, "sql", sql, stats)
        return Table(names, rows, name="result")

    def execute_iter(
        self,
        sql: str,
        config: Optional[MatcherConfig] = None,
        stats: Optional[PipelineStats] = None,
        pushdown: bool = True,
        sql_config: Optional[SqlConfig] = None,
    ) -> Iterator[dict[str, Any]]:
        """Execute a SELECT as a lazy stream of dict records."""
        statement = parse_sql(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise SqlError("execute_iter only streams SELECT statements")
        if self.telemetry is not None and stats is None:
            stats = self.telemetry.stats_for(query=sql, engine="sql")
        plan = self._plan(statement, config, stats, pushdown, sql_config)
        names = [column.name for column in plan.columns]
        rows = self._delivered(plan.run(), stats)
        if self.telemetry is not None:
            rows = self.telemetry.instrument(rows, "sql", sql, stats)
        return (dict(zip(names, row)) for row in rows)

    def explain(
        self,
        sql: str,
        config: Optional[MatcherConfig] = None,
        pushdown: bool = True,
        sql_config: Optional[SqlConfig] = None,
    ) -> str:
        """The relational plan (with embedded GPML pipelines) as text."""
        statement = parse_sql(sql)
        if isinstance(statement, ast.ExplainStatement):
            statement = statement.inner
        if not isinstance(statement, ast.SelectStatement):
            raise SqlError("EXPLAIN applies to SELECT statements")
        return "\n".join(self._plan_lines(statement, config, pushdown, sql_config))

    def explain_analyze(
        self,
        sql: str,
        config: Optional[MatcherConfig] = None,
        stats: Optional[PipelineStats] = None,
        pushdown: bool = True,
        sql_config: Optional[SqlConfig] = None,
    ) -> str:
        """Execute, then render the plan annotated with actuals.

        Every operator line carries ``rows=…, time=…ms`` (plus ``steps``
        and estimated-vs-actual cardinality on graph scans, ``peak`` on
        pipeline breakers), measured by a trace attached to ``stats``
        (a traced ``stats`` may be passed in to keep the span tree).
        """
        statement = parse_sql(sql)
        if isinstance(statement, ast.ExplainStatement):
            statement = statement.inner
        if not isinstance(statement, ast.SelectStatement):
            raise SqlError("EXPLAIN ANALYZE applies to SELECT statements")
        return "\n".join(
            self._explain_analyze_lines(statement, config, stats, pushdown, sql_config)
        )

    # -- internals ------------------------------------------------------
    def _plan(
        self,
        statement: ast.SelectStatement,
        config: Optional[MatcherConfig],
        stats: Optional[PipelineStats],
        pushdown: bool,
        sql_config: Optional[SqlConfig] = None,
    ):
        ctx = PlannerContext(
            database=self, config=config, stats=stats, pushdown=pushdown,
            sql_config=sql_config if sql_config is not None else SqlConfig(),
        )
        return plan_statement(statement, ctx)

    def _plan_lines(
        self,
        statement: ast.SelectStatement,
        config: Optional[MatcherConfig],
        pushdown: bool,
        sql_config: Optional[SqlConfig] = None,
    ) -> list[str]:
        return render_plan(self._plan(statement, config, None, pushdown, sql_config))

    def _explain_analyze_lines(
        self,
        statement: ast.SelectStatement,
        config: Optional[MatcherConfig],
        stats: Optional[PipelineStats],
        pushdown: bool,
        sql_config: Optional[SqlConfig] = None,
    ) -> list[str]:
        # Imported lazily: repro.obs.analyze renders both hosts' traces
        # and importing it at module scope would be a layering inversion.
        from repro.obs.analyze import render_analyzed_plan
        from repro.obs.trace import QueryTrace

        if stats is None:
            stats = PipelineStats()
        if stats.trace is None:
            stats.trace = QueryTrace(engine="sql")
        plan = self._plan(statement, config, stats, pushdown, sql_config)
        attach_spans(plan, stats.trace.root)
        start = perf_counter()
        delivered = 0
        for _ in plan.run():
            delivered += 1
        elapsed_ms = (perf_counter() - start) * 1000.0
        stats.rows += delivered
        return render_analyzed_plan(plan, stats, elapsed_ms, delivered)

    @staticmethod
    def _delivered(
        rows: Iterator[tuple], stats: Optional[PipelineStats]
    ) -> Iterator[tuple]:
        """Count delivered result rows so ``stats.rows == len(result)``."""
        if stats is None:
            return rows
        return _counted(rows, stats)


def _counted(rows: Iterator[tuple], stats: PipelineStats) -> Iterator[tuple]:
    for row in rows:
        stats.rows += 1
        yield row
