"""Recursive-descent parser for the hosted SQL subset.

Grammar (keywords case-insensitive; identifiers case-sensitive)::

    statement    := select_stmt | EXPLAIN [ANALYZE] select_stmt
                  | CREATE PROPERTY GRAPH ...           (handed to pgq.ddl)
    select_stmt  := select_core (UNION [ALL] select_core)*
                    [ORDER BY order_item (',' order_item)*]
                    [LIMIT n] [OFFSET n [ROW|ROWS]]
                    [FETCH FIRST [n] (ROW|ROWS) ONLY]
    select_core  := SELECT [DISTINCT] ('*' | item (',' item)*)
                    [FROM from_item (from_join)*]
                    [WHERE expr] [GROUP BY expr (',' expr)*] [HAVING expr]
    item         := expr [[AS] name]
    from_item    := table_name [[AS] name] | graph_table [[AS] name]
    from_join    := ',' from_item | [INNER] JOIN from_item ON expr
    graph_table  := GRAPH_TABLE '(' graph MATCH ... COLUMNS '(' ... ')' ')'
    order_item   := expr [ASC | DESC]

The parser extends :class:`~repro.gpml.parser.GpmlParser`: value
expressions, the MATCH body inside GRAPH_TABLE, and the COLUMNS clause
are all parsed by the shared GPML machinery over one token stream, which
is how the two languages of the paper's Figure 9 literally nest.  The
single divergence is aggregate syntax — SQL's vertical ``COUNT(*)`` /
``SUM(expr)`` outside GRAPH_TABLE, GPML's horizontal ``SUM(e.amount)``
over group variables inside it — switched by ``_gpml_mode``.

SQL-specific keywords (SELECT, FROM, JOIN, ...) are ordinary identifiers
to the shared lexer, so they are matched textually, the same trick
:mod:`repro.pgq.ddl` uses.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import GpmlSyntaxError, SqlSyntaxError
from repro.gpml.lexer import IDENT, KEYWORD, NUMBER, STRING, Token
from repro.gpml.parser import GpmlParser
from repro.pgq.graph_table import GraphTableStatement, parse_columns_clause
from repro.sql import ast

#: words that terminate an expression / cannot be bare aliases
_RESERVED = frozenset(
    {
        "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
        "ORDER", "LIMIT", "OFFSET", "FETCH", "FIRST", "ROW", "ROWS", "ONLY",
        "UNION", "ALL", "JOIN", "INNER", "ON", "AS", "ASC", "DESC",
        "EXPLAIN", "GRAPH_TABLE", "MATCH", "COLUMNS",
    }
)


class SqlParser(GpmlParser):
    """Parser for one SQL statement (shares the GPML token stream)."""

    def __init__(self, text: str):
        super().__init__(text)
        self._gpml_mode = False

    # -- word-oriented helpers (SQL keywords are identifiers to the lexer)
    @staticmethod
    def _word_of(token: Token) -> Optional[str]:
        if token.type in (IDENT, KEYWORD):
            return str(token.value).upper()
        return None

    def at_word(self, *words: str) -> bool:
        return self._word_of(self.peek()) in words

    def accept_word(self, *words: str) -> bool:
        if self.at_word(*words):
            self.advance()
            return True
        return False

    def expect_word(self, word: str) -> None:
        if not self.accept_word(word):
            self.sql_error(f"expected {word}, found {self._describe(self.peek())}")

    def sql_error(self, message: str) -> None:
        raise SqlSyntaxError(message, self.peek().position, self.text)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self):
        if self.at_word("CREATE"):
            return ast.CreateGraphStatement(text=self.text)
        if self.accept_word("EXPLAIN"):
            analyze = self.accept_word("ANALYZE")
            statement = self.parse_select_statement()
            self.expect_eof()
            return ast.ExplainStatement(inner=statement, analyze=analyze)
        statement = self.parse_select_statement()
        self.expect_eof()
        return statement

    def parse_select_statement(self) -> ast.SelectStatement:
        cores = [self.parse_select_core()]
        set_ops: list[str] = []
        while self.accept_word("UNION"):
            set_ops.append("UNION ALL" if self.accept_word("ALL") else "UNION")
            cores.append(self.parse_select_core())
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self.accept_punct(","):
                order_by.append(self._parse_order_item())
        limit, offset = self._parse_limit_offset()
        return ast.SelectStatement(
            cores=cores, set_ops=set_ops, order_by=order_by,
            limit=limit, offset=offset,
        )

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expression()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr=expr, descending=descending)

    def _parse_limit_offset(self) -> tuple[Optional[int], int]:
        limit: Optional[int] = None
        offset: Optional[int] = None
        while True:
            if self.at_keyword("LIMIT"):
                if limit is not None:
                    self.sql_error("duplicate LIMIT / FETCH FIRST")
                self.advance()
                limit = self.expect_number()
            elif self.at_keyword("OFFSET"):
                if offset is not None:
                    self.sql_error("duplicate OFFSET")
                self.advance()
                offset = self.expect_number()
                self.accept_word("ROW", "ROWS")
            elif self.at_word("FETCH"):
                if limit is not None:
                    self.sql_error("duplicate LIMIT / FETCH FIRST")
                self.advance()
                self.expect_word("FIRST")
                limit = self.expect_number() if self.peek().type == NUMBER else 1
                self.accept_word("ROW", "ROWS")
                self.expect_word("ONLY")
            else:
                return limit, offset or 0

    # ------------------------------------------------------------------
    # SELECT core
    # ------------------------------------------------------------------
    def parse_select_core(self) -> ast.SelectCore:
        self.expect_word("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        items = self._parse_select_items()
        sources: list[ast.FromSource] = []
        if self.accept_word("FROM"):
            sources.append(ast.FromSource(item=self._parse_from_item(), kind="from"))
            while True:
                if self.accept_punct(","):
                    sources.append(
                        ast.FromSource(item=self._parse_from_item(), kind="cross")
                    )
                    continue
                if self.at_word("JOIN", "INNER"):
                    if self.accept_word("INNER"):
                        self.expect_word("JOIN")
                    else:
                        self.advance()
                    item = self._parse_from_item()
                    self.expect_word("ON")
                    condition = self.parse_expression()
                    sources.append(
                        ast.FromSource(item=item, kind="join", on=condition)
                    )
                    continue
                break
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        group_by: list = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self.accept_punct(","):
                group_by.append(self.parse_expression())
        having = self.parse_expression() if self.accept_word("HAVING") else None
        return ast.SelectCore(
            items=items, sources=sources, where=where,
            group_by=group_by, having=having, distinct=distinct,
        )

    def _parse_select_items(self) -> list[ast.SelectItem]:
        if self.accept_punct("*"):
            return [ast.SelectItem(expr=None)]
        items = [self._parse_select_item()]
        while self.accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        expr = self.parse_expression()
        return ast.SelectItem(expr=expr, alias=self._parse_alias())

    def _parse_alias(self) -> Optional[str]:
        if self.accept_keyword("AS"):
            return self.expect_name()
        token = self.peek()
        if token.type == IDENT and str(token.value).upper() not in _RESERVED:
            self.advance()
            return str(token.value)
        return None

    # ------------------------------------------------------------------
    # FROM items
    # ------------------------------------------------------------------
    def _parse_from_item(self) -> ast.FromItem:
        if self.at_word("GRAPH_TABLE"):
            return self._parse_graph_table_ref()
        name = self.expect_name()
        return ast.TableRef(name=name, alias=self._parse_alias())

    def _parse_graph_table_ref(self) -> ast.GraphTableRef:
        self.advance()  # GRAPH_TABLE
        self.expect_punct("(")
        graph_name = self.expect_name()
        if not self.at_keyword("MATCH"):
            self.sql_error(
                f"expected MATCH after GRAPH_TABLE({graph_name}, "
                f"found {self._describe(self.peek())}"
            )
        match_position = self.peek().position
        previous_mode = self._gpml_mode
        self._gpml_mode = True
        try:
            self.advance()  # MATCH
            pattern = self.parse_graph_pattern_body()
            if not self.at_keyword("COLUMNS"):
                self.sql_error(
                    f"GRAPH_TABLE over {graph_name!r} must end with a "
                    f"COLUMNS clause"
                )
            pattern_text = self.text[match_position : self.peek().position]
            self.advance()  # COLUMNS
            columns = parse_columns_clause(self)
        except GpmlSyntaxError as exc:
            raise SqlSyntaxError(f"in GRAPH_TABLE over {graph_name!r}: {exc}") from exc
        finally:
            self._gpml_mode = previous_mode
        self.expect_punct(")")
        statement = GraphTableStatement(
            pattern_text=pattern_text, columns=columns, pattern=pattern
        )
        return ast.GraphTableRef(
            graph_name=graph_name, statement=statement, alias=self._parse_alias()
        )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_primary(self):
        # SQL's clause keywords are plain identifiers to the shared lexer;
        # reject them as expression operands so `SELECT x + FROM t` fails
        # at the right place instead of binding a column named "FROM".
        token = self.peek()
        if (
            not self._gpml_mode
            and token.type == IDENT
            and str(token.value).upper() in _RESERVED
        ):
            self.sql_error(
                f"unexpected {str(token.value).upper()} in an expression"
            )
        return super()._parse_primary()

    # ------------------------------------------------------------------
    # Aggregates: SQL's vertical form outside GRAPH_TABLE, GPML's
    # horizontal form (group variables) inside it
    # ------------------------------------------------------------------
    def _parse_aggregate(self):
        if self._gpml_mode:
            return super()._parse_aggregate()
        func = str(self.advance().value)
        self.expect_punct("(")
        distinct = bool(self.accept_keyword("DISTINCT"))
        if self.accept_punct("*"):
            if func != "COUNT":
                self.sql_error(f"only COUNT accepts the * argument, not {func}")
            arg: Optional[object] = None
        else:
            arg = self.parse_expression()
        separator = ", "
        if func == "LISTAGG" and self.accept_punct(","):
            token = self.peek()
            if token.type != STRING:
                self.sql_error("LISTAGG separator must be a string literal")
            self.advance()
            separator = str(token.value)
        self.expect_punct(")")
        return ast.SqlAggregate(
            func=func, arg=arg, distinct=distinct, separator=separator
        )


def parse_sql(text: str):
    """Parse one SQL statement; wraps GPML syntax errors as SQL ones."""
    parser = SqlParser(text)
    try:
        return parser.parse_statement()
    except SqlSyntaxError:
        raise
    except GpmlSyntaxError as exc:
        raise SqlSyntaxError(str(exc)) from exc
