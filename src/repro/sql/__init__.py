"""SQL host engine: a relational executor with GRAPH_TABLE in FROM.

The paper defines SQL/PGQ as *SQL with GRAPH_TABLE nested in FROM*
(Figure 9).  This package is that host: a mini SQL engine over the
:mod:`repro.pgq` catalog whose FROM clause takes ``GRAPH_TABLE(g MATCH
... COLUMNS (...))`` as a first-class table operator, driven by the
streaming GPML core — outer ``LIMIT`` / ``FETCH FIRST`` budgets and
sargable WHERE predicates are pushed through GRAPH_TABLE into the NFA
search and the cost-based pattern planner.

* :mod:`~repro.sql.parser` — the SQL subset grammar (sharing the GPML
  lexer, expression parser and MATCH grammar),
* :mod:`~repro.sql.binder` — name resolution over operator schemas,
* :mod:`~repro.sql.operators` — the pull-based relational operators,
* :mod:`~repro.sql.planner` — plan construction and cross-model pushdown,
* :mod:`~repro.sql.database` — :class:`Database`, the session object.
"""

from repro.errors import SqlError, SqlSyntaxError
from repro.sql.config import ALL_RULES, SEEDED_JOIN, SEMI_JOIN, SHARED_SCAN, SqlConfig
from repro.sql.database import Database
from repro.sql.operators import render_plan
from repro.sql.parser import parse_sql

__all__ = [
    "ALL_RULES",
    "Database",
    "SEEDED_JOIN",
    "SEMI_JOIN",
    "SHARED_SCAN",
    "SqlConfig",
    "SqlError",
    "SqlSyntaxError",
    "parse_sql",
    "render_plan",
]
