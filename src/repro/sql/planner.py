"""From SQL AST to an operator tree, with cross-model pushdown.

Planning one SELECT core is classic: FROM leaves, per-leaf filters, a
left-deep join tree (hash joins on extracted equi-conjuncts), the
residual WHERE, aggregation, HAVING, sort, projection, DISTINCT.  The
reproduction-specific work is at the GRAPH_TABLE boundary, where the
relational plan meets the streaming GPML pipeline of PR 2 and the
cost-based planner of PR 1 (the cross-model optimizations of *Towards
Cross-Model Efficiency in SQL/PGQ*):

* **Predicate pushdown into MATCH.** A WHERE conjunct whose column
  references all land on one GRAPH_TABLE is rewritten by substituting
  each reference with its defining COLUMNS expression, then conjoined
  into the pattern's final WHERE.  The GPML planner's sargable-predicate
  machinery then sees it — ``WHERE t.owner = 'Dave'`` over
  ``COLUMNS (a.owner AS owner)`` becomes ``a.owner = 'Dave'`` and turns
  a full node scan into a property-index anchor.  Pushdown is gated on
  soundness: no KEEP in the pattern (KEEP selects *after* the final
  WHERE, so strengthening the WHERE would change its input), defining
  expressions must be scalar-shaped (property accesses and arithmetic —
  projections where the SQL value equals the GPML value), and the
  conjunct must use only the shared scalar expression language.
* **Row-budget pushdown through GRAPH_TABLE.** The statement's LIMIT
  owns a :class:`~repro.gpml.streaming.RowBudget` sized limit+offset;
  every GRAPH_TABLE scan in the statement polls it, so a satisfied
  budget stops the NFA search itself.  This is sound for any operator
  mix: the budget counts rows the LIMIT actually pulled, and pipeline
  breakers (sorts, aggregations, join build sides) consume their input
  before the first row is delivered, while the budget is still zero.
* **Rule-driven plan rewrites.**  After the naive tree is built,
  :func:`repro.sql.rules.apply_rewrite_rules` runs the cross-model
  optimizer v2 rules over it — join-through-GRAPH_TABLE (seeded per-row
  search), common-subpattern sharing (spooled scans), and semi-join
  reduction (probe keys as a sargable IN) — each gated individually by
  :class:`~repro.sql.config.SqlConfig.optimizer_rules`.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Iterator, Optional

from repro.errors import SqlError
from repro.gpml import ast as gpml_ast
from repro.gpml.engine import prepare
from repro.gpml.expr import (
    And,
    Arithmetic,
    Comparison,
    Expr,
    FunctionCall,
    IsNull,
    Literal,
    Negate,
    Not,
    Or,
    PropertyRef,
    VarRef,
    conjoin,
)
from repro.gpml.matcher import MatcherConfig
from repro.gpml.streaming import PipelineStats, RowBudget
from repro.planner.indexes import conjuncts
from repro.sql import ast
from repro.sql.ast import SqlAggregate, collect_aggregates
from repro.sql.binder import (
    BoundColumn,
    Column,
    Scope,
    bind,
    bind_post_aggregate,
    output_name,
    referenced_columns,
    substitute_columns,
)
from repro.sql.config import SqlConfig
from repro.sql.operators import (
    Aggregate,
    BoundAggregate,
    Distinct,
    Filter,
    GraphTableScan,
    Join,
    Limit,
    Operator,
    Project,
    SingleRow,
    Sort,
    TableScan,
    Union,
)
from repro.sql.rules import apply_rewrite_rules

#: node types every pushable conjunct (and pushable COLUMNS defining
#: expression) may consist of — the scalar language shared by SQL and GPML
_PUSHABLE_NODES = (
    Comparison, And, Or, Not, IsNull, Arithmetic, Negate,
    Literal, VarRef, PropertyRef, FunctionCall,
)
_SCALAR_DEFINING_NODES = (Literal, PropertyRef, Arithmetic, Negate)


@dataclass
class PlannerContext:
    """Catalog access plus the execution knobs threaded to graph scans."""

    database: "object"  # repro.sql.database.Database (duck-typed)
    config: Optional[MatcherConfig] = None
    stats: Optional[PipelineStats] = None
    pushdown: bool = True
    sql_config: SqlConfig = dataclass_field(default_factory=SqlConfig)
    graph_scans: list[GraphTableScan] = dataclass_field(default_factory=list)


def plan_statement(statement: ast.SelectStatement, ctx: PlannerContext) -> Operator:
    """Build the operator tree of a full SELECT statement.

    Two phases: the naive bound tree first (cores, set operations, the
    outer sort), then — with pushdown enabled — the rule-driven rewrite
    pass of :mod:`repro.sql.rules` over the whole tree, so cross-model
    rules see every join and every graph scan of the statement at once
    (common-subpattern sharing spans UNION branches).  The row budget is
    assigned last: rewrite rules may replace scan operators, and the
    budget must land on the survivors.
    """
    if len(statement.cores) == 1:
        root = _plan_core(statement.cores[0], ctx, statement.order_by)
    else:
        root = _plan_core(statement.cores[0], ctx, [])
        for set_op, core in zip(statement.set_ops, statement.cores[1:]):
            right = _plan_core(core, ctx, [])
            root = Union(root, right, all_rows=(set_op == "UNION ALL"))
        if statement.order_by:
            scope = Scope(root.columns)
            keys = []
            for item in statement.order_by:
                ordinal = _order_by_ordinal(item.expr, len(root.columns))
                if ordinal is not None:
                    bound: Expr = BoundColumn(
                        ordinal, root.columns[ordinal].qualified
                    )
                else:
                    bound = bind(item.expr, scope, where="ORDER BY")
                keys.append((bound, item.descending))
            root = Sort(root, keys)

    if ctx.pushdown:
        root = apply_rewrite_rules(root, ctx)

    if statement.limit is not None or statement.offset:
        budget = None
        if statement.limit is not None and ctx.pushdown:
            budget = RowBudget(statement.limit + statement.offset)
            for scan in ctx.graph_scans:
                scan.budget = budget
            trace = ctx.stats.trace if ctx.stats is not None else None
            if trace is not None and ctx.graph_scans:
                trace.root.event(
                    "budget_pushdown",
                    needed=budget.needed,
                    scans=len(ctx.graph_scans),
                )
        root = Limit(root, statement.limit, statement.offset, budget)
    return root


# ----------------------------------------------------------------------
# One SELECT core
# ----------------------------------------------------------------------
def _plan_core(
    core: ast.SelectCore, ctx: PlannerContext, order_by: list[ast.OrderItem]
) -> Operator:
    op, scope = _plan_from_and_where(core, ctx)

    order_exprs = [item.expr for item in order_by]
    aggregated = bool(core.group_by) or core.having is not None or any(
        collect_aggregates(expr)
        for expr in ([item.expr for item in core.items if item.expr is not None]
                     + ([core.having] if core.having is not None else [])
                     + order_exprs)
    )

    if aggregated:
        if any(item.expr is None for item in core.items):
            raise SqlError("SELECT * cannot be combined with GROUP BY or aggregates")
        op, group_pairs, agg_pairs, post_scope = _plan_aggregate(
            op, scope, core, order_exprs
        )
        if core.having is not None:
            predicate = bind_post_aggregate(
                core.having, group_pairs, agg_pairs, post_scope, where="HAVING"
            )
            op = Filter(op, predicate, label="having")
        named_items = _dedup_names(
            [
                (
                    output_name(item.expr, item.alias, index),
                    bind_post_aggregate(
                        item.expr, group_pairs, agg_pairs, post_scope
                    ),
                    item.alias is not None,
                    str(item.expr),
                )
                for index, item in enumerate(core.items)
            ]
        )

        def bind_order(expr: Expr) -> Expr:
            return bind_post_aggregate(
                expr, group_pairs, agg_pairs, post_scope, where="ORDER BY"
            )

    else:
        named_items = _bind_select_items(core.items, scope)

        def bind_order(expr: Expr) -> Expr:
            return bind(expr, scope, where="ORDER BY")

    sort_keys = _bind_order_keys(order_by, named_items, bind_order, core.distinct)
    if sort_keys:
        op = Sort(op, sort_keys)
    op = Project(op, named_items)
    if core.distinct:
        op = Distinct(op)
    return op


def _bind_select_items(
    items: list[ast.SelectItem], scope: Scope
) -> list[tuple[str, Expr]]:
    named: list[tuple[str, Expr, bool, str]] = []
    for index, item in enumerate(items):
        if item.expr is None:  # SELECT *
            for position, column in enumerate(scope.columns):
                named.append(
                    (
                        column.name,
                        BoundColumn(position, column.qualified),
                        False,
                        column.qualified,
                    )
                )
            continue
        named.append(
            (
                output_name(item.expr, item.alias, index),
                bind(item.expr, scope, where="the SELECT list"),
                item.alias is not None,
                str(item.expr),
            )
        )
    return _dedup_names(named)


def _dedup_names(
    named: list[tuple[str, Expr, bool, str]]
) -> list[tuple[str, Expr]]:
    """Qualify colliding default names (``a.owner, b.owner`` keep their
    qualified spelling); explicit AS duplicates are an error — the result
    Table needs unique column names."""
    counts: dict[str, int] = {}
    for name, _, _, _ in named:
        counts[name] = counts.get(name, 0) + 1
    out: list[tuple[str, Expr]] = []
    seen: set[str] = set()
    for name, expr, explicit, fallback in named:
        if counts[name] > 1 and not explicit:
            name = fallback
        if name in seen:
            raise SqlError(
                f"duplicate output column {name!r}; use AS to disambiguate"
            )
        seen.add(name)
        out.append((name, expr))
    return out


def _order_by_ordinal(expr: Expr, num_outputs: int) -> Optional[int]:
    """SQL positional sort: ``ORDER BY 2`` names the second output column.

    Returns the 0-based output index, or None for non-literal keys.  Any
    other bare constant is rejected — a literal sort key would otherwise
    be a silent no-op.
    """
    if not isinstance(expr, Literal):
        return None
    value = expr.value
    if isinstance(value, bool) or not isinstance(value, int):
        raise SqlError(f"non-integer constant {expr} in ORDER BY")
    if not 1 <= value <= num_outputs:
        raise SqlError(
            f"ORDER BY position {value} is not in the select list "
            f"(1..{num_outputs})"
        )
    return value - 1


def _bind_order_keys(
    order_by: list[ast.OrderItem],
    named_items: list[tuple[str, Expr]],
    bind_order,
    distinct: bool,
) -> list[tuple[Expr, bool]]:
    keys: list[tuple[Expr, bool]] = []
    for item in order_by:
        bound: Optional[Expr] = None
        ordinal = _order_by_ordinal(item.expr, len(named_items))
        if ordinal is not None:
            bound = named_items[ordinal][1]
        elif isinstance(item.expr, VarRef):
            hits = [expr for name, expr in named_items if name == item.expr.name]
            if len(hits) == 1:
                bound = hits[0]
        if bound is None and distinct:
            raise SqlError(
                f"ORDER BY {item.expr} with SELECT DISTINCT must name an "
                f"output column"
            )
        if bound is None:
            bound = bind_order(item.expr)
        keys.append((bound, item.descending))
    return keys


# ----------------------------------------------------------------------
# FROM + WHERE (including the GRAPH_TABLE pushdown)
# ----------------------------------------------------------------------
@dataclass
class _Leaf:
    source: ast.FromSource
    index: int
    columns: list[Column]
    # graph leaves only
    graph: Optional[object] = None
    statement: Optional[object] = None
    pushed: list[Expr] = dataclass_field(default_factory=list)
    filters: list[Expr] = dataclass_field(default_factory=list)

    @property
    def is_graph(self) -> bool:
        return self.graph is not None


def _plan_from_and_where(
    core: ast.SelectCore, ctx: PlannerContext
) -> tuple[Operator, Scope]:
    if not core.sources:
        op: Operator = SingleRow()
        if core.where is not None:
            op = Filter(op, bind(core.where, Scope([]), where="WHERE"))
        return op, Scope([])

    leaves = [_make_leaf(source, index, ctx) for index, source in enumerate(core.sources)]
    _check_duplicate_binding_names(core.sources)

    offsets: list[int] = []
    all_columns: list[Column] = []
    for leaf in leaves:
        offsets.append(len(all_columns))
        all_columns.extend(leaf.columns)
    full_scope = Scope(all_columns)

    residual: list[Expr] = []
    for conjunct in conjuncts(core.where):
        _check_sql_expression(conjunct, "WHERE")
        references = referenced_columns(conjunct, full_scope)
        sources = {all_columns[i].source for i in references}
        if len(sources) == 1:
            leaf = leaves[sources.pop()]
            if leaf.is_graph and ctx.pushdown:
                substituted = _push_into_match(
                    conjunct, leaf, full_scope, references, offsets[leaf.index]
                )
                if substituted is not None:
                    leaf.pushed.append(substituted)
                    continue
            leaf.filters.append(bind(conjunct, Scope(leaf.columns), where="WHERE"))
            continue
        residual.append(conjunct)

    leaf_ops = [_materialize_leaf(leaf, ctx) for leaf in leaves]

    op = leaf_ops[0]
    accumulated = list(leaves[0].columns)
    for leaf, right_op in zip(leaves[1:], leaf_ops[1:]):
        source = leaf.source
        if source.kind == "cross" or source.on is None:
            op = Join(op, right_op, [], [], residual=None)
        else:
            left_keys, right_keys, on_residual = _split_join_condition(
                source.on, Scope(accumulated), Scope(leaf.columns),
                Scope(accumulated + leaf.columns),
            )
            op = Join(op, right_op, left_keys, right_keys, residual=on_residual)
        accumulated.extend(leaf.columns)

    if residual:
        predicate = conjoin(
            *[bind(c, full_scope, where="WHERE") for c in residual]
        )
        op = Filter(op, predicate)
    return op, full_scope


def _make_leaf(source: ast.FromSource, index: int, ctx: PlannerContext) -> _Leaf:
    item = source.item
    if isinstance(item, ast.TableRef):
        table = ctx.database.table(item.name)
        alias = item.binding_name
        columns = [
            Column(table=alias, name=name, source=index) for name in table.columns
        ]
        return _Leaf(source=source, index=index, columns=columns)
    graph = ctx.database.graph(item.graph_name)
    columns = [
        Column(table=item.alias, name=name, source=index)
        for name in item.statement.column_names
    ]
    return _Leaf(
        source=source, index=index, columns=columns,
        graph=graph, statement=item.statement,
    )


def _check_duplicate_binding_names(sources: list[ast.FromSource]) -> None:
    seen: set[str] = set()
    for source in sources:
        name = source.item.binding_name
        if name is None:
            continue
        if name in seen:
            raise SqlError(f"duplicate table name/alias {name!r} in FROM")
        seen.add(name)


def _materialize_leaf(leaf: _Leaf, ctx: PlannerContext) -> Operator:
    if leaf.is_graph:
        item = leaf.source.item
        pattern = leaf.statement.pattern
        if leaf.pushed:
            pattern = gpml_ast.GraphPattern(
                paths=pattern.paths,
                where=conjoin(pattern.where, *leaf.pushed),
                keep=pattern.keep,
            )
        scan = GraphTableScan(
            graph=leaf.graph,
            graph_name=item.graph_name,
            statement=leaf.statement,
            prepared=prepare(pattern),
            alias=item.alias,
            source=leaf.index,
            config=ctx.config,
            stats=ctx.stats,
            pushed_predicates=list(leaf.pushed),
        )
        ctx.graph_scans.append(scan)
        trace = ctx.stats.trace if ctx.stats is not None else None
        if trace is not None and leaf.pushed:
            trace.root.event(
                "predicate_pushdown",
                graph_table=item.graph_name,
                predicates=[str(p) for p in leaf.pushed],
            )
        op: Operator = scan
    else:
        item = leaf.source.item
        op = TableScan(
            ctx.database.table(item.name), item.binding_name, source=leaf.index
        )
    for predicate in leaf.filters:
        op = Filter(op, predicate)
    return op


def _split_join_condition(
    condition: Expr, left_scope: Scope, right_scope: Scope, merged_scope: Scope
) -> tuple[list[Expr], list[Expr], Optional[Expr]]:
    """Extract hashable equi-conjuncts from an ON condition.

    A conjunct ``l = r`` becomes a hash key pair when one side binds
    entirely against the accumulated left scope and the other against the
    new right scope; everything else stays as a residual predicate over
    the merged row.
    """
    left_keys: list[Expr] = []
    right_keys: list[Expr] = []
    residual: list[Expr] = []
    for conjunct in conjuncts(condition):
        _check_sql_expression(conjunct, "ON")
        pair = None
        if isinstance(conjunct, Comparison) and conjunct.op == "=":
            for first, second in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                try:
                    pair = (
                        bind(first, left_scope, where="ON"),
                        bind(second, right_scope, where="ON"),
                    )
                    break
                except SqlError:
                    pair = None
        if pair is not None:
            left_keys.append(pair[0])
            right_keys.append(pair[1])
        else:
            residual.append(bind(conjunct, merged_scope, where="ON"))
    return left_keys, right_keys, conjoin(*residual) if residual else None


# ----------------------------------------------------------------------
# Pushdown helpers
# ----------------------------------------------------------------------
def _walk(expr: Expr) -> Iterator[Expr]:
    yield expr
    for child in expr.children():
        yield from _walk(child)


def _check_sql_expression(expr: Expr, clause: str) -> None:
    """Reject aggregates and graph-only predicates in WHERE/ON early
    (before pushdown classification would misread them)."""
    for node in _walk(expr):
        if isinstance(node, SqlAggregate):
            raise SqlError(f"aggregate {node} is not allowed in {clause}")


def _push_into_match(
    conjunct: Expr,
    leaf: _Leaf,
    full_scope: Scope,
    references: set[int],
    offset: int,
) -> Optional[Expr]:
    """The SQL→GPML predicate rewrite, or None when it would be unsound."""
    if leaf.statement.pattern.keep is not None:
        return None  # KEEP selects after the final WHERE; cannot strengthen it
    if not all(isinstance(node, _PUSHABLE_NODES) for node in _walk(conjunct)):
        return None
    replacements: dict[int, Expr] = {}
    for index in references:
        defining = leaf.statement.columns[index - offset][1]
        if not all(
            isinstance(node, _SCALAR_DEFINING_NODES) for node in _walk(defining)
        ):
            return None  # element/path/aggregate projections change value space
        replacements[index] = defining
    return substitute_columns(conjunct, full_scope, replacements)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _plan_aggregate(
    op: Operator,
    scope: Scope,
    core: ast.SelectCore,
    order_exprs: list[Expr],
):
    group_pairs: list[tuple[Expr, int]] = []
    key_columns: list[tuple[Column, Expr]] = []
    for index, expr in enumerate(core.group_by):
        bound = bind(expr, scope, where="GROUP BY")
        if isinstance(bound, BoundColumn):
            column = scope.columns[bound.index]
            key_column = Column(table=column.table, name=column.name, source=0)
        else:
            key_column = Column(table=None, name=str(expr), source=0)
        key_columns.append((key_column, bound))
        group_pairs.append((expr, index))

    unbound_aggregates: list[SqlAggregate] = []
    sources = [item.expr for item in core.items if item.expr is not None]
    if core.having is not None:
        sources.append(core.having)
    sources.extend(order_exprs)
    for expr in sources:
        for aggregate in collect_aggregates(expr):
            if aggregate not in unbound_aggregates:
                unbound_aggregates.append(aggregate)

    aggregate_columns: list[tuple[Column, BoundAggregate]] = []
    aggregate_pairs: list[tuple[SqlAggregate, int]] = []
    for position, aggregate in enumerate(unbound_aggregates):
        arg = (
            None
            if aggregate.arg is None
            else bind(aggregate.arg, scope, where=f"aggregate {aggregate}")
        )
        aggregate_columns.append(
            (
                Column(table=None, name=str(aggregate), source=0),
                BoundAggregate(
                    aggregate.func, arg, aggregate.distinct, aggregate.separator
                ),
            )
        )
        aggregate_pairs.append((aggregate, len(key_columns) + position))

    aggregate_op = Aggregate(
        op, key_columns, aggregate_columns, group_all=not core.group_by
    )
    post_scope = Scope(aggregate_op.columns)
    return aggregate_op, group_pairs, aggregate_pairs, post_scope
