"""AST for the SQL subset hosted by :mod:`repro.sql`.

Value expressions reuse the GPML expression nodes
(:mod:`repro.gpml.expr`) — a deliberate echo of the paper's Figure 9:
SQL/PGQ and GQL share one expression language, and the hosts differ only
in where the expressions sit.  The SQL-specific additions are
:class:`SqlAggregate` (vertical aggregation over result rows, with
``COUNT(*)`` and arbitrary argument expressions — distinct from GPML's
*horizontal* aggregates over group variables inside COLUMNS) and the
statement shapes below.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.errors import SqlError
from repro.gpml import ast as gpml_ast
from repro.gpml.expr import Expr
from repro.pgq.graph_table import GraphTableStatement

#: vertical aggregate functions the executor implements
AGGREGATE_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX", "LISTAGG")


@dataclass(frozen=True)
class SqlAggregate(Expr):
    """A vertical SQL aggregate: ``COUNT(*)``, ``SUM(expr)``, ...

    ``arg`` is None only for ``COUNT(*)``.  The node never evaluates
    directly — the binder replaces it with a reference to the aggregate
    operator's output column; reaching :meth:`evaluate` means the
    aggregate appeared somewhere aggregates are not allowed.
    """

    func: str
    arg: Optional[Expr]
    distinct: bool = False
    separator: str = ", "

    def evaluate(self, ctx):
        raise SqlError(f"aggregate {self} is not allowed in this context")

    def children(self) -> Sequence[Expr]:
        return () if self.arg is None else (self.arg,)

    def __str__(self) -> str:
        distinct = "DISTINCT " if self.distinct else ""
        return f"{self.func}({distinct}{'*' if self.arg is None else self.arg})"


def contains_aggregate(expr: Optional[Expr]) -> bool:
    if expr is None:
        return False
    if isinstance(expr, SqlAggregate):
        return True
    return any(contains_aggregate(child) for child in expr.children())


def collect_aggregates(expr: Optional[Expr]) -> list[SqlAggregate]:
    """All SqlAggregate nodes in *expr*, outermost first, in textual order."""
    if expr is None:
        return []
    if isinstance(expr, SqlAggregate):
        if contains_aggregate(expr.arg):
            raise SqlError(f"nested aggregate in {expr}")
        return [expr]
    found: list[SqlAggregate] = []
    for child in expr.children():
        found.extend(collect_aggregates(child))
    return found


# ----------------------------------------------------------------------
# FROM items
# ----------------------------------------------------------------------
@dataclass
class TableRef:
    """A base table in FROM: ``accounts [AS] a``."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> Optional[str]:
        return self.alias or self.name

    def describe(self) -> str:
        return self.name + (f" AS {self.alias}" if self.alias else "")


@dataclass
class GraphTableRef:
    """``GRAPH_TABLE(g MATCH ... COLUMNS (...)) [AS] t`` in FROM.

    ``statement.pattern`` holds the parsed :class:`GraphPattern` so the
    planner can conjoin pushed-down predicates before preparing it.
    """

    graph_name: str
    statement: GraphTableStatement
    alias: Optional[str] = None

    @property
    def binding_name(self) -> Optional[str]:
        return self.alias

    @property
    def pattern(self) -> gpml_ast.GraphPattern:
        return self.statement.pattern

    def describe(self) -> str:
        suffix = f" AS {self.alias}" if self.alias else ""
        return f"GRAPH_TABLE({self.graph_name} ...){suffix}"


FromItem = Union[TableRef, GraphTableRef]


@dataclass
class FromSource:
    """One FROM item with how it joins the items before it.

    ``kind`` is ``"from"`` for the first item, ``"cross"`` for a
    comma-separated item, ``"join"`` for ``[INNER] JOIN ... ON``.
    """

    item: FromItem
    kind: str = "from"
    on: Optional[Expr] = None


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class SelectItem:
    """One SELECT-list entry; ``expr`` is None for a bare ``*``."""

    expr: Optional[Expr]
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class SelectCore:
    """One ``SELECT ... FROM ... [WHERE] [GROUP BY] [HAVING]`` block."""

    items: list[SelectItem]
    sources: list[FromSource] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    distinct: bool = False


@dataclass
class SelectStatement:
    """A full query: cores chained by UNION [ALL], then ORDER/LIMIT."""

    cores: list[SelectCore]
    set_ops: list[str] = field(default_factory=list)  # "UNION" | "UNION ALL"
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0


@dataclass
class ExplainStatement:
    inner: SelectStatement
    #: EXPLAIN ANALYZE: execute, then render the plan with actuals
    analyze: bool = False


@dataclass
class CreateGraphStatement:
    """CREATE PROPERTY GRAPH passthrough (parsed by :mod:`repro.pgq.ddl`)."""

    text: str
