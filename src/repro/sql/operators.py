"""Pull-based relational operators (the PR-2 style, lifted to SQL).

Every operator exposes its output schema (``columns``), a lazy ``rows()``
generator, and an EXPLAIN description.  Streaming operators (scan,
filter, project, the probe side of a hash join, distinct, limit, union)
emit rows as their input produces them; pipeline breakers (sort,
aggregation, the build side of a join) consume their whole input first.

The graph leaf is :class:`GraphTableScan`: it drives the streaming GPML
core directly, so a :class:`~repro.gpml.streaming.RowBudget` owned by the
outer LIMIT reaches the NFA search itself — ``SELECT ... LIMIT 1`` over a
huge graph stops the product-graph exploration after a handful of edge
expansions, and pushed-down WHERE conjuncts ride into the MATCH where the
cost-based planner turns them into index anchors.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.errors import SqlError
from repro.gpml.engine import PreparedQuery
from repro.gpml.expr import Expr
from repro.gpml.matcher import MatcherConfig
from repro.gpml.streaming import PipelineStats, RowBudget, classify_pipeline, render_pipeline
from repro.graph.model import PropertyGraph
from repro.obs.trace import Span, timed_rows
from repro.pgq.graph_table import GraphTableStatement, iter_graph_table_rows
from repro.pgq.table import Table
from repro.sql.binder import Column, evaluate, holds
from repro.values import NULL, is_null


class Operator:
    """Base class: an output schema plus a lazy row stream.

    Operators pull from their children via :meth:`run` (not ``rows()``
    directly): when EXPLAIN ANALYZE has attached a trace span to an
    operator, ``run()`` wraps the stream with row/time accounting —
    otherwise it is ``rows()`` itself, so untraced execution pays one
    attribute check per operator, not per row.
    """

    columns: list[Column]
    children: list["Operator"]
    #: trace span attached by :func:`attach_spans` (None = untraced)
    span: Optional[Span] = None

    def rows(self) -> Iterator[tuple]:
        raise NotImplementedError

    def run(self) -> Iterator[tuple]:
        if self.span is None:
            return self.rows()
        return timed_rows(self.span, self.rows())

    def describe(self) -> str:
        raise NotImplementedError

    def detail_lines(self) -> list[str]:
        return []


def render_plan(op: Operator, indent: str = "") -> list[str]:
    """Indented operator tree for EXPLAIN."""
    lines = [f"{indent}{op.describe()}"]
    child_indent = indent + "  "
    for detail in op.detail_lines():
        lines.append(f"{child_indent}{detail}")
    for child in op.children:
        lines.extend(render_plan(child, child_indent))
    return lines


def attach_spans(op: Operator, parent: Span) -> Span:
    """Mirror the operator tree as trace spans (one per operator).

    Called by EXPLAIN ANALYZE before execution; each operator's
    :meth:`~Operator.run` then fills in its span.  A
    :class:`GraphTableScan` additionally threads its span into the GPML
    engine, so the pattern's stage spans nest under the scan operator.
    """
    span = parent.child(op.describe(), kind="operator")
    op.span = span
    for child in op.children:
        attach_spans(child, span)
    return span


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    return value


def _row_key(row: tuple) -> tuple:
    return tuple(_hashable(v) for v in row)


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------
class TableScan(Operator):
    """Stream the rows of a registered base table."""

    def __init__(self, table: Table, alias: Optional[str], source: int = 0):
        self.table = table
        self.alias = alias
        self.columns = [
            Column(table=alias, name=name, source=source) for name in table.columns
        ]
        self.children = []

    def rows(self) -> Iterator[tuple]:
        return iter(self.table.rows)

    def describe(self) -> str:
        alias = f" AS {self.alias}" if self.alias and self.alias != self.table.name else ""
        return f"scan {self.table.name or '<anonymous>'}{alias} [{len(self.table)} rows]"


class GraphTableScan(Operator):
    """GRAPH_TABLE as a table operator: the streaming GPML core in FROM.

    ``prepared`` already contains any pushed-down predicates conjoined
    into the pattern's WHERE; ``budget`` is the outer LIMIT's shared
    :class:`RowBudget` (None when the statement is unbounded).
    """

    def __init__(
        self,
        graph: PropertyGraph,
        graph_name: str,
        statement: GraphTableStatement,
        prepared: PreparedQuery,
        alias: Optional[str],
        source: int = 0,
        config: Optional[MatcherConfig] = None,
        stats: Optional[PipelineStats] = None,
        pushed_predicates: Optional[list[Expr]] = None,
    ):
        self.graph = graph
        self.graph_name = graph_name
        self.statement = statement
        self.prepared = prepared
        self.alias = alias
        self.config = config
        self.stats = stats
        self.pushed_predicates = pushed_predicates or []
        self.budget: Optional[RowBudget] = None
        self.columns = [
            Column(table=alias, name=name, source=source)
            for name in statement.column_names
        ]
        self.children = []

    def rows(self) -> Iterator[tuple]:
        # rows here are intermediate (the Database counts delivered result
        # rows), so count_rows=False; the scan's span — when EXPLAIN
        # ANALYZE attached one — parents the engine's stage spans.
        return iter_graph_table_rows(
            self.graph,
            self.statement,
            self.prepared,
            self.config,
            budget=self.budget,
            stats=self.stats,
            span=self.span,
            count_rows=False,
        )

    def describe(self) -> str:
        alias = f" AS {self.alias}" if self.alias else ""
        return f"graph_table scan {self.graph_name}{alias}"

    def detail_lines(self) -> list[str]:
        lines = [f"pattern: {' '.join(self.statement.pattern_text.split())}"]
        lines.append(f"columns: {', '.join(self.statement.column_names)}")
        for predicate in self.pushed_predicates:
            lines.append(f"pushed into MATCH: {predicate}")
        if self.budget is not None:
            lines.append(
                f"row budget: shared with outer LIMIT "
                f"(stops the NFA search after {self.budget.needed} delivered rows)"
            )
        lines.extend(render_pipeline(classify_pipeline(self.prepared)))
        return lines


class SingleRow(Operator):
    """FROM-less SELECT: one empty row (``SELECT 1 + 1``)."""

    def __init__(self):
        self.columns = []
        self.children = []

    def rows(self) -> Iterator[tuple]:
        yield ()

    def describe(self) -> str:
        return "single row"


# ----------------------------------------------------------------------
# Row transforms
# ----------------------------------------------------------------------
class Filter(Operator):
    """Keep rows whose predicate is TRUE (three-valued logic)."""

    def __init__(self, child: Operator, predicate: Expr, label: str = "filter"):
        self.child = child
        self.predicate = predicate
        self.label = label
        self.columns = child.columns
        self.children = [child]

    def rows(self) -> Iterator[tuple]:
        predicate = self.predicate
        for row in self.child.run():
            if holds(predicate, row):
                yield row

    def describe(self) -> str:
        return f"{self.label}: {self.predicate}"


class Project(Operator):
    """Compute the output expressions of the SELECT list."""

    def __init__(
        self,
        child: Operator,
        items: list[tuple[str, Expr]],
        qualifier: Optional[str] = None,
    ):
        self.child = child
        self.items = items
        self.columns = [
            Column(table=qualifier, name=name, source=0) for name, _ in items
        ]
        self.children = [child]

    def rows(self) -> Iterator[tuple]:
        exprs = [expr for _, expr in self.items]
        for row in self.child.run():
            yield tuple(evaluate(expr, row) for expr in exprs)

    def describe(self) -> str:
        rendered = ", ".join(
            name if name == str(expr) else f"{expr} AS {name}"
            for name, expr in self.items
        )
        return f"project: {rendered}"


class Distinct(Operator):
    """Streaming duplicate elimination (first occurrence wins)."""

    def __init__(self, child: Operator):
        self.child = child
        self.columns = child.columns
        self.children = [child]

    def rows(self) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self.child.run():
            key = _row_key(row)
            if key not in seen:
                seen.add(key)
                yield row

    def describe(self) -> str:
        return "distinct"


# ----------------------------------------------------------------------
# Join
# ----------------------------------------------------------------------
class Join(Operator):
    """Inner join: hash join on equi-conjuncts, nested loop otherwise.

    The build (right) side is a pipeline breaker; the probe (left) side
    streams, so a graph scan on the left keeps its early-termination
    behaviour.  NULL join keys never match (SQL semantics).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: list[Expr],
        right_keys: list[Expr],
        residual: Optional[Expr] = None,
    ):
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.columns = left.columns + right.columns
        self.children = [left, right]

    def rows(self) -> Iterator[tuple]:
        if self.left_keys:
            yield from self._hash_rows()
        else:
            yield from self._loop_rows()

    def _hash_rows(self) -> Iterator[tuple]:
        build: dict[tuple, list[tuple]] = {}
        for row in self.right.run():
            key = tuple(_hashable(evaluate(k, row)) for k in self.right_keys)
            if any(is_null(v) for v in key):
                continue
            build.setdefault(key, []).append(row)
        if self.span is not None:
            self.span.peak_rows = sum(len(rows) for rows in build.values())
        if not build:
            return
        residual = self.residual
        for row in self.left.run():
            key = tuple(_hashable(evaluate(k, row)) for k in self.left_keys)
            if any(is_null(v) for v in key):
                continue
            for other in build.get(key, ()):
                merged = row + other
                if residual is None or holds(residual, merged):
                    yield merged

    def _loop_rows(self) -> Iterator[tuple]:
        build = list(self.right.run())
        if self.span is not None:
            self.span.peak_rows = len(build)
        if not build:
            return
        residual = self.residual
        for row in self.left.run():
            for other in build:
                merged = row + other
                if residual is None or holds(residual, merged):
                    yield merged

    def describe(self) -> str:
        if self.left_keys:
            keys = ", ".join(
                f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
            )
            text = f"hash join on {keys} (build right, probe left streams)"
        elif self.residual is not None:
            text = f"nested-loop join on {self.residual}"
        else:
            text = "cross join"
        if self.left_keys and self.residual is not None:
            text += f" residual {self.residual}"
        return text


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
class Aggregate(Operator):
    """GROUP BY + vertical aggregates (a pipeline breaker).

    ``keys`` are (column, bound expr) pairs over the input; ``aggregates``
    are the bound :class:`SqlAggregate` specs.  With no GROUP BY the
    whole input forms one group (so ``SELECT COUNT(*) FROM t`` yields one
    row even for an empty table).  Groups emit in first-seen order.
    """

    def __init__(
        self,
        child: Operator,
        keys: list[tuple[Column, Expr]],
        aggregates: list[tuple[Column, "BoundAggregate"]],
        group_all: bool = False,
    ):
        self.child = child
        self.keys = keys
        self.aggregates = aggregates
        self.group_all = group_all
        self.columns = [c for c, _ in keys] + [c for c, _ in aggregates]
        self.children = [child]

    def rows(self) -> Iterator[tuple]:
        groups: dict[tuple, list[tuple]] = {}
        order: list[tuple] = []
        originals: dict[tuple, tuple] = {}
        for row in self.child.run():
            values = tuple(evaluate(expr, row) for _, expr in self.keys)
            key = _row_key(values)
            bucket = groups.get(key)
            if bucket is None:
                order.append(key)
                originals[key] = values
                groups[key] = [row]
            else:
                bucket.append(row)
        if not order and self.group_all:
            order.append(())
            groups[()] = []
            originals[()] = ()
        if self.span is not None:
            self.span.peak_rows = sum(len(members) for members in groups.values())
        for key in order:
            members = groups[key]
            out = list(originals[key])
            for _, aggregate in self.aggregates:
                out.append(aggregate.compute(members))
            yield tuple(out)

    def describe(self) -> str:
        keys = ", ".join(str(expr) for _, expr in self.keys) or "()"
        aggs = ", ".join(str(spec) for _, spec in self.aggregates)
        return f"aggregate: group by {keys}" + (f" compute {aggs}" if aggs else "")


class BoundAggregate:
    """One vertical aggregate with its argument bound over the input."""

    def __init__(self, func: str, arg: Optional[Expr], distinct: bool, separator: str):
        self.func = func
        self.arg = arg
        self.distinct = distinct
        self.separator = separator

    def compute(self, rows: list[tuple]) -> Any:
        if self.arg is None:  # COUNT(*)
            return len(rows)
        values = [
            value
            for value in (evaluate(self.arg, row) for row in rows)
            if not is_null(value)
        ]
        if self.distinct:
            unique: list[Any] = []
            for value in values:
                if value not in unique:
                    unique.append(value)
            values = unique
        func = self.func
        if func == "COUNT":
            return len(values)
        if func == "LISTAGG":
            return self.separator.join(str(v) for v in values)
        if not values:
            return NULL
        if func == "SUM":
            return sum(values)
        if func == "AVG":
            return sum(values) / len(values)
        if func == "MIN":
            return min(values)
        if func == "MAX":
            return max(values)
        raise SqlError(f"unknown aggregate {func!r}")  # pragma: no cover

    def __str__(self) -> str:
        distinct = "DISTINCT " if self.distinct else ""
        return f"{self.func}({distinct}{'*' if self.arg is None else self.arg})"


# ----------------------------------------------------------------------
# Order / limit / set operations
# ----------------------------------------------------------------------
class Sort(Operator):
    """ORDER BY (a pipeline breaker): stable multi-key sort.

    NULLs sort last ascending (first descending); all numeric values
    (int/float/bool) share one sort class so ``ORDER BY`` interleaves
    them numerically, and other values are keyed by type name so
    heterogeneous columns stay orderable.
    """

    def __init__(self, child: Operator, keys: list[tuple[Expr, bool]]):
        self.child = child
        self.keys = keys  # (bound expr, descending)
        self.columns = child.columns
        self.children = [child]

    def rows(self) -> Iterator[tuple]:
        rows = list(self.child.run())
        if self.span is not None:
            self.span.peak_rows = len(rows)
        for expr, descending in reversed(self.keys):
            rows.sort(key=lambda row: _sort_key(evaluate(expr, row)), reverse=descending)
        return iter(rows)

    def describe(self) -> str:
        keys = ", ".join(
            f"{expr}{' DESC' if descending else ''}" for expr, descending in self.keys
        )
        return f"sort: {keys}"


def _sort_key(value: Any) -> tuple:
    if is_null(value):
        return (1, "", "")
    if isinstance(value, (bool, int, float)):
        return (0, "number", _hashable(value))
    return (0, type(value).__name__, _hashable(value))


class Limit(Operator):
    """LIMIT/OFFSET; owns the statement's RowBudget when one exists.

    The budget counts rows *pulled* (offset + limit of them are needed),
    and every :class:`GraphTableScan` below polls it — satisfied means
    the NFA search stops, not just the iteration.
    """

    def __init__(
        self,
        child: Operator,
        limit: Optional[int],
        offset: int = 0,
        budget: Optional[RowBudget] = None,
    ):
        self.child = child
        self.limit = limit
        self.offset = offset
        self.budget = budget
        self.columns = child.columns
        self.children = [child]

    def rows(self) -> Iterator[tuple]:
        if self.limit is not None and self.limit <= 0:
            return
        skipped = 0
        delivered = 0
        for row in self.child.run():
            if self.budget is not None:
                self.budget.take()
            if skipped < self.offset:
                skipped += 1
                continue
            yield row
            delivered += 1
            if self.limit is not None and delivered >= self.limit:
                if self.span is not None and self.budget is not None:
                    self.span.event("budget_satisfied", taken=self.budget.taken)
                return

    def describe(self) -> str:
        parts = []
        if self.limit is not None:
            parts.append(f"limit {self.limit}")
        if self.offset:
            parts.append(f"offset {self.offset}")
        text = " ".join(parts) or "limit"
        if self.budget is not None:
            text += " [row budget pushed into graph_table scans]"
        return text


class Union(Operator):
    """UNION [ALL]; plain UNION deduplicates with a streaming seen-set."""

    def __init__(self, left: Operator, right: Operator, all_rows: bool):
        if len(left.columns) != len(right.columns):
            raise SqlError(
                f"UNION arity mismatch: {len(left.columns)} vs "
                f"{len(right.columns)} columns"
            )
        self.left = left
        self.right = right
        self.all_rows = all_rows
        self.columns = left.columns
        self.children = [left, right]

    def rows(self) -> Iterator[tuple]:
        if self.all_rows:
            yield from self.left.run()
            yield from self.right.run()
            return
        seen: set[tuple] = set()
        for side in (self.left, self.right):
            for row in side.run():
                key = _row_key(row)
                if key not in seen:
                    seen.add(key)
                    yield row

    def describe(self) -> str:
        return "union all" if self.all_rows else "union (distinct)"
