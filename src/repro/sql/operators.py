"""Pull-based relational operators (the PR-2 style, lifted to SQL).

Every operator exposes its output schema (``columns``), a lazy ``rows()``
generator, and an EXPLAIN description.  Streaming operators (scan,
filter, project, the probe side of a hash join, distinct, limit, union)
emit rows as their input produces them; pipeline breakers (sort,
aggregation, the build side of a join) consume their whole input first.

The graph leaf is :class:`GraphTableScan`: it drives the streaming GPML
core directly, so a :class:`~repro.gpml.streaming.RowBudget` owned by the
outer LIMIT reaches the NFA search itself — ``SELECT ... LIMIT 1`` over a
huge graph stops the product-graph exploration after a handful of edge
expansions, and pushed-down WHERE conjuncts ride into the MATCH where the
cost-based planner turns them into index anchors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.errors import SqlError
from repro.gpml import ast as gpml_ast
from repro.gpml.engine import PreparedQuery, SeededSearch, prepare
from repro.gpml.expr import Expr, In, conjoin
from repro.gpml.matcher import MatcherConfig
from repro.gpml.streaming import PipelineStats, RowBudget, classify_pipeline, render_pipeline
from repro.graph.model import PropertyGraph
from repro.obs.trace import Span, timed_rows
from repro.pgq.graph_table import (
    GraphTableStatement,
    iter_graph_table_rows,
    project_columns,
)
from repro.pgq.table import Table
from repro.planner.anchor import SeedSpec
from repro.sql.binder import Column, evaluate, holds
from repro.values import NULL, is_null


class Operator:
    """Base class: an output schema plus a lazy row stream.

    Operators pull from their children via :meth:`run` (not ``rows()``
    directly): when EXPLAIN ANALYZE has attached a trace span to an
    operator, ``run()`` wraps the stream with row/time accounting —
    otherwise it is ``rows()`` itself, so untraced execution pays one
    attribute check per operator, not per row.
    """

    columns: list[Column]
    children: list["Operator"]
    #: trace span attached by :func:`attach_spans` (None = untraced)
    span: Optional[Span] = None

    def rows(self) -> Iterator[tuple]:
        raise NotImplementedError

    def run(self) -> Iterator[tuple]:
        if self.span is None:
            return self.rows()
        return timed_rows(self.span, self.rows())

    def describe(self) -> str:
        raise NotImplementedError

    def detail_lines(self) -> list[str]:
        return []


def render_plan(op: Operator, indent: str = "") -> list[str]:
    """Indented operator tree for EXPLAIN."""
    lines = [f"{indent}{op.describe()}"]
    child_indent = indent + "  "
    for detail in op.detail_lines():
        lines.append(f"{child_indent}{detail}")
    for child in op.children:
        lines.extend(render_plan(child, child_indent))
    return lines


def attach_spans(op: Operator, parent: Span) -> Span:
    """Mirror the operator tree as trace spans (one per operator).

    Called by EXPLAIN ANALYZE before execution; each operator's
    :meth:`~Operator.run` then fills in its span.  A
    :class:`GraphTableScan` additionally threads its span into the GPML
    engine, so the pattern's stage spans nest under the scan operator.
    """
    span = parent.child(op.describe(), kind="operator")
    op.span = span
    for child in op.children:
        attach_spans(child, span)
    return span


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    return value


def _row_key(row: tuple) -> tuple:
    return tuple(_hashable(v) for v in row)


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------
class TableScan(Operator):
    """Stream the rows of a registered base table."""

    def __init__(self, table: Table, alias: Optional[str], source: int = 0):
        self.table = table
        self.alias = alias
        self.columns = [
            Column(table=alias, name=name, source=source) for name in table.columns
        ]
        self.children = []

    def rows(self) -> Iterator[tuple]:
        return iter(self.table.rows)

    def describe(self) -> str:
        alias = f" AS {self.alias}" if self.alias and self.alias != self.table.name else ""
        return f"scan {self.table.name or '<anonymous>'}{alias} [{len(self.table)} rows]"


class GraphTableScan(Operator):
    """GRAPH_TABLE as a table operator: the streaming GPML core in FROM.

    ``prepared`` already contains any pushed-down predicates conjoined
    into the pattern's WHERE; ``budget`` is the outer LIMIT's shared
    :class:`RowBudget` (None when the statement is unbounded).
    """

    def __init__(
        self,
        graph: PropertyGraph,
        graph_name: str,
        statement: GraphTableStatement,
        prepared: PreparedQuery,
        alias: Optional[str],
        source: int = 0,
        config: Optional[MatcherConfig] = None,
        stats: Optional[PipelineStats] = None,
        pushed_predicates: Optional[list[Expr]] = None,
    ):
        self.graph = graph
        self.graph_name = graph_name
        self.statement = statement
        self.prepared = prepared
        self.alias = alias
        self.config = config
        self.stats = stats
        self.pushed_predicates = pushed_predicates or []
        self.budget: Optional[RowBudget] = None
        #: set by the semi-join rewrite rule: the GPML defining expression
        #: of the join-key column, used to build the injected IN predicate
        self.reduction_expr: Optional[Expr] = None
        #: number of probe keys actually pushed (None until reduction runs)
        self.reduced_keys: Optional[int] = None
        self.columns = [
            Column(table=alias, name=name, source=source)
            for name in statement.column_names
        ]
        self.children = []

    def rows(self) -> Iterator[tuple]:
        # rows here are intermediate (the Database counts delivered result
        # rows), so count_rows=False; the scan's span — when EXPLAIN
        # ANALYZE attached one — parents the engine's stage spans.
        return iter_graph_table_rows(
            self.graph,
            self.statement,
            self.prepared,
            self.config,
            budget=self.budget,
            stats=self.stats,
            span=self.span,
            count_rows=False,
        )

    def reduced_rows(self, values: tuple) -> Iterator[tuple]:
        """Enumerate with the probe side's distinct keys pushed as an IN.

        The semi-join runtime path: the pattern is re-prepared from its
        pre-normalization form with ``reduction_expr IN (values)``
        conjoined into the final WHERE, so the GPML planner's sargable
        machinery can turn the value set into index-anchor probes.  The
        IN's membership equality is Python hash-bucket equality — the
        same the hash join applies to its keys — so only rows that could
        never find a join partner are dropped.
        """
        raw = self.prepared.raw
        reduced = gpml_ast.GraphPattern(
            paths=raw.paths,
            where=conjoin(raw.where, In(self.reduction_expr, values)),
            keep=raw.keep,
        )
        self.prepared = prepare(reduced)
        self.reduced_keys = len(values)
        return self.run()

    def describe(self) -> str:
        alias = f" AS {self.alias}" if self.alias else ""
        return f"graph_table scan {self.graph_name}{alias}"

    def detail_lines(self) -> list[str]:
        lines = [f"pattern: {' '.join(self.statement.pattern_text.split())}"]
        lines.append(f"columns: {', '.join(self.statement.column_names)}")
        for predicate in self.pushed_predicates:
            lines.append(f"pushed into MATCH: {predicate}")
        if self.reduced_keys is not None:
            lines.append(
                f"semi-join reduced: {self.reduction_expr} IN "
                f"<{self.reduced_keys} probe keys> pushed into MATCH"
            )
        if self.budget is not None:
            lines.append(
                f"row budget: shared with outer LIMIT "
                f"(stops the NFA search after {self.budget.needed} delivered rows)"
            )
        lines.extend(render_pipeline(classify_pipeline(self.prepared)))
        return lines


#: how a seeded scan maps a join probe value to anchor node ids
PROBE_ELEMENT = "element"  # COLUMNS output is the element itself (its id)
PROBE_PROPERTY = "property"  # COLUMNS output is a property of the element


class SeededGraphTableScan(GraphTableScan):
    """A GRAPH_TABLE scan driven one anchored NFA search per probe row.

    Planted by the join-through-GRAPH_TABLE rewrite: instead of
    enumerating the whole pattern and hash-joining, the enclosing
    :class:`Join` calls :meth:`probe` with each probe row's join-key
    value, and the scan runs a seeded search anchored at exactly the
    matching nodes (:class:`~repro.gpml.engine.SeededSearch`, shared with
    GQL's chained MATCH — hub-skew memoization included).

    Candidate soundness contract with the join: :meth:`probe` yields a
    *superset* of the rows whose key equals the probe value — the join
    re-checks every key pair before emitting, so element-id guards and
    property-index bucket equality only need to never lose a row.  Probe
    values no index can answer exactly (lists, exotic types) fall back to
    one full enumeration, cached across probe rows.
    """

    def __init__(
        self,
        scan: GraphTableScan,
        seed: SeedSpec,
        probe_mode: str,
        probe_prop: Optional[str],
        probe_column: str,
        seed_key_position: int,
    ):
        super().__init__(
            graph=scan.graph,
            graph_name=scan.graph_name,
            statement=scan.statement,
            prepared=scan.prepared,
            alias=scan.alias,
            config=scan.config,
            stats=scan.stats,
            pushed_predicates=scan.pushed_predicates,
        )
        self.columns = list(scan.columns)  # keep the original source index
        self.seed = seed
        self.probe_mode = probe_mode
        self.probe_prop = probe_prop
        self.probe_column = probe_column
        #: index into the enclosing join's key lists of the seed key
        self.seed_key_position = seed_key_position
        self._search: Optional[SeededSearch] = None
        self._fallback: Optional[list[tuple]] = None

    def probe(self, value: Any) -> Iterator[tuple]:
        """COLUMNS-projected rows whose join key may equal *value*."""
        seeds = self._seed_ids(value)
        if seeds is None:
            yield from self._enumerated()
            return
        if not seeds:
            return
        if self._search is None:
            self._search = SeededSearch(
                self.graph, self.prepared, self.config,
                reversed_run=self.seed.reversed_run,
                budget=self.budget, stats=self.stats, span=self.span,
            )
        for seed_id in seeds:
            for values, _paths in self._search.run(seed_id):
                yield project_columns(self.graph, self.statement, values)

    def _seed_ids(self, value: Any) -> Optional[list[str]]:
        """Anchor node ids for one probe value; None = cannot narrow.

        Element mode: the key is the node id itself, so a non-id probe
        value (or an id not in the graph) has no partners at all.
        Property mode: a plain-scalar probe is answered by the property
        hash index (dict-key equality, which is exactly the join's
        ``_hashable`` equality for scalars); anything else — e.g. a list,
        whose index bucket does not mirror ``_hashable``'s list→tuple
        coercion — falls back to full enumeration.
        """
        if is_null(value):
            return []
        if self.probe_mode == PROBE_ELEMENT:
            if isinstance(value, str) and self.graph.has_node(value):
                return [value]
            return []
        if isinstance(value, (str, int, float)):
            return sorted(
                self.graph.index_lookup(None, self.probe_prop, value, kind="node")
            )
        return None

    def _enumerated(self) -> Iterator[tuple]:
        if self._fallback is None:
            if self.span is not None:
                self.span.bump("seeded_fallback_scan")
            self._fallback = list(super().rows())
        return iter(self._fallback)

    def describe(self) -> str:
        alias = f" AS {self.alias}" if self.alias else ""
        return f"seeded graph_table scan {self.graph_name}{alias}"

    def detail_lines(self) -> list[str]:
        lines = [
            f"mode: seeded join — probe value {self.probe_column} anchors "
            f"{self.seed.var} ({self.seed.side} end), one run per probe row"
        ]
        lines.extend(super().detail_lines())
        return lines


class SharedGraphSpool:
    """One enumeration of a graph scan, read by several consumers.

    Planted by the common-subpattern rewrite.  The buffer grows lazily as
    the furthest-ahead consumer pulls; single-threaded interleaving is
    safe because each reader resumes at its own index.  A row budget
    truncating the producer is sound: the spool only looks exhausted once
    the consumers stop pulling, which a satisfied budget guarantees.
    """

    def __init__(self, scan: GraphTableScan):
        self.scan = scan
        self.buffer: list[tuple] = []
        self._source: Optional[Iterator[tuple]] = None
        self._done = False

    def reader(self, prefix_len: int) -> Iterator[tuple]:
        index = 0
        while True:
            if index < len(self.buffer):
                row = self.buffer[index]
            elif self._done:
                return
            else:
                if self._source is None:
                    self._source = self.scan.run()
                try:
                    row = next(self._source)
                except StopIteration:
                    self._done = True
                    return
                self.buffer.append(row)
            index += 1
            yield row if len(row) == prefix_len else row[:prefix_len]


class SharedScanConsumer(Operator):
    """One consumer of a :class:`SharedGraphSpool`.

    The producer consumer owns the underlying scan as its child (so the
    scan renders and traces once); the other consumers are leaves that
    read the spool, projecting their COLUMNS prefix by tuple slice.
    """

    def __init__(self, spool: SharedGraphSpool, columns: list[Column], producer: bool):
        self.spool = spool
        self.columns = columns
        self.producer = producer
        self.children = [spool.scan] if producer else []

    def rows(self) -> Iterator[tuple]:
        return self.spool.reader(len(self.columns))

    def describe(self) -> str:
        scan = self.spool.scan
        alias = f" AS {self.columns[0].table}" if self.columns and self.columns[0].table else ""
        if self.producer:
            return f"shared graph_table spool{alias} (enumerates once)"
        return (
            f"shared graph_table spool{alias} "
            f"(reads the spool of {scan.graph_name})"
        )

    def detail_lines(self) -> list[str]:
        if self.producer:
            return []
        return [f"columns: {', '.join(c.name for c in self.columns)}"]


class SingleRow(Operator):
    """FROM-less SELECT: one empty row (``SELECT 1 + 1``)."""

    def __init__(self):
        self.columns = []
        self.children = []

    def rows(self) -> Iterator[tuple]:
        yield ()

    def describe(self) -> str:
        return "single row"


# ----------------------------------------------------------------------
# Row transforms
# ----------------------------------------------------------------------
class Filter(Operator):
    """Keep rows whose predicate is TRUE (three-valued logic)."""

    def __init__(self, child: Operator, predicate: Expr, label: str = "filter"):
        self.child = child
        self.predicate = predicate
        self.label = label
        self.columns = child.columns
        self.children = [child]

    def rows(self) -> Iterator[tuple]:
        predicate = self.predicate
        for row in self.child.run():
            if holds(predicate, row):
                yield row

    def describe(self) -> str:
        return f"{self.label}: {self.predicate}"


class Project(Operator):
    """Compute the output expressions of the SELECT list."""

    def __init__(
        self,
        child: Operator,
        items: list[tuple[str, Expr]],
        qualifier: Optional[str] = None,
    ):
        self.child = child
        self.items = items
        self.columns = [
            Column(table=qualifier, name=name, source=0) for name, _ in items
        ]
        self.children = [child]

    def rows(self) -> Iterator[tuple]:
        exprs = [expr for _, expr in self.items]
        for row in self.child.run():
            yield tuple(evaluate(expr, row) for expr in exprs)

    def describe(self) -> str:
        rendered = ", ".join(
            name if name == str(expr) else f"{expr} AS {name}"
            for name, expr in self.items
        )
        return f"project: {rendered}"


class Distinct(Operator):
    """Streaming duplicate elimination (first occurrence wins)."""

    def __init__(self, child: Operator):
        self.child = child
        self.columns = child.columns
        self.children = [child]

    def rows(self) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self.child.run():
            key = _row_key(row)
            if key not in seen:
                seen.add(key)
                yield row

    def describe(self) -> str:
        return "distinct"


# ----------------------------------------------------------------------
# Join
# ----------------------------------------------------------------------
@dataclass
class SemiJoinSpec:
    """Semi-join reduction marker set on a join by the rewrite rule."""

    #: index into left_keys/right_keys of the reducible key pair
    key_position: int
    #: abort the reduction above this many distinct probe keys
    max_keys: int


class Join(Operator):
    """Inner join: hash join on equi-conjuncts, nested loop otherwise.

    The build (right) side is a pipeline breaker; the probe (left) side
    streams, so a graph scan on the left keeps its early-termination
    behaviour.  NULL join keys never match (SQL semantics).

    Two cross-model variants planted by the rewrite rules: with a
    :class:`SeededGraphTableScan` on the right, each probe row drives one
    anchored graph search instead of a build (probe side still streams);
    with a :class:`SemiJoinSpec`, the probe side is materialized first
    and its distinct keys shrink the graph enumeration before the build.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: list[Expr],
        right_keys: list[Expr],
        residual: Optional[Expr] = None,
    ):
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        #: set by the semi-join rewrite rule (None = plain hash join)
        self.semi_join: Optional[SemiJoinSpec] = None
        self.columns = left.columns + right.columns
        self.children = [left, right]

    def rows(self) -> Iterator[tuple]:
        if isinstance(self.right, SeededGraphTableScan):
            yield from self._seeded_rows()
        elif self.left_keys:
            yield from self._hash_rows()
        else:
            yield from self._loop_rows()

    def _seeded_rows(self) -> Iterator[tuple]:
        scan = self.right
        residual = self.residual
        position = scan.seed_key_position
        probes = 0
        for row in self.left.run():
            left_values = [evaluate(k, row) for k in self.left_keys]
            if any(is_null(v) for v in left_values):
                continue
            left_key = tuple(_hashable(v) for v in left_values)
            probes += 1
            for other in scan.probe(left_values[position]):
                # The probe yields a candidate superset; re-checking every
                # key pair here is what makes that contract sufficient.
                right_key = tuple(
                    _hashable(evaluate(k, other)) for k in self.right_keys
                )
                if right_key != left_key:
                    continue
                merged = row + other
                if residual is None or holds(residual, merged):
                    yield merged
        if self.span is not None:
            self.span.event("seeded_join", probes=probes)

    def _hash_rows(self) -> Iterator[tuple]:
        left_source = self.left.run()
        right_source = None
        if self.semi_join is not None:
            # Materialize the probe side first: its distinct keys bound
            # the graph enumeration.  Trades probe streaming for build
            # reduction; emitted rows are identical either way.
            left_rows = list(left_source)
            left_source = iter(left_rows)
            right_source = self._reduced_right(left_rows)
        if right_source is None:
            right_source = self.right.run()
        build: dict[tuple, list[tuple]] = {}
        for row in right_source:
            key = tuple(_hashable(evaluate(k, row)) for k in self.right_keys)
            if any(is_null(v) for v in key):
                continue
            build.setdefault(key, []).append(row)
        if self.span is not None:
            self.span.peak_rows = sum(len(rows) for rows in build.values())
        if not build:
            return
        residual = self.residual
        for row in left_source:
            key = tuple(_hashable(evaluate(k, row)) for k in self.left_keys)
            if any(is_null(v) for v in key):
                continue
            for other in build.get(key, ()):
                merged = row + other
                if residual is None or holds(residual, merged):
                    yield merged

    def _reduced_right(self, left_rows: list[tuple]) -> Optional[Iterator[tuple]]:
        """The reduced graph-side stream, or None when reduction aborts.

        Harvests the probe side's distinct key values at the spec
        position.  Only all-plain-scalar key sets within the cap qualify
        — for those, IN-membership equality provably agrees with the
        hash join's bucket equality, so the filter drops exactly the
        rows that could never find a partner.
        """
        spec = self.semi_join
        key_expr = self.left_keys[spec.key_position]
        distinct: dict[Any, None] = {}
        abort_reason = None
        for row in left_rows:
            value = evaluate(key_expr, row)
            if is_null(value):
                continue
            if not isinstance(value, (str, int, float)) or isinstance(value, bool):
                abort_reason = "non-scalar probe key"
                break
            distinct.setdefault(value)
            if len(distinct) > spec.max_keys:
                abort_reason = f"over {spec.max_keys} distinct keys"
                break
        if abort_reason is not None:
            if self.span is not None:
                self.span.event("semi_join_reduction", applied=False,
                                reason=abort_reason)
            return None
        keys = tuple(distinct)
        if self.span is not None:
            self.span.event("semi_join_reduction", applied=True, keys=len(keys))
        return self.right.reduced_rows(keys)

    def _loop_rows(self) -> Iterator[tuple]:
        build = list(self.right.run())
        if self.span is not None:
            self.span.peak_rows = len(build)
        if not build:
            return
        residual = self.residual
        for row in self.left.run():
            for other in build:
                merged = row + other
                if residual is None or holds(residual, merged):
                    yield merged

    def describe(self) -> str:
        keys = ", ".join(
            f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        if isinstance(self.right, SeededGraphTableScan):
            text = (
                f"seeded graph join on {keys} "
                f"(probe left streams, one anchored search per row)"
            )
        elif self.left_keys:
            text = f"hash join on {keys} (build right, probe left streams)"
        elif self.residual is not None:
            text = f"nested-loop join on {self.residual}"
        else:
            text = "cross join"
        if self.left_keys and self.residual is not None:
            text += f" residual {self.residual}"
        return text

    def detail_lines(self) -> list[str]:
        if isinstance(self.right, SeededGraphTableScan):
            strategy = "seeded graph join (probe side streams into anchored searches)"
        elif self.left_keys:
            strategy = "hash join (build right, probe left streams)"
        elif self.residual is not None:
            strategy = "nested-loop join"
        else:
            strategy = "cross join"
        lines = [f"join strategy: {strategy}"]
        if self.left_keys:
            lines.append(
                "join keys: "
                + ", ".join(
                    f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
                )
            )
        if self.residual is not None:
            lines.append(f"join residual: {self.residual}")
        if self.semi_join is not None:
            lines.append(
                f"semi-join reduction: distinct values of "
                f"{self.left_keys[self.semi_join.key_position]} pushed as IN "
                f"into the graph side (cap {self.semi_join.max_keys} keys)"
            )
        return lines


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
class Aggregate(Operator):
    """GROUP BY + vertical aggregates (a pipeline breaker).

    ``keys`` are (column, bound expr) pairs over the input; ``aggregates``
    are the bound :class:`SqlAggregate` specs.  With no GROUP BY the
    whole input forms one group (so ``SELECT COUNT(*) FROM t`` yields one
    row even for an empty table).  Groups emit in first-seen order.
    """

    def __init__(
        self,
        child: Operator,
        keys: list[tuple[Column, Expr]],
        aggregates: list[tuple[Column, "BoundAggregate"]],
        group_all: bool = False,
    ):
        self.child = child
        self.keys = keys
        self.aggregates = aggregates
        self.group_all = group_all
        self.columns = [c for c, _ in keys] + [c for c, _ in aggregates]
        self.children = [child]

    def rows(self) -> Iterator[tuple]:
        groups: dict[tuple, list[tuple]] = {}
        order: list[tuple] = []
        originals: dict[tuple, tuple] = {}
        for row in self.child.run():
            values = tuple(evaluate(expr, row) for _, expr in self.keys)
            key = _row_key(values)
            bucket = groups.get(key)
            if bucket is None:
                order.append(key)
                originals[key] = values
                groups[key] = [row]
            else:
                bucket.append(row)
        if not order and self.group_all:
            order.append(())
            groups[()] = []
            originals[()] = ()
        if self.span is not None:
            self.span.peak_rows = sum(len(members) for members in groups.values())
        for key in order:
            members = groups[key]
            out = list(originals[key])
            for _, aggregate in self.aggregates:
                out.append(aggregate.compute(members))
            yield tuple(out)

    def describe(self) -> str:
        keys = ", ".join(str(expr) for _, expr in self.keys) or "()"
        aggs = ", ".join(str(spec) for _, spec in self.aggregates)
        return f"aggregate: group by {keys}" + (f" compute {aggs}" if aggs else "")


class BoundAggregate:
    """One vertical aggregate with its argument bound over the input."""

    def __init__(self, func: str, arg: Optional[Expr], distinct: bool, separator: str):
        self.func = func
        self.arg = arg
        self.distinct = distinct
        self.separator = separator

    def compute(self, rows: list[tuple]) -> Any:
        if self.arg is None:  # COUNT(*)
            return len(rows)
        values = [
            value
            for value in (evaluate(self.arg, row) for row in rows)
            if not is_null(value)
        ]
        if self.distinct:
            unique: list[Any] = []
            for value in values:
                if value not in unique:
                    unique.append(value)
            values = unique
        func = self.func
        if func == "COUNT":
            return len(values)
        if func == "LISTAGG":
            return self.separator.join(str(v) for v in values)
        if not values:
            return NULL
        if func == "SUM":
            return sum(values)
        if func == "AVG":
            return sum(values) / len(values)
        if func == "MIN":
            return min(values)
        if func == "MAX":
            return max(values)
        raise SqlError(f"unknown aggregate {func!r}")  # pragma: no cover

    def __str__(self) -> str:
        distinct = "DISTINCT " if self.distinct else ""
        return f"{self.func}({distinct}{'*' if self.arg is None else self.arg})"


# ----------------------------------------------------------------------
# Order / limit / set operations
# ----------------------------------------------------------------------
class Sort(Operator):
    """ORDER BY (a pipeline breaker): stable multi-key sort.

    NULLs sort last ascending (first descending); all numeric values
    (int/float/bool) share one sort class so ``ORDER BY`` interleaves
    them numerically, and other values are keyed by type name so
    heterogeneous columns stay orderable.
    """

    def __init__(self, child: Operator, keys: list[tuple[Expr, bool]]):
        self.child = child
        self.keys = keys  # (bound expr, descending)
        self.columns = child.columns
        self.children = [child]

    def rows(self) -> Iterator[tuple]:
        rows = list(self.child.run())
        if self.span is not None:
            self.span.peak_rows = len(rows)
        for expr, descending in reversed(self.keys):
            rows.sort(key=lambda row: _sort_key(evaluate(expr, row)), reverse=descending)
        return iter(rows)

    def describe(self) -> str:
        keys = ", ".join(
            f"{expr}{' DESC' if descending else ''}" for expr, descending in self.keys
        )
        return f"sort: {keys}"


def _sort_key(value: Any) -> tuple:
    if is_null(value):
        return (1, "", "")
    if isinstance(value, (bool, int, float)):
        return (0, "number", _hashable(value))
    return (0, type(value).__name__, _hashable(value))


class Limit(Operator):
    """LIMIT/OFFSET; owns the statement's RowBudget when one exists.

    The budget counts rows *pulled* (offset + limit of them are needed),
    and every :class:`GraphTableScan` below polls it — satisfied means
    the NFA search stops, not just the iteration.
    """

    def __init__(
        self,
        child: Operator,
        limit: Optional[int],
        offset: int = 0,
        budget: Optional[RowBudget] = None,
    ):
        self.child = child
        self.limit = limit
        self.offset = offset
        self.budget = budget
        self.columns = child.columns
        self.children = [child]

    def rows(self) -> Iterator[tuple]:
        if self.limit is not None and self.limit <= 0:
            return
        skipped = 0
        delivered = 0
        for row in self.child.run():
            if self.budget is not None:
                self.budget.take()
            if skipped < self.offset:
                skipped += 1
                continue
            yield row
            delivered += 1
            if self.limit is not None and delivered >= self.limit:
                if self.span is not None and self.budget is not None:
                    self.span.event("budget_satisfied", taken=self.budget.taken)
                return

    def describe(self) -> str:
        parts = []
        if self.limit is not None:
            parts.append(f"limit {self.limit}")
        if self.offset:
            parts.append(f"offset {self.offset}")
        text = " ".join(parts) or "limit"
        if self.budget is not None:
            text += " [row budget pushed into graph_table scans]"
        return text


class Union(Operator):
    """UNION [ALL]; plain UNION deduplicates with a streaming seen-set."""

    def __init__(self, left: Operator, right: Operator, all_rows: bool):
        if len(left.columns) != len(right.columns):
            raise SqlError(
                f"UNION arity mismatch: {len(left.columns)} vs "
                f"{len(right.columns)} columns"
            )
        self.left = left
        self.right = right
        self.all_rows = all_rows
        self.columns = left.columns
        self.children = [left, right]

    def rows(self) -> Iterator[tuple]:
        if self.all_rows:
            yield from self.left.run()
            yield from self.right.run()
            return
        seen: set[tuple] = set()
        for side in (self.left, self.right):
            for row in side.run():
                key = _row_key(row)
                if key not in seen:
                    seen.add(key)
                    yield row

    def describe(self) -> str:
        return "union all" if self.all_rows else "union (distinct)"
