"""SQL-side planner configuration: the cross-model rewrite rule gates.

Mirrors :class:`~repro.gpml.matcher.MatcherConfig`'s environment-default
idiom: ``REPRO_DISABLE_SQL_OPTIMIZER=1`` turns every rewrite rule off for
a whole process, giving CI an oracle mode in which each plan is the naive
bound tree (the same pattern as ``REPRO_DISABLE_COLUMNAR`` for the
matcher core).  Individual rules are toggled through
``SqlConfig.optimizer_rules``; predicate/LIMIT pushdown (PR 3) is not a
rule — it stays governed by the ``pushdown`` flag so the pre-existing
oracle comparisons keep their meaning.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import FrozenSet

#: join-through-GRAPH_TABLE: a join keyed on a COLUMNS output becomes a
#: seeded per-probe-row graph search.
SEEDED_JOIN = "seeded_join"
#: common-subpattern sharing: structurally identical GRAPH_TABLE calls in
#: one query enumerate once through a shared spool.
SHARED_SCAN = "shared_scan"
#: semi-join reduction: probe-side distinct keys become an IN predicate
#: on the graph side before enumeration.
SEMI_JOIN = "semi_join"

ALL_RULES: FrozenSet[str] = frozenset({SEEDED_JOIN, SHARED_SCAN, SEMI_JOIN})


def _optimizer_default() -> FrozenSet[str]:
    if os.environ.get("REPRO_DISABLE_SQL_OPTIMIZER") == "1":
        return frozenset()
    return ALL_RULES


@dataclass
class SqlConfig:
    """Per-query knobs for the SQL planner's rewrite pass."""

    #: rewrite rules allowed to fire (subset of :data:`ALL_RULES`)
    optimizer_rules: FrozenSet[str] = field(default_factory=_optimizer_default)
    #: semi-join reduction aborts above this many distinct probe keys —
    #: a huge IN costs more to push than the enumeration it would save
    semi_join_max_keys: int = 1024

    def rule_enabled(self, name: str) -> bool:
        return name in self.optimizer_rules
