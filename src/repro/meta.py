"""Non-computational paper artifacts exposed as data.

Figure 10 is a standards-process timeline; it has no executable content,
so the reproduction records it as structured data (and EXPERIMENTS.md
documents it as such).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TimelineEntry:
    date: str
    standard: str  # "SQL/PGQ" | "GQL"
    milestone: str


#: Figure 10: SQL/PGQ and GQL Timeline (as printed in the paper; the
#: paper notes the schedule could change).
FIGURE10_TIMELINE: tuple[TimelineEntry, ...] = (
    TimelineEntry("2017", "SQL/PGQ", "Work started"),
    TimelineEntry("2018", "GQL", "Work started"),
    TimelineEntry("2021-02-07", "SQL/PGQ", "CD Ballot End"),
    TimelineEntry("2022-02-20", "GQL", "CD Ballot End"),
    TimelineEntry("2022-12-04", "SQL/PGQ", "DIS Ballot End"),
    TimelineEntry("2023-01-30", "SQL/PGQ", "Final Text to ISO"),
    TimelineEntry("2023-03-13", "SQL/PGQ", "SQL/PGQ IS Published"),
    TimelineEntry("2023-05-21", "GQL", "DIS Ballot End"),
    TimelineEntry("2023-07-30", "GQL", "Final Text to ISO"),
    TimelineEntry("2023-09-10", "GQL", "GQL IS Published"),
)


#: Figure 5, as data: orientation name -> (full form, abbreviation).
FIGURE5_EDGE_PATTERNS = {
    "Pointing left": ("<-[ spec ]-", "<-"),
    "Undirected": ("~[ spec ]~", "~"),
    "Pointing right": ("-[ spec ]->", "->"),
    "Left or undirected": ("<~[ spec ]~", "<~"),
    "Undirected or right": ("~[ spec ]~>", "~>"),
    "Left or right": ("<-[ spec ]->", "<->"),
    "Left, undirected or right": ("-[ spec ]-", "-"),
}

#: Figure 6, as data: quantifier -> description.
FIGURE6_QUANTIFIERS = {
    "{m,n}": "between m and n repetitions",
    "{m,}": "m or more repetitions",
    "*": "equivalent to {0,}",
    "+": "equivalent to {1,}",
}

#: Figure 7, as data: restrictor -> description.
FIGURE7_RESTRICTORS = {
    "TRAIL": "No repeated edges.",
    "ACYCLIC": "No repeated nodes.",
    "SIMPLE": "No repeated nodes, except that the first and last nodes may be the same.",
}

#: Figure 8, as data: selector -> (description, deterministic?).
FIGURE8_SELECTORS = {
    "ANY SHORTEST": ("one path with shortest length per partition", False),
    "ALL SHORTEST": ("all paths of minimal length per partition", True),
    "ANY": ("one arbitrary path per partition", False),
    "ANY k": ("k arbitrary paths per partition", False),
    "SHORTEST k": ("the k shortest paths per partition", False),
    "SHORTEST k GROUP": ("all paths in the first k length groups", True),
}
