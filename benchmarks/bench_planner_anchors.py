"""Planner ablation: planned anchors/indexes vs the naive left anchor.

Runs the same queries on skewed generator graphs with the cost-based
planner on and off.  Skew is what makes anchoring matter: the banking
generator has many Accounts and few matches for an owner-equality
predicate, so a right anchor served by a property index seeds the search
with a handful of nodes where the naive engine scans every account.

``extra_info`` on each benchmark records the observed start-candidate
counts, so a bench run doubles as a planning-wins report; the assertions
make it a correctness pass (planned == naive, bag-for-bag).
"""

import pytest

from repro.datasets import random_transfer_network
from repro.gpml.engine import match, prepare
from repro.gpml.matcher import Matcher, MatcherConfig
from repro.planner.plan import plan_query

NAIVE = MatcherConfig(use_planner=False)
PLANNED = MatcherConfig(use_planner=True)

#: heavier skew than the shared bank_medium fixture: 400 accounts,
#: 1000 transfers, so anchor choice dominates the runtime
_QUERIES = [
    # (query, strict): strict means the plan must beat even the upgraded
    # naive engine on start candidates (right anchor vs left label scan).
    # join_city_eq's first pattern is left-anchored either way — its win
    # comes from the join order — so its counts only need to not regress.
    pytest.param(
        "MATCH (a:Account)-[t:Transfer]->(b:Account WHERE b.owner='owner17')",
        True,
        id="one_hop_owner_eq",
    ),
    pytest.param(
        "MATCH TRAIL (a:Account)-[t:Transfer]->{1,2}"
        "(b:Account WHERE b.owner='owner23')",
        True,
        id="two_hop_owner_eq",
    ),
    pytest.param(
        "MATCH (a:Account WHERE a.isBlocked='yes')-[t:Transfer]->(b:Account), "
        "(b)-[l:isLocatedIn]->(c:City WHERE c.name='city1')",
        False,
        id="join_city_eq",
    ),
]


@pytest.fixture(scope="module")
def bank_skewed():
    return random_transfer_network(400, 1000, seed=13)


def _canon(result):
    return sorted(
        (
            tuple(sorted((k, repr(v)) for k, v in row.values.items())),
            tuple(str(p) for p in row.paths),
        )
        for row in result.rows
    )


def _candidate_counts(graph, query):
    """(naive, planned) start-candidate counts for the first pattern."""
    prepared = prepare(query)
    naive_matcher = Matcher(
        graph, prepared.nfas[0], prepared.normalized.paths[0].pattern, NAIVE
    )
    list(naive_matcher.enumerate_all())  # generator: drain to run the search
    plan = plan_query(graph, prepared)
    match(graph, prepared, PLANNED)
    return naive_matcher.initial_candidate_count, plan.patterns[0].observed_candidates


@pytest.mark.parametrize("query,strict", _QUERIES)
def test_planned(benchmark, bank_skewed, query, strict):
    prepared = prepare(query)
    expected = _canon(match(bank_skewed, prepared, NAIVE))
    result = benchmark(match, bank_skewed, prepared, PLANNED)
    assert _canon(result) == expected

    naive_count, planned_count = _candidate_counts(bank_skewed, query)
    benchmark.extra_info["naive_candidates"] = naive_count
    benchmark.extra_info["planned_candidates"] = planned_count
    if strict:
        assert planned_count < naive_count
    else:
        assert planned_count <= naive_count


@pytest.mark.parametrize("query,strict", _QUERIES)
def test_naive_left_anchor(benchmark, bank_skewed, query, strict):
    prepared = prepare(query)
    result = benchmark(match, bank_skewed, prepared, NAIVE)
    assert len(result.rows) >= 0  # shape check; equality asserted above
