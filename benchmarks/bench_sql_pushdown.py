"""SQL host pushdown: LIMIT budgets and WHERE predicates through GRAPH_TABLE.

Measures, on a 60k-node banking graph, how much of the GPML search space
SQL statements explore when the engine pushes work through the
GRAPH_TABLE boundary:

* ``LIMIT 1`` threads a RowBudget into the graph scan, so the NFA search
  stops after one delivered row — the acceptance criterion asserts (on
  the matcher's machine-independent step counters) that the probe
  performs under 5% of the full enumeration's steps,
* a sargable ``WHERE gt.owner = ...`` conjunct is rewritten through the
  COLUMNS expressions into the pattern's WHERE, where the cost-based
  planner turns it into a property-index anchor instead of a full scan,
* ``EXPLAIN`` shows the relational operator tree with the embedded
  streaming GPML pipeline per graph scan.

Runs standalone (the CI benchmark-smoke job executes it directly)::

    PYTHONPATH=src python benchmarks/bench_sql_pushdown.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

_SRC = str(Path(__file__).parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.datasets import random_transfer_network  # noqa: E402
from repro.gpml import PipelineStats  # noqa: E402
from repro.sql import Database  # noqa: E402


def run(database: Database, query: str, **kwargs):
    """Execute and return (table, stats, elapsed_ms)."""
    stats = PipelineStats()
    started = time.perf_counter()
    table = database.execute(query, stats=stats, **kwargs)
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    return table, stats, elapsed_ms


def main() -> int:
    # 30k accounts + 30k phones + 3 cities = 60,003 nodes
    graph = random_transfer_network(30_000, 60_000, seed=7)
    assert graph.num_nodes >= 60_000, graph.num_nodes
    database = Database()
    database.register_graph("bank", graph)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    transfers = (
        "GRAPH_TABLE(bank MATCH (a:Account)-[t:Transfer]->(b:Account) "
        "COLUMNS (a.owner AS src, b.owner AS dst, t.amount AS amount)) AS gt"
    )

    # ------------------------------------------------------------------
    # 1. LIMIT 1: the row budget stops the NFA search itself
    # ------------------------------------------------------------------
    full_query = f"SELECT gt.src, gt.dst FROM {transfers}"
    full, full_stats, full_ms = run(database, full_query)
    limited, lim_stats, lim_ms = run(database, full_query + " LIMIT 1")
    ratio = lim_stats.steps / full_stats.steps * 100.0
    print("\nLIMIT 1 over GRAPH_TABLE (row-budget pushdown):")
    print(f"  full enumeration : {len(full):>7} rows, {full_stats.steps:>8} steps, {full_ms:9.2f} ms")
    print(f"  LIMIT 1          : {len(limited):>7} rows, {lim_stats.steps:>8} steps, {lim_ms:9.2f} ms  ({ratio:.4f}% of the steps)")
    assert len(limited) == 1
    assert list(limited.rows) == list(full.rows)[:1]
    # Acceptance criterion: a small fraction (<5%) of the matcher steps.
    assert lim_stats.steps * 20 < full_stats.steps, (
        f"LIMIT 1 used {lim_stats.steps} of {full_stats.steps} steps — not early"
    )

    # ------------------------------------------------------------------
    # 2. Sargable WHERE pushed through GRAPH_TABLE into an index anchor
    # ------------------------------------------------------------------
    # pick a real sender so the filtered query has matches
    rare_owner = next(
        edge.source.get("owner") for edge in graph.edges_with_label("Transfer")
    )
    rare_query = f"SELECT gt.dst FROM {transfers} WHERE gt.src = '{rare_owner}'"
    pushed, pushed_stats, pushed_ms = run(database, rare_query)
    unpushed, unpushed_stats, unpushed_ms = run(database, rare_query, pushdown=False)
    print(f"\nsargable WHERE gt.src = '{rare_owner}' (predicate pushdown):")
    print(f"  pushdown off     : {len(unpushed):>7} rows, {unpushed_stats.steps:>8} steps, {unpushed_ms:9.2f} ms")
    print(f"  pushdown on      : {len(pushed):>7} rows, {pushed_stats.steps:>8} steps, {pushed_ms:9.2f} ms")
    assert len(pushed) >= 1
    assert sorted(pushed.rows) == sorted(unpushed.rows)
    # The pushed predicate becomes a property-index anchor: the search
    # touches only the one matching account's neighbourhood.
    assert pushed_stats.steps * 20 < unpushed_stats.steps, (
        f"pushdown used {pushed_stats.steps} of {unpushed_stats.steps} steps"
    )

    # ------------------------------------------------------------------
    # 3. Both together, through a join (graph scan is the probe side)
    # ------------------------------------------------------------------
    join_query = (
        f"SELECT gt.src, gt.amount FROM {transfers} "
        "JOIN GRAPH_TABLE(bank MATCH (c:Account WHERE c.isBlocked='no') "
        "COLUMNS (c.owner AS owner)) AS ok ON ok.owner = gt.src "
        "WHERE gt.amount >= 15000000 LIMIT 1"
    )
    joined, join_stats, join_ms = run(database, join_query)
    print("\njoin + WHERE + LIMIT 1 (budget through the probe side):")
    print(f"  result           : {len(joined):>7} rows, {join_stats.steps:>8} steps, {join_ms:9.2f} ms")
    assert len(joined) == 1
    assert join_stats.steps * 20 < full_stats.steps

    # ------------------------------------------------------------------
    # 4. EXPLAIN: relational tree + embedded GPML pipeline
    # ------------------------------------------------------------------
    plan = database.explain(rare_query + " LIMIT 1")
    print("\nEXPLAIN:")
    print(plan)
    assert "graph_table scan bank AS gt" in plan
    assert f"pushed into MATCH: a.owner = '{rare_owner}'" in plan
    assert "row budget" in plan
    assert "[streaming] pattern #1 search" in plan

    print("\nbench_sql_pushdown: all assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
