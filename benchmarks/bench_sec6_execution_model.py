"""SEC6: the worked execution-model example, on both engines.

Regenerates the Section 6 running query (2 reduced bindings), its
multiset variant (4 bindings), its ALL SHORTEST variant (1 binding), and
compares the production automaton engine against the literal expansion
pipeline the paper specifies.
"""

from repro.gpml import match, prepare
from repro.gpml.reference import ReferenceConfig, reference_match

_QUERY_TEXT = (
    "MATCH TRAIL (a WHERE a.owner='Jay')"
    " [-[b:Transfer WHERE b.amount>5M]->]+"
    " (a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]"
)
_QUERY = prepare(_QUERY_TEXT)
_MULTISET = prepare(_QUERY_TEXT.replace("|", "|+|"))
_ALL_SHORTEST = prepare(_QUERY_TEXT.replace("MATCH TRAIL", "MATCH ALL SHORTEST"))

_EXPECTED_PATHS = [
    "path(a4,t4,a6,t5,a3,t2,a2,t3,a4,li4,c2)",
    "path(a4,t4,a6,t5,a3,t7,a5,t8,a1,t1,a3,t2,a2,t3,a4,li4,c2)",
]


def test_running_example_automaton_engine(benchmark, fig1):
    result = benchmark(match, fig1, _QUERY)
    assert sorted(str(p) for p in result.paths()) == _EXPECTED_PATHS


def test_running_example_reference_engine(benchmark, fig1):
    config = ReferenceConfig(max_unroll=8)
    result = benchmark(reference_match, fig1, _QUERY, config)
    assert sorted(str(p) for p in result.paths()) == _EXPECTED_PATHS


def test_multiset_variant(benchmark, fig1):
    result = benchmark(match, fig1, _MULTISET)
    assert len(result) == 4


def test_all_shortest_variant(benchmark, fig1):
    result = benchmark(match, fig1, _ALL_SHORTEST)
    assert [str(p) for p in result.paths()] == [_EXPECTED_PATHS[0]]


def test_prepare_pipeline(benchmark):
    """Normalization + analysis + compilation cost, in isolation."""
    prepared = benchmark(prepare, _QUERY_TEXT)
    assert prepared.num_path_patterns == 1
