"""FIG2: graph <-> tables, both directions.

Regenerates Figure 2: the tabular representation of the banking graph
(one relation per label combination) and the inverse graph view built by
CREATE PROPERTY GRAPH over those tables.
"""

import pytest

from repro.pgq import Catalog, parse_create_property_graph, tabular_representation

_DDL = """
CREATE PROPERTY GRAPH bank
VERTEX TABLES (
  Account KEY (ID) LABEL Account PROPERTIES (owner, isBlocked),
  Country KEY (ID) LABEL Country PROPERTIES (name),
  CityCountry KEY (ID) LABEL City LABEL Country PROPERTIES (name),
  Phone KEY (ID) LABEL Phone PROPERTIES (number, isBlocked),
  IP KEY (ID) LABEL IP PROPERTIES (number, isBlocked)
)
EDGE TABLES (
  Transfer KEY (ID) SOURCE KEY (SRC) REFERENCES Account
    DESTINATION KEY (DST) REFERENCES Account LABEL Transfer PROPERTIES (date, amount),
  isLocatedIn KEY (ID) SOURCE KEY (SRC) REFERENCES Account
    DESTINATION KEY (DST) REFERENCES Country LABEL isLocatedIn NO PROPERTIES,
  hasPhone KEY (ID) SOURCE KEY (END1) REFERENCES Account
    DESTINATION KEY (END2) REFERENCES Phone UNDIRECTED LABEL hasPhone NO PROPERTIES,
  signInWithIP KEY (ID) SOURCE KEY (SRC) REFERENCES Account
    DESTINATION KEY (DST) REFERENCES IP LABEL signInWithIP NO PROPERTIES
)
"""


def test_graph_to_tables(benchmark, fig1):
    tables = benchmark(tabular_representation, fig1)
    # Figure 2's headline fact: c2 lives in CityCountry, not City.
    assert "CityCountry" in tables and "City" not in tables
    assert len(tables["Account"]) == 6
    assert len(tables["Transfer"]) == 8


def test_parse_ddl(benchmark):
    spec = benchmark(parse_create_property_graph, _DDL)
    assert len(spec.vertex_tables) == 5
    assert len(spec.edge_tables) == 4


def test_tables_to_graph_view(benchmark, fig1):
    tables = tabular_representation(fig1)

    def build():
        catalog = Catalog()
        for name, table in tables.items():
            catalog.register_table(name, table)
        return catalog.execute(_DDL)

    graph = benchmark(build)
    assert graph.num_nodes == 14 and graph.num_edges == 22


def test_full_round_trip(benchmark, fig1):
    def round_trip():
        tables = tabular_representation(fig1)
        catalog = Catalog()
        for name, table in tables.items():
            catalog.register_table(name, table)
        return catalog.execute(_DDL)

    graph = benchmark(round_trip)
    assert graph.edge("t1")["amount"] == 8_000_000
