"""FIG5: the seven edge-pattern orientations.

Regenerates the Figure 5 table as a benchmark series: one run per
orientation over a mixed directed/undirected synthetic bank.  The match
counts verify the admission rules (left/right/undirected subsets).
"""

import pytest

from repro.gpml import match, prepare

ORIENTATIONS = {
    "left": "<-[e]-",
    "undirected": "~[e]~",
    "right": "-[e]->",
    "left_or_undirected": "<~[e]~",
    "undirected_or_right": "~[e]~>",
    "left_or_right": "<-[e]->",
    "any": "-[e]-",
}


@pytest.mark.parametrize("name", list(ORIENTATIONS))
def test_orientation(benchmark, bank_medium, name):
    prepared = prepare(f"MATCH (x){ORIENTATIONS[name]}(y)")
    result = benchmark(match, bank_medium, prepared)
    assert len(result) > 0


def test_orientation_counts_consistent(bank_medium):
    """The Figure 5 algebra: combined orientations are unions."""
    counts = {
        name: len(match(bank_medium, f"MATCH (x){pattern}(y)"))
        for name, pattern in ORIENTATIONS.items()
    }
    assert counts["left"] == counts["right"]  # mirror traversals
    assert counts["left_or_right"] == counts["left"] + counts["right"]
    assert (
        counts["left_or_undirected"] == counts["left"] + counts["undirected"]
    )
    assert (
        counts["undirected_or_right"] == counts["undirected"] + counts["right"]
    )
    assert counts["any"] == counts["left_or_right"] + counts["undirected"]
