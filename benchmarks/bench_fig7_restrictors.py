"""FIG7: the restrictor table (TRAIL / ACYCLIC / SIMPLE).

Regenerates Figure 7 as a sweep over cycle graphs of growing size —
restrictors are what make unbounded matching finite, and their costs
scale differently (TRAIL tracks edges, ACYCLIC/SIMPLE track nodes).
"""

import pytest

from repro.datasets import cycle_graph
from repro.gpml import match, prepare

_QUERIES = {
    "TRAIL": prepare("MATCH TRAIL p = (a)-[e:E]->*(b)"),
    "ACYCLIC": prepare("MATCH ACYCLIC p = (a)-[e:E]->*(b)"),
    "SIMPLE": prepare("MATCH SIMPLE p = (a)-[e:E]->*(b)"),
}


@pytest.mark.parametrize("restrictor", list(_QUERIES))
@pytest.mark.parametrize("size", [4, 8, 12])
def test_restrictor_on_cycle(benchmark, restrictor, size):
    graph = cycle_graph(size)
    result = benchmark(match, graph, _QUERIES[restrictor])
    lengths = [row.paths[0].length for row in result.rows]
    if restrictor == "ACYCLIC":
        # walks of length 0..n-1 from each of n starts
        assert len(result) == size * size
        assert max(lengths) == size - 1
    else:
        # TRAIL and SIMPLE also admit the full loop back to the start
        assert len(result) == size * (size + 1)
        assert max(lengths) == size


@pytest.mark.parametrize("restrictor", list(_QUERIES))
def test_restrictor_on_figure1_transfers(benchmark, fig1, restrictor):
    prepared = prepare(
        f"MATCH {restrictor} p = (a:Account)-[e:Transfer]->*(b)"
    )
    result = benchmark(match, fig1, prepared)
    checks = {
        "TRAIL": lambda p: p.is_trail(),
        "ACYCLIC": lambda p: p.is_acyclic(),
        "SIMPLE": lambda p: p.is_simple(),
    }
    assert all(checks[restrictor](p) for p in result.paths())
    assert len(result) > 0


def test_subset_relation(fig1):
    """Figure 7 semantics: ACYCLIC ⊆ SIMPLE ⊆ TRAIL (directed walks)."""
    results = {
        name: {str(p) for p in match(fig1, q).paths()}
        for name, q in [
            ("ACYCLIC", "MATCH ACYCLIC p = (a:Account)-[:Transfer]->*(b)"),
            ("SIMPLE", "MATCH SIMPLE p = (a:Account)-[:Transfer]->*(b)"),
            ("TRAIL", "MATCH TRAIL p = (a:Account)-[:Transfer]->*(b)"),
        ]
    }
    assert results["ACYCLIC"] <= results["SIMPLE"] <= results["TRAIL"]
