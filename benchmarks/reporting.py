"""Machine-readable perf reporting: the ``repro.bench/v1`` trajectory.

Runs a fixed suite of representative queries — GPML core, GQL pipeline,
SQL/PGQ host — against a scaled banking graph with tracing-free
:class:`~repro.gpml.streaming.PipelineStats`, and writes one trajectory
entry (per-query delivered rows, matcher steps, raw matches, wall time)
to ``BENCH_observability.json``.  Later perf PRs append entries with
``--append --label <change>`` so the file accumulates the repo's perf
history in one schema-validated document.

Usage::

    python benchmarks/reporting.py                      # full scale, 60k edges
    python benchmarks/reporting.py --accounts 2000 --transfers 4000 \
        --label ci --out BENCH_observability.ci.json    # CI-sized run

``--compare BASELINE_LABEL`` turns the run into a perf-regression gate:
after measuring, the new entry is diffed per query against the most
recent prior entry with that label, and the process exits non-zero when
any query's wall time regresses beyond ``--fail-threshold`` (ratio,
default 1.5x) plus ``--fail-epsilon-ms`` (absolute slack for
microsecond-scale queries, default 25 ms).  Compare same-scale runs on
the same machine — CI records its own baseline entry first.

``--prom-out FILE`` additionally records every suite query into a
workload :class:`~repro.obs.worklog.Telemetry` and writes the registry
as a Prometheus text-exposition snapshot.

The suite asserts nothing about timings — it records them.  Each query
does assert a sanity condition on its result (non-crash + shape), so a
reporting run doubles as a smoke pass on the big graph.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

_SRC = str(Path(__file__).parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.datasets import random_transfer_network  # noqa: E402
from repro.gpml.engine import match_iter, prepare  # noqa: E402
from repro.gpml.streaming import PipelineStats  # noqa: E402
from repro.gql.query import execute_gql_iter, parse_gql_query  # noqa: E402
from repro.obs.schema import BENCH_SCHEMA, validate_bench_document  # noqa: E402
from repro.pgq.tabular import tabular_representation  # noqa: E402
from repro.sql.database import Database  # noqa: E402

SUITE = "observability"


def _run_gpml(graph, query, limit=None):
    def run(stats):
        return sum(1 for _ in match_iter(graph, prepare(query), limit=limit, stats=stats))

    return run


def _run_gql(graph, query):
    parsed = parse_gql_query(query)

    def run(stats):
        return sum(1 for _ in execute_gql_iter(graph, parsed, stats=stats))

    return run


def _run_sql(database, query):
    def run(stats):
        return sum(1 for _ in database.execute_iter(query, stats=stats))

    return run


def build_suite(graph):
    """(name, engine, query, runner) for every tracked benchmark query."""
    database = Database()
    database.register_graph("bank", graph)
    for name, table in tabular_representation(graph).items():
        database.register_table(name, table)

    gpml_hop = (
        "MATCH (a:Account WHERE a.isBlocked='yes')"
        "-[t:Transfer]->(b:Account WHERE b.isBlocked='yes')"
    )
    gpml_probe = "MATCH (a:Account)-[t:Transfer]->(a)"
    gql_chain = (
        "MATCH (a:Account WHERE a.isBlocked='yes')-[:Transfer]->(b:Account) "
        "MATCH (b)-[:Transfer]->(c:Account) "
        "RETURN a.owner AS src, c.owner AS dst LIMIT 100"
    )
    gql_ordered = (
        "MATCH (a:Account WHERE a.isBlocked='yes')-[:isLocatedIn]->(c:City) "
        "RETURN DISTINCT c.name AS city ORDER BY city"
    )
    sql_pushdown = (
        "SELECT src, amount FROM GRAPH_TABLE(bank "
        "MATCH (a:Account)-[t:Transfer]->(b:Account WHERE b.isBlocked='yes') "
        "COLUMNS (a.owner AS src, t.amount AS amount)"
        ") WHERE amount > 10000000 FETCH FIRST 50 ROWS ONLY"
    )
    sql_aggregate = (
        "SELECT COUNT(*) AS n FROM GRAPH_TABLE(bank "
        "MATCH (a:Account WHERE a.isBlocked='yes')-[t:Transfer]->(b:Account) "
        "COLUMNS (a.owner AS src)"
        ")"
    )
    # Cross-model optimizer: the blocked-account watchlist joins the
    # transfer pattern on a COLUMNS element output, so the seeded-join
    # rewrite anchors one NFA run per probe row instead of enumerating
    # every transfer.
    sql_cross_model = (
        "SELECT acc.ID, gt.dst FROM Account AS acc JOIN GRAPH_TABLE(bank "
        "MATCH (a:Account)-[t:Transfer]->(b:Account) "
        "COLUMNS (a AS src_el, b.owner AS dst)"
        ") AS gt ON gt.src_el = acc.ID WHERE acc.isBlocked = 'yes'"
    )
    # Net-zero DML round trip: every blocked account gains a review node
    # + edge and loses both in the same transaction, so the graph is
    # byte-identical afterwards and the entry stays order-independent.
    # Runs LAST anyway so its version churn cannot warm or chill the
    # read-only queries' caches.
    gql_dml = (
        "MATCH (a:Account WHERE a.isBlocked='yes') "
        "INSERT (a)-[:FlaggedBy]->(r:Review {src: a.owner}) "
        "DETACH DELETE r "
        "RETURN a.owner AS owner"
    )
    return [
        ("gpml_blocked_hop", "gpml", gpml_hop, _run_gpml(graph, gpml_hop)),
        (
            "gpml_first_row_probe",
            "gpml",
            gpml_probe,
            _run_gpml(graph, gpml_probe, limit=1),
        ),
        ("gql_chained_limit", "gql", gql_chain, _run_gql(graph, gql_chain)),
        ("gql_distinct_order", "gql", gql_ordered, _run_gql(graph, gql_ordered)),
        ("sql_pushdown_fetch", "sql", sql_pushdown, _run_sql(database, sql_pushdown)),
        ("sql_vertical_count", "sql", sql_aggregate, _run_sql(database, sql_aggregate)),
        (
            "sql_cross_model_seeded",
            "sql",
            sql_cross_model,
            _run_sql(database, sql_cross_model),
        ),
        ("gql_dml_roundtrip", "gql", gql_dml, _run_gql(graph, gql_dml)),
    ]


def measure(graph, telemetry=None) -> list[dict]:
    results = []
    for name, engine, query, run in build_suite(graph):
        stats = PipelineStats()
        start = perf_counter()
        rows = run(stats)
        wall_s = perf_counter() - start
        wall_ms = wall_s * 1000.0
        assert rows == stats.rows, f"{name}: delivered {rows} != stats.rows {stats.rows}"
        if telemetry is not None:
            telemetry.record_query(engine, query, wall_s, stats)
        results.append(
            {
                "name": name,
                "engine": engine,
                "query": " ".join(query.split()),
                "rows": rows,
                "steps": stats.steps,
                "matches": stats.matches,
                "wall_ms": round(wall_ms, 3),
            }
        )
        print(
            f"  {name:24s} [{engine}] rows={rows} steps={stats.steps} "
            f"wall={wall_ms:.1f}ms"
        )
    return results


def compare_entries(baseline, entry, threshold=1.5, epsilon_ms=25.0):
    """Per-query wall-time diff of two trajectory entries.

    Returns ``(diffs, regressions)``: one diff dict per query present in
    both entries (``name``, ``base_ms``, ``new_ms``, ``ratio``,
    ``regressed``), and the regressed subset.  A query regresses when
    ``new_ms > base_ms * threshold + epsilon_ms`` — the multiplicative
    threshold catches real slowdowns, the additive epsilon keeps
    microsecond-scale queries from tripping the gate on timer noise.
    """
    base_by_name = {result["name"]: result for result in baseline["results"]}
    diffs = []
    for result in entry["results"]:
        base = base_by_name.get(result["name"])
        if base is None:
            continue
        base_ms = base["wall_ms"]
        new_ms = result["wall_ms"]
        diffs.append(
            {
                "name": result["name"],
                "base_ms": base_ms,
                "new_ms": new_ms,
                "ratio": new_ms / base_ms if base_ms > 0 else float("inf"),
                "regressed": new_ms > base_ms * threshold + epsilon_ms,
            }
        )
    return diffs, [diff for diff in diffs if diff["regressed"]]


def _print_compare(label, diffs, regressions, threshold, epsilon_ms):
    print(
        f"compare vs {label!r} "
        f"(fail when new > {threshold}x base + {epsilon_ms}ms):"
    )
    for diff in diffs:
        marker = "REGRESSED" if diff["regressed"] else "ok"
        print(
            f"  {diff['name']:24s} {diff['base_ms']:10.1f}ms -> "
            f"{diff['new_ms']:10.1f}ms  ({diff['ratio']:.2f}x)  {marker}"
        )
    if regressions:
        names = ", ".join(diff["name"] for diff in regressions)
        print(f"FAIL: {len(regressions)} quer(ies) regressed: {names}")
    else:
        print("PASS: no wall-time regressions")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Record the observability benchmark trajectory entry."
    )
    parser.add_argument("--accounts", type=int, default=30_000)
    parser.add_argument("--transfers", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--label", default="baseline",
        help="entry label (later perf PRs name the change being measured)",
    )
    parser.add_argument(
        "--out", default=str(Path(__file__).parent.parent / "BENCH_observability.json")
    )
    parser.add_argument(
        "--append", action="store_true",
        help="append one entry to an existing trajectory file",
    )
    parser.add_argument(
        "--compare", metavar="BASELINE_LABEL", default=None,
        help="diff the new entry against the most recent prior entry with "
        "this label and exit 1 on any wall-time regression beyond "
        "--fail-threshold (exit 2 if the label is missing)",
    )
    parser.add_argument(
        "--fail-threshold", type=float, default=1.5,
        help="regression ratio for --compare (default: 1.5x)",
    )
    parser.add_argument(
        "--fail-epsilon-ms", type=float, default=25.0,
        help="absolute slack added to the threshold so microsecond-scale "
        "queries don't trip the gate on timer noise (default: 25)",
    )
    parser.add_argument(
        "--prom-out", metavar="FILE", default=None,
        help="also record the suite into a workload Telemetry and write "
        "the metrics registry as a Prometheus text snapshot",
    )
    args = parser.parse_args(argv)

    print(
        f"building graph: {args.accounts} accounts, {args.transfers} transfers "
        f"(seed {args.seed})"
    )
    graph = random_transfer_network(args.accounts, args.transfers, seed=args.seed)
    print(f"graph ready: {graph.num_nodes} nodes, {graph.num_edges} edges")

    telemetry = None
    if args.prom_out:
        from repro.obs import Telemetry

        telemetry = Telemetry()

    entry = {
        "label": args.label,
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges},
        "params": {
            "accounts": args.accounts,
            "transfers": args.transfers,
            "seed": args.seed,
        },
        "results": measure(graph, telemetry=telemetry),
    }

    out = Path(args.out)
    if args.append and out.exists():
        document = json.loads(out.read_text(encoding="utf-8"))
        document["entries"].append(entry)
    else:
        document = {"schema": BENCH_SCHEMA, "suite": SUITE, "entries": [entry]}
    validate_bench_document(document)
    out.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out} ({len(document['entries'])} entr{'y' if len(document['entries']) == 1 else 'ies'})")

    if args.prom_out:
        Path(args.prom_out).write_text(
            telemetry.render_prometheus(), encoding="utf-8"
        )
        print(f"wrote {args.prom_out} (Prometheus text exposition)")

    if args.compare is not None:
        # Most recent prior entry with the baseline label (the new entry
        # is the last one, so search everything before it).
        baseline = next(
            (
                candidate
                for candidate in reversed(document["entries"][:-1])
                if candidate["label"] == args.compare
            ),
            None,
        )
        if baseline is None:
            print(f"FAIL: no prior entry labelled {args.compare!r} to compare against")
            return 2
        diffs, regressions = compare_entries(
            baseline, entry, args.fail_threshold, args.fail_epsilon_ms
        )
        _print_compare(
            args.compare, diffs, regressions, args.fail_threshold, args.fail_epsilon_ms
        )
        if regressions:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
