"""Machine-readable perf reporting: the ``repro.bench/v1`` trajectory.

Runs a fixed suite of representative queries — GPML core, GQL pipeline,
SQL/PGQ host — against a scaled banking graph with tracing-free
:class:`~repro.gpml.streaming.PipelineStats`, and writes one trajectory
entry (per-query delivered rows, matcher steps, raw matches, wall time)
to ``BENCH_observability.json``.  Later perf PRs append entries with
``--append --label <change>`` so the file accumulates the repo's perf
history in one schema-validated document.

Usage::

    python benchmarks/reporting.py                      # full scale, 60k edges
    python benchmarks/reporting.py --accounts 2000 --transfers 4000 \
        --label ci --out BENCH_observability.ci.json    # CI-sized run

The suite asserts nothing about timings — it records them.  Each query
does assert a sanity condition on its result (non-crash + shape), so a
reporting run doubles as a smoke pass on the big graph.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

_SRC = str(Path(__file__).parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.datasets import random_transfer_network  # noqa: E402
from repro.gpml.engine import match_iter, prepare  # noqa: E402
from repro.gpml.streaming import PipelineStats  # noqa: E402
from repro.gql.query import execute_gql_iter, parse_gql_query  # noqa: E402
from repro.obs.schema import BENCH_SCHEMA, validate_bench_document  # noqa: E402
from repro.pgq.tabular import tabular_representation  # noqa: E402
from repro.sql.database import Database  # noqa: E402

SUITE = "observability"


def _run_gpml(graph, query, limit=None):
    def run(stats):
        return sum(1 for _ in match_iter(graph, prepare(query), limit=limit, stats=stats))

    return run


def _run_gql(graph, query):
    parsed = parse_gql_query(query)

    def run(stats):
        return sum(1 for _ in execute_gql_iter(graph, parsed, stats=stats))

    return run


def _run_sql(database, query):
    def run(stats):
        return sum(1 for _ in database.execute_iter(query, stats=stats))

    return run


def build_suite(graph):
    """(name, engine, query, runner) for every tracked benchmark query."""
    database = Database()
    database.register_graph("bank", graph)
    for name, table in tabular_representation(graph).items():
        database.register_table(name, table)

    gpml_hop = (
        "MATCH (a:Account WHERE a.isBlocked='yes')"
        "-[t:Transfer]->(b:Account WHERE b.isBlocked='yes')"
    )
    gpml_probe = "MATCH (a:Account)-[t:Transfer]->(a)"
    gql_chain = (
        "MATCH (a:Account WHERE a.isBlocked='yes')-[:Transfer]->(b:Account) "
        "MATCH (b)-[:Transfer]->(c:Account) "
        "RETURN a.owner AS src, c.owner AS dst LIMIT 100"
    )
    gql_ordered = (
        "MATCH (a:Account WHERE a.isBlocked='yes')-[:isLocatedIn]->(c:City) "
        "RETURN DISTINCT c.name AS city ORDER BY city"
    )
    sql_pushdown = (
        "SELECT src, amount FROM GRAPH_TABLE(bank "
        "MATCH (a:Account)-[t:Transfer]->(b:Account WHERE b.isBlocked='yes') "
        "COLUMNS (a.owner AS src, t.amount AS amount)"
        ") WHERE amount > 10000000 FETCH FIRST 50 ROWS ONLY"
    )
    sql_aggregate = (
        "SELECT COUNT(*) AS n FROM GRAPH_TABLE(bank "
        "MATCH (a:Account WHERE a.isBlocked='yes')-[t:Transfer]->(b:Account) "
        "COLUMNS (a.owner AS src)"
        ")"
    )
    return [
        ("gpml_blocked_hop", "gpml", gpml_hop, _run_gpml(graph, gpml_hop)),
        (
            "gpml_first_row_probe",
            "gpml",
            gpml_probe,
            _run_gpml(graph, gpml_probe, limit=1),
        ),
        ("gql_chained_limit", "gql", gql_chain, _run_gql(graph, gql_chain)),
        ("gql_distinct_order", "gql", gql_ordered, _run_gql(graph, gql_ordered)),
        ("sql_pushdown_fetch", "sql", sql_pushdown, _run_sql(database, sql_pushdown)),
        ("sql_vertical_count", "sql", sql_aggregate, _run_sql(database, sql_aggregate)),
    ]


def measure(graph) -> list[dict]:
    results = []
    for name, engine, query, run in build_suite(graph):
        stats = PipelineStats()
        start = perf_counter()
        rows = run(stats)
        wall_ms = (perf_counter() - start) * 1000.0
        assert rows == stats.rows, f"{name}: delivered {rows} != stats.rows {stats.rows}"
        results.append(
            {
                "name": name,
                "engine": engine,
                "query": " ".join(query.split()),
                "rows": rows,
                "steps": stats.steps,
                "matches": stats.matches,
                "wall_ms": round(wall_ms, 3),
            }
        )
        print(
            f"  {name:24s} [{engine}] rows={rows} steps={stats.steps} "
            f"wall={wall_ms:.1f}ms"
        )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Record the observability benchmark trajectory entry."
    )
    parser.add_argument("--accounts", type=int, default=30_000)
    parser.add_argument("--transfers", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--label", default="baseline",
        help="entry label (later perf PRs name the change being measured)",
    )
    parser.add_argument(
        "--out", default=str(Path(__file__).parent.parent / "BENCH_observability.json")
    )
    parser.add_argument(
        "--append", action="store_true",
        help="append one entry to an existing trajectory file",
    )
    args = parser.parse_args(argv)

    print(
        f"building graph: {args.accounts} accounts, {args.transfers} transfers "
        f"(seed {args.seed})"
    )
    graph = random_transfer_network(args.accounts, args.transfers, seed=args.seed)
    print(f"graph ready: {graph.num_nodes} nodes, {graph.num_edges} edges")

    entry = {
        "label": args.label,
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges},
        "params": {
            "accounts": args.accounts,
            "transfers": args.transfers,
            "seed": args.seed,
        },
        "results": measure(graph),
    }

    out = Path(args.out)
    if args.append and out.exists():
        document = json.loads(out.read_text(encoding="utf-8"))
        document["entries"].append(entry)
    else:
        document = {"schema": BENCH_SCHEMA, "suite": SUITE, "entries": [entry]}
    validate_bench_document(document)
    out.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out} ({len(document['entries'])} entr{'y' if len(document['entries']) == 1 else 'ies'})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
