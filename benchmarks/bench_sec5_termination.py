"""SEC5: the Section 5 worked queries with their exact stated outputs.

Regenerates every example of Section 5 (restrictors, selectors, their
combination, prefilter-vs-postfilter) with assertions on the paper's
stated paths.  The Scott->Charles prefilter case pins our *corrected*
result (length-5 via t6) — see EXPERIMENTS.md for the discrepancy note.
"""

from repro.gpml import match, prepare

_TRAIL = prepare(
    "MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
    "(b WHERE b.owner='Aretha')"
)
_ANY_SHORTEST = prepare(
    "MATCH ANY SHORTEST p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
    "(b WHERE b.owner='Aretha')"
)
_ALL_SHORTEST_TRAIL = prepare(
    "MATCH ALL SHORTEST TRAIL p = (a WHERE a.owner='Dave')"
    "-[t:Transfer]->*(b WHERE b.owner='Aretha')"
    "-[r:Transfer]->*(c WHERE c.owner='Mike')"
)
_PREFILTER = prepare(
    "MATCH ALL SHORTEST (p:Account WHERE p.owner='Scott')->+"
    "(q:Account WHERE q.isBlocked='yes')->+(r:Account WHERE r.owner='Charles')"
)
_POSTFILTER = prepare(
    "MATCH ALL SHORTEST (p:Account WHERE p.owner='Scott')->+"
    "(q:Account)->+(r:Account WHERE r.owner='Charles') "
    "WHERE q.isBlocked='yes'"
)


def test_trail_three_paths(benchmark, fig1):
    result = benchmark(match, fig1, _TRAIL)
    assert sorted(str(p) for p in result.paths()) == [
        "path(a6,t5,a3,t2,a2)",
        "path(a6,t5,a3,t7,a5,t8,a1,t1,a3,t2,a2)",
        "path(a6,t6,a5,t8,a1,t1,a3,t2,a2)",
    ]


def test_any_shortest_single_path(benchmark, fig1):
    result = benchmark(match, fig1, _ANY_SHORTEST)
    assert [str(p) for p in result.paths()] == ["path(a6,t5,a3,t2,a2)"]


def test_all_shortest_trail_two_paths(benchmark, fig1):
    result = benchmark(match, fig1, _ALL_SHORTEST_TRAIL)
    assert sorted(str(p) for p in result.paths()) == [
        "path(a6,t5,a3,t2,a2,t3,a4,t4,a6,t6,a5,t8,a1,t1,a3)",
        "path(a6,t6,a5,t8,a1,t1,a3,t2,a2,t3,a4,t4,a6,t5,a3)",
    ]


def test_prefilter_blocked_account(benchmark, fig1):
    result = benchmark(match, fig1, _PREFILTER)
    # corrected output (paper overlooks the t6 shortcut): length 5, q=a4
    assert [str(p) for p in result.paths()] == [
        "path(a1,t1,a3,t2,a2,t3,a4,t4,a6,t6,a5)"
    ]


def test_postfilter_variant_empty(benchmark, fig1):
    result = benchmark(match, fig1, _POSTFILTER)
    assert len(result) == 0


def test_termination_analysis_is_static(benchmark):
    """The Section 5 rejection happens at prepare time, not match time."""
    from repro.errors import NonTerminationError

    def analyze_and_reject():
        try:
            prepare("MATCH (a)-[t:Transfer]->*(b)")
        except NonTerminationError:
            return True
        return False

    assert benchmark(analyze_and_reject)
