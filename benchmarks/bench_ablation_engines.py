"""ABL1: automaton engine vs Section 6 expansion vs naive enumeration.

The three implementations are observationally equivalent (differentially
tested in tests/); this bench quantifies the gap the automaton's pruning
buys.  Expected shape: automaton < reference << naive, and the gap widens
with pattern length — the point of compiling patterns instead of
expanding or enumerating.
"""

import pytest

from repro.baselines import naive_trail_match, naive_walk_match
from repro.datasets import figure1_graph
from repro.gpml import match, prepare
from repro.gpml.reference import ReferenceConfig, reference_match

_TWO_STEP = "MATCH (x:Account)-[e:Transfer]->(y)-[f:Transfer]->(z)"
_TRAIL_STAR = (
    "MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
    "(b WHERE b.owner='Aretha')"
)


@pytest.fixture(scope="module")
def transfers_only():
    graph = figure1_graph()
    for edge_id in [f"li{i}" for i in range(1, 7)] + [
        f"hp{i}" for i in range(1, 7)
    ] + ["sip1", "sip2"]:
        graph.remove_edge(edge_id)
    return graph


class TestTwoStepPattern:
    def test_automaton(self, benchmark, fig1):
        prepared = prepare(_TWO_STEP)
        result = benchmark(match, fig1, prepared)
        assert len(result) == 11

    def test_reference_expansion(self, benchmark, fig1):
        config = ReferenceConfig()
        result = benchmark(reference_match, fig1, _TWO_STEP, config)
        assert len(result) == 11

    def test_naive_enumeration(self, benchmark, fig1):
        result = benchmark(naive_walk_match, fig1, _TWO_STEP, 2)
        assert len(result) == 11


class TestTrailStarPattern:
    def test_automaton(self, benchmark, transfers_only):
        prepared = prepare(_TRAIL_STAR)
        result = benchmark(match, transfers_only, prepared)
        assert len(result) == 3

    def test_reference_expansion(self, benchmark, transfers_only):
        config = ReferenceConfig(max_unroll=8)
        result = benchmark(reference_match, transfers_only, _TRAIL_STAR, config)
        assert len(result) == 3

    def test_naive_enumeration(self, benchmark, transfers_only):
        result = benchmark(naive_trail_match, transfers_only, _TRAIL_STAR)
        assert len(result) == 3
