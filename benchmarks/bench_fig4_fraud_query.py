"""FIG4 + Section 3: the fraud query in every surveyed language form.

Regenerates the Figure 4 pattern as: plain GPML, GQL (Cypher rendering),
SQL/PGQ GRAPH_TABLE (PGQL rendering), GSQL-style distinct projection, and
the SPARQL endpoint-semantics baseline.  Expected owner pairs on Figure 1:
(Aretha, Jay) and (Dave, Jay).
"""

from repro.baselines import endpoint_pairs
from repro.gpml import match, prepare
from repro.gql import GqlSession
from repro.pgq import graph_table

_GPML = prepare(
    "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
    "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
    "(y:Account WHERE y.isBlocked='yes'), "
    "TRAIL (x)-[:Transfer]->+(y)"
)

_EXPECTED = [("Aretha", "Jay"), ("Dave", "Jay")]


def test_gpml_form(benchmark, fig1):
    result = benchmark(match, fig1, _GPML)
    pairs = sorted({(r["x"]["owner"], r["y"]["owner"]) for r in result})
    assert pairs == _EXPECTED


def test_gql_cypher_form(benchmark, fig1):
    session = GqlSession(fig1)
    query = (
        "MATCH (a:Account WHERE a.isBlocked='no')-[:isLocatedIn]->"
        "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
        "(b:Account WHERE b.isBlocked='yes'), "
        "TRAIL p = (a)-[:Transfer]->+(b) "
        "RETURN DISTINCT a.owner AS A, b.owner AS B ORDER BY A"
    )
    result = benchmark(session.execute, query)
    assert [(r["A"], r["B"]) for r in result] == _EXPECTED


def test_pgq_pgql_form(benchmark, fig1):
    query = (
        "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
        "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
        "(y:Account WHERE y.isBlocked='yes'), "
        "TRAIL (x)-[e:Transfer]->+(y) "
        "COLUMNS (x.owner AS A, y.owner AS B, COUNT(e) AS hops, "
        "LISTAGG(e, ', ') AS edges)"
    )
    table = benchmark(graph_table, fig1, query)
    assert sorted(set((d["A"], d["B"]) for d in table.to_dicts())) == _EXPECTED


def test_gsql_distinct_form(benchmark, fig1):
    query = (
        "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
        "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
        "(y:Account WHERE y.isBlocked='yes'), "
        "TRAIL (x)-[e:Transfer]->+(y) "
        "COLUMNS (x.owner AS A, y.owner AS B)"
    )

    def run():
        return graph_table(fig1, query).distinct().order_by(["A"])

    table = benchmark(run)
    assert [tuple(d.values()) for d in table.to_dicts()] == _EXPECTED


def test_sparql_endpoint_baseline(benchmark, fig1):
    # endpoint semantics: pairs only, no paths — and no TRAIL needed
    def run():
        return endpoint_pairs(
            fig1,
            "MATCH (x WHERE x.isBlocked='no')-[:Transfer]->+"
            "(y WHERE y.isBlocked='yes')",
        )

    pairs = benchmark(run)
    assert ("a2", "a4") in pairs and ("a6", "a4") in pairs


def test_gpml_form_scaled(benchmark, bank_medium):
    prepared = prepare(
        "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->(g:City)"
        "<-[:isLocatedIn]-(y:Account WHERE y.isBlocked='yes'), "
        "ANY SHORTEST (x)-[:Transfer]->+(y)"
    )
    result = benchmark(match, bank_medium, prepared)
    assert all(row["y"]["isBlocked"] == "yes" for row in result)
