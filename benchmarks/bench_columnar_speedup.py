"""Guard: the columnar frontier engine must stay decisively faster.

Runs the same chain queries twice — ``use_columnar=False`` (the object
oracle) and the columnar frontier — interleaved, best-of-ROUNDS each on
a warm snapshot, and asserts the frontier's wall time beats the oracle
by at least :data:`MIN_SPEEDUP` on the blocked-hop scan while every
query delivers identical rows.  The CI ``bench-report`` job runs this
as a script on a scaled-down graph; under pytest each query is a test
case.

Warm-run comparison is deliberate: the one-off snapshot build is
amortized across a session (it is version-cached), so the guarded
quantity is the steady-state scan speed, not cold-start.  Cold numbers
live in ``BENCH_observability.json`` (``columnar`` vs ``baseline``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from time import perf_counter

_SRC = str(Path(__file__).parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest  # noqa: E402

from repro.datasets import random_transfer_network  # noqa: E402
from repro.gpml.engine import match_iter, prepare  # noqa: E402
from repro.gpml.matcher import MatcherConfig  # noqa: E402
from repro.graph.columnar import snapshot_for  # noqa: E402

#: columnar_best * MIN_SPEEDUP <= oracle_best on speedup-guarded queries
MIN_SPEEDUP = 3.0
ROUNDS = 5

DEFAULT_ACCOUNTS = 12_000
DEFAULT_TRANSFERS = 24_000

#: (name, query, guarded) — guarded queries must hit MIN_SPEEDUP; the
#: rest only assert identical results (they are too short for a stable
#: ratio but must not diverge).
QUERIES = [
    (
        "blocked_hop",
        "MATCH (a:Account WHERE a.isBlocked='yes')"
        "-[t:Transfer]->(b:Account WHERE b.isBlocked='yes')",
        True,
    ),
    (
        "self_probe",
        "MATCH (a:Account)-[t:Transfer]->(a)",
        True,
    ),
    (
        "city_scan",
        "MATCH (a:Account WHERE a.isBlocked='yes')-[l:isLocatedIn]->(c:City)",
        False,
    ),
]

_GRAPH = None
_SCALE = (DEFAULT_ACCOUNTS, DEFAULT_TRANSFERS)


def speedup_graph():
    global _GRAPH
    if _GRAPH is None:
        accounts, transfers = _SCALE
        _GRAPH = random_transfer_network(accounts, transfers, seed=5)
    return _GRAPH


def _rows(graph, prepared, config):
    return [
        tuple(sorted((var, repr(value)) for var, value in row.values.items()))
        for row in match_iter(graph, prepared, config)
    ]


def compare(graph, query):
    """(oracle_best_s, columnar_best_s) over interleaved best-of-ROUNDS.

    Also asserts both engines deliver identical rows in identical order.
    """
    prepared = prepare(query)
    oracle_config = MatcherConfig(use_columnar=False)
    columnar_config = MatcherConfig(use_columnar=True)
    snapshot_for(graph)  # warm: the snapshot is version-cached
    baseline = _rows(graph, prepared, oracle_config)
    oracle_best = columnar_best = float("inf")
    for _ in range(ROUNDS):
        start = perf_counter()
        oracle_rows = _rows(graph, prepared, oracle_config)
        oracle_best = min(oracle_best, perf_counter() - start)
        start = perf_counter()
        columnar_rows = _rows(graph, prepared, columnar_config)
        columnar_best = min(columnar_best, perf_counter() - start)
        assert oracle_rows == baseline
        assert columnar_rows == baseline, "columnar engine changed the results"
    return oracle_best, columnar_best


@pytest.mark.parametrize(
    "name,query,guarded", QUERIES, ids=[q[0] for q in QUERIES]
)
def test_columnar_speedup(name, query, guarded):
    oracle, columnar = compare(speedup_graph(), query)
    if guarded:
        assert columnar * MIN_SPEEDUP <= oracle, (
            f"{name}: columnar best {columnar * 1000:.1f}ms is under "
            f"{MIN_SPEEDUP:.0f}x faster than oracle best {oracle * 1000:.1f}ms"
        )


def main(argv=None) -> int:
    global _SCALE
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accounts", type=int, default=DEFAULT_ACCOUNTS)
    parser.add_argument("--transfers", type=int, default=DEFAULT_TRANSFERS)
    args = parser.parse_args(argv)
    _SCALE = (args.accounts, args.transfers)

    graph = speedup_graph()
    print(
        f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges "
        f"(best of {ROUNDS}, warm snapshot)"
    )
    failed = False
    for name, query, guarded in QUERIES:
        oracle, columnar = compare(graph, query)
        ratio = oracle / columnar if columnar else float("inf")
        if guarded and columnar * MIN_SPEEDUP > oracle:
            verdict = "REGRESSION"
            failed = True
        else:
            verdict = "ok" if guarded else "ok (unguarded)"
        print(
            f"{name}: oracle {oracle * 1000:.2f}ms, columnar "
            f"{columnar * 1000:.2f}ms — {ratio:.1f}x — {verdict}"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
