"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artifact (figure or table row); the
benchmarked callables *assert* the expected result shape, so a bench run
is also an end-to-end correctness pass.  Graph fixtures are session-scoped
— construction cost is benchmarked separately in bench_fig1_graph.
"""

import sys
from pathlib import Path

import pytest

_SRC = str(Path(__file__).parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.datasets import (  # noqa: E402
    chain_graph,
    cycle_graph,
    diamond_chain,
    figure1_graph,
    grid_graph,
    random_transfer_network,
)


@pytest.fixture(scope="session")
def fig1():
    return figure1_graph()


@pytest.fixture(scope="session")
def bank_medium():
    """A scaled-up banking graph (schema-compatible with Figure 1)."""
    return random_transfer_network(100, 250, seed=42)


@pytest.fixture(scope="session")
def cycle8():
    return cycle_graph(8)


@pytest.fixture(scope="session")
def grid5():
    return grid_graph(5, 5)


@pytest.fixture(scope="session")
def diamond6():
    return diamond_chain(6)


@pytest.fixture(scope="session")
def chain32():
    return chain_graph(32)
