"""ABL2: what the engine's pruning and preparation buy.

Three ablations:

* restrictor pruning *during* search (the engine) vs post-hoc filtering
  of blind enumeration (naive baseline) on a graph with many dead ends,
* shortest-path product pruning vs exhaustive-then-select on a cyclic
  graph where unpruned search would be infeasible,
* prepared queries vs parse-per-call.
"""

import pytest

from repro.baselines import naive_trail_match
from repro.datasets import cycle_graph, grid_graph
from repro.gpml import match, prepare
from repro.gpml.matcher import MatcherConfig


class TestRestrictorPruning:
    QUERY = "MATCH TRAIL p = (a WHERE a.index = 0)-[e:E]->*(b)"

    def test_pruned_engine(self, benchmark):
        graph = cycle_graph(10)
        prepared = prepare(self.QUERY)
        result = benchmark(match, graph, prepared)
        assert len(result) == 11  # lengths 0..10 from n0

    def test_generate_and_test(self, benchmark):
        graph = cycle_graph(10)
        result = benchmark(naive_trail_match, graph, self.QUERY)
        assert len(result) == 11


class TestShortestPruning:
    def test_bfs_product_pruning(self, benchmark, grid5):
        prepared = prepare(
            "MATCH ALL SHORTEST p = (a WHERE a.x=0 AND a.y=0)-[e]->*"
            "(b WHERE b.x=4 AND b.y=4)"
        )
        result = benchmark(match, grid5, prepared)
        assert len(result) == 70

    def test_enumerate_then_select(self, benchmark, grid5):
        # restrictor-first evaluation enumerates all acyclic walks, then
        # the selector keeps the shortest — semantically different scope
        # (restrictor), used here as the no-BFS-pruning comparison point.
        prepared = prepare(
            "MATCH ALL SHORTEST ACYCLIC p = (a WHERE a.x=0 AND a.y=0)-[e]->*"
            "(b WHERE b.x=4 AND b.y=4)"
        )
        result = benchmark(match, grid5, prepared)
        assert len(result) == 70  # on a DAG grid the two coincide


class TestPreparationOverhead:
    QUERY = (
        "MATCH TRAIL (a WHERE a.owner='Jay') [-[b:Transfer WHERE b.amount>5M]->]+ "
        "(a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]"
    )

    def test_parse_per_call(self, benchmark, fig1):
        result = benchmark(match, fig1, self.QUERY)
        assert len(result) == 2

    def test_prepared(self, benchmark, fig1):
        prepared = prepare(self.QUERY)
        result = benchmark(match, fig1, prepared)
        assert len(result) == 2


class TestStartCandidateNarrowing:
    def test_label_narrowed_start(self, benchmark, bank_medium):
        # the City label pins the start candidates to the 3 city nodes
        prepared = prepare("MATCH (c:City)<-[:isLocatedIn]-(a:Account)")
        result = benchmark(match, bank_medium, prepared)
        assert len(result) == 100

    def test_unnarrowed_start(self, benchmark, bank_medium):
        # anonymous start scans every node
        prepared = prepare("MATCH ()<-[:isLocatedIn]-(a:Account)")
        result = benchmark(match, bank_medium, prepared)
        assert len(result) == 100


class TestLabelIndexedTraversal:
    QUERY = "MATCH (p:Phone)~[:hasPhone]~(a:Account)-[t:Transfer]->(b:Account)"

    def test_with_label_index(self, benchmark, bank_medium):
        prepared = prepare(self.QUERY)
        config = MatcherConfig(use_label_index=True)

        def run():
            return match(bank_medium, prepared, config)

        result = benchmark(run)
        assert len(result) > 0

    def test_without_label_index(self, benchmark, bank_medium):
        prepared = prepare(self.QUERY)
        config = MatcherConfig(use_label_index=False)

        def run():
            return match(bank_medium, prepared, config)

        result = benchmark(run)
        assert len(result) > 0
