"""FIG8: the selector table (6 selectors) + cheapest extension.

Regenerates Figure 8 as one benchmark per selector on graphs engineered
to separate them: a diamond chain with 2^k tied shortest paths and a
monotone grid.  Assertions pin the per-partition selection counts.
"""

import pytest

from repro.gpml import match, prepare

_SELECTORS = [
    "ANY",
    "ANY 3",
    "ANY SHORTEST",
    "ALL SHORTEST",
    "SHORTEST 3",
    "SHORTEST 2 GROUP",
]


@pytest.mark.parametrize("selector", _SELECTORS)
def test_selector_on_diamond(benchmark, diamond6, selector):
    prepared = prepare(f"MATCH {selector} p = (a)-[e:E]->*(b)")
    result = benchmark(match, diamond6, prepared)
    source_sink = [
        p for p in result.paths() if p.source_id == "s0" and p.target_id == "s6"
    ]
    if selector == "ALL SHORTEST":
        assert len(source_sink) == 2**6  # all ties kept
    elif selector in ("ANY", "ANY SHORTEST"):
        assert len(source_sink) == 1
    elif selector in ("ANY 3", "SHORTEST 3"):
        assert len(source_sink) == 3
    elif selector == "SHORTEST 2 GROUP":
        # all walks in the first two length groups
        lengths = sorted({p.length for p in source_sink})
        assert len(lengths) <= 2


@pytest.mark.parametrize("selector", ["ANY SHORTEST", "ALL SHORTEST", "SHORTEST 2"])
def test_selector_on_grid(benchmark, grid5, selector):
    prepared = prepare(
        f"MATCH {selector} p = (a WHERE a.x=0 AND a.y=0)-[e]->*"
        "(b WHERE b.x=4 AND b.y=4)"
    )
    result = benchmark(match, grid5, prepared)
    if selector == "ALL SHORTEST":
        assert len(result) == 70  # C(8,4) lattice paths
    elif selector == "ANY SHORTEST":
        assert len(result) == 1
    else:
        assert len(result) == 2


def test_cheapest_on_weighted_grid(benchmark, grid5):
    # weight edges by coordinates to make one corner-to-corner path best
    for edge in grid5.edges():
        first, _ = edge.endpoint_ids
        node = grid5.node(first)
        grid5.set_property(edge.id, "toll", node["x"] + node["y"] + 1)
    prepared = prepare(
        "MATCH ANY CHEAPEST COST toll p = (a WHERE a.x=0 AND a.y=0)-[e]->*"
        "(b WHERE b.x=4 AND b.y=4)"
    )
    result = benchmark(match, grid5, prepared)
    assert len(result) == 1


def test_selector_partition_coverage(benchmark, bank_medium):
    prepared = prepare("MATCH ANY SHORTEST p = (a:Account)-[:Transfer]->+(b:Account)")
    result = benchmark(match, bank_medium, prepared)
    endpoints = [(p.source_id, p.target_id) for p in result.paths()]
    assert len(endpoints) == len(set(endpoints))  # one per partition
