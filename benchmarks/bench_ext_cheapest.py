"""EXT1: the Section 7.1 Language Opportunities, exercised.

Cheapest-path selectors over weighted graphs, the edge-isomorphic match
mode, and JSON export of bindings.
"""

import pytest

from repro.datasets import grid_graph
from repro.extensions import (
    filter_edge_isomorphic,
    result_to_json,
    top_k_cheapest_paths,
)
from repro.gpml import match, prepare


@pytest.fixture(scope="module")
def weighted_grid():
    graph = grid_graph(5, 5)
    for edge in graph.edges():
        first, _ = edge.endpoint_ids
        node = graph.node(first)
        graph.set_property(edge.id, "toll", (node["x"] * 7 + node["y"] * 3) % 5 + 1)
    return graph


def test_any_cheapest(benchmark, weighted_grid):
    prepared = prepare(
        "MATCH ANY CHEAPEST COST toll p = (a WHERE a.x=0 AND a.y=0)-[e]->*"
        "(b WHERE b.x=4 AND b.y=4)"
    )
    result = benchmark(match, weighted_grid, prepared)
    assert len(result) == 1


def test_top_k_cheapest(benchmark, weighted_grid):
    def run():
        return top_k_cheapest_paths(
            weighted_grid,
            "(a WHERE a.x=0 AND a.y=0)-[e]->*(b WHERE b.x=4 AND b.y=4)",
            k=3,
            cost_property="toll",
        )

    paths = benchmark(run)
    costs = [p.cost("toll") for p in paths]
    assert costs == sorted(costs)
    assert len(paths) == 3


def test_edge_isomorphic_mode(benchmark, fig1):
    prepared = prepare("MATCH (x)-[e:Transfer]->(y), (y)-[f:Transfer]->(z)")

    def run():
        return filter_edge_isomorphic(match(fig1, prepared))

    result = benchmark(run)
    for row in result:
        assert row["e"] != row["f"]


def test_json_export(benchmark, fig1):
    result = match(fig1, "MATCH (a:Account)-[e:Transfer]->{1,2}(b)")
    text = benchmark(result_to_json, result)
    assert text.startswith("[")
