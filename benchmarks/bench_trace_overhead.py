"""Guard: tracing and telemetry must be near-zero overhead.

Runs the same query suite three ways — plain :class:`PipelineStats` (no
trace), a traced one, and a fully metered run (traced stats *plus* a
workload :class:`~repro.obs.worklog.Telemetry` recording the query into
its metrics registry and query log) — interleaved, best-of-5 each, and
asserts both the traced and metered wall times stay within 10% (+ a
small absolute epsilon for timer noise on sub-millisecond runs) of the
untraced time, with identical delivered results.  The CI
``bench-report`` job runs this as a script; under pytest each query is
a test case.

The 10% bound is the contract: span bookkeeping lives behind ``span is
None`` checks per *stage*, never per row, and telemetry recording is one
fingerprint + a handful of counter/histogram updates per *query*, so
neither may cost anything measurable.
"""

from __future__ import annotations

import sys
from pathlib import Path
from time import perf_counter

_SRC = str(Path(__file__).parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest  # noqa: E402

from repro.datasets import random_transfer_network  # noqa: E402
from repro.gpml.engine import match_iter, prepare  # noqa: E402
from repro.gpml.streaming import PipelineStats  # noqa: E402
from repro.gql.query import execute_gql_iter, parse_gql_query  # noqa: E402
from repro.obs.worklog import Telemetry  # noqa: E402
from repro.pgq.tabular import tabular_representation  # noqa: E402
from repro.sql.database import Database  # noqa: E402

#: traced_best <= ALLOWED_RATIO * untraced_best + EPSILON_S
#: metered_best <= ALLOWED_RATIO * untraced_best + EPSILON_S
ALLOWED_RATIO = 1.10
EPSILON_S = 0.05
ROUNDS = 5

_GRAPH = None


def overhead_graph():
    global _GRAPH
    if _GRAPH is None:
        _GRAPH = random_transfer_network(4000, 8000, seed=3)
    return _GRAPH


def _gpml_case(graph):
    prepared = prepare(
        "MATCH (a:Account WHERE a.isBlocked='yes')-[t:Transfer]->"
        "(b:Account WHERE b.isBlocked='no')"
    )

    def run(stats):
        return [row.values["b"].id for row in match_iter(graph, prepared, stats=stats)]

    return run, "gpml", prepared.text


def _gql_case(graph):
    query = (
        "MATCH (a:Account WHERE a.isBlocked='yes')-[:Transfer]->(b:Account) "
        "MATCH (b)-[:Transfer]->(c:Account) "
        "RETURN a.owner AS src, c.owner AS dst LIMIT 200"
    )
    parsed = parse_gql_query(query)

    def run(stats):
        return [tuple(r.values()) for r in execute_gql_iter(graph, parsed, stats=stats)]

    return run, "gql", query


def _sql_case(graph):
    database = Database()
    database.register_graph("bank", graph)
    for name, table in tabular_representation(graph).items():
        database.register_table(name, table)
    sql = (
        "SELECT src, amount FROM GRAPH_TABLE(bank "
        "MATCH (a:Account)-[t:Transfer]->(b:Account WHERE b.isBlocked='yes') "
        "COLUMNS (a.owner AS src, t.amount AS amount)"
        ") WHERE amount > 5000000 ORDER BY amount DESC FETCH FIRST 100 ROWS ONLY"
    )

    def run(stats):
        return [tuple(r.values()) for r in database.execute_iter(sql, stats=stats)]

    return run, "sql", sql


CASES = [("gpml", _gpml_case), ("gql", _gql_case), ("sql", _sql_case)]


def compare(run, engine, query):
    """(untraced_best_s, traced_best_s, metered_best_s), interleaved.

    Best-of-ROUNDS each.  Also asserts all three variants deliver
    identical results and that the metered telemetry actually recorded.
    """
    untraced_best = traced_best = metered_best = float("inf")
    telemetry = Telemetry(slow_ms=0.0)
    baseline = run(PipelineStats())
    for _ in range(ROUNDS):
        start = perf_counter()
        plain = run(PipelineStats())
        untraced_best = min(untraced_best, perf_counter() - start)
        stats = PipelineStats.traced()
        start = perf_counter()
        traced = run(stats)
        traced_best = min(traced_best, perf_counter() - start)
        metered_stats = telemetry.stats_for(query=query, engine=engine)
        start = perf_counter()
        metered = run(metered_stats)
        telemetry.record_query(
            engine, query, perf_counter() - start, metered_stats
        )
        metered_best = min(metered_best, perf_counter() - start)
        assert plain == baseline
        assert traced == baseline, "tracing changed the query's results"
        assert metered == baseline, "telemetry changed the query's results"
        assert stats.trace.root.children, "traced run recorded no spans"
    recorded = telemetry.registry.counter(
        "repro_queries_total", "Queries executed.", ("engine", "fingerprint")
    )
    assert sum(recorded._values.values()) >= ROUNDS, (
        "metered runs were not recorded in the registry"
    )
    return untraced_best, traced_best, metered_best


@pytest.mark.parametrize("name,make_case", CASES, ids=[c[0] for c in CASES])
def test_tracing_off_overhead(name, make_case):
    run, engine, query = make_case(overhead_graph())
    untraced, traced, metered = compare(run, engine, query)
    limit = ALLOWED_RATIO * untraced + EPSILON_S
    assert traced <= limit, (
        f"{name}: traced best {traced * 1000:.1f}ms exceeds "
        f"{ALLOWED_RATIO:.0%} of untraced best {untraced * 1000:.1f}ms "
        f"(+{EPSILON_S * 1000:.0f}ms epsilon)"
    )
    assert metered <= limit, (
        f"{name}: metered best {metered * 1000:.1f}ms exceeds "
        f"{ALLOWED_RATIO:.0%} of untraced best {untraced * 1000:.1f}ms "
        f"(+{EPSILON_S * 1000:.0f}ms epsilon)"
    )


def main() -> int:
    graph = overhead_graph()
    failed = False
    for name, make_case in CASES:
        run, engine, query = make_case(graph)
        untraced, traced, metered = compare(run, engine, query)
        limit = ALLOWED_RATIO * untraced + EPSILON_S
        verdict = "ok" if traced <= limit and metered <= limit else "REGRESSION"
        if traced > limit or metered > limit:
            failed = True
        print(
            f"{name}: untraced {untraced * 1000:.2f}ms, traced "
            f"{traced * 1000:.2f}ms, metered {metered * 1000:.2f}ms "
            f"(limit {limit * 1000:.2f}ms) — {verdict}"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
