"""FIG3: the three basic pattern kinds (node, edge, path).

Regenerates Figure 3 on the banking graph and on the scaled synthetic
bank; row counts are pinned on Figure 1.
"""

from repro.gpml import match, prepare

_PATTERN_A = prepare("MATCH (x:Account WHERE x.isBlocked='yes')")
_PATTERN_B = prepare(
    "MATCH (x:Account WHERE x.isBlocked='no')"
    "-[e:Transfer WHERE e.date='3/1/2020']->"
    "(y:Account WHERE y.isBlocked='yes')"
)
_PATTERN_C = prepare(
    "MATCH TRAIL (x:Account WHERE x.isBlocked='no')"
    "-[:Transfer]->+(y:Account WHERE y.isBlocked='yes')"
)


def test_pattern_a_node(benchmark, fig1):
    result = benchmark(match, fig1, _PATTERN_A)
    assert result.ids("x") == ["a4"]


def test_pattern_b_edge(benchmark, fig1):
    result = benchmark(match, fig1, _PATTERN_B)
    assert result.to_dicts() == [{"x": "a2", "e": "t3", "y": "a4"}]


def test_pattern_c_path(benchmark, fig1):
    result = benchmark(match, fig1, _PATTERN_C)
    assert len(result) == 8  # the eight Transfer trails ending at Jay
    assert {row["y"].id for row in result} == {"a4"}


def test_pattern_a_scaled(benchmark, bank_medium):
    result = benchmark(match, bank_medium, _PATTERN_A)
    assert len(result) > 0


def test_pattern_b_scaled(benchmark, bank_medium):
    prepared = prepare(
        "MATCH (x:Account WHERE x.isBlocked='no')"
        "-[e:Transfer WHERE e.amount>5M]->(y:Account WHERE y.isBlocked='yes')"
    )
    result = benchmark(match, bank_medium, prepared)
    assert all(row["e"]["amount"] > 5_000_000 for row in result)
