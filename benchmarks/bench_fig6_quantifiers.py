"""FIG6: the quantifier table ({m,n}, {m,}, *, +).

Regenerates Figure 6 as a parameter sweep: bounded windows on a chain
(exact expected counts), unbounded forms under TRAIL on the banking graph.
"""

import pytest

from repro.gpml import match, prepare


@pytest.mark.parametrize("bounds", ["{1,2}", "{2,4}", "{4,8}", "{8,16}"])
def test_bounded_window_on_chain(benchmark, chain32, bounds):
    lower, upper = map(int, bounds.strip("{}").split(","))
    prepared = prepare(f"MATCH (a)-[e:E]->{bounds}(b)")
    result = benchmark(match, chain32, prepared)
    expected = sum(32 - n + 1 for n in range(lower, upper + 1))
    assert len(result) == expected


@pytest.mark.parametrize("form", ["*", "+", "{2,}"])
def test_unbounded_forms_with_trail(benchmark, fig1, form):
    prepared = prepare(f"MATCH TRAIL (a:Account)-[e:Transfer]->{form}(b)")
    result = benchmark(match, fig1, prepared)
    minimum = {"*": 0, "+": 1, "{2,}": 2}[form]
    assert all(row.paths[0].length >= minimum for row in result)
    assert len(result) > 0


def test_group_variable_aggregation(benchmark, fig1):
    prepared = prepare(
        "MATCH (a:Account) [()-[t:Transfer]->() WHERE t.amount>1M]{2,5} "
        "(b:Account) WHERE SUM(t.amount)>10M"
    )
    result = benchmark(match, fig1, prepared)
    assert len(result) == 67


def test_quantifier_on_paren_scaled(benchmark, bank_medium):
    prepared = prepare(
        "MATCH (a:Account) [()-[t:Transfer]->() WHERE t.amount>5M]{2,3} (b:Account)"
    )
    result = benchmark(match, bank_medium, prepared)
    assert all(2 <= len(row["t"]) <= 3 for row in result)
