"""GQL chained MATCH: bound-variable seeding vs hash-join enumeration.

Measures, on a 60k-node banking graph, what the statement-pipeline
execution of a chained ``MATCH`` buys:

* a chained pattern whose end element is a variable bound upstream runs
  one *seeded* search per incoming row (anchored at the bound node)
  instead of enumerating the whole pattern once and hash-joining — the
  acceptance criterion asserts, on machine-independent matcher step
  counters, that seeding explores under 5% of the fallback's steps,
* ``LIMIT 1`` over a two-statement pipeline threads one shared RowBudget
  through the chain, so the *first* statement's NFA search stops after a
  single delivered record — asserted the same way,
* ``EXPLAIN`` shows the per-statement execution modes.

Runs standalone (the CI benchmark-smoke job executes it directly)::

    PYTHONPATH=src python benchmarks/bench_gql_chained_match.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

_SRC = str(Path(__file__).parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.datasets import random_transfer_network  # noqa: E402
from repro.gpml import PipelineStats  # noqa: E402
from repro.gpml.matcher import MatcherConfig  # noqa: E402
from repro.gql import execute_gql_iter, explain_gql  # noqa: E402


def run(graph, query: str, config: MatcherConfig | None = None):
    """Execute and return (records, stats, elapsed_ms)."""
    stats = PipelineStats()
    started = time.perf_counter()
    records = list(execute_gql_iter(graph, query, config, stats=stats))
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    return records, stats, elapsed_ms


def record_key(record):
    return tuple(sorted((name, repr(value)) for name, value in record.items()))


def main() -> int:
    # 30k accounts + 30k phones + 3 cities = 60,003 nodes
    graph = random_transfer_network(30_000, 60_000, seed=7)
    assert graph.num_nodes >= 60_000, graph.num_nodes
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    seeded_config = MatcherConfig()  # seed_chained_match=True is the default
    hash_config = MatcherConfig(seed_chained_match=False)

    # ------------------------------------------------------------------
    # 1. Bound-variable chained MATCH: seeded search vs hash-join build
    # ------------------------------------------------------------------
    # The first statement is index-anchored to one owner (a handful of
    # rows); the chained statement extends each row from the bound `b`.
    # Without seeding, the second pattern enumerates all 60k transfers
    # into a hash table before the probe delivers anything.
    some_owner = next(
        edge.source.get("owner") for edge in graph.edges_with_label("Transfer")
    )
    chained = (
        f"MATCH (a:Account WHERE a.owner='{some_owner}')-[t:Transfer]->(b:Account) "
        "MATCH (b)-[t2:Transfer]->(c:Account) "
        "RETURN a.owner AS src, b.owner AS mid, c.owner AS dst"
    )
    seeded, seeded_stats, seeded_ms = run(graph, chained, seeded_config)
    hashed, hash_stats, hash_ms = run(graph, chained, hash_config)
    ratio = seeded_stats.steps / max(hash_stats.steps, 1) * 100.0
    print(f"\nchained MATCH anchored on bound b (owner={some_owner!r}):")
    print(f"  hash-join build  : {len(hashed):>7} rows, {hash_stats.steps:>8} steps, {hash_ms:9.2f} ms")
    print(f"  seeded per row   : {len(seeded):>7} rows, {seeded_stats.steps:>8} steps, {seeded_ms:9.2f} ms  ({ratio:.4f}% of the steps)")
    assert sorted(map(record_key, seeded)) == sorted(map(record_key, hashed))
    # Acceptance criterion: far fewer matcher steps than the join build.
    assert seeded_stats.steps * 20 < hash_stats.steps, (
        f"seeded chained MATCH used {seeded_stats.steps} of "
        f"{hash_stats.steps} steps — seeding is not reaching the search"
    )

    # ------------------------------------------------------------------
    # 2. LIMIT 1 over a two-statement pipeline: one budget, whole chain
    # ------------------------------------------------------------------
    pipeline = (
        "MATCH (a:Account)-[t:Transfer]->(b:Account) "
        "MATCH (b)-[t2:Transfer]->(c:Account) "
        "RETURN a.owner AS src, c.owner AS dst"
    )
    full, full_stats, full_ms = run(graph, pipeline, seeded_config)
    limited, lim_stats, lim_ms = run(graph, pipeline + " LIMIT 1", seeded_config)
    ratio = lim_stats.steps / full_stats.steps * 100.0
    print("\nLIMIT 1 over the two-statement pipeline (shared row budget):")
    print(f"  full pipeline    : {len(full):>7} rows, {full_stats.steps:>8} steps, {full_ms:9.2f} ms")
    print(f"  LIMIT 1          : {len(limited):>7} rows, {lim_stats.steps:>8} steps, {lim_ms:9.2f} ms  ({ratio:.4f}% of the steps)")
    assert len(limited) == 1
    assert [record_key(r) for r in limited] == [record_key(full[0])]
    # Acceptance criterion: the budget cancels the *first* statement's
    # search through the chain — a small fraction (<5%) of the steps.
    assert lim_stats.steps * 20 < full_stats.steps, (
        f"LIMIT 1 used {lim_stats.steps} of {full_stats.steps} steps — not early"
    )

    # ------------------------------------------------------------------
    # 3. EXPLAIN: per-statement execution modes
    # ------------------------------------------------------------------
    plan = explain_gql(chained)
    print("\nEXPLAIN:")
    print(plan)
    assert "seeded search on b" in plan
    assert "[streaming]" in plan and "statement #2" in plan

    print("\nbench_gql_chained_match: all assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
