"""FIG1: the property-graph substrate (Figure 1 and Definition 2.1).

Regenerates: construction of the banking graph, element access paths,
serialization, statistics.  The assertions pin the exact census the paper
draws (6 accounts, 8 transfers, 2 places, 4 phones, 2 IPs).
"""

from repro.datasets import figure1_graph, random_transfer_network
from repro.graph import graph_from_json, graph_statistics, graph_to_json


def test_build_figure1(benchmark):
    graph = benchmark(figure1_graph)
    assert graph.num_nodes == 14
    assert graph.num_edges == 22


def test_build_scaled_bank(benchmark):
    graph = benchmark(random_transfer_network, 200, 500, 7)
    assert graph.num_nodes >= 200
    assert len(list(graph.edges_with_label("Transfer"))) == 500


def test_incidence_scan(benchmark, fig1):
    def scan():
        total = 0
        for node_id in fig1.node_ids():
            total += len(fig1.incidences(node_id))
        return total

    # every directed edge contributes 2 incidences, undirected non-loop 2
    assert benchmark(scan) == 44


def test_label_index_lookup(benchmark, fig1):
    result = benchmark(fig1.nodes_with_label, "Account")
    assert len(result) == 6


def test_json_round_trip(benchmark, fig1):
    def round_trip():
        return graph_from_json(graph_to_json(fig1))

    clone = benchmark(round_trip)
    assert clone.num_nodes == fig1.num_nodes


def test_statistics(benchmark, fig1):
    stats = benchmark(graph_statistics, fig1)
    assert stats.num_directed_edges == 16
    assert stats.num_undirected_edges == 6
