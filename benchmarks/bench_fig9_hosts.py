"""FIG9: GPML inside its two host languages, end to end.

Regenerates the Figure 9 dataflow: the same graph pattern consumed by the
GQL host (bindings, paths first-class) and by the SQL/PGQ host
(GRAPH_TABLE projecting to a relational table), plus the
tables->graph-view->query pipeline.
"""

from repro.gql import GqlSession
from repro.pgq import Catalog, graph_table, tabular_representation

_PATTERN = (
    "MATCH (a:Account)-[t:Transfer WHERE t.amount > 5M]->(b:Account)"
)


def test_gql_host_pipeline(benchmark, fig1):
    session = GqlSession(fig1)
    query = _PATTERN + " RETURN a.owner AS sender, t.amount AS amount ORDER BY amount DESC LIMIT 5"
    result = benchmark(session.execute, query)
    assert len(result) == 5
    assert result.records[0]["amount"] == 10_000_000


def test_pgq_host_pipeline(benchmark, fig1):
    query = _PATTERN + " COLUMNS (a.owner AS sender, b.owner AS receiver, t.amount AS amount)"
    table = benchmark(graph_table, fig1, query)
    assert len(table) == 7
    assert table.columns == ("sender", "receiver", "amount")


def test_pgq_sql_composition(benchmark, fig1):
    query = _PATTERN + " COLUMNS (a.owner AS sender, t.amount AS amount)"

    def run():
        return (
            graph_table(fig1, query)
            .group_by(["sender"], {"total": ("SUM", "amount")})
            .order_by(["total"], descending=True)
        )

    table = benchmark(run)
    assert table.to_dicts()[0]["total"] >= table.to_dicts()[-1]["total"]


def test_tables_to_view_to_query(benchmark, fig1):
    """The full SQL/PGQ loop: relational data -> graph view -> GRAPH_TABLE."""
    tables = tabular_representation(fig1)
    ddl = (
        "CREATE PROPERTY GRAPH bank "
        "VERTEX TABLES (Account KEY (ID) LABEL Account PROPERTIES (owner, isBlocked)) "
        "EDGE TABLES (Transfer KEY (ID) SOURCE KEY (SRC) REFERENCES Account "
        "DESTINATION KEY (DST) REFERENCES Account LABEL Transfer PROPERTIES (date, amount))"
    )

    def run():
        catalog = Catalog()
        catalog.register_table("Account", tables["Account"])
        catalog.register_table("Transfer", tables["Transfer"])
        graph = catalog.execute(ddl)
        return graph_table(
            graph,
            "MATCH (a:Account)-[t:Transfer]->(b) COLUMNS (a.owner AS o, t.amount AS v)",
        )

    table = benchmark(run)
    assert len(table) == 8


def test_gql_graph_output(benchmark, fig1):
    """Figure 9's 'new graph' output: a match materialized as a graph."""
    from repro.gql import execute_match_as_graph

    def run():
        return execute_match_as_graph(
            fig1,
            "MATCH TRAIL (x:Account WHERE x.isBlocked='no')"
            "-[t:Transfer]->+(y:Account WHERE y.isBlocked='yes')",
        )

    view = benchmark(run)
    assert view.num_nodes == 6 and view.num_edges == 7


def test_gql_host_scaled(benchmark, bank_medium):
    session = GqlSession(bank_medium)
    query = (
        "MATCH (a:Account)-[t:Transfer]->(b:Account) "
        "RETURN a.owner AS sender, COUNT(b) AS fanout, SUM(t.amount) AS total "
        "ORDER BY fanout DESC LIMIT 10"
    )
    result = benchmark(session.execute, query)
    assert len(result) == 10
