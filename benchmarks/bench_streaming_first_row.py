"""STREAMING: first-row latency and early termination of the pipeline.

Measures — on the paper's Figure 1 graph and on generated graphs with
>= 50k nodes (one uniform, one heavily skewed) — how much of the search
space a ``LIMIT 1`` / ``exists()`` probe examines compared with full
enumeration.  The evidence is the matcher's *step counter* (edge
expansions, the ``max_steps`` unit), not wall-clock, so the assertions
are machine-independent; first-row latency is reported alongside for
human consumption.

Runs standalone (the CI benchmark-smoke job executes it directly)::

    PYTHONPATH=src python benchmarks/bench_streaming_first_row.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

_SRC = str(Path(__file__).parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.datasets import figure1_graph, random_transfer_network  # noqa: E402
from repro.graph.builder import GraphBuilder  # noqa: E402
from repro.gpml import PipelineStats, match_iter  # noqa: E402
from repro.gpml.engine import exists  # noqa: E402


def skewed_transfer_graph(num_accounts: int, num_transfers: int) -> "PropertyGraph":
    """A hub-skewed banking graph: 90% of transfers touch 1% of accounts.

    Skew is the worst case for materialize-everything execution — a few
    hub accounts fan out into very many matches — and the best case for
    streaming: the first match is found immediately, while full
    enumeration must visit every hub combination.
    """
    builder = GraphBuilder(f"skewed_{num_accounts}x{num_transfers}")
    for i in range(num_accounts):
        builder.node(f"a{i}", "Account", owner=f"owner{i}", isBlocked="no")
    hubs = max(num_accounts // 100, 1)
    for t in range(num_transfers):
        if t % 10 < 9:  # 90% hub-to-hub traffic
            src = f"a{(t * 7) % hubs}"
            dst = f"a{(t * 13) % hubs}"
        else:  # 10% long tail
            src = f"a{(t * 31) % num_accounts}"
            dst = f"a{(t * 37) % num_accounts}"
        builder.directed(
            f"t{t}", src, dst, "Transfer", amount=(t % 20 + 1) * 1_000_000
        )
    return builder.build()


def probe(graph, query: str, limit=None):
    """Run the streaming pipeline; return (rows, steps, first_row_ms)."""
    stats = PipelineStats()
    started = time.perf_counter()
    rows = match_iter(graph, query, limit=limit, stats=stats)
    leading = next(rows, None)
    first_ms = (time.perf_counter() - started) * 1000.0
    count = (0 if leading is None else 1) + sum(1 for _ in rows)
    return count, stats.steps, first_ms


def report(name: str, graph, query: str) -> None:
    print(f"\n{name}: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"  query: {query}")
    full_rows, full_steps, full_first_ms = probe(graph, query)
    lim_rows, lim_steps, lim_first_ms = probe(graph, query, limit=1)

    started = time.perf_counter()
    found = exists(graph, query)
    exists_ms = (time.perf_counter() - started) * 1000.0

    ratio = (lim_steps / full_steps * 100.0) if full_steps else 0.0
    print(f"  full enumeration : {full_rows:>8} rows, {full_steps:>9} steps, "
          f"first row in {full_first_ms:8.2f} ms")
    print(f"  LIMIT 1          : {lim_rows:>8} rows, {lim_steps:>9} steps, "
          f"first row in {lim_first_ms:8.2f} ms  ({ratio:.3f}% of the steps)")
    print(f"  exists()         : {found!s:>8} in {exists_ms:.2f} ms")

    assert full_rows >= 1, "benchmark query must have matches"
    assert lim_rows == 1
    assert found
    # Early termination is real: the probe examines a small fraction of
    # the search space (the acceptance criterion, on step counters).
    if full_steps >= 1000:
        assert lim_steps * 20 < full_steps, (
            f"LIMIT 1 used {lim_steps} of {full_steps} steps — not early"
        )


def main() -> int:
    fig1 = figure1_graph()
    report("figure1", fig1, "MATCH (a:Account)-[t:Transfer]->(b:Account)")
    report("figure1 (2-hop)", fig1,
           "MATCH (a:Account)-[t:Transfer]->(b)-[u:Transfer]->(c)")

    uniform = random_transfer_network(30_000, 60_000, seed=7)
    assert uniform.num_nodes >= 50_000  # accounts + phones + cities
    report("uniform bank", uniform,
           "MATCH (a:Account WHERE a.isBlocked='no')-[t:Transfer]->(b:Account)")

    skewed = skewed_transfer_graph(50_000, 100_000)
    assert skewed.num_nodes >= 50_000
    report("skewed bank", skewed,
           "MATCH (a:Account)-[t:Transfer]->(b:Account)")
    report("skewed bank (filtered)", skewed,
           "MATCH (a:Account)-[t:Transfer WHERE t.amount > 5M]->(b:Account)")

    print("\nbench_streaming_first_row: all assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
