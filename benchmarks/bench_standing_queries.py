"""Guard: incremental standing-query maintenance must stay near-free.

Registers the paper's fraud query as a standing query on a scaled
banking graph, applies a seeded stream of mutation batches (new
transfers, blocked flips, edge removals, a GQL ``INSERT`` per batch),
and after every batch:

* folds the batch in with one :meth:`StandingQuery.refresh`,
* re-runs the same query text from scratch,
* asserts the maintained view equals the from-scratch result (bag
  equality on projected records) *and* that replaying the emitted delta
  stream into the previous view reproduces the new one exactly.

The guarded quantity is matcher steps — the engine's portable cost
currency, immune to shared-runner timer noise: summed over the stream,
the refreshes must cost **under :data:`MAX_STEP_RATIO` (5%)** of what
re-running from scratch after every batch costs.  That is the paper's
continuous-fraud-detection story made quantitative: re-matching only
the ball around touched nodes, not the graph.

CI runs this scaled down (``--accounts 3000 --transfers 6000``); the
committed default is the 60k-node graph from ``BENCH_observability``.
"""

from __future__ import annotations

import argparse
import random
import sys
from collections import Counter
from pathlib import Path
from time import perf_counter

_SRC = str(Path(__file__).parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.datasets import random_transfer_network  # noqa: E402
from repro.gpml.streaming import PipelineStats  # noqa: E402
from repro.gql import execute_gql  # noqa: E402
from repro.gql.query import execute_gql_iter, parse_gql_query  # noqa: E402
from repro.gql.standing import StandingQuery  # noqa: E402

#: sum(refresh steps) must stay under this fraction of sum(scratch steps)
MAX_STEP_RATIO = 0.05

DEFAULT_ACCOUNTS = 30_000
DEFAULT_TRANSFERS = 60_000
DEFAULT_BATCHES = 20
DEFAULT_OPS = 4

FRAUD_QUERY = (
    "MATCH (a:Account WHERE a.isBlocked='yes')"
    "-[t:Transfer]->(b:Account WHERE b.isBlocked='yes') "
    "RETURN a.owner AS src, b.owner AS dst, t.amount AS amount"
)


def canon(rows):
    return sorted(tuple(sorted((k, repr(v)) for k, v in r.items())) for r in rows)


def record_key(record):
    return tuple(sorted((k, repr(v)) for k, v in record.items()))


def scratch_run(graph, parsed):
    """(canonical rows, matcher steps) of a from-scratch re-match."""
    stats = PipelineStats()
    rows = [dict(r) for r in execute_gql_iter(graph, parsed, stats=stats)]
    return canon(rows), stats.steps


def mutate(graph, rng, num_accounts, counter):
    """One random mutation; returns a short tag for the printout."""
    kind = rng.randrange(4)
    if kind == 0:
        k = next(counter)
        graph.add_edge(
            f"x{k}",
            f"a{rng.randrange(num_accounts)}",
            f"a{rng.randrange(num_accounts)}",
            labels=["Transfer"],
            properties={"amount": rng.randrange(1, 20) * 1_000_000},
        )
        return "add_transfer"
    if kind == 1:
        account = f"a{rng.randrange(num_accounts)}"
        flipped = "no" if graph.property_of(account, "isBlocked") == "yes" else "yes"
        graph.set_property(account, "isBlocked", flipped)
        return "flip_blocked"
    if kind == 2:
        edge = f"t{rng.randrange(10**9) % max(1, graph.num_edges)}"
        if graph.has_edge(edge):
            graph.remove_edge(edge)
            return "remove_transfer"
        return "remove_miss"
    k = next(counter)
    execute_gql(
        graph,
        f"INSERT (p:Account {{owner: 'fresh{k}', isBlocked: 'yes'}})"
        f"-[:Transfer {{amount: 5000000}}]->"
        f"(q:Account {{owner: 'fresh{k}b', isBlocked: 'yes'}})",
    )
    return "dml_insert"


def run_stream(graph, num_accounts, batches, ops, seed, verbose=True):
    """Drive the mutation stream; returns (incremental, scratch) steps."""
    rng = random.Random(seed)
    counter = iter(range(10**9))
    parsed = parse_gql_query(FRAUD_QUERY)
    standing = StandingQuery(graph, FRAUD_QUERY)
    view = Counter(record_key(r) for r in standing.rows())
    baseline, _ = scratch_run(graph, parsed)
    assert sorted(view.elements()) == baseline, "initial fill diverges"

    incremental_steps = 0
    scratch_steps = 0
    refresh_s = 0.0
    try:
        for batch in range(batches):
            for _ in range(ops):
                mutate(graph, rng, num_accounts, counter)
            start = perf_counter()
            delta = standing.refresh()
            refresh_s += perf_counter() - start
            incremental_steps += delta.steps
            for record in delta.retracted:
                key = record_key(record)
                assert view[key] > 0, "retracted an instance not in the view"
                view[key] -= 1
            for record in delta.added:
                view[record_key(record)] += 1
            scratch, steps = scratch_run(graph, parsed)
            scratch_steps += steps
            assert sorted(view.elements()) == scratch, "replayed deltas diverge"
            assert canon(standing.rows()) == scratch, "maintained view diverges"
            if verbose:
                print(
                    f"  batch {batch + 1:3d}: region={delta.region_size:5d} "
                    f"+{len(delta.added)}/-{len(delta.retracted)} rows, "
                    f"refresh {delta.steps:7d} steps vs scratch {steps:7d}"
                )
    finally:
        standing.close()
    return incremental_steps, scratch_steps, refresh_s


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accounts", type=int, default=DEFAULT_ACCOUNTS)
    parser.add_argument("--transfers", type=int, default=DEFAULT_TRANSFERS)
    parser.add_argument("--batches", type=int, default=DEFAULT_BATCHES)
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    graph = random_transfer_network(args.accounts, args.transfers, seed=args.seed)
    print(
        f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges; "
        f"{args.batches} batches x {args.ops} mutations"
    )
    incremental, scratch, refresh_s = run_stream(
        graph, args.accounts, args.batches, args.ops, args.seed
    )
    ratio = incremental / scratch if scratch else 0.0
    print(
        f"total: refresh {incremental} steps ({refresh_s * 1000:.1f}ms) vs "
        f"from-scratch {scratch} steps — ratio {ratio:.4f} "
        f"(limit {MAX_STEP_RATIO})"
    )
    if ratio >= MAX_STEP_RATIO:
        print("FAIL: incremental maintenance is not under the step budget")
        return 1
    print("PASS: every delta replayed exactly and maintenance stayed incremental")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
