"""Cross-model optimizer: seeded joins, shared scans, semi-join reduction.

Measures, on a 60k-node banking graph, what the rule-driven rewrite pass
saves when SQL joins cross the GRAPH_TABLE boundary:

* **join-through-GRAPH_TABLE**: a small probe table joined on a COLUMNS
  element output runs one anchored NFA search per probe row instead of
  enumerating every transfer — the acceptance criterion asserts (on the
  matcher's machine-independent step counters) that the seeded join
  performs under 5% of the full enumeration's steps with identical rows,
* **common-subpattern sharing**: two identical GRAPH_TABLE calls in one
  statement enumerate the pattern once through a shared spool,
* **semi-join reduction**: the probe side's distinct keys are injected
  as a sargable IN, anchoring the enumeration on property-index probes.

Runs standalone (the CI benchmark-smoke job executes it directly)::

    PYTHONPATH=src python benchmarks/bench_cross_model.py
    PYTHONPATH=src python benchmarks/bench_cross_model.py --accounts 3000 --transfers 6000
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_SRC = str(Path(__file__).parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.datasets import random_transfer_network  # noqa: E402
from repro.gpml import PipelineStats  # noqa: E402
from repro.pgq import Table  # noqa: E402
from repro.sql import Database, SqlConfig  # noqa: E402

OFF = SqlConfig(optimizer_rules=frozenset())


def run(database: Database, query: str, **kwargs):
    """Execute and return (table, stats, elapsed_ms)."""
    stats = PipelineStats()
    started = time.perf_counter()
    table = database.execute(query, stats=stats, **kwargs)
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    return table, stats, elapsed_ms


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accounts", type=int, default=30_000)
    parser.add_argument("--transfers", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--probes", type=int, default=20,
        help="rows in the probe-side base table (default: 20)",
    )
    args = parser.parse_args(argv)

    # default scale: 30k accounts + 30k phones + 3 cities = 60,003 nodes
    graph = random_transfer_network(args.accounts, args.transfers, seed=args.seed)
    database = Database()
    database.register_graph("bank", graph)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # A small watchlist joined against the transfer pattern — the shape
    # the seeded-join rule exists for: |probe| << |matches|.
    step = max(1, args.accounts // args.probes)
    watchlist = [f"a{i * step}" for i in range(args.probes) if i * step < args.accounts]
    database.register_table(
        "Watchlist", Table(["ID"], [[node_id] for node_id in watchlist], name="Watchlist")
    )

    transfers = (
        "GRAPH_TABLE(bank MATCH (a:Account)-[t:Transfer]->(b:Account) "
        "COLUMNS (a AS src_el, a.owner AS src, b.owner AS dst))"
    )

    # ------------------------------------------------------------------
    # 1. join-through-GRAPH_TABLE: one anchored search per probe row
    # ------------------------------------------------------------------
    query = (
        f"SELECT w.ID, gt.dst FROM Watchlist AS w JOIN {transfers} AS gt "
        "ON gt.src_el = w.ID"
    )
    plan = database.explain(query)
    assert "seeded graph_table scan bank" in plan
    seeded, seeded_stats, seeded_ms = run(database, query)
    naive, naive_stats, naive_ms = run(database, query, sql_config=OFF)
    ratio = seeded_stats.steps / naive_stats.steps * 100.0
    print(f"\nseeded join ({len(watchlist)} probe rows over {args.transfers} transfers):")
    print(f"  rules off : {len(naive):>6} rows, {naive_stats.steps:>8} steps, {naive_ms:9.2f} ms")
    print(f"  rules on  : {len(seeded):>6} rows, {seeded_stats.steps:>8} steps, {seeded_ms:9.2f} ms  ({ratio:.4f}% of the steps)")
    assert sorted(seeded.rows) == sorted(naive.rows)
    # Acceptance criterion: seeded join < 5% of full-enumeration steps.
    assert seeded_stats.steps * 20 < naive_stats.steps, (
        f"seeded join used {seeded_stats.steps} of {naive_stats.steps} steps"
    )

    # ------------------------------------------------------------------
    # 2. common-subpattern sharing: enumerate once, read twice
    # ------------------------------------------------------------------
    # Two-hop composition from two copies of the same pattern: the naive
    # plan enumerates all transfers twice (probe + build), the spool once.
    shared_query = (
        f"SELECT g1.src, g2.dst FROM {transfers} AS g1 "
        f"JOIN {transfers} AS g2 ON g1.dst = g2.src"
    )
    shared_config = SqlConfig(optimizer_rules=frozenset({"shared_scan"}))
    plan = database.explain(shared_query, sql_config=shared_config)
    assert plan.count("shared graph_table spool") == 2
    shared, shared_stats, shared_ms = run(database, shared_query, sql_config=shared_config)
    naive2, naive2_stats, naive2_ms = run(database, shared_query, sql_config=OFF)
    print("\nshared subpattern (two identical GRAPH_TABLEs):")
    print(f"  rules off : {naive2_stats.steps:>8} steps, {naive2_ms:9.2f} ms")
    print(f"  rules on  : {shared_stats.steps:>8} steps, {shared_ms:9.2f} ms")
    assert len(shared) == len(naive2)
    # One enumeration instead of two: at most ~half the steps (+ slack).
    assert shared_stats.steps * 1.9 < naive2_stats.steps, (
        f"shared scan used {shared_stats.steps} of {naive2_stats.steps} steps"
    )

    # ------------------------------------------------------------------
    # 3. semi-join reduction: probe keys become index anchors
    # ------------------------------------------------------------------
    owners = [f"owner{i * step}" for i in range(args.probes) if i * step < args.accounts]
    database.register_table(
        "Suspects", Table(["owner"], [[o] for o in owners], name="Suspects")
    )
    reduce_query = (
        f"SELECT s.owner, gt.dst FROM Suspects AS s JOIN {transfers} AS gt "
        "ON gt.src = s.owner"
    )
    reduce_config = SqlConfig(optimizer_rules=frozenset({"semi_join"}))
    plan = database.explain(reduce_query, sql_config=reduce_config)
    assert "semi-join reduction" in plan
    reduced, reduced_stats, reduced_ms = run(database, reduce_query, sql_config=reduce_config)
    naive3, naive3_stats, naive3_ms = run(database, reduce_query, sql_config=OFF)
    ratio3 = reduced_stats.steps / naive3_stats.steps * 100.0
    print(f"\nsemi-join reduction ({len(owners)} distinct probe keys):")
    print(f"  rules off : {len(naive3):>6} rows, {naive3_stats.steps:>8} steps, {naive3_ms:9.2f} ms")
    print(f"  rules on  : {len(reduced):>6} rows, {reduced_stats.steps:>8} steps, {reduced_ms:9.2f} ms  ({ratio3:.4f}% of the steps)")
    assert sorted(reduced.rows) == sorted(naive3.rows)
    assert reduced_stats.steps * 20 < naive3_stats.steps, (
        f"reduction used {reduced_stats.steps} of {naive3_stats.steps} steps"
    )

    print("\nbench_cross_model: all assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
