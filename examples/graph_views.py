"""Graph outputs and path macros — the forward-looking features.

Section 6.6 of the paper: a GQL implementation can return *graphs*, not
just tables — "each path binding defines a subgraph of the input graph
... together with annotations".  Section 7.1 lists path macros as a
Language Opportunity.  This example exercises both:

1. extract the "suspicious activity" subgraph of the banking graph as a
   new property graph, annotated with the variables that matched,
2. query the extracted view like any other graph (views compose),
3. define reusable pattern macros and build the Figure 4 query from them.
"""

import _bootstrap  # noqa: F401

from repro import figure1_graph, match
from repro.extensions import MacroRegistry
from repro.gql import binding_subgraph, execute_match_as_graph
from repro.graph import graph_to_json


def main() -> None:
    graph = figure1_graph()

    # 1. A match result as a new annotated graph -----------------------
    view = execute_match_as_graph(
        graph,
        "MATCH TRAIL (x:Account WHERE x.isBlocked='no')"
        "-[t:Transfer]->+(y:Account WHERE y.isBlocked='yes')",
        name="suspicious_activity",
    )
    print(f"suspicious-activity view: {view}")
    for node in sorted(view.nodes()):
        bound = node.get("_bound_to", "-")
        print(f"    {node.id}: owner={node['owner']}, matched as {bound}")

    # 2. Views are ordinary graphs: query them again --------------------
    inner = match(view, "MATCH ANY SHORTEST p = (a)-[:Transfer]->+(b WHERE b.isBlocked='yes')")
    print("\nshortest suspicious routes inside the view:")
    for row in sorted(inner, key=lambda r: r["p"].length):
        print(f"    {row['p']}")

    # 3. One binding as its own subgraph ---------------------------------
    result = match(
        graph,
        "MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->"
        "(d:Account)~[:hasPhone]~(p)",
    )
    first = binding_subgraph(graph, result.rows[0], name="one_binding")
    print(f"\none shared-phone binding as a graph: {first}")
    print(graph_to_json(first, indent=2)[:400], "...")

    # 4. Path macros (Section 7.1 Language Opportunity) -------------------
    macros = MacroRegistry()
    macros.define("in_am", "-[:isLocatedIn]->(g:City WHERE g.name='Ankh-Morpork')")
    macros.define("suspicious_chain", "TRAIL (x)-[:Transfer]->+(y)")
    result = macros.match(
        graph,
        "MATCH (x:Account WHERE x.isBlocked='no') $in_am$, "
        "(y:Account WHERE y.isBlocked='yes') $in_am$, "
        "$suspicious_chain$",
    )
    print("\nFigure 4 via macros:")
    for pair in sorted({(r["x"]["owner"], r["y"]["owner"]) for r in result}):
        print(f"    {pair[0]} -> {pair[1]}")


if __name__ == "__main__":
    main()
