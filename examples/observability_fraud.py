"""Observability on the Figure 4 fraud query: EXPLAIN ANALYZE + trace JSON.

Runs the paper's fraud pattern (blocked-account transfer chains through
Ankh-Morpork) through the GQL host with tracing on, prints the
EXPLAIN ANALYZE rendering (per-stage actual rows / matcher steps / wall
time, estimated-vs-actual cardinalities), then dumps the same run's span
tree as schema-validated ``repro.trace/v1`` JSON — and does the SQL-host
equivalent through ``Database.explain_analyze``.
"""

import _bootstrap  # noqa: F401

import json
import tempfile
from pathlib import Path

from repro import figure1_graph
from repro.gql import GqlSession
from repro.obs import tracing_stats, validate_trace_document
from repro.pgq.tabular import tabular_representation
from repro.sql import Database

FRAUD_GQL = (
    "MATCH (a:Account WHERE a.isBlocked='no')-[:isLocatedIn]->"
    "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
    "(b:Account WHERE b.isBlocked='yes'), "
    "TRAIL p = (a)-[:Transfer]->+(b) "
    "RETURN DISTINCT a.owner AS A, b.owner AS B ORDER BY A"
)

FRAUD_SQL = (
    "SELECT DISTINCT A, B FROM GRAPH_TABLE(figure1 "
    "MATCH (a:Account WHERE a.isBlocked='no')-[:isLocatedIn]->"
    "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
    "(b:Account WHERE b.isBlocked='yes'), "
    "TRAIL (a)-[:Transfer]->+(b) "
    "COLUMNS (a.owner AS A, b.owner AS B)"
    ") ORDER BY A"
)


def heading(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    graph = figure1_graph()
    session = GqlSession(graph)

    heading("GQL host: EXPLAIN ANALYZE of the Figure 4 fraud query")
    stats = tracing_stats(query=FRAUD_GQL, engine="gql")
    print(session.explain_analyze(FRAUD_GQL, stats=stats))

    heading("the same run as machine-readable trace JSON")
    document = stats.trace.to_dict(stats=stats)
    validate_trace_document(document)
    out = Path(tempfile.gettempdir()) / "fraud_trace.json"
    out.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"schema: {document['schema']}")
    print(
        f"totals: {document['totals']['spans']} spans, "
        f"{document['totals']['steps']} matcher steps"
    )
    print(f"wrote {out}")

    heading("SQL host: EXPLAIN ANALYZE of the GRAPH_TABLE form")
    database = Database()
    database.register_graph(graph.name, graph)
    for name, table in tabular_representation(graph).items():
        database.register_table(name, table)
    print(database.explain_analyze(FRAUD_SQL))

    # The paper's expected answer — assert it so this example doubles as
    # an end-to-end check (CI runs every example).
    result = session.execute(FRAUD_GQL)
    pairs = [(r["A"], r["B"]) for r in result]
    assert pairs == [("Aretha", "Jay"), ("Dave", "Jay")], pairs
    heading("verified")
    print(f"fraud pairs: {pairs}")


if __name__ == "__main__":
    main()
