"""Selectors and cheapest paths on a road network (Section 7.1 extension).

The paper's research question: "What is the most scenic route to the
airport in at most 2 hours?" — an optimization objective under a path
constraint.  This example builds a small weighted road network and
answers it with the cheapest-path selectors plus bounded quantifiers.
"""

import _bootstrap  # noqa: F401

from repro import GraphBuilder, match
from repro.extensions import top_k_cheapest_paths


def build_roads():
    """A city road network: minutes to traverse, scenery score 0-10."""
    builder = GraphBuilder("roads")
    places = [
        ("home", "Place"), ("old_town", "Place"), ("river", "Place"),
        ("highway1", "Place"), ("highway2", "Place"), ("park", "Place"),
        ("airport", "Place"),
    ]
    for name, label in places:
        builder.node(name, label, name=name)
    roads = [
        ("r1", "home", "old_town", 20, 8),
        ("r2", "home", "highway1", 10, 1),
        ("r3", "old_town", "river", 25, 9),
        ("r4", "old_town", "park", 15, 7),
        ("r5", "highway1", "highway2", 30, 0),
        ("r6", "highway2", "airport", 25, 1),
        ("r7", "river", "park", 20, 10),
        ("r8", "park", "airport", 40, 6),
        ("r9", "river", "airport", 55, 9),
        ("r10", "highway1", "park", 20, 2),
    ]
    for rid, src, dst, minutes, scenery in roads:
        # scenery "cost" rewards scenic roads: 10 - score
        builder.directed(
            rid, src, dst, "Road",
            minutes=minutes, dullness=(10 - scenery), name=rid,
        )
    return builder.build()


def route_text(path, graph) -> str:
    stops = " -> ".join(graph.node(n)["name"] for n in path.node_ids)
    minutes = sum(graph.edge(e)["minutes"] for e in path.edge_ids)
    dullness = sum(graph.edge(e)["dullness"] for e in path.edge_ids)
    return f"{stops}  ({minutes} min, dullness {dullness})"


def main() -> None:
    graph = build_roads()
    print(f"road network: {graph}")

    print("\nfastest route home -> airport (ANY CHEAPEST COST minutes):")
    result = match(
        graph,
        "MATCH ANY CHEAPEST COST minutes p = "
        "(a WHERE a.name='home')-[r:Road]->*(b WHERE b.name='airport')",
    )
    for path in result.paths():
        if path.source_id == "home" and path.target_id == "airport":
            print("   ", route_text(path, graph))

    print("\nthree most scenic routes (TOP 3 CHEAPEST COST dullness):")
    for path in top_k_cheapest_paths(
        graph,
        "(a WHERE a.name='home')-[r:Road]->*(b WHERE b.name='airport')",
        k=3,
        cost_property="dullness",
    ):
        if path.source_id == "home" and path.target_id == "airport":
            print("   ", route_text(path, graph))

    print("\nmost scenic route within 2 hours (prefilter on total minutes):")
    result = match(
        graph,
        "MATCH TOP 5 CHEAPEST COST dullness p = "
        "(a WHERE a.name='home')-[r:Road]->*(b WHERE b.name='airport') "
        "WHERE SUM(r.minutes) <= 120",
    )
    candidates = [
        p for p in result.paths()
        if p.source_id == "home" and p.target_id == "airport"
    ]
    if candidates:
        best = min(candidates, key=lambda p: p.cost("dullness"))
        print("   ", route_text(best, graph))

    print("\nall shortest (fewest roads) for comparison:")
    result = match(
        graph,
        "MATCH ALL SHORTEST p = (a WHERE a.name='home')-[r:Road]->+"
        "(b WHERE b.name='airport')",
    )
    for path in result.paths():
        if path.source_id == "home" and path.target_id == "airport":
            print("   ", route_text(path, graph))


if __name__ == "__main__":
    main()
