"""A guided tour of every GPML construct the paper defines.

One short demonstration per language feature, in the paper's order:
node/edge patterns and label expressions (§4.1), concatenation and
orientations (§4.2, Figure 5), graph patterns (§4.3), quantifiers and
group variables (§4.4, Figure 6), union and multiset alternation (§4.5),
conditional variables (§4.6), graphical predicates (§4.7), restrictors
and selectors (§5, Figures 7-8), and the GQL RETURN surface.
"""

import _bootstrap  # noqa: F401

from repro import figure1_graph, match
from repro.gql import GqlSession


def show(title: str, query: str, render) -> None:
    graph = show.graph
    result = match(graph, query)
    print(f"\n--- {title}")
    print(f"    {query.strip()}")
    for line in render(result):
        print(f"      {line}")


def main() -> None:
    graph = figure1_graph()
    show.graph = graph

    show(
        "§4.1 node pattern with label and filter",
        "MATCH (x:Account WHERE x.isBlocked='no')",
        lambda r: [", ".join(sorted(row["x"]["owner"] for row in r))],
    )
    show(
        "§4.1 label disjunction",
        "MATCH (x:Account|IP)",
        lambda r: [f"{len(r)} elements"],
    )
    show(
        "§4.1 label conjunction (c2 is both City and Country)",
        "MATCH (c:City&Country)",
        lambda r: [row["c"]["name"] for row in r],
    )
    show(
        "§4.1 edge pattern",
        "MATCH -[e:Transfer WHERE e.amount>5M]->",
        lambda r: [", ".join(sorted(row["e"].id for row in r))],
    )
    show(
        "§4.2 concatenation with orientations (undirected then directed)",
        "MATCH (p:Phone)~[:hasPhone]~(a:Account)-[t:Transfer]->(b)",
        lambda r: [f"{len(r)} bindings"],
    )
    show(
        "§4.2 equi-join by variable reuse (transfer triangles)",
        "MATCH (s)-[:Transfer]->(s1)-[:Transfer]->(s2)-[:Transfer]->(s)",
        lambda r: [
            " / ".join(
                "-".join((row["s"].id, row["s1"].id, row["s2"].id)) for row in r
            )
        ],
    )
    show(
        "§4.3 graph pattern (three path patterns joined on s)",
        "MATCH (s:Account)-[:signInWithIP]-(), "
        "(s)-[t:Transfer WHERE t.amount>1M]->(), "
        "(s)~[:hasPhone]~(p:Phone WHERE p.isBlocked='no')",
        lambda r: [", ".join(sorted({row["s"]["owner"] for row in r}))],
    )
    show(
        "§4.4 quantifier with group-variable aggregate",
        "MATCH (a:Account) [()-[t:Transfer]->() WHERE t.amount>1M]{2,5} (b:Account)"
        " WHERE SUM(t.amount)>10M",
        lambda r: [f"{len(r)} chains; longest {max(len(row['t']) for row in r)} hops"],
    )
    show(
        "§4.5 path pattern union (set semantics)",
        "MATCH (c:City) | (c:Country)",
        lambda r: [", ".join(sorted(row["c"].id for row in r))],
    )
    show(
        "§4.5 multiset alternation (c2 kept twice)",
        "MATCH (c:City) |+| (c:Country)",
        lambda r: [", ".join(sorted(row["c"].id for row in r))],
    )
    show(
        "§4.6 conditional variables via ?",
        "MATCH (x:Account)-[:Transfer]->(y:Account) [~[:hasPhone]~(p)]? "
        "WHERE y.isBlocked='yes' OR p.isBlocked='yes'",
        lambda r: [f"{len(r)} rows (with and without the optional phone)"],
    )
    show(
        "§4.7 graphical predicates",
        "MATCH (s)-[e:Transfer]-(d) WHERE s IS SOURCE OF e AND ALL_DIFFERENT(s, d)",
        lambda r: [f"{len(r)} forward traversals"],
    )
    show(
        "§5.1 TRAIL restrictor (the paper's three Dave->Aretha trails)",
        "MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
        "(b WHERE b.owner='Aretha')",
        lambda r: [str(p) for p in sorted(r.paths(), key=lambda p: p.length)],
    )
    show(
        "§5.1 ALL SHORTEST selector",
        "MATCH ALL SHORTEST p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
        "(b WHERE b.owner='Aretha')",
        lambda r: [str(p) for p in r.paths()],
    )
    show(
        "§6 the running example (two reduced path bindings)",
        "MATCH TRAIL (a WHERE a.owner='Jay')"
        " [-[b:Transfer WHERE b.amount>5M]->]+"
        " (a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]",
        lambda r: [str(p) for p in sorted(r.paths(), key=lambda p: p.length)],
    )

    # The GQL host surface ------------------------------------------------
    print("\n--- GQL host: RETURN / ORDER BY / aggregation")
    session = GqlSession(graph)
    result = session.execute(
        "MATCH (a:Account)-[t:Transfer]->(b) "
        "RETURN a.owner AS sender, COUNT(b) AS transfers, SUM(t.amount) AS total "
        "ORDER BY total DESC LIMIT 3"
    )
    for record in result:
        print(
            f"      {record['sender']:8} {record['transfers']} transfers, "
            f"{record['total']:>12,}"
        )


if __name__ == "__main__":
    main()
