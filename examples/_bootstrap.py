"""Make the examples runnable from a source checkout without installing.

``python examples/quickstart.py`` works either with ``pip install -e .``
or straight from the repository (this shim adds ``src/`` to sys.path).
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
