"""Quickstart: build a graph, run GPML patterns, read the results.

Walks through the core API in five minutes:

1. build a property graph with :class:`GraphBuilder`,
2. run MATCH statements with :func:`match`,
3. read nodes/edges/paths from the result rows,
4. see restrictors and selectors bound an unbounded search,
5. stream rows lazily with :func:`match_iter` / :func:`first` /
   :func:`exists` (early termination stops the search itself),
6. inspect the execution plan with :func:`explain`.
"""

import _bootstrap  # noqa: F401

from itertools import islice

from repro import GraphBuilder, exists, first, match, match_iter
from repro.gpml.explain import explain


def main() -> None:
    # 1. A little social-payments graph ------------------------------
    graph = (
        GraphBuilder("payments")
        .node("alice", "Person", name="Alice", city="Ankh-Morpork")
        .node("bob", "Person", name="Bob", city="Ankh-Morpork")
        .node("carol", "Person", name="Carol", city="Zembla")
        .node("dave", "Person", name="Dave", city="Zembla")
        .directed("p1", "alice", "bob", "Paid", amount=30)
        .directed("p2", "bob", "carol", "Paid", amount=45)
        .directed("p3", "carol", "alice", "Paid", amount=20)
        .directed("p4", "carol", "dave", "Paid", amount=90)
        .undirected("f1", "alice", "carol", "Friend")
        .build()
    )
    print(f"graph: {graph}")

    # 2. Node patterns ------------------------------------------------
    result = match(graph, "MATCH (p:Person WHERE p.city='Ankh-Morpork')")
    print("\npeople in Ankh-Morpork:")
    for row in result:
        print("   ", row["p"]["name"])

    # 3. Path patterns: who paid whom, with the amounts ---------------
    result = match(graph, "MATCH (a:Person)-[t:Paid WHERE t.amount > 25]->(b)")
    print("\npayments over 25:")
    for row in result:
        print(f"    {row['a']['name']} -> {row['b']['name']}: {row['t']['amount']}")

    # 4. Unbounded patterns need a restrictor or selector -------------
    result = match(
        graph,
        "MATCH TRAIL p = (a WHERE a.name='Alice')-[:Paid]->+(b)",
    )
    print("\npayment chains from Alice (TRAIL bounds the search):")
    for row in sorted(result, key=lambda r: r["p"].length):
        chain = " -> ".join(graph.node(n)["name"] for n in row["p"].node_ids)
        print(f"    {chain}")

    shortest = match(
        graph,
        "MATCH ANY SHORTEST p = (a WHERE a.name='Alice')-[:Paid]->+"
        "(b WHERE b.name='Dave')",
    )
    print("\nshortest payment route Alice -> Dave:")
    for row in shortest:
        print("   ", row["p"])

    # 5. Streaming: pull rows lazily, stop the search early ------------
    # match_iter yields rows as the search discovers them; first/exists
    # push a one-row budget down into the search, so probing a huge
    # graph costs a handful of edge expansions, not a full enumeration.
    stream = match_iter(graph, "MATCH (a:Person)-[t:Paid]->(b)")
    print("\nfirst two payments, streamed (search stops after two):")
    for row in islice(stream, 2):
        print(f"    {row['a']['name']} -> {row['b']['name']}")

    print("\nis anyone paid by two different people? ->",
          exists(graph, "MATCH (x)-[:Paid]->(b)<-[:Paid]-(y) "
                        "WHERE x.name <> y.name"))
    probe = first(graph, "MATCH (a)-[:Paid]->(b WHERE b.city='Zembla')")
    print("first payment into Zembla:",
          f"{probe['a']['name']} -> {probe['b']['name']}" if probe else None)

    # 6. What will the engine do? --------------------------------------
    # The plan ends with the pipeline: which stages stream, which block.
    print("\nexecution plan for the shortest-route query:")
    print(
        explain(
            "MATCH ANY SHORTEST p = (a WHERE a.name='Alice')-[:Paid]->+"
            "(b WHERE b.name='Dave')"
        )
    )


if __name__ == "__main__":
    main()
