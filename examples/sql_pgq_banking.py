"""SQL/PGQ end to end: tables -> CREATE PROPERTY GRAPH -> GRAPH_TABLE.

Reproduces the Figure 2 / Figure 9 dataflow: start from relational
banking tables, define a property-graph view over them with DDL, query
the view with GPML inside GRAPH_TABLE, and compose the result with
ordinary relational operators (the SELECT around GRAPH_TABLE).
"""

import _bootstrap  # noqa: F401

from repro.pgq import Catalog, Table

ACCOUNTS = Table(
    ["ID", "owner", "isBlocked"],
    [
        ("a1", "Scott", "no"),
        ("a2", "Aretha", "no"),
        ("a3", "Mike", "no"),
        ("a4", "Jay", "yes"),
        ("a5", "Charles", "no"),
        ("a6", "Dave", "no"),
    ],
    name="Account",
)

TRANSFERS = Table(
    ["ID", "A_ID1", "A_ID2", "date", "amount"],
    [
        ("t1", "a1", "a3", "1/1/2020", 8_000_000),
        ("t2", "a3", "a2", "2/1/2020", 10_000_000),
        ("t3", "a2", "a4", "3/1/2020", 10_000_000),
        ("t4", "a4", "a6", "4/1/2020", 10_000_000),
        ("t5", "a6", "a3", "6/1/2020", 10_000_000),
        ("t6", "a6", "a5", "7/1/2020", 4_000_000),
        ("t7", "a3", "a5", "8/1/2020", 6_000_000),
        ("t8", "a5", "a1", "9/1/2020", 9_000_000),
    ],
    name="Transfer",
)

DDL = """
CREATE PROPERTY GRAPH bank
VERTEX TABLES (
  Account KEY (ID) LABEL Account PROPERTIES (owner, isBlocked)
)
EDGE TABLES (
  Transfer KEY (ID) SOURCE KEY (A_ID1) REFERENCES Account
    DESTINATION KEY (A_ID2) REFERENCES Account
    LABEL Transfer PROPERTIES (date, amount)
)
"""


def main() -> None:
    # 1. Relational schema (Figure 2's tables) ------------------------
    catalog = Catalog()
    catalog.register_table("Account", ACCOUNTS)
    catalog.register_table("Transfer", TRANSFERS)
    print("base table Account:")
    print(ACCOUNTS.pretty())

    # 2. Graph view over the tables -----------------------------------
    graph = catalog.execute(DDL)
    print(f"\ngraph view: {graph}")

    # 3. GRAPH_TABLE: GPML inside SQL (Figure 9, left) ------------------
    from repro.pgq import graph_table

    chains = graph_table(
        graph,
        "MATCH TRAIL (a WHERE a.owner='Dave')-[e:Transfer]->*"
        "(b WHERE b.owner='Aretha') "
        "COLUMNS (a.owner AS source, b.owner AS target, "
        "COUNT(e) AS hops, SUM(e.amount) AS moved, LISTAGG(e, ' > ') AS route)",
    )
    print("\nGRAPH_TABLE result (transfer trails Dave -> Aretha):")
    print(chains.pretty())

    # 4. SQL composition around the operator ---------------------------
    summary = (
        graph_table(
            graph,
            "MATCH (a:Account)-[t:Transfer]->(b:Account) "
            "COLUMNS (a.owner AS sender, t.amount AS amount)",
        )
        .group_by(["sender"], {"n": ("COUNT", "*"), "total": ("SUM", "amount")})
        .order_by(["total"], descending=True)
    )
    print("\noutgoing-transfer summary (GROUP BY around GRAPH_TABLE):")
    print(summary.pretty())

    # 5. The inverse direction: graph -> label-combination relations ---
    from repro.pgq import tabular_representation

    tables = tabular_representation(graph)
    print("\ntabular representation of the view (Figure 2 direction):")
    for name, table in tables.items():
        print(f"    {name}: {len(table)} rows, columns {list(table.columns)}")


if __name__ == "__main__":
    main()
