"""SQL/PGQ end to end: tables -> CREATE PROPERTY GRAPH -> SQL with GRAPH_TABLE.

Reproduces the Figure 2 / Figure 9 dataflow on the real SQL host engine:
start from relational banking tables, define a property-graph view over
them with DDL, then run actual SQL statements whose FROM clause nests
GPML inside GRAPH_TABLE — joins back to the base tables, grouping and
ordering around the operator, and EXPLAIN showing the relational plan
with the embedded streaming GPML pipeline (including the WHERE predicate
pushed through GRAPH_TABLE into the MATCH).
"""

import _bootstrap  # noqa: F401

from repro.pgq import Table, tabular_representation
from repro.sql import Database

ACCOUNTS = Table(
    ["ID", "owner", "isBlocked"],
    [
        ("a1", "Scott", "no"),
        ("a2", "Aretha", "no"),
        ("a3", "Mike", "no"),
        ("a4", "Jay", "yes"),
        ("a5", "Charles", "no"),
        ("a6", "Dave", "no"),
    ],
    name="Account",
)

TRANSFERS = Table(
    ["ID", "A_ID1", "A_ID2", "date", "amount"],
    [
        ("t1", "a1", "a3", "1/1/2020", 8_000_000),
        ("t2", "a3", "a2", "2/1/2020", 10_000_000),
        ("t3", "a2", "a4", "3/1/2020", 10_000_000),
        ("t4", "a4", "a6", "4/1/2020", 10_000_000),
        ("t5", "a6", "a3", "6/1/2020", 10_000_000),
        ("t6", "a6", "a5", "7/1/2020", 4_000_000),
        ("t7", "a3", "a5", "8/1/2020", 6_000_000),
        ("t8", "a5", "a1", "9/1/2020", 9_000_000),
    ],
    name="Transfer",
)

DDL = """
CREATE PROPERTY GRAPH bank
VERTEX TABLES (
  Account KEY (ID) LABEL Account PROPERTIES (owner, isBlocked)
)
EDGE TABLES (
  Transfer KEY (ID) SOURCE KEY (A_ID1) REFERENCES Account
    DESTINATION KEY (A_ID2) REFERENCES Account
    LABEL Transfer PROPERTIES (date, amount)
)
"""


def main() -> None:
    # 1. Relational schema (Figure 2's tables) ------------------------
    database = Database()
    database.register_table("Account", ACCOUNTS)
    database.register_table("Transfer", TRANSFERS)
    print("base table Account:")
    print(ACCOUNTS.pretty())

    # 2. Graph view over the tables (DDL through the SQL engine) ------
    graph = database.execute(DDL)
    print(f"\ngraph view: {graph}")

    # 3. GRAPH_TABLE in FROM: GPML inside SQL (Figure 9, left) --------
    chains = database.execute("""
        SELECT gt.source, gt.target, gt.hops, gt.moved, gt.route
        FROM GRAPH_TABLE(bank
          MATCH TRAIL (a WHERE a.owner='Dave')-[e:Transfer]->*
                (b WHERE b.owner='Aretha')
          COLUMNS (a.owner AS source, b.owner AS target,
                   COUNT(e) AS hops, SUM(e.amount) AS moved,
                   LISTAGG(e, ' > ') AS route)
        ) AS gt
    """)
    print("\ntransfer trails Dave -> Aretha (SELECT over GRAPH_TABLE):")
    print(chains.pretty())

    # 4. SQL composition: JOIN back to a base table, GROUP BY, HAVING --
    summary = database.execute("""
        SELECT gt.sender, acc.isBlocked, COUNT(*) AS n, SUM(gt.amount) AS total
        FROM GRAPH_TABLE(bank
          MATCH (a:Account)-[t:Transfer]->(b:Account)
          COLUMNS (a.owner AS sender, t.amount AS amount)
        ) AS gt
        JOIN Account AS acc ON acc.owner = gt.sender
        GROUP BY gt.sender, acc.isBlocked
        HAVING SUM(gt.amount) >= 9000000
        ORDER BY total DESC, sender
    """)
    print("\noutgoing-transfer summary (JOIN + GROUP BY around GRAPH_TABLE):")
    print(summary.pretty())

    # 5. Cross-model pushdown: the WHERE predicate and the row budget
    #    travel through GRAPH_TABLE into the streaming NFA search ------
    query = """
        SELECT gt.target
        FROM GRAPH_TABLE(bank
          MATCH (a:Account)-[t:Transfer]->(b:Account)
          COLUMNS (a.owner AS source, b.owner AS target)
        ) AS gt
        WHERE gt.source = 'Mike'
        LIMIT 1
    """
    print("\nEXPLAIN (relational plan with the embedded GPML pipeline):")
    print(database.explain(query))
    print("\nresult:")
    print(database.execute(query).pretty())

    # 6. The inverse direction: graph -> label-combination relations ---
    tables = tabular_representation(graph)
    print("\ntabular representation of the view (Figure 2 direction):")
    for name, table in tables.items():
        print(f"    {name}: {len(table)} rows, columns {list(table.columns)}")


if __name__ == "__main__":
    main()
