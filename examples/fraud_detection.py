"""Fraud detection on the paper's banking graph (Figure 1).

Runs the paper's own motivating queries end to end: blocked accounts,
suspicious transfer chains, shared phones, the Ankh-Morpork pattern of
Figure 4, and the Section 6 running example — printing the bindings the
paper states.
"""

import _bootstrap  # noqa: F401

from repro import figure1_graph, match
from repro.values import is_null


def heading(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    graph = figure1_graph()
    print(f"Figure 1 banking graph: {graph}")

    heading("blocked accounts (Figure 3a)")
    for row in match(graph, "MATCH (x:Account WHERE x.isBlocked='yes')"):
        print(f"    {row['x'].id}: {row['x']['owner']}")

    heading("large transfers (Section 4, amount > 5M)")
    for row in match(graph, "MATCH (x)-[e:Transfer WHERE e.amount>5M]->(y)"):
        print(
            f"    {row['x']['owner']:8} -> {row['y']['owner']:8} "
            f"{row['e']['amount']:>12,}"
        )

    heading("accounts sharing a phone across a transfer (Section 4.2)")
    result = match(
        graph,
        "MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->"
        "(d:Account)~[:hasPhone]~(p)",
    )
    for row in result:
        print(
            f"    phone {row['p'].id}: {row['s']['owner']} paid "
            f"{row['d']['owner']} ({row['t'].id})"
        )

    heading("Figure 4: fraudulent accounts in Ankh-Morpork")
    result = match(
        graph,
        "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
        "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
        "(y:Account WHERE y.isBlocked='yes'), "
        "TRAIL p = (x)-[:Transfer]->+(y)",
    )
    for row in result:
        print(f"    {row['x']['owner']} -> {row['y']['owner']} via {row['p']}")

    heading("money-laundering loops from Jay (Section 6 running example)")
    result = match(
        graph,
        "MATCH TRAIL (a WHERE a.owner='Jay')"
        " [-[b:Transfer WHERE b.amount>5M]->]+"
        " (a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]",
    )
    for row in result:
        hops = [e.id for e in row["b"]]
        print(f"    loop of {len(hops)} transfers {hops}, located in {row['c']['name']}")

    heading("optional evidence: transfers to risky destinations (Section 4.6)")
    result = match(
        graph,
        "MATCH (x:Account)-[:Transfer]->(y:Account) [~[:hasPhone]~(p)]? "
        "WHERE y.isBlocked='yes' OR p.isBlocked='yes'",
    )
    for row in result:
        phone = "no phone on record" if is_null(row["p"]) else f"phone {row['p'].id}"
        print(f"    {row['x']['owner']} -> {row['y']['owner']} ({phone})")

    heading("who can reach the blocked account? (shortest evidence paths)")
    result = match(
        graph,
        "MATCH ANY SHORTEST p = (x:Account WHERE x.isBlocked='no')"
        "-[:Transfer]->+(y:Account WHERE y.isBlocked='yes')",
    )
    for row in sorted(result, key=lambda r: r["p"].length):
        print(f"    {row['x']['owner']:8} reaches Jay in {row['p'].length} hops: {row['p']}")


if __name__ == "__main__":
    main()
