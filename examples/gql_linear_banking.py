"""GQL linear queries on the banking graph: MATCH → LET → FILTER → MATCH.

Walks the statement-pipeline surface end to end on the paper's Figure 1
banking graph:

1. a chained two-MATCH pipeline (the second search is *seeded* from the
   variable bound by the first),
2. LET and FILTER transforming the working table between matches,
3. OPTIONAL MATCH NULL-padding rows without join partners,
4. EXPLAIN showing per-statement execution modes and the
   [streaming]/[blocking] classification,
5. streaming early termination: LIMIT 1 stops the *first* statement's
   NFA search through the whole chain (shown on step counters).
"""

import _bootstrap  # noqa: F401

from repro import figure1_graph
from repro.gpml import PipelineStats
from repro.gql import GqlSession

FRAUD_PIPELINE = """
    MATCH (a:Account WHERE a.isBlocked='no')-[t:Transfer]->(b:Account)
    LET millions = t.amount / 1000000
    FILTER millions >= 8
    MATCH (b)-[t2:Transfer]->(c:Account)
    RETURN a.owner AS src, b.owner AS mid, c.owner AS dst,
           millions, t2.amount / 1000000 AS hop2
"""


def main() -> None:
    session = GqlSession(figure1_graph())

    # 1./2. A three-hop money trail with LET + FILTER in the middle ----
    print("large transfers, extended one hop (MATCH→LET→FILTER→MATCH):")
    for record in session.execute(FRAUD_PIPELINE):
        print(f"    {record['src']} -{record['millions']:.0f}M-> "
              f"{record['mid']} -{record['hop2']:.0f}M-> {record['dst']}")

    # 3. OPTIONAL MATCH keeps rows that found no partner ---------------
    result = session.execute("""
        MATCH (a:Account)
        OPTIONAL MATCH (a)-[t:Transfer]->(blocked:Account WHERE blocked.isBlocked='yes')
        RETURN a.owner AS owner, blocked
    """)
    print("\nwho transfers into a blocked account? (NULL = nobody)")
    for record in result:
        target = record["blocked"]
        print(f"    {record['owner']:8s} -> "
              f"{target['owner'] if target else 'NULL'}")

    # 4. EXPLAIN: statement modes + streaming classification -----------
    print("\nEXPLAIN of the fraud pipeline:")
    print(session.explain(FRAUD_PIPELINE))

    # 5. LIMIT 1 cancels the whole chain early -------------------------
    full = PipelineStats()
    list(session.execute_iter(FRAUD_PIPELINE, stats=full))
    probed = PipelineStats()
    first = next(iter(session.execute_iter(FRAUD_PIPELINE + " LIMIT 1",
                                           stats=probed)))
    print(f"\nLIMIT 1 probe: {first['src']} -> {first['dst']} after "
          f"{probed.steps} matcher steps (full run: {full.steps})")
    assert probed.steps <= full.steps

    print("\nok")


if __name__ == "__main__":
    main()
