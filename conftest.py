"""Repository-level pytest configuration.

Makes ``src/`` importable even when the package is not installed (the
environment used for development has no network, so ``pip install -e .``
may be unavailable; a ``.pth`` shim or this hook covers both cases).
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
