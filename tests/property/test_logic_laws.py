"""Property tests: Kleene K3 laws for the three-valued logic."""

import hypothesis.strategies as st
from hypothesis import given

from repro.values import FALSE, TRUE, UNKNOWN, TruthValue

tv = st.sampled_from([TRUE, FALSE, UNKNOWN])


class TestKleeneLaws:
    @given(tv, tv)
    def test_commutativity(self, a, b):
        assert a.and_(b) is b.and_(a)
        assert a.or_(b) is b.or_(a)

    @given(tv, tv, tv)
    def test_associativity(self, a, b, c):
        assert a.and_(b.and_(c)) is a.and_(b).and_(c)
        assert a.or_(b.or_(c)) is a.or_(b).or_(c)

    @given(tv, tv, tv)
    def test_distributivity(self, a, b, c):
        assert a.and_(b.or_(c)) is a.and_(b).or_(a.and_(c))
        assert a.or_(b.and_(c)) is a.or_(b).and_(a.or_(c))

    @given(tv)
    def test_double_negation(self, a):
        assert a.not_().not_() is a

    @given(tv, tv)
    def test_de_morgan(self, a, b):
        assert a.and_(b).not_() is a.not_().or_(b.not_())
        assert a.or_(b).not_() is a.not_().and_(b.not_())

    @given(tv)
    def test_identity_elements(self, a):
        assert a.and_(TRUE) is a
        assert a.or_(FALSE) is a
        assert a.and_(FALSE) is FALSE
        assert a.or_(TRUE) is TRUE

    @given(tv)
    def test_unknown_absorbs_excluded_middle(self, a):
        # K3 has no excluded middle: a OR NOT a is UNKNOWN when a is
        law = a.or_(a.not_())
        if a is UNKNOWN:
            assert law is UNKNOWN
        else:
            assert law is TRUE

    @given(tv)
    def test_idempotence(self, a):
        assert a.and_(a) is a
        assert a.or_(a) is a
