"""Property test: the streaming API is indistinguishable from match().

For random graphs and a pool of random patterns,

* ``list(match_iter(g, q))`` equals ``match(g, q).rows`` — same rows in
  the same order under the engine's documented tie-break (deterministic
  discovery order per pattern, textual nested-loop order across
  patterns), and
* ``islice(match_iter(g, q), k)`` equals the first k rows of the
  materialized result, for every prefix length k,

and for GQL statement pipelines (chained MATCH / OPTIONAL MATCH / LET /
FILTER),

* a ``LIMIT k`` query (budget-cancelled through the whole chain) and an
  ``islice`` of the streaming iterator both equal the first k records of
  the full run, and
* seeded chained-MATCH execution produces the same bag of records as the
  hash-join fallback.
"""

from itertools import islice

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.errors import BudgetExceededError
from repro.graph import GraphBuilder
from repro.gpml import match, match_iter
from repro.gpml.matcher import MatcherConfig
from repro.gql.query import execute_gql_iter, parse_gql_query


@st.composite
def small_graphs(draw):
    """Graphs with <= 6 nodes, <= 10 edges, 2 labels, 1 int property."""
    num_nodes = draw(st.integers(min_value=1, max_value=6))
    builder = GraphBuilder("random")
    for i in range(num_nodes):
        label = draw(st.sampled_from(["A", "B"]))
        builder.node(f"n{i}", label, v=draw(st.integers(0, 3)))
    num_edges = draw(st.integers(min_value=0, max_value=10))
    for j in range(num_edges):
        src = f"n{draw(st.integers(0, num_nodes - 1))}"
        dst = f"n{draw(st.integers(0, num_nodes - 1))}"
        label = draw(st.sampled_from(["E", "F"]))
        if draw(st.booleans()):
            builder.directed(f"e{j}", src, dst, label, w=draw(st.integers(0, 3)))
        else:
            builder.undirected(f"e{j}", src, dst, label, w=draw(st.integers(0, 3)))
    return builder.build()


QUERIES = [
    "MATCH (x:A)",
    "MATCH (x)-[e]->(y)",
    "MATCH (x)-[e]-(y:B)",
    "MATCH (x)-[e:E]->(y)-[f]->(z)",
    "MATCH (a)-[e]->{1,2}(b)",
    "MATCH TRAIL p = (a)-[e]->*(b)",
    "MATCH ACYCLIC p = (a)-[e]-*(b)",
    "MATCH ANY SHORTEST p = (a)-[e]->*(b)",
    "MATCH ALL SHORTEST p = (a)-[e]->*(b)",
    "MATCH SHORTEST 2 GROUP p = (a)-[e]->*(b)",
    # Cheapest over the default edge cost (all 1.0): the engine's
    # k-cheapest search predates this PR in not terminating on
    # zero-cost cycles, so the corpus sticks to positive costs.
    "MATCH ANY CHEAPEST p = (a)-[e]->+(b)",
    "MATCH (x:A) |+| (x)",
    "MATCH (x) [-[e]->(y)]?",
    "MATCH (x)-[e]->(y), (y)-[f]-(z)",
    "MATCH (x WHERE x.v > 0)-[e]->(y) WHERE e.w = x.v",
    "MATCH TRAIL (a)-[e]->*(b) KEEP SHORTEST 2",
]

# Tight budgets keep pathological examples (dense multigraphs under
# unbounded quantifiers) cheap: they trip fast and assume() discards them.
CONFIG = MatcherConfig(max_steps=40_000, max_results=10_000)


def row_key(row):
    return (
        tuple(sorted((k, repr(v)) for k, v in row.values.items())),
        tuple(str(p) for p in row.paths),
    )


@given(small_graphs(), st.sampled_from(QUERIES))
@settings(max_examples=60, deadline=None)
def test_stream_equals_materialized(graph, query):
    try:
        materialized = [row_key(r) for r in match(graph, query, CONFIG).rows]
        streamed = [row_key(r) for r in match_iter(graph, query, CONFIG)]
    except BudgetExceededError:
        assume(False)
    assert streamed == materialized


@given(small_graphs(), st.sampled_from(QUERIES), st.integers(min_value=0, max_value=8))
@settings(max_examples=60, deadline=None)
def test_prefix_equals_materialized_prefix(graph, query, k):
    try:
        full = [row_key(r) for r in match(graph, query, CONFIG).rows]
        sliced = [row_key(r) for r in islice(match_iter(graph, query, CONFIG), k)]
        limited = [row_key(r) for r in match_iter(graph, query, CONFIG, limit=k)]
    except BudgetExceededError:
        assume(False)
    assert sliced == full[:k]
    assert limited == full[:k]


# ----------------------------------------------------------------------
# GQL statement pipelines (chained MATCH / OPTIONAL MATCH / LET / FILTER)
# ----------------------------------------------------------------------
GQL_PIPELINES = [
    "MATCH (x)-[e]->(y) MATCH (y)-[f]->(z) RETURN x, e, z",
    "MATCH (x)-[e]->(y) MATCH (z:B)-[f]->(y) RETURN x, y, z",
    "MATCH (x:A)-[e]->(y) OPTIONAL MATCH (y)-[f:F]->(z) RETURN x, y, z",
    "MATCH (x)-[e]->(y) LET s = x.v + y.v FILTER s > 1 "
    "MATCH (y)-[f]-(z WHERE z.v < 3) RETURN x, z, s",
    "MATCH (x)-[e]->(y) MATCH (y)-[f]->(z) WHERE z.v >= x.v RETURN x, z",
    "MATCH (x)-[e]->(y) "
    "MATCH ANY SHORTEST p = (y)-[f]->*(w:B) RETURN x, w, length(p) AS len",
    "MATCH (x)-[e]->(y) MATCH TRAIL (y)-[f]->*(z) KEEP SHORTEST 2 RETURN x, z",
    "MATCH (x:A) MATCH (y:B) RETURN x, y",
    "MATCH (x)-[e]->(y) MATCH (y)-[f]->(z) RETURN DISTINCT x, z",
]

SEEDED = MatcherConfig(max_steps=40_000, max_results=10_000)
HASH_ONLY = MatcherConfig(
    max_steps=40_000, max_results=10_000, seed_chained_match=False
)


def record_key(record):
    return tuple(sorted((name, repr(value)) for name, value in record.items()))


@given(
    small_graphs(),
    st.sampled_from(GQL_PIPELINES),
    st.integers(min_value=0, max_value=6),
)
@settings(max_examples=60, deadline=None)
def test_gql_pipeline_stream_equals_materialized(graph, query, k):
    try:
        full = [record_key(r) for r in execute_gql_iter(graph, query, SEEDED)]
        limited = [
            record_key(r)
            for r in execute_gql_iter(graph, query + f" LIMIT {k}", SEEDED)
        ]
        sliced = [
            record_key(r) for r in islice(execute_gql_iter(graph, query, SEEDED), k)
        ]
    except BudgetExceededError:
        assume(False)
    assert limited == full[:k]
    assert sliced == full[:k]


@given(small_graphs(), st.sampled_from(GQL_PIPELINES))
@settings(max_examples=60, deadline=None)
def test_gql_pipeline_seeded_equals_hash_join(graph, query):
    parsed = parse_gql_query(query)
    try:
        seeded = [record_key(r) for r in execute_gql_iter(graph, parsed, SEEDED)]
        hashed = [record_key(r) for r in execute_gql_iter(graph, parsed, HASH_ONLY)]
    except BudgetExceededError:
        assume(False)
    assert sorted(seeded) == sorted(hashed)
