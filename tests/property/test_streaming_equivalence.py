"""Property test: the streaming API is indistinguishable from match().

For random graphs and a pool of random patterns,

* ``list(match_iter(g, q))`` equals ``match(g, q).rows`` — same rows in
  the same order under the engine's documented tie-break (deterministic
  discovery order per pattern, textual nested-loop order across
  patterns), and
* ``islice(match_iter(g, q), k)`` equals the first k rows of the
  materialized result, for every prefix length k.
"""

from itertools import islice

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.errors import BudgetExceededError
from repro.graph import GraphBuilder
from repro.gpml import match, match_iter
from repro.gpml.matcher import MatcherConfig


@st.composite
def small_graphs(draw):
    """Graphs with <= 6 nodes, <= 10 edges, 2 labels, 1 int property."""
    num_nodes = draw(st.integers(min_value=1, max_value=6))
    builder = GraphBuilder("random")
    for i in range(num_nodes):
        label = draw(st.sampled_from(["A", "B"]))
        builder.node(f"n{i}", label, v=draw(st.integers(0, 3)))
    num_edges = draw(st.integers(min_value=0, max_value=10))
    for j in range(num_edges):
        src = f"n{draw(st.integers(0, num_nodes - 1))}"
        dst = f"n{draw(st.integers(0, num_nodes - 1))}"
        label = draw(st.sampled_from(["E", "F"]))
        if draw(st.booleans()):
            builder.directed(f"e{j}", src, dst, label, w=draw(st.integers(0, 3)))
        else:
            builder.undirected(f"e{j}", src, dst, label, w=draw(st.integers(0, 3)))
    return builder.build()


QUERIES = [
    "MATCH (x:A)",
    "MATCH (x)-[e]->(y)",
    "MATCH (x)-[e]-(y:B)",
    "MATCH (x)-[e:E]->(y)-[f]->(z)",
    "MATCH (a)-[e]->{1,2}(b)",
    "MATCH TRAIL p = (a)-[e]->*(b)",
    "MATCH ACYCLIC p = (a)-[e]-*(b)",
    "MATCH ANY SHORTEST p = (a)-[e]->*(b)",
    "MATCH ALL SHORTEST p = (a)-[e]->*(b)",
    "MATCH SHORTEST 2 GROUP p = (a)-[e]->*(b)",
    # Cheapest over the default edge cost (all 1.0): the engine's
    # k-cheapest search predates this PR in not terminating on
    # zero-cost cycles, so the corpus sticks to positive costs.
    "MATCH ANY CHEAPEST p = (a)-[e]->+(b)",
    "MATCH (x:A) |+| (x)",
    "MATCH (x) [-[e]->(y)]?",
    "MATCH (x)-[e]->(y), (y)-[f]-(z)",
    "MATCH (x WHERE x.v > 0)-[e]->(y) WHERE e.w = x.v",
    "MATCH TRAIL (a)-[e]->*(b) KEEP SHORTEST 2",
]

# Tight budgets keep pathological examples (dense multigraphs under
# unbounded quantifiers) cheap: they trip fast and assume() discards them.
CONFIG = MatcherConfig(max_steps=40_000, max_results=10_000)


def row_key(row):
    return (
        tuple(sorted((k, repr(v)) for k, v in row.values.items())),
        tuple(str(p) for p in row.paths),
    )


@given(small_graphs(), st.sampled_from(QUERIES))
@settings(max_examples=60, deadline=None)
def test_stream_equals_materialized(graph, query):
    try:
        materialized = [row_key(r) for r in match(graph, query, CONFIG).rows]
        streamed = [row_key(r) for r in match_iter(graph, query, CONFIG)]
    except BudgetExceededError:
        assume(False)
    assert streamed == materialized


@given(small_graphs(), st.sampled_from(QUERIES), st.integers(min_value=0, max_value=8))
@settings(max_examples=60, deadline=None)
def test_prefix_equals_materialized_prefix(graph, query, k):
    try:
        full = [row_key(r) for r in match(graph, query, CONFIG).rows]
        sliced = [row_key(r) for r in islice(match_iter(graph, query, CONFIG), k)]
        limited = [row_key(r) for r in match_iter(graph, query, CONFIG, limit=k)]
    except BudgetExceededError:
        assume(False)
    assert sliced == full[:k]
    assert limited == full[:k]
