"""Property test: pretty-printing a parsed query re-parses to a fixpoint.

A random pattern-AST generator builds queries covering the full grammar
(orientations, labels, quantifiers, unions, optionals, restrictors,
selectors); parsing then printing must reach a syntactic fixpoint, and
both texts must produce identical results on the banking graph when the
query is executable.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.datasets import figure1_graph
from repro.errors import GpmlAnalysisError
from repro.gpml import match
from repro.gpml.parser import parse_match
from repro.gpml.matcher import MatcherConfig

_FIG1 = figure1_graph()
_CONFIG = MatcherConfig(max_steps=300_000, max_results=60_000)

_VARS = ["a", "b", "c", "x", "y"]
_LABELS = ["Account", "Phone", "Transfer", "hasPhone", "City"]
_ARROWS = ["->", "<-", "~", "<~", "~>", "<->", "-"]


@st.composite
def node_patterns(draw):
    var = draw(st.sampled_from(_VARS + [""]))
    label = draw(st.sampled_from(_LABELS + [""]))
    parts = var
    if label:
        parts += f":{label}"
    return f"({parts})"


@st.composite
def edge_patterns(draw):
    arrow = draw(st.sampled_from(_ARROWS))
    if draw(st.booleans()):
        return arrow
    var = draw(st.sampled_from(["e", "f", ""]))
    label = draw(st.sampled_from(_LABELS + [""]))
    spec = var + (f":{label}" if label else "")
    full = {
        "->": "-[{}]->", "<-": "<-[{}]-", "~": "~[{}]~",
        "<~": "<~[{}]~", "~>": "~[{}]~>", "<->": "<-[{}]->", "-": "-[{}]-",
    }[arrow]
    return full.format(spec)


@st.composite
def concatenations(draw, depth=0):
    parts = [draw(node_patterns())]
    for _ in range(draw(st.integers(0, 2))):
        edge = draw(edge_patterns())
        if depth < 1 and draw(st.integers(0, 4)) == 0:
            inner = draw(concatenations(depth=depth + 1))
            lower = draw(st.integers(0, 2))
            upper = lower + draw(st.integers(0, 2))
            parts.append(f"[{inner}]{{{lower},{upper}}}")
        else:
            parts.append(edge)
        parts.append(draw(node_patterns()))
    return " ".join(parts)


@st.composite
def path_patterns(draw):
    body = draw(concatenations())
    if draw(st.booleans()):
        other = draw(concatenations())
        op = draw(st.sampled_from(["|", "|+|"]))
        body = f"{body} {op} {other}"
    head = draw(st.sampled_from(["", "TRAIL ", "ACYCLIC ", "SIMPLE ",
                                 "ANY SHORTEST ", "ALL SHORTEST ", "ANY 2 "]))
    return head + body


@st.composite
def queries(draw):
    paths = [draw(path_patterns())]
    if draw(st.integers(0, 3)) == 0:
        paths.append(draw(path_patterns()))
    return "MATCH " + ", ".join(paths)


@given(queries())
@settings(max_examples=150, deadline=None)
def test_pretty_print_fixpoint(query):
    first = parse_match(query)
    printed = str(first)
    second = parse_match(printed)
    assert str(second) == printed


@given(queries())
@settings(max_examples=60, deadline=None)
def test_printed_query_runs_identically(query):
    try:
        original = match(_FIG1, query, _CONFIG)
    except GpmlAnalysisError:
        return  # the random query is illegal; fixpoint already checked
    printed = str(parse_match(query))
    again = match(_FIG1, printed, _CONFIG)
    assert sorted(str(p) for row in original.rows for p in row.paths) == sorted(
        str(p) for row in again.rows for p in row.paths
    )
