"""Differential property test: automaton engine == Section 6 reference.

The production matcher (product-graph search) and the literal expansion
pipeline of Section 6 must produce identical reduced bindings on random
graphs for a pool of representative queries.  This is the strongest
correctness evidence in the suite: the two implementations share only the
parser, normalizer and reduction code.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graph import GraphBuilder
from repro.gpml import match
from repro.gpml.matcher import MatcherConfig
from repro.gpml.reference import ReferenceConfig, reference_match


@st.composite
def tiny_graphs(draw):
    """Graphs small enough for full rigid-pattern expansion."""
    num_nodes = draw(st.integers(min_value=1, max_value=4))
    builder = GraphBuilder("tiny")
    for i in range(num_nodes):
        builder.node(f"n{i}", draw(st.sampled_from(["A", "B"])), v=draw(st.integers(0, 2)))
    num_edges = draw(st.integers(min_value=0, max_value=6))
    for j in range(num_edges):
        src = f"n{draw(st.integers(0, num_nodes - 1))}"
        dst = f"n{draw(st.integers(0, num_nodes - 1))}"
        directed = draw(st.booleans())
        builder._graph.add_edge(
            f"e{j}", src, dst,
            labels=[draw(st.sampled_from(["E", "F"]))],
            properties={"w": draw(st.integers(0, 2))},
            directed=directed,
        )
    return builder.build()


QUERIES = [
    "MATCH (x:A)",
    "MATCH (x)-[e]->(y)",
    "MATCH (x)-[e]-(y:B)",
    "MATCH (x)~[e]~(y)",
    "MATCH (x)-[e:E]->(y)-[f]->(z)",
    "MATCH (x)-[e]->(x)",
    "MATCH (a)-[e]->{1,2}(b)",
    "MATCH (a) [(p)-[e]->(q) WHERE e.w > 0]{1,2} (b)",
    "MATCH TRAIL p = (a)-[e]->*(b)",
    "MATCH ACYCLIC p = (a)-[e]-*(b)",
    "MATCH SIMPLE p = (a)-[e]->*(b)",
    "MATCH (x:A) | (x:B)",
    "MATCH (x:A) |+| (x)",
    "MATCH (x) [-[e]->(y)]?",
    "MATCH (x)-[e]->(y), (y)-[f]-(z)",
    "MATCH (x WHERE x.v > 0)-[e]->(y) WHERE e.w = x.v",
]

MATCH_CONFIG = MatcherConfig(max_steps=500_000, max_results=100_000)
REF_CONFIG = ReferenceConfig(max_unroll=7)


def canon(result):
    rows = []
    for row in result.rows:
        values = tuple(sorted((k, repr(v)) for k, v in row.values.items()))
        paths = tuple(str(p) for p in row.paths)
        rows.append((values, paths))
    return sorted(rows)


@given(tiny_graphs(), st.sampled_from(QUERIES))
@settings(max_examples=120, deadline=None)
def test_engines_agree(graph, query):
    production = match(graph, query, MATCH_CONFIG)
    reference = reference_match(graph, query, REF_CONFIG)
    assert canon(production) == canon(reference)


@given(tiny_graphs())
@settings(max_examples=60, deadline=None)
def test_engines_agree_on_shortest(graph):
    query = "MATCH ALL SHORTEST p = (a)-[e]->*(b)"
    production = match(graph, query, MATCH_CONFIG)
    reference = reference_match(graph, query, REF_CONFIG)
    assert canon(production) == canon(reference)
