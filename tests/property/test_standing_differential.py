"""Differential property test: standing-query deltas vs from-scratch.

For random graphs and random mutation batches, every registered standing
query must satisfy two oracles after each batch's ``refresh()``:

* **view oracle** — the maintained view equals a from-scratch re-MATCH
  of the same query text on the mutated graph (bag equality over
  projected records);
* **replay oracle** — folding the emitted delta stream (added /
  retracted record instances) into the previous view reproduces the new
  view *exactly*: a retracted instance must have positive multiplicity
  in the view, so the deltas are sound as a changelog, not just as a
  diff hint.  The view is a multiset — the engine deduplicates on full
  walks, so distinct walks may project to identical records and each
  carries its own instance.

The query pool deliberately crosses the registration surface: a plain
filtered match, a chained OPTIONAL MATCH (NULL padding), an unbounded
``TRAIL`` pattern (depth ``None`` — the re-match region grows to the
touched component), and a budget-truncated registration whose limited
view must stay the canonical prefix of the full view.  The whole suite
runs in both engine modes, mirroring the ``REPRO_DISABLE_COLUMNAR=1``
CI leg.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpml.matcher import MatcherConfig
from repro.graph.model import PropertyGraph
from repro.gql import execute_gql
from repro.gql.standing import StandingQuery

QUERIES = [
    "MATCH (a:A WHERE a.v < 3)-[:E]->(b) RETURN a.v AS x, b.v AS y",
    "MATCH (a:A)-[:E]->(b) OPTIONAL MATCH (b)-[:E]->(c) "
    "RETURN a.v AS x, b.v AS y, c.v AS z",
    "MATCH TRAIL (a:A)-[:E]->*(b) RETURN a.v AS x, b.v AS y",
]
LIMITED = QUERIES[0]


def canon(rows):
    return sorted(tuple(sorted((k, repr(v)) for k, v in r.items())) for r in rows)


def record_key(record):
    return tuple(sorted((k, repr(v)) for k, v in record.items()))


@st.composite
def graph_and_batches(draw):
    graph = PropertyGraph("standing")
    num_nodes = draw(st.integers(min_value=2, max_value=5))
    for i in range(num_nodes):
        label = draw(st.sampled_from(["A", "B"]))
        graph.add_node(f"n{i}", labels=[label], properties={"v": draw(st.integers(0, 4))})
    for j in range(draw(st.integers(0, 6))):
        src = f"n{draw(st.integers(0, num_nodes - 1))}"
        dst = f"n{draw(st.integers(0, num_nodes - 1))}"
        graph.add_edge(f"e{j}", src, dst, labels=["E"])
    num_batches = draw(st.integers(min_value=1, max_value=3))
    batches = [
        draw(st.lists(mutation_ops(), min_size=1, max_size=4))
        for _ in range(num_batches)
    ]
    return graph, batches


def mutation_ops():
    return st.one_of(
        st.tuples(st.just("add_node"), st.sampled_from(["A", "B"]), st.integers(0, 4)),
        st.tuples(st.just("add_edge"), st.integers(0, 9), st.integers(0, 9)),
        st.tuples(st.just("set_v"), st.integers(0, 9), st.integers(0, 4)),
        st.tuples(st.just("flip_label"), st.integers(0, 9)),
        st.tuples(st.just("remove_edge"), st.integers(0, 9)),
        st.tuples(st.just("remove_node"), st.integers(0, 9)),
        st.tuples(st.just("dml_insert_pair"), st.integers(0, 4)),
    )


def apply_op(graph, op, counter):
    """Apply one mutation, tolerating targets that no longer exist."""
    nodes = sorted(graph.node_ids())
    edges = sorted(graph.edge_ids())
    kind = op[0]
    if kind == "add_node":
        graph.add_node(f"m{next(counter)}", labels=[op[1]], properties={"v": op[2]})
    elif kind == "add_edge" and nodes:
        graph.add_edge(
            f"f{next(counter)}",
            nodes[op[1] % len(nodes)],
            nodes[op[2] % len(nodes)],
            labels=["E"],
        )
    elif kind == "set_v" and nodes:
        graph.set_property(nodes[op[1] % len(nodes)], "v", op[2])
    elif kind == "flip_label" and nodes:
        node_id = nodes[op[1] % len(nodes)]
        current = graph.labels_of(node_id)
        graph.set_labels(node_id, {"B"} if "A" in current else {"A"})
    elif kind == "remove_edge" and edges:
        graph.remove_edge(edges[op[1] % len(edges)])
    elif kind == "remove_node" and nodes:
        graph.remove_node(nodes[op[1] % len(nodes)])
    elif kind == "dml_insert_pair":
        execute_gql(
            graph,
            f"INSERT (p:A {{v: {op[1]}}})-[:E]->(q:B {{v: {(op[1] + 1) % 5}}})",
        )


@pytest.mark.parametrize("use_columnar", [True, False], ids=["columnar", "oracle"])
@given(graph_and_batches())
@settings(max_examples=25, deadline=None)
def test_deltas_replay_to_scratch(use_columnar, gb):
    graph, batches = gb
    config = MatcherConfig(use_columnar=use_columnar)
    standing = [StandingQuery(graph, q, config=config) for q in QUERIES]
    limited = StandingQuery(graph, LIMITED, config=config, limit=2)
    views = [
        Counter(record_key(r) for r in sq.rows()) for sq in standing
    ]
    counter = iter(range(10_000))
    try:
        for sq, view in zip(standing, views):
            assert canon(sq.rows()) == canon(
                list(execute_gql(graph, sq.query_text, config=config))
            )
        for batch in batches:
            for op in batch:
                apply_op(graph, op, counter)
            for index, sq in enumerate(standing):
                delta = sq.refresh()
                view = views[index]
                for record in delta.retracted:
                    key = record_key(record)
                    assert view[key] > 0, "retracted an instance not in the view"
                    view[key] -= 1
                for record in delta.added:
                    view[record_key(record)] += 1
                scratch = canon(
                    list(execute_gql(graph, sq.query_text, config=config))
                )
                assert sorted(view.elements()) == scratch, "replayed deltas diverge"
                assert canon(sq.rows()) == scratch, "maintained view diverges"
            limited.refresh()
            full_rows = standing[0].rows()
            assert canon(limited.rows()) == canon(full_rows[:2])
    finally:
        for sq in standing:
            sq.close()
        limited.close()
