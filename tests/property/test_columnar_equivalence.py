"""Differential property test: columnar frontier == object matcher.

The frontier engine promises *exact* equivalence with the object-graph
matcher — same rows, same order, same step counts, same truncation
points under budgets — not just bag equality.  Random graphs cross a
pool of chain-shaped queries (the frontier's eligible fragment) plus
shapes the frontier must *decline* (quantifiers, alternation, selectors),
where both configurations fall back to the same engine and must still
agree.

Bag semantics are asserted via ordered row lists: order equality is
strictly stronger and is part of the engine's contract.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.gpml.engine import match, match_iter, prepare
from repro.gpml.matcher import MatcherConfig
from repro.gpml.streaming import PipelineStats
from repro.graph import GraphBuilder

COLUMNAR = MatcherConfig(max_steps=500_000, max_results=100_000, use_columnar=True)
ORACLE = MatcherConfig(max_steps=500_000, max_results=100_000, use_columnar=False)


@st.composite
def tiny_graphs(draw):
    """Small mixed-direction graphs with string and int properties."""
    num_nodes = draw(st.integers(min_value=1, max_value=5))
    builder = GraphBuilder("tiny")
    for i in range(num_nodes):
        builder.node(
            f"n{i}",
            draw(st.sampled_from(["A", "B"])),
            v=draw(st.integers(0, 2)),
            s=draw(st.sampled_from(["x", "y"])),
        )
    num_edges = draw(st.integers(min_value=0, max_value=8))
    for j in range(num_edges):
        src = f"n{draw(st.integers(0, num_nodes - 1))}"
        dst = f"n{draw(st.integers(0, num_nodes - 1))}"
        builder._graph.add_edge(
            f"e{j}", src, dst,
            labels=[draw(st.sampled_from(["E", "F"]))],
            properties={"w": draw(st.integers(0, 2))},
            directed=draw(st.booleans()),
        )
    return builder.build()


# Chain shapes (frontier-eligible) and ineligible shapes (shared
# fallback) — both must agree exactly between the two configurations.
QUERIES = [
    "MATCH (x)",
    "MATCH (x:A)",
    "MATCH (x:A WHERE x.v = 1)",
    "MATCH (x WHERE x.s = 'x')-[e]->(y)",
    "MATCH (x)-[e]->(y)",
    "MATCH (x)-[e]-(y:B)",
    "MATCH (x)~[e]~(y)",
    "MATCH (x)<-[e:E]-(y)",
    "MATCH (x)-[e:E]->(y)-[f]->(z)",
    "MATCH (x)-[e:E|F]->(y) WHERE e.w > x.v",
    "MATCH (x)-[e]->(x)",
    "MATCH (x:A)-[e WHERE e.w = 2]->(y:B)-[f]-(z)",
    "MATCH (x)-[e]->(y) WHERE x.v <> y.v",
    "MATCH p = (x:B)-[e]->(y)",
    # Frontier-ineligible shapes: both configs take the object engine.
    "MATCH (a)-[e]->{1,2}(b)",
    "MATCH (x:A) | (x:B)",
    "MATCH TRAIL p = (a)-[e]->*(b)",
]


def rows_of(result):
    return [
        (
            tuple(sorted((k, repr(v)) for k, v in row.values.items())),
            tuple(str(p) for p in row.paths),
        )
        for row in result.rows
    ]


@given(tiny_graphs(), st.sampled_from(QUERIES))
@settings(max_examples=120, deadline=None)
def test_columnar_matches_oracle(graph, query):
    columnar = match(graph, query, COLUMNAR)
    oracle = match(graph, query, ORACLE)
    assert rows_of(columnar) == rows_of(oracle)


@given(tiny_graphs(), st.sampled_from(QUERIES), st.integers(1, 4))
@settings(max_examples=80, deadline=None)
def test_columnar_matches_oracle_truncated(graph, query, limit):
    """Budget-truncated runs stop at the same row with the same steps.

    A full columnar run goes first: bounded queries only take the
    frontier when the snapshot and CSR blocks already exist (the budget
    gate), so without warming this would compare the oracle to itself.
    """
    prepared = prepare(query)
    for _ in match_iter(graph, prepared, COLUMNAR):
        pass
    results = {}
    for name, config in (("columnar", COLUMNAR), ("oracle", ORACLE)):
        stats = PipelineStats()
        rows = [
            tuple(sorted((k, repr(v)) for k, v in row.values.items()))
            for row in match_iter(graph, prepared, config, limit=limit, stats=stats)
        ]
        results[name] = (rows, stats.steps, stats.matches)
    assert results["columnar"] == results["oracle"]


@given(tiny_graphs(), st.sampled_from(QUERIES))
@settings(max_examples=60, deadline=None)
def test_columnar_step_parity(graph, query):
    """Full runs burn identical step/match budgets in both engines."""
    prepared = prepare(query)
    counters = {}
    for name, config in (("columnar", COLUMNAR), ("oracle", ORACLE)):
        stats = PipelineStats()
        for _ in match_iter(graph, prepared, config, stats=stats):
            pass
        counters[name] = (stats.steps, stats.matches)
    assert counters["columnar"] == counters["oracle"]


@given(tiny_graphs())
@settings(max_examples=40, deadline=None)
def test_columnar_agrees_after_mutation(graph):
    """The snapshot invalidates on mutation: results track graph edits."""
    query = "MATCH (x)-[e]->(y)"
    before = rows_of(match(graph, query, COLUMNAR))
    assert before == rows_of(match(graph, query, ORACLE))
    graph.add_node("extra", labels=["A"], properties={"v": 9, "s": "x"})
    graph.add_edge("eX", "extra", "n0", labels=["E"], directed=True)
    after = rows_of(match(graph, query, COLUMNAR))
    assert after == rows_of(match(graph, query, ORACLE))
    assert after != before
