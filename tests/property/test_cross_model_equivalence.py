"""Differential property test: cross-model optimizer on == off.

The rewrite rules (join-through-GRAPH_TABLE, common-subpattern sharing,
semi-join reduction) promise *result identity*: any combination of rules
produces the same bag of rows as the naive bound plan.  Random graphs
and probe tables cross a pool of join-heavy SQL statements — base-table
joins keyed on COLUMNS element and property outputs, multi-GRAPH_TABLE
joins with identical and prefix-related COLUMNS — and every rule subset
is compared against the rules-off oracle.

Rewrites may permute row order (a spool replays in enumeration order, a
seeded join emits in probe order), so equality is on bags; for ORDER BY
statements the sequence of sort-key prefixes must additionally match
exactly — ties may reorder, the ordering itself may not.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graph import GraphBuilder
from repro.pgq.table import Table
from repro.pgq.tabular import tabular_representation
from repro.sql import ALL_RULES, Database, SqlConfig

RULE_SUBSETS = sorted(
    (
        frozenset(rule for bit, rule in zip(bits, sorted(ALL_RULES)) if bit)
        for bits in [
            (a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)
        ]
    ),
    key=sorted,
)


@st.composite
def tiny_graphs(draw):
    """Small directed graphs: labels A/B on nodes, E/F on edges."""
    num_nodes = draw(st.integers(min_value=2, max_value=5))
    builder = GraphBuilder("tiny")
    for i in range(num_nodes):
        # n0/n1 pin both labels so every label scan has candidates.
        label = "A" if i == 0 else "B" if i == 1 else draw(st.sampled_from(["A", "B"]))
        builder.node(f"n{i}", label, v=draw(st.integers(0, 2)))
    num_edges = draw(st.integers(min_value=0, max_value=8))
    for j in range(num_edges):
        builder.directed(
            f"e{j}",
            f"n{draw(st.integers(0, num_nodes - 1))}",
            f"n{draw(st.integers(0, num_nodes - 1))}",
            draw(st.sampled_from(["E", "F"])),
            w=draw(st.integers(0, 2)),
        )
    return builder.build()


@st.composite
def probe_tables(draw):
    """A base table whose ID/v columns sometimes hit graph elements."""
    num_rows = draw(st.integers(min_value=0, max_value=6))
    rows = [
        [
            draw(st.sampled_from(["n0", "n1", "n2", "n3", "n4", "nope"])),
            draw(st.integers(0, 3)),
        ]
        for _ in range(num_rows)
    ]
    return Table(["ID", "v"], rows, name="Probe")


GT = (
    "GRAPH_TABLE(tiny MATCH (x)-[e]->(y) "
    "COLUMNS (x AS xel, x.v AS xv, y.v AS yv))"
)
GT_B = (
    "GRAPH_TABLE(tiny MATCH (x:A)-[e:E]->(y) WHERE y.v > 0 "
    "COLUMNS (x.v AS xv, y AS yel))"
)

QUERIES = [
    # element-keyed base-table join: seeded_join (element probe) territory
    f"SELECT p.v, gt.yv FROM Probe AS p JOIN {GT} AS gt ON gt.xel = p.ID",
    # property-keyed base-table join: seeded_join (property probe) or
    # semi_join reduction, depending on the enabled subset
    f"SELECT p.ID, gt.yv FROM Probe AS p JOIN {GT} AS gt ON gt.xv = p.v",
    # residual on top of the equi-key
    f"SELECT p.ID FROM Probe AS p JOIN {GT} AS gt "
    "ON gt.xv = p.v AND gt.yv <> p.v",
    # identical GRAPH_TABLEs: shared_scan (and seeded_join on the build)
    f"SELECT g1.xv, g2.yv FROM {GT} AS g1 JOIN {GT} AS g2 ON g1.yv = g2.xv",
    # three-way: base table against two shared graph scans
    f"SELECT p.ID, g2.yv FROM Probe AS p "
    f"JOIN {GT} AS g1 ON g1.xv = p.v "
    f"JOIN {GT} AS g2 ON g2.xv = g1.yv",
    # different patterns must not share; pushdown-bearing pattern seeds
    f"SELECT g1.xv, g2.xv FROM {GT} AS g1 JOIN {GT_B} AS g2 ON g2.yel = g1.xel",
    # ORDER BY over a rewritten join (prefix assertion applies)
    f"SELECT p.v, gt.yv FROM Probe AS p JOIN {GT} AS gt ON gt.xel = p.ID "
    "ORDER BY p.v DESC, gt.yv",
    f"SELECT g1.xv FROM {GT} AS g1 JOIN {GT} AS g2 ON g1.yv = g2.xv "
    "ORDER BY g1.xv",
]


def _database(graph, probe):
    db = Database()
    db.register_graph("tiny", graph)
    for name, table in tabular_representation(graph).items():
        db.register_table(name, table)
    db.register_table("Probe", probe)
    return db


def _order_by_arity(query):
    if "ORDER BY" not in query:
        return 0
    return query.split("ORDER BY")[1].count(",") + 1


def _run(db, query, rules):
    table = db.execute(query, sql_config=SqlConfig(optimizer_rules=rules))
    return [tuple(row) for row in table.rows]


@given(tiny_graphs(), probe_tables(), st.sampled_from(QUERIES))
@settings(max_examples=60, deadline=None)
def test_every_rule_subset_matches_oracle(graph, probe, query):
    db = _database(graph, probe)
    oracle = _run(db, query, frozenset())
    oracle_bag = sorted(map(repr, oracle))
    arity = _order_by_arity(query)
    for rules in RULE_SUBSETS:
        rows = _run(db, query, rules)
        assert sorted(map(repr, rows)) == oracle_bag, rules
        if arity:
            # The ordering must survive rewrites even where ties may not.
            prefix = [row[:arity] for row in rows]
            assert prefix == [row[:arity] for row in oracle], rules


@given(tiny_graphs(), probe_tables(), st.sampled_from(QUERIES), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_limit_prefixes_stay_within_full_result(graph, probe, query, limit):
    """LIMIT under any rule subset delivers a sub-bag of the full result."""
    db = _database(graph, probe)
    full = sorted(map(repr, _run(db, query, frozenset())))
    limited_query = f"{query} LIMIT {limit}"
    for rules in RULE_SUBSETS:
        rows = sorted(map(repr, _run(db, limited_query, rules)))
        assert len(rows) == min(limit, len(full))
        remaining = list(full)
        for row in rows:
            assert row in remaining
            remaining.remove(row)
