"""Property test: traces are internally consistent and observation-free.

For random graphs and a corpus of queries across both entry points,

* tracing never changes results: a traced run yields exactly the rows /
  records of an untraced run,
* the trace decomposes the flat counters: ``trace.total_steps()``
  equals ``stats.steps`` for a drained run, and the delivered-rows
  stage equals ``len(result)`` equals ``stats.rows``,
* rows chain between pipeline stages: each GQL statement span's
  ``rows_in`` equals the previous span's ``rows_out`` (the first
  consumes the single unit row), and the final span's ``rows_out`` is
  the record count.
"""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.errors import BudgetExceededError
from repro.gpml import match_iter
from repro.gpml.matcher import MatcherConfig
from repro.gpml.streaming import PipelineStats
from repro.graph import GraphBuilder
from repro.gql.query import execute_gql_iter, parse_gql_query


@st.composite
def small_graphs(draw):
    """Graphs with <= 6 nodes, <= 10 edges, 2 labels, 1 int property."""
    num_nodes = draw(st.integers(min_value=1, max_value=6))
    builder = GraphBuilder("random")
    for i in range(num_nodes):
        label = draw(st.sampled_from(["A", "B"]))
        builder.node(f"n{i}", label, v=draw(st.integers(0, 3)))
    num_edges = draw(st.integers(min_value=0, max_value=10))
    for j in range(num_edges):
        src = f"n{draw(st.integers(0, num_nodes - 1))}"
        dst = f"n{draw(st.integers(0, num_nodes - 1))}"
        label = draw(st.sampled_from(["E", "F"]))
        if draw(st.booleans()):
            builder.directed(f"e{j}", src, dst, label, w=draw(st.integers(0, 3)))
        else:
            builder.undirected(f"e{j}", src, dst, label, w=draw(st.integers(0, 3)))
    return builder.build()


MATCH_QUERIES = [
    "MATCH (x:A)",
    "MATCH (x)-[e]->(y)",
    "MATCH (x)-[e:E]->(y)-[f]->(z)",
    "MATCH (a)-[e]->{1,2}(b)",
    "MATCH TRAIL p = (a)-[e]->*(b)",
    "MATCH ANY SHORTEST p = (a)-[e]->*(b)",
    "MATCH (x)-[e]->(y), (y)-[f]-(z)",
    "MATCH (x WHERE x.v > 0)-[e]->(y) WHERE e.w = x.v",
    "MATCH TRAIL (a)-[e]->*(b) KEEP SHORTEST 2",
]

GQL_QUERIES = [
    "MATCH (x)-[e]->(y) MATCH (y)-[f]->(z) RETURN x, z",
    "MATCH (x:A)-[e]->(y) OPTIONAL MATCH (y)-[f:F]->(z) RETURN x, y, z",
    "MATCH (x)-[e]->(y) LET s = x.v + y.v FILTER s > 1 RETURN x, s",
    "MATCH (x)-[e]->(y) MATCH (y)-[f]->(z) RETURN DISTINCT x, z",
    "MATCH (x)-[e]->(y) RETURN x.v AS xv ORDER BY xv",
    "MATCH (x)-[e]->(y) MATCH (y)-[f]->(z) RETURN x, z LIMIT 3",
    "MATCH (x:A) MATCH (y:B) RETURN x, y OFFSET 1",
]

CONFIG = MatcherConfig(max_steps=40_000, max_results=10_000)


def row_key(row):
    return (
        tuple(sorted((k, repr(v)) for k, v in row.values.items())),
        tuple(str(p) for p in row.paths),
    )


def record_key(record):
    return tuple(sorted((name, repr(value)) for name, value in record.items()))


@given(small_graphs(), st.sampled_from(MATCH_QUERIES))
@settings(max_examples=50, deadline=None)
def test_match_trace_consistent_and_observation_free(graph, query):
    try:
        untraced = [row_key(r) for r in match_iter(graph, query, CONFIG)]
        stats = PipelineStats.traced()
        traced = [row_key(r) for r in match_iter(graph, query, CONFIG, stats=stats)]
    except BudgetExceededError:
        assume(False)

    assert traced == untraced, "tracing changed the result"
    assert stats.rows == len(traced)
    assert stats.trace.total_steps() == stats.steps
    delivery = stats.trace.find("row delivery")
    assert delivery is not None
    assert delivery.rows_out == len(traced)


@given(small_graphs(), st.sampled_from(GQL_QUERIES))
@settings(max_examples=50, deadline=None)
def test_gql_trace_consistent_and_observation_free(graph, query):
    parsed = parse_gql_query(query)
    try:
        untraced = [
            record_key(r) for r in execute_gql_iter(graph, parsed, CONFIG)
        ]
        stats = PipelineStats.traced()
        traced = [
            record_key(r)
            for r in execute_gql_iter(graph, parsed, CONFIG, stats=stats)
        ]
    except BudgetExceededError:
        assume(False)

    assert traced == untraced, "tracing changed the result"
    assert stats.rows == len(traced)
    assert stats.trace.total_steps() == stats.steps

    # rows chain stage to stage: statement k consumes statement k-1's
    # output; the pipeline starts from one unit row; the last span
    # (RETURN) emits exactly the delivered records.
    spans = stats.trace.root.children
    assert spans, "traced run recorded no statement spans"
    assert spans[0].rows_in == 1
    for previous, current in zip(spans, spans[1:]):
        assert current.rows_in == previous.rows_out
    assert spans[-1].rows_out == len(traced)
